"""Frame-difference motion detection and its hardware cost.

Functional model: a pixel is "changed" when it differs from the reference
frame by more than ``pixel_threshold``; the frame has motion when the
changed fraction exceeds ``area_threshold``. The reference adapts with an
exponential moving average so slow illumination drift (present in the
synthetic surveillance traces) does not fire the detector, while genuine
scene changes do.

Hardware model: a streaming engine processing one pixel per cycle — read
reference, subtract, compare, conditionally update reference. This is the
kind of block that costs microwatts, which is why the paper includes it as
the first filter of the harvested-energy pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.asic import AsicEnergyModel
from repro.hw.energy import EnergyReport
from repro.imaging.image import ensure_gray


@dataclass(frozen=True)
class MotionResult:
    """Outcome of one frame: decision plus the changed-pixel fraction."""

    motion: bool
    changed_fraction: float


class MotionDetector:
    """Stateful frame-difference detector.

    Parameters
    ----------
    pixel_threshold:
        Minimum per-pixel absolute difference (in [0, 1] intensity units)
        to count a pixel as changed.
    area_threshold:
        Minimum fraction of changed pixels to declare motion.
    reference_alpha:
        EMA coefficient for the reference update on *motionless* frames
        (the reference freezes during motion so a person standing still
        keeps being detected).
    """

    def __init__(
        self,
        pixel_threshold: float = 0.08,
        area_threshold: float = 0.01,
        reference_alpha: float = 0.2,
    ):
        if not 0 < pixel_threshold < 1:
            raise ConfigurationError(f"pixel_threshold in (0,1), got {pixel_threshold}")
        if not 0 < area_threshold < 1:
            raise ConfigurationError(f"area_threshold in (0,1), got {area_threshold}")
        if not 0 < reference_alpha <= 1:
            raise ConfigurationError(f"reference_alpha in (0,1], got {reference_alpha}")
        self.pixel_threshold = pixel_threshold
        self.area_threshold = area_threshold
        self.reference_alpha = reference_alpha
        self._reference: np.ndarray | None = None

    def reset(self) -> None:
        """Forget the reference frame."""
        self._reference = None

    def process(self, frame: np.ndarray) -> MotionResult:
        """Classify one frame and update the reference."""
        arr = ensure_gray(frame)
        if self._reference is None:
            self._reference = arr.copy()
            return MotionResult(motion=False, changed_fraction=0.0)
        if arr.shape != self._reference.shape:
            raise ConfigurationError(
                f"frame shape {arr.shape} differs from reference "
                f"{self._reference.shape}; call reset() on resolution change"
            )
        changed = np.abs(arr - self._reference) > self.pixel_threshold
        fraction = float(changed.mean())
        motion = fraction > self.area_threshold
        if not motion:
            self._reference = (
                (1.0 - self.reference_alpha) * self._reference
                + self.reference_alpha * arr
            )
        return MotionResult(motion=motion, changed_fraction=fraction)


class MotionHardwareModel:
    """Streaming ASIC cost of the detector: one pixel per cycle."""

    def __init__(self, energy_model: AsicEnergyModel | None = None,
                 frame_buffer_bytes: float = 32 * 1024):
        base = energy_model or AsicEnergyModel()
        # ~4 kGE: subtract/compare datapath plus counters.
        self.energy_model = AsicEnergyModel(
            tech=base.tech, clock_hz=base.clock_hz, voltage=base.voltage,
            kilo_gates=4.0,
        )
        self.frame_buffer_bytes = frame_buffer_bytes

    def frame_cost(self, pixels: int) -> tuple[int, EnergyReport]:
        """Cycles and energy to process one frame of ``pixels``."""
        if pixels < 0:
            raise ConfigurationError(f"pixels must be >= 0, got {pixels}")
        em = self.energy_model
        report = EnergyReport()
        # Per pixel: reference read, |diff| + compare, EMA write-back.
        report.add(
            "motion:ref_read",
            pixels * em.sram_read_energy(8, self.frame_buffer_bytes),
        )
        report.add("motion:diff_compare", pixels * 2 * em.add_energy(8))
        report.add(
            "motion:ref_update",
            pixels * em.sram_write_energy(8, self.frame_buffer_bytes),
        )
        cycles = pixels
        report.add("motion:control", cycles * 2 * em.register_energy(8))
        report = em.report_with_leakage(report, cycles)
        return cycles, report
