"""Motion detection — the cheapest optional block of the FA pipeline.

The paper's point about this block: it "can reduce the bandwidth and
ensuing power consumption of core blocks" by gating everything downstream
on scene activity. The functional detector and its hardware cost model
live in :mod:`.detector`.
"""

from repro.motion.detector import MotionDetector, MotionHardwareModel, MotionResult

__all__ = ["MotionDetector", "MotionHardwareModel", "MotionResult"]
