"""repro — reproduction of "Exploring Computation-Communication Tradeoffs
in Camera Systems" (Mazumdar et al., IISWC 2017).

The library decomposes camera applications into *in-camera processing
pipelines* (:mod:`repro.core`) and provides every substrate the paper's
two case studies need:

* the harvested-energy face-authentication camera —
  :mod:`repro.facedet`, :mod:`repro.nn`, :mod:`repro.snnap`,
  :mod:`repro.motion`, :mod:`repro.vj_hw`, :mod:`repro.harvest`,
  assembled in :mod:`repro.faceauth`;
* the real-time 16-camera VR rig — :mod:`repro.bilateral`,
  :mod:`repro.vr`, with hardware platforms in :mod:`repro.hw`;
* shared infrastructure — :mod:`repro.imaging`, :mod:`repro.datasets`;
* design-space exploration — :mod:`repro.explore`: declarative
  scenarios, lazy configuration enumeration with pruning, parallel
  sweep execution, and Pareto-frontier analysis over both cost domains.

Quickstart::

    from repro.vr.scenarios import build_vr_pipeline, paper_configurations
    from repro.core import ThroughputCostModel
    from repro.hw.network import ETHERNET_25G

    pipeline = build_vr_pipeline()
    model = ThroughputCostModel(ETHERNET_25G)
    for label, config in paper_configurations(pipeline):
        cost = model.evaluate(config)
        print(label, cost.total_fps, cost.meets(30.0))
"""

__version__ = "1.0.0"

from repro import (
    bilateral,
    compression,
    core,
    datasets,
    errors,
    explore,
    faceauth,
    facedet,
    harvest,
    hw,
    imaging,
    motion,
    nn,
    snnap,
    units,
    vj_hw,
    vr,
)

__all__ = [
    "__version__",
    "bilateral",
    "compression",
    "core",
    "datasets",
    "errors",
    "explore",
    "faceauth",
    "facedet",
    "harvest",
    "hw",
    "imaging",
    "motion",
    "nn",
    "snnap",
    "units",
    "vj_hw",
    "vr",
]
