"""Unit helpers and conversion constants.

The library mixes quantities from very different regimes (nanojoules on the
harvested-energy node, gigabytes per second on the VR rig), so all public
APIs document their units explicitly and use these helpers for conversions.
Internally everything is SI base units: seconds, joules, watts, bytes,
bits/second, hertz.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes (bytes). Decimal prefixes, matching how link rates are quoted.
# ---------------------------------------------------------------------------
KB = 1e3
MB = 1e6
GB = 1e9

# Binary prefixes for memory capacities (SRAM/BRAM sizing).
KIB = 1024.0
MIB = 1024.0**2

# ---------------------------------------------------------------------------
# Link rates (bits per second).
# ---------------------------------------------------------------------------
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9

# ---------------------------------------------------------------------------
# Time.
# ---------------------------------------------------------------------------
US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0

# ---------------------------------------------------------------------------
# Energy / power.
# ---------------------------------------------------------------------------
PJ = 1e-12
NJ = 1e-9
UJ = 1e-6
MJ_ = 1e-3  # millijoule (MJ would read as megajoule)
UW = 1e-6
MW_ = 1e-3  # milliwatt
NW = 1e-9

# ---------------------------------------------------------------------------
# Frequency.
# ---------------------------------------------------------------------------
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * 8.0


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to bytes."""
    return num_bits / 8.0


def transfer_seconds(num_bytes: float, bits_per_second: float) -> float:
    """Time to move ``num_bytes`` over a link of ``bits_per_second``.

    Raises
    ------
    ValueError
        If the link rate is not positive.
    """
    if bits_per_second <= 0:
        raise ValueError(f"link rate must be positive, got {bits_per_second}")
    return bytes_to_bits(num_bytes) / bits_per_second


def frames_per_second(seconds_per_frame: float) -> float:
    """Invert a per-frame latency into a throughput.

    A non-positive latency means "free" and maps to ``inf`` so that cost
    aggregation with :func:`min` keeps working.
    """
    if seconds_per_frame <= 0:
        return float("inf")
    return 1.0 / seconds_per_frame
