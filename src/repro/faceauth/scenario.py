"""The face-authentication camera as declarative offload scenarios.

:mod:`repro.faceauth.evaluate` runs the *functional* pipeline over a
trained workload trace (stages actually execute, costs are measured);
this module prices the same progressive-filtering chain — motion gate ->
Viola-Jones detect -> NN authenticate — as a cost-annotated
:class:`~repro.core.pipeline.InCameraPipeline`, so the exploration
engine can sweep its (cut point, platform) space without training
anything. Per-stage energy and active-time figures are representative
of the measured workload numbers (`benchmarks/results/faceauth_*.txt`):
the ASIC column from the fixed-function accelerator models
(:mod:`repro.motion`, :mod:`repro.vj_hw`, :mod:`repro.snnap`), the MCU
column from the Cortex-M0-class software baseline, pass rates from the
reference surveillance trace.

Registered catalog entries (:mod:`repro.explore.catalog`): the paper's
harvested-energy study (``faceauth-energy``) and a throughput-domain
variant over the backscatter uplink (``faceauth-throughput``) — the
same pipeline under the other cost model, which is exactly the
engine's point.
"""

from __future__ import annotations

from repro.core.block import Block, Implementation
from repro.core.pipeline import InCameraPipeline
from repro.explore.catalog import register_scenario, resolve_link
from repro.explore.scenario import Scenario
from repro.hw.network import RF_BACKSCATTER, LinkModel

#: QCIF-class sensor crop the NN pipeline works on (112x112, 8-bit).
FRAME_BYTES = 112.0 * 112.0

#: Trace-derived per-block pass rates of the reference surveillance
#: workload (motion in ~24% of frames; a face found in ~30% of moving
#: frames; the enrolled user in about half the detections).
TRACE_PASS_RATES = {"motion": 0.24, "detect": 0.3}

#: Expected joules per captured frame the harvested supply sustains at
#: the paper's ~2 m reader distance and ~1 FPS duty cycle.
DEFAULT_ENERGY_BUDGET_J = 2e-4


def build_offload_pipeline() -> InCameraPipeline:
    """The progressive-filtering chain as a cost-annotated pipeline.

    Offload payloads follow the transmit policies of the evaluated
    variants: cut after the sensor -> raw frame, after motion -> raw
    frame (gated), after detect -> face crop, after auth -> alert.
    """
    motion = Block(
        name="motion",
        output_bytes=FRAME_BYTES,
        pass_rate=0.2,
        implementations={
            "asic": Implementation(
                "asic", fps=30.0, energy_per_frame=2.3e-7, active_seconds=1e-3
            ),
            "mcu": Implementation(
                "mcu", fps=4.0, energy_per_frame=6.1e-5, active_seconds=0.25
            ),
        },
    )
    detect = Block(
        name="detect",
        output_bytes=400.0,
        pass_rate=0.35,
        implementations={
            "asic": Implementation(
                "asic", fps=10.0, energy_per_frame=6.6e-6, active_seconds=0.1
            ),
            "mcu": Implementation(
                "mcu", fps=0.2, energy_per_frame=9.6e-4, active_seconds=5.0
            ),
        },
    )
    auth = Block(
        name="auth",
        output_bytes=4.0,
        pass_rate=0.5,
        implementations={
            "asic": Implementation(
                "asic", fps=20.0, energy_per_frame=1.8e-6, active_seconds=0.05
            ),
        },
    )
    return InCameraPipeline(
        name="faceauth",
        sensor_bytes=FRAME_BYTES,
        blocks=(motion, detect, auth),
        sensor_energy_per_frame=1.1e-6,
    )


@register_scenario(
    "faceauth-energy",
    domain="energy",
    summary="Sec III: progressive filtering over RF backscatter on a harvested budget",
)
def faceauth_energy_scenario(
    link: str | LinkModel = RF_BACKSCATTER,
    energy_budget_j: float | None = DEFAULT_ENERGY_BUDGET_J,
    pass_rates: dict[str, float] | None = None,
    name: str | None = None,
) -> Scenario:
    """The paper's energy study: expected joules per captured frame of
    every (cut point, platform) assignment, against a harvested budget."""
    link = resolve_link(link)
    return Scenario(
        name=name or "faceauth-energy",
        pipeline=build_offload_pipeline(),
        link=link,
        domain="energy",
        energy_budget_j=energy_budget_j,
        pass_rates=dict(TRACE_PASS_RATES) if pass_rates is None else pass_rates,
    )


@register_scenario(
    "faceauth-throughput",
    domain="throughput",
    summary="The filtering chain on the throughput axis: what frame rate each cut sustains",
)
def faceauth_throughput_scenario(
    link: str | LinkModel = RF_BACKSCATTER,
    target_fps: float | None = 5.0,
    name: str | None = None,
) -> Scenario:
    """The same pipeline under the throughput model: shallow cuts are
    strangled by the backscatter uplink (a raw frame takes seconds),
    deep cuts by the MCU — only accelerated deep cuts sustain real
    rates, the VR-case conclusion replayed on the FA hardware."""
    link = resolve_link(link)
    return Scenario(
        name=name or "faceauth-throughput",
        pipeline=build_offload_pipeline(),
        link=link,
        domain="throughput",
        target_fps=target_fps,
    )
