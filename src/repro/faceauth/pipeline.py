"""The gated face-authentication pipeline with energy accounting.

Execution per captured frame (Figure 2's pipeline):

1. capture (always);
2. motion gate (optional) — no motion, nothing further runs;
3. face-detection gate (optional) — no face, nothing further runs;
4. NN authentication on the best detection (core block);
5. transmission, per policy: the WISPCam baseline sends every raw frame;
   filtered variants send only what survives (a crop, or a tiny alert).

The run records per-stage energies, gating rates and authentication
outcomes against ground truth — everything Section III's real-world
evaluation reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.video import SurveillanceVideo, VideoFrame
from repro.errors import ConfigurationError
from repro.faceauth.stages import AuthStage, CaptureStage, DetectStage, MotionStage, StageCost
from repro.hw.network import LinkModel, RF_BACKSCATTER

#: Transmission policies: what crosses the uplink for a surviving frame.
TX_POLICIES = ("raw_frame", "face_crop", "alert")

#: Node electronics active power while the radio streams (clocking,
#: framing, regulator) — the dominant cost of long backscatter transfers.
NODE_TX_ACTIVE_POWER = 300e-6

#: Payload of an authentication alert message (header + score + box).
ALERT_BYTES = 64.0


@dataclass(frozen=True)
class FrameOutcome:
    """Ground truth vs. pipeline behaviour for one frame."""

    index: int
    motion: bool | None  # None when the stage is absent
    faces_found: int | None
    authenticated: bool | None
    transmitted_bytes: float
    energy_j: float
    active_seconds: float
    truth_has_person: bool
    truth_has_target: bool


@dataclass
class WorkloadResult:
    """Aggregated statistics over a workload trace."""

    outcomes: list[FrameOutcome] = field(default_factory=list)
    stage_energy: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        return len(self.outcomes)

    @property
    def total_energy(self) -> float:
        return sum(o.energy_j for o in self.outcomes)

    @property
    def energy_per_frame(self) -> float:
        return self.total_energy / max(self.n_frames, 1)

    @property
    def total_transmitted_bytes(self) -> float:
        return sum(o.transmitted_bytes for o in self.outcomes)

    def rate(self, stage: str) -> float:
        """Fraction of frames that passed a gate ('motion'/'detect')."""
        if stage == "motion":
            flags = [o.motion for o in self.outcomes if o.motion is not None]
        elif stage == "detect":
            flags = [
                (o.faces_found or 0) > 0
                for o in self.outcomes
                if o.faces_found is not None
            ]
        else:
            raise ConfigurationError(f"unknown gate {stage!r}")
        return sum(flags) / len(flags) if flags else 0.0

    # ------------------------------------------------------------------
    def authentication_confusion(self) -> dict[str, int]:
        """Frame-level confusion of 'target authenticated' vs. truth.

        Only frames where the pipeline produced a decision influence
        false positives; misses count any target frame not authenticated
        (including ones the gates dropped — a gate that drops the target
        IS a miss, which is why gate thresholds matter).
        """
        tp = fp = fn = tn = 0
        for o in self.outcomes:
            decided = bool(o.authenticated)
            if o.truth_has_target:
                tp += decided
                fn += not decided
            else:
                fp += decided
                tn += not decided
        return {"tp": tp, "fp": fp, "fn": fn, "tn": tn}

    @property
    def miss_rate(self) -> float:
        """Fraction of target frames not authenticated."""
        c = self.authentication_confusion()
        denom = c["tp"] + c["fn"]
        return c["fn"] / denom if denom else 0.0

    @property
    def false_alarm_rate(self) -> float:
        """Fraction of non-target frames wrongly authenticated."""
        c = self.authentication_confusion()
        denom = c["fp"] + c["tn"]
        return c["fp"] / denom if denom else 0.0

    def event_miss_rate(self, video: SurveillanceVideo) -> float:
        """Fraction of target *visits* never authenticated (the security
        metric: one hit during a visit is enough to open the door)."""
        target_events = [e for e in video.events if e.is_target]
        if not target_events:
            return 0.0
        authed = {o.index for o in self.outcomes if o.authenticated}
        missed = sum(
            1
            for e in target_events
            if not any(i in authed for i in range(e.start, e.stop))
        )
        return missed / len(target_events)


class FaceAuthPipeline:
    """Configured pipeline: which stages exist, platforms, TX policy.

    Parameters
    ----------
    capture:
        Sensor stage (always present).
    motion, detect, auth:
        Optional stages; ``None`` removes the block from the pipeline.
    tx_policy:
        What gets transmitted when a frame survives all present gates.
    link:
        The uplink (WISPCam backscatter by default).
    """

    def __init__(
        self,
        capture: CaptureStage,
        motion: MotionStage | None,
        detect: DetectStage | None,
        auth: AuthStage | None,
        tx_policy: str = "alert",
        link: LinkModel = RF_BACKSCATTER,
        frame_bytes: float | None = None,
    ):
        if tx_policy not in TX_POLICIES:
            raise ConfigurationError(
                f"tx_policy must be one of {TX_POLICIES}, got {tx_policy!r}"
            )
        if auth is not None and detect is None:
            raise ConfigurationError(
                "the NN consumes face detections; enable detect with auth"
            )
        self.capture = capture
        self.motion = motion
        self.detect = detect
        self.auth = auth
        self.tx_policy = tx_policy
        self.link = link
        self.frame_bytes = frame_bytes

    # ------------------------------------------------------------------
    def _tx_cost(self, payload_bytes: float) -> StageCost:
        seconds = self.link.seconds_for_bytes(payload_bytes)
        energy = (
            self.link.tx_energy_for_bytes(payload_bytes)
            + seconds * NODE_TX_ACTIVE_POWER
        )
        return StageCost(energy, seconds)

    def process_frame(self, frame: VideoFrame) -> FrameOutcome:
        """Run one frame through the configured pipeline."""
        stage_costs: dict[str, StageCost] = {"capture": self.capture.cost()}
        image = frame.image
        frame_bytes = self.frame_bytes or float(image.size)  # 8 bpp raw

        survived = True
        motion_flag: bool | None = None
        faces_found: int | None = None
        authenticated: bool | None = None
        payload = 0.0

        if self.motion is not None:
            motion_flag, cost = self.motion.run(image)
            stage_costs["motion"] = cost
            survived = motion_flag

        detections = []
        if survived and self.detect is not None:
            detections, cost = self.detect.run(image)
            stage_costs["detect"] = cost
            faces_found = len(detections)
            survived = faces_found > 0

        if survived and self.auth is not None:
            best = max(detections, key=lambda d: d.score)
            authenticated, _, cost = self.auth.run(image, best)
            stage_costs["auth"] = cost
            survived = authenticated

        if survived:
            if self.tx_policy == "raw_frame":
                payload = frame_bytes
            elif self.tx_policy == "face_crop":
                side = detections and max(detections, key=lambda d: d.score).side
                payload = float(side * side) if side else frame_bytes
            else:
                payload = ALERT_BYTES
            stage_costs["transmit"] = self._tx_cost(payload)

        total = StageCost(0.0, 0.0)
        for cost in stage_costs.values():
            total = total + cost
        outcome = FrameOutcome(
            index=frame.index,
            motion=motion_flag,
            faces_found=faces_found,
            authenticated=authenticated,
            transmitted_bytes=payload,
            energy_j=total.energy_j,
            active_seconds=total.seconds,
            truth_has_person=frame.has_person,
            truth_has_target=frame.has_target,
        )
        self._last_stage_costs = stage_costs
        return outcome

    # ------------------------------------------------------------------
    def run_workload(self, video: SurveillanceVideo) -> WorkloadResult:
        """Process every frame of a trace, accumulating statistics."""
        result = WorkloadResult()
        if self.motion is not None:
            self.motion.detector.reset()
        for frame in video.frames():
            outcome = self.process_frame(frame)
            result.outcomes.append(outcome)
            for name, cost in self._last_stage_costs.items():
                result.stage_energy[name] = (
                    result.stage_energy.get(name, 0.0) + cost.energy_j
                )
        return result
