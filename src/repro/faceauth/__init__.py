"""Case study A: battery-free face authentication (Section III).

Assembles the full harvested-energy camera pipeline — motion detection
(B1, optional) -> Viola-Jones face detection (B2, optional) -> NN face
authentication (B3, core) — with per-stage functional models and hardware
costs, runs it over surveillance workloads, and compares platform choices
(fixed-function accelerators vs. a general-purpose MCU) and pipeline
variants (how much filtering happens before the radio).

* :mod:`.stages` — stage wrappers binding algorithms to hardware costs;
* :mod:`.pipeline` — the gated execution engine with energy accounting;
* :mod:`.workload` — trained-component factory for a workload trace;
* :mod:`.evaluate` — variant comparison and harvested-power analysis;
* :mod:`.scenario` — the chain as cost-annotated catalog scenarios for
  the exploration engine (no training required).
"""

from repro.faceauth.stages import (
    AuthStage,
    CaptureStage,
    DetectStage,
    MotionStage,
    StageCost,
)
from repro.faceauth.pipeline import FaceAuthPipeline, FrameOutcome, WorkloadResult
from repro.faceauth.workload import TrainedWorkload, build_workload
from repro.faceauth.evaluate import PipelineVariant, evaluate_variants, harvest_analysis
from repro.faceauth.scenario import (
    build_offload_pipeline,
    faceauth_energy_scenario,
    faceauth_throughput_scenario,
)

__all__ = [
    "build_offload_pipeline",
    "faceauth_energy_scenario",
    "faceauth_throughput_scenario",
    "AuthStage",
    "CaptureStage",
    "DetectStage",
    "MotionStage",
    "StageCost",
    "FaceAuthPipeline",
    "FrameOutcome",
    "WorkloadResult",
    "TrainedWorkload",
    "build_workload",
    "PipelineVariant",
    "evaluate_variants",
    "harvest_analysis",
]
