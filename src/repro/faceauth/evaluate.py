"""Variant comparison and harvested-power analysis (Section III's eval).

The pipeline variants span the paper's progressive-filtering argument:

========================  ==================================================
variant                   behaviour
========================  ==================================================
``tx-everything``         WISPCam baseline: capture and transmit every raw
                          frame, no in-camera processing
``motion-gated``          transmit raw frames only when the scene moved
``motion+detect``         transmit face crops only when a face was found
``full-fa``               the paper's pipeline: transmit a tiny alert only
                          when the enrolled user is authenticated
========================  ==================================================

Each variant runs with the compute stages on either fixed-function
accelerators (``asic``) or the general-purpose MCU baseline (``mcu``), and
the resulting per-frame energy feeds the harvesting model to answer the
operational question: what frame rate can this node sustain at a given
reader distance?
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.core.sweep import parameter_sweep
from repro.errors import ConfigurationError
from repro.explore.executor import SweepExecutor, resolve_executor

# Importing the scenario module registers the face-authentication
# catalog entries (kept here so legacy `from repro.faceauth import
# evaluate` users see the same catalog the engine does); the factories
# are re-exported as part of this module's evaluation surface.
from repro.faceauth.scenario import (  # noqa: F401  (re-export + registration)
    build_offload_pipeline,
    faceauth_energy_scenario,
    faceauth_throughput_scenario,
)
from repro.faceauth.pipeline import FaceAuthPipeline, WorkloadResult
from repro.faceauth.stages import AuthStage, CaptureStage, DetectStage, MotionStage
from repro.faceauth.workload import TrainedWorkload
from repro.harvest.capacitor import Capacitor
from repro.harvest.harvester import RfHarvester
from repro.harvest.scheduler import DutyCycleSimulator, FrameTask


@dataclass(frozen=True)
class PipelineVariant:
    """One pipeline shape to evaluate."""

    name: str
    use_motion: bool
    use_detect: bool
    use_auth: bool
    tx_policy: str


PAPER_VARIANTS = (
    PipelineVariant("tx-everything", False, False, False, "raw_frame"),
    PipelineVariant("motion-gated", True, False, False, "raw_frame"),
    PipelineVariant("motion+detect", True, True, False, "face_crop"),
    PipelineVariant("full-fa", True, True, True, "alert"),
)


def build_pipeline(
    variant: PipelineVariant,
    workload: TrainedWorkload,
    platform: str,
    scale_factor: float = 1.4,
    step_size: int = 2,
) -> FaceAuthPipeline:
    """Instantiate a variant over a trained workload on one platform."""
    capture = CaptureStage()
    motion = MotionStage(platform=platform) if variant.use_motion else None
    detect = (
        DetectStage(
            workload.make_detector(scale_factor=scale_factor, step_size=step_size),
            platform=platform,
        )
        if variant.use_detect
        else None
    )
    auth = (
        AuthStage(workload.make_accelerator(), platform=platform)
        if variant.use_auth
        else None
    )
    return FaceAuthPipeline(
        capture=capture,
        motion=motion,
        detect=detect,
        auth=auth,
        tx_policy=variant.tx_policy,
    )


def _evaluate_combo(
    workload: TrainedWorkload, combo: tuple[PipelineVariant, str]
) -> dict:
    """Run one (variant, platform) combination over the workload trace."""
    variant, platform = combo
    pipeline = build_pipeline(variant, workload, platform)
    result: WorkloadResult = pipeline.run_workload(workload.video)
    row = {
        "variant": variant.name,
        "platform": platform,
        "energy_per_frame_uj": result.energy_per_frame * 1e6,
        "tx_bytes_total": result.total_transmitted_bytes,
        "result": result,
    }
    if variant.use_auth:
        # Authentication accuracy only exists when the NN runs.
        row["miss_rate"] = result.miss_rate
        row["event_miss_rate"] = result.event_miss_rate(workload.video)
        row["false_alarm_rate"] = result.false_alarm_rate
    if variant.use_motion:
        row["motion_rate"] = result.rate("motion")
    if variant.use_detect:
        row["detect_rate"] = result.rate("detect")
    return row


def evaluate_variants(
    workload: TrainedWorkload,
    variants: tuple[PipelineVariant, ...] = PAPER_VARIANTS,
    platforms: tuple[str, ...] = ("asic", "mcu"),
    executor: SweepExecutor | None = None,
) -> list[dict]:
    """Run every (variant, platform) over the workload trace.

    Returns one row per combination — variant-major, platform-minor, the
    same order for any ``executor`` — with energy, gating, accuracy and
    the raw :class:`WorkloadResult` attached under ``result``.
    """
    if not variants or not platforms:
        raise ConfigurationError("need at least one variant and platform")
    executor = resolve_executor(executor)
    grid = [(variant, platform) for variant in variants for platform in platforms]
    return executor.map(partial(_evaluate_combo, workload), grid)


def _harvest_point(
    energy_per_frame_j: float,
    active_seconds: float,
    harvester: RfHarvester,
    distance_m: float,
) -> dict:
    simulator = DutyCycleSimulator(harvester, Capacitor(), distance_m=distance_m)
    task = FrameTask("frame", energy_per_frame_j, active_seconds)
    return {
        "harvested_uw": harvester.harvested_power(distance_m) * 1e6,
        "steady_fps": simulator.steady_state_fps(task),
    }


def harvest_analysis(
    energy_per_frame_j: float,
    active_seconds: float,
    distances_m: tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0),
    harvester: RfHarvester | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict]:
    """Achievable frame rate vs. reader distance for a per-frame cost."""
    if energy_per_frame_j <= 0:
        raise ConfigurationError("energy per frame must be positive")
    if not distances_m:
        return []
    harvester = harvester or RfHarvester()
    sweep = parameter_sweep(
        partial(_harvest_point, energy_per_frame_j, active_seconds, harvester),
        executor=executor,
        distance_m=list(distances_m),
    )
    return sweep.rows
