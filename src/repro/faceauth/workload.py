"""Workload construction: train every component for one video trace.

Given a surveillance trace, build the matched recognizer stack: a
Viola-Jones cascade (generic face/non-face) and a 400-8-1 authentication
network trained to recognize the trace's enrolled user against imposters.
Training data mimics the deployment path — faces rendered at the sizes
people appear in the video, then resized to the NN window, exactly what
detector crops will look like.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.rng import make_rng
from repro.datasets.video import SurveillanceVideo
from repro.errors import TrainingError
from repro.facedet.cascade import CascadeClassifier
from repro.facedet.detector import SlidingWindowDetector
from repro.facedet.training import train_reference_cascade
from repro.imaging.resize import resize_bilinear
from repro.nn.mlp import MLP
from repro.nn.train import train_rprop
from repro.snnap.accelerator import SnnapAccelerator


@dataclass(frozen=True)
class TrainedWorkload:
    """A video trace plus the recognizer stack trained for it."""

    video: SurveillanceVideo
    cascade: CascadeClassifier
    nn_model: MLP
    nn_float_error: float  # held-out classification error of the float NN

    def make_detector(
        self,
        scale_factor: float = 1.4,
        step_size: int = 2,
        adaptive_step: float | None = None,
    ) -> SlidingWindowDetector:
        """A sliding-window detector over the trained cascade."""
        return SlidingWindowDetector(
            self.cascade,
            scale_factor=scale_factor,
            step_size=step_size,
            adaptive_step=adaptive_step,
            min_window=24,
            max_window=64,
        )

    def make_accelerator(self, n_pes: int = 8, data_bits: int = 8) -> SnnapAccelerator:
        """The deployed NN accelerator (paper's chosen configuration)."""
        return SnnapAccelerator(self.nn_model, n_pes=n_pes, data_bits=data_bits)


def _jittered_crop(
    face: np.ndarray, rng: np.random.Generator, window: int
) -> np.ndarray:
    """Mimic a Viola-Jones detection box around a rendered face.

    Detector boxes are never pixel-aligned with the face: they come with
    scale slack (the detector's discrete scale ladder) and positional
    slack (the stride). Training on jittered crops closes that
    deployment gap.
    """
    side = face.shape[0]
    pad = max(int(side * 0.3), 2)
    canvas = np.pad(face, pad, mode="edge")
    crop_side = int(round(side * rng.uniform(0.9, 1.35)))
    center_y = pad + side / 2.0 + rng.uniform(-0.12, 0.12) * side
    center_x = pad + side / 2.0 + rng.uniform(-0.12, 0.12) * side
    y0 = int(np.clip(center_y - crop_side / 2.0, 0, canvas.shape[0] - crop_side))
    x0 = int(np.clip(center_x - crop_side / 2.0, 0, canvas.shape[1] - crop_side))
    crop = canvas[y0 : y0 + crop_side, x0 : x0 + crop_side]
    return resize_bilinear(crop, window, window)


def _deployment_windows(
    video: SurveillanceVideo,
    identity_indices: list[int] | None,
    count: int,
    rng: np.random.Generator,
    window: int,
    difficulty: float,
) -> np.ndarray:
    """Render faces at video-realistic sizes through detection-box jitter.

    ``identity_indices`` of None means the enrolled target; otherwise the
    listed imposters.
    """
    gen = video.face_generator
    out = []
    for _ in range(count):
        if identity_indices is None:
            identity = video.target_identity
        else:
            identity = video.imposters[
                identity_indices[int(rng.integers(0, len(identity_indices)))]
            ]
        side = int(rng.integers(28, 48))  # the video's face-size range
        face = gen.render_face(identity, gen.sample_conditions(difficulty), size=side)
        out.append(_jittered_crop(face, rng, window))
    return np.stack(out)


def build_workload(
    seed: int = 0,
    n_frames: int = 240,
    event_rate: float = 4.0,
    target_fraction: float = 0.5,
    n_train_per_class: int = 350,
    nn_epochs: int = 250,
    difficulty: float = 0.6,
) -> TrainedWorkload:
    """Build a trace and train the full recognizer stack for it."""
    video = SurveillanceVideo(
        n_frames=n_frames,
        event_rate=event_rate,
        target_fraction=target_fraction,
        seed=seed,
    )
    rng = make_rng(seed + 1)

    bundle = train_reference_cascade(seed=seed + 2)
    window = bundle.generator.window

    imposter_idx = list(range(len(video.imposters)))
    pos = _deployment_windows(video, None, n_train_per_class, rng, window, difficulty)
    neg = _deployment_windows(
        video, imposter_idx, n_train_per_class, rng, window, difficulty
    )
    X = np.vstack([pos, neg]).reshape(2 * n_train_per_class, -1)
    y = np.concatenate([np.ones(n_train_per_class), np.zeros(n_train_per_class)])

    order = rng.permutation(len(X))
    split = int(0.9 * len(X))
    train_idx, val_idx = order[:split], order[split:]

    model = MLP((window * window, 8, 1), seed=seed + 3)
    result = train_rprop(
        model,
        X[train_idx],
        y[train_idx],
        epochs=nn_epochs,
        X_val=X[val_idx],
        y_val=y[val_idx],
        patience=60,
        weight_decay=1e-4,
    )

    # Held-out error on a fresh draw (the paper's 90/10 protocol).
    pos_t = _deployment_windows(video, None, 120, rng, window, difficulty)
    neg_t = _deployment_windows(video, imposter_idx, 120, rng, window, difficulty)
    X_test = np.vstack([pos_t, neg_t]).reshape(240, -1)
    y_test = np.concatenate([np.ones(120), np.zeros(120)])
    error = result.model.classification_error(X_test, y_test)
    if not np.isfinite(error):
        raise TrainingError("NN evaluation produced a non-finite error")

    return TrainedWorkload(
        video=video,
        cascade=bundle.cascade,
        nn_model=result.model,
        nn_float_error=float(error),
    )
