"""Pipeline stages: algorithm + hardware cost, per platform.

Each stage exposes ``run(...)`` (the functional result) and returns a
:class:`StageCost` for the platform it is configured on: ``asic`` uses the
fixed-function models (:mod:`repro.motion`, :mod:`repro.vj_hw`,
:mod:`repro.snnap`), ``mcu`` prices the same algorithm as software on the
general-purpose microcontroller baseline — the comparison the paper's
first contribution is about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.facedet.detector import Detection, ScanStats, SlidingWindowDetector
from repro.hw.mcu import MicrocontrollerModel, MCU_CORTEX_M0_CLASS
from repro.imaging.resize import resize_bilinear
from repro.motion.detector import MotionDetector, MotionHardwareModel
from repro.snnap.accelerator import SnnapAccelerator
from repro.vj_hw.accelerator import ViolaJonesAccelerator

PLATFORMS = ("asic", "mcu")


@dataclass(frozen=True)
class StageCost:
    """Energy and active time one stage spent on one frame."""

    energy_j: float
    seconds: float

    def __add__(self, other: "StageCost") -> "StageCost":
        return StageCost(self.energy_j + other.energy_j, self.seconds + other.seconds)


def _check_platform(platform: str) -> None:
    if platform not in PLATFORMS:
        raise ConfigurationError(
            f"platform must be one of {PLATFORMS}, got {platform!r}"
        )


@dataclass(frozen=True)
class CaptureStage:
    """Image sensor + readout (always runs, platform-independent).

    Defaults model an ultra-low-power QCIF sensor (HM01B0-class):
    ~15 uJ per frame including ADC and readout into SRAM.
    """

    energy_per_frame: float = 15e-6
    seconds_per_frame: float = 33e-3

    def cost(self) -> StageCost:
        return StageCost(self.energy_per_frame, self.seconds_per_frame)


class MotionStage:
    """B1: frame-difference gate."""

    def __init__(
        self,
        platform: str = "asic",
        detector: MotionDetector | None = None,
        mcu: MicrocontrollerModel = MCU_CORTEX_M0_CLASS,
    ):
        _check_platform(platform)
        self.platform = platform
        self.detector = detector or MotionDetector()
        self._hw = MotionHardwareModel()
        self._mcu = mcu

    def run(self, frame: np.ndarray) -> tuple[bool, StageCost]:
        result = self.detector.process(frame)
        pixels = frame.size
        if self.platform == "asic":
            cycles, report = self._hw.frame_cost(pixels)
            cost = StageCost(report.total, self._hw.energy_model.seconds(cycles))
        else:
            report, seconds = self._mcu.run_op_mix({"pixel_diff": float(pixels)})
            cost = StageCost(report.total, seconds)
        return result.motion, cost


class DetectStage:
    """B2: Viola-Jones face detection gate."""

    def __init__(
        self,
        detector: SlidingWindowDetector,
        platform: str = "asic",
        mcu: MicrocontrollerModel = MCU_CORTEX_M0_CLASS,
    ):
        _check_platform(platform)
        self.platform = platform
        self.detector = detector
        self._hw = ViolaJonesAccelerator()
        self._mcu = mcu

    def run(self, frame: np.ndarray) -> tuple[list[Detection], StageCost]:
        detections, stats = self.detector.detect(frame, return_stats=True)
        cost = self._cost_from_stats(stats, frame.size)
        return detections, cost

    def _cost_from_stats(self, stats: ScanStats, pixels: int) -> StageCost:
        if self.platform == "asic":
            scan = self._hw.scan_cost(stats, pixels)
            return StageCost(scan.total_joules, scan.seconds)
        report, seconds = self._mcu.run_op_mix(
            {
                "haar_rect": stats.feature_evaluations * 2.8,
                "compare": float(stats.feature_evaluations),
                "add": float(pixels * 2),  # integral image pass
                "store": float(pixels),
                "branch": float(stats.windows_visited),
            }
        )
        return StageCost(report.total, seconds)


class AuthStage:
    """B3: the core NN face-authentication block.

    Consumes the best detection's crop (resized to the NN input window)
    and answers "is this the enrolled user?".
    """

    def __init__(
        self,
        accelerator: SnnapAccelerator,
        platform: str = "asic",
        threshold: float = 0.5,
        mcu: MicrocontrollerModel = MCU_CORTEX_M0_CLASS,
    ):
        _check_platform(platform)
        self.platform = platform
        self.accelerator = accelerator
        self.threshold = threshold
        self._mcu = mcu
        input_side = int(np.sqrt(accelerator.model.layer_sizes[0]))
        if input_side * input_side != accelerator.model.layer_sizes[0]:
            raise ConfigurationError(
                f"NN input size {accelerator.model.layer_sizes[0]} is not square"
            )
        self.input_side = input_side

    def run(self, frame: np.ndarray, detection: Detection) -> tuple[bool, float, StageCost]:
        """Authenticate one detected face; returns (match, score, cost)."""
        crop = frame[
            detection.y0 : detection.y0 + detection.side,
            detection.x0 : detection.x0 + detection.side,
        ]
        window = resize_bilinear(crop, self.input_side, self.input_side)
        x = window.reshape(1, -1)
        run = self.accelerator.run(x)
        score = float(run.outputs[0, 0])
        match = score >= self.threshold
        if self.platform == "asic":
            cost = StageCost(
                run.energy_per_sample.total,
                run.seconds_per_sample(self.accelerator.energy_model.clock_hz),
            )
        else:
            model = self.accelerator.model
            report, seconds = self._mcu.run_op_mix(
                {
                    "mac8": float(model.n_macs()),
                    "sigmoid_sw": float(sum(model.layer_sizes[1:])),
                }
            )
            cost = StageCost(report.total, seconds)
        return match, score, cost
