"""The exploration engine: enumerate, evaluate (possibly in parallel),
collect.

``explore()`` is the one entry point both case studies share: it walks
a :class:`~repro.explore.scenario.Scenario`'s lazily enumerated design
space, evaluates every surviving configuration under the scenario's
cost model through a :class:`~repro.explore.executor.SweepExecutor`,
and returns an :class:`~repro.explore.result.ExplorationResult`. Row
order is the enumeration order regardless of worker count, so parallel
and serial runs are interchangeable.
"""

from __future__ import annotations

from functools import partial
from typing import Any

from repro.core.cost import ConfigCost, EnergyCost, EnergyCostModel
from repro.core.pipeline import PipelineConfig
from repro.explore.executor import SweepExecutor, resolve_executor
from repro.explore.result import ExplorationResult
from repro.explore.scenario import Scenario


def _evaluate_energy(
    model: EnergyCostModel,
    pass_rates: dict[str, float] | None,
    config: PipelineConfig,
) -> EnergyCost:
    """Module-level for process-pool picklability."""
    return model.evaluate(config, pass_rates)


def _base_row(config: PipelineConfig) -> dict[str, Any]:
    return {
        "config": config.label,
        "n_in_camera": config.n_in_camera,
        "platforms": "+".join(config.platforms) if config.platforms else "-",
        "offload_bytes": config.offload_bytes,
    }


def _throughput_row(cost: ConfigCost, target_fps: float | None) -> dict[str, Any]:
    row = _base_row(cost.config)
    row.update(
        compute_fps=cost.compute_fps,
        communication_fps=cost.communication_fps,
        total_fps=cost.total_fps,
        bottleneck=cost.bottleneck,
        slowest_block=cost.slowest_block,
        feasible=cost.meets(target_fps) if target_fps is not None else True,
    )
    return row


def _energy_row(cost: EnergyCost, budget_j: float | None) -> dict[str, Any]:
    row = _base_row(cost.config)
    row.update(
        sensor_energy_j=cost.sensor_energy,
        compute_energy_j=sum(cost.block_energies.values()),
        transmit_energy_j=cost.transmit_energy,
        total_energy_j=cost.total_energy,
        transmit_rate=cost.transmit_rate,
        active_seconds=cost.active_seconds,
        feasible=cost.total_energy <= budget_j if budget_j is not None else True,
    )
    return row


def explore(
    scenario: Scenario,
    executor: SweepExecutor | None = None,
) -> ExplorationResult:
    """Evaluate a scenario's whole (pruned) design space.

    Parameters
    ----------
    scenario:
        What to explore and under which cost domain.
    executor:
        How to run the evaluations; defaults to serial. Parallel
        executors return rows in the same order as serial ones.
    """
    executor = resolve_executor(executor)
    configs = list(scenario.iter_configs())
    model = scenario.cost_model()
    if scenario.domain == "throughput":
        evaluations = executor.map(model.evaluate, configs)
        rows = [_throughput_row(cost, scenario.target_fps) for cost in evaluations]
    else:
        evaluate = partial(_evaluate_energy, model, scenario.pass_rates)
        evaluations = executor.map(evaluate, configs)
        rows = [_energy_row(cost, scenario.energy_budget_j) for cost in evaluations]
    return ExplorationResult(scenario=scenario, rows=rows, evaluations=evaluations)
