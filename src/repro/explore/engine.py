"""The exploration engine: enumerate, evaluate (possibly in parallel),
collect.

``explore()`` is the one entry point both case studies share: it walks
a :class:`~repro.explore.scenario.Scenario`'s lazily enumerated design
space, evaluates every surviving configuration under the scenario's
cost model through a :class:`~repro.explore.executor.SweepExecutor`,
and returns an :class:`~repro.explore.result.ExplorationResult`. Row
order is the enumeration order regardless of worker count, so parallel
and serial runs are interchangeable.

The path is streaming end-to-end: configurations flow from the
enumerator into fixed-size chunks, each chunk is evaluated with a
chunk-local :class:`~repro.explore.incremental.PrefixEvaluator`
(amortized O(1) block extensions per configuration instead of
O(depth)), and chunks travel through the executor's ``imap`` with a
bounded in-flight window — nothing ever materializes the full
configuration list, so peak intermediate memory is set by the chunk
size, not the design-space size. For stock-model, unhooked runs (every
allocation the engine's own, all acyclic) the cyclic GC is paused while
results accumulate: bulk-appending millions of small cost objects
otherwise triggers quadratically many full collections over the growing
result. Runs involving user code (custom models, per-config prune
hooks) keep the GC live so user cycles stay collectable.

``explore_brute_force()`` keeps the pre-streaming semantics — eager
enumeration, from-scratch per-config evaluation, eager rows — as the
correctness oracle and benchmark baseline the memoized path is compared
against, byte for byte.
"""

from __future__ import annotations

import gc
import threading
from contextlib import contextmanager, nullcontext
from functools import partial
from itertools import islice
from typing import Any, Iterator

from repro.core.cost import EnergyCost, EnergyCostModel
from repro.core.pipeline import PipelineConfig
from repro.errors import ConfigurationError
from repro.explore.executor import (
    SweepExecutor,
    auto_chunk_size,
    resolve_executor,
)
from repro.explore.incremental import (
    PrefixEvaluator,
    evaluate_chunk,
    supports_prefix_evaluation,
)
from repro.explore.result import ExplorationResult, cost_row
from repro.explore.scenario import Scenario
from repro.explore.sink import (
    resolve_sink,
    sink_stream,
    uses_columnar_writes,
    write_sink_batch,
)
from repro.explore.vectorized import (
    BatchPrefixEvaluator,
    iter_scenario_shards,
    supports_batch_evaluation,
    uses_stock_batch_semantics,
)

#: Valid values of the ``evaluation=`` knob on :func:`explore` and
#: :func:`iter_evaluation_chunks`: ``"auto"`` picks the fastest
#: applicable path, ``"batch"`` requires the columnar path (raising for
#: models that cannot take it), ``"scalar"`` forces the scalar fold.
EVALUATION_MODES = ("auto", "batch", "scalar")

#: Configurations per streamed chunk when neither the caller nor the
#: executor pins one. Large enough to amortize chunk setup (one cold
#: prefix walk per chunk) to noise, small enough that the in-flight
#: window stays a few thousand configurations.
DEFAULT_CHUNK_SIZE = 1024

_gc_pause_lock = threading.Lock()
_gc_pause_depth = 0
_gc_pause_restore = False


@contextmanager
def _gc_paused():
    """Disable the cyclic GC for a bulk-allocation region (reentrant).

    Refcounting still reclaims everything the engine allocates (cost
    objects are acyclic); only cycle detection is deferred. The previous
    state is restored when the last active region exits — also across
    threads — so callers who run with GC disabled are left untouched.
    """
    global _gc_pause_depth, _gc_pause_restore
    with _gc_pause_lock:
        if _gc_pause_depth == 0:
            _gc_pause_restore = gc.isenabled()
            if _gc_pause_restore:
                gc.disable()
        _gc_pause_depth += 1
    try:
        yield
    finally:
        with _gc_pause_lock:
            _gc_pause_depth -= 1
            if _gc_pause_depth == 0 and _gc_pause_restore:
                gc.enable()


def _evaluate_scratch(
    model: Any, pass_rates: dict[str, float] | None, config: PipelineConfig
) -> Any:
    """From-scratch single-config evaluation (module-level for
    process-pool picklability); the fallback for models that override
    ``evaluate()`` and are therefore ineligible for prefix memoization."""
    if isinstance(model, EnergyCostModel):
        return model.evaluate(config, pass_rates)
    return model.evaluate(config)


def _chunked(iterator: Iterator[Any], size: int) -> Iterator[list[Any]]:
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


def _check_evaluation_mode(evaluation: str, model: Any) -> None:
    """Validate the ``evaluation=`` knob (shared by the entry points)."""
    if evaluation not in EVALUATION_MODES:
        raise ConfigurationError(
            f"evaluation must be one of {EVALUATION_MODES}, got {evaluation!r}"
        )
    if evaluation == "batch" and not supports_batch_evaluation(model):
        raise ConfigurationError(
            "evaluation='batch' requires a batch-capable cost model "
            "(stock evaluate() and matched scalar/batch cost steps, with "
            "numpy importable) — none of the columnar paths (batch-cohort, "
            "batch-cohort-pruned, batch-shard, batch-chunk) can run this "
            "model; use evaluation='auto' to fall back to the scalar "
            "paths (scalar-memoized / scalar-scratch)"
        )


def iter_evaluation_chunks(
    model: Any,
    configs: Iterator[PipelineConfig],
    executor: SweepExecutor | None = None,
    pass_rates: dict[str, float] | None = None,
    chunk_size: int | None = None,
    approx_total: int | None = None,
    evaluation: str = "auto",
    scenario: Scenario | None = None,
) -> Iterator[list[Any]]:
    """Stream cost objects for a configuration iterable, as ordered
    chunk lists (the collection loop extends at C speed).

    The shared evaluation pipe under :func:`explore` and the
    ``core.offload`` facade: configurations are consumed lazily in
    chunks, each chunk evaluated columnar-batch when the model supports
    it (prefix-memoized otherwise, from scratch for models that
    override ``evaluate()``), chunks flow through the executor's
    bounded-window ``imap``. ``approx_total`` (when known) sizes chunks
    for parallel executors the way ``map`` would — about four chunks
    per worker — so small spaces still spread across workers.
    ``evaluation`` picks the path (see :data:`EVALUATION_MODES`); all
    paths produce bit-identical costs.

    ``scenario`` (when given) enables the shard mode on parallel
    executors with stock-semantics models: instead of pickling config
    chunks, the stream ships compact
    :class:`~repro.explore.vectorized.CohortShard` descriptors that
    workers decode and fold locally — ``configs`` is then ignored, as
    the shards re-derive the same enumeration (identical order and
    values).
    """
    executor = resolve_executor(executor)
    _check_evaluation_mode(evaluation, model)
    if chunk_size is not None and chunk_size < 1:
        # islice(iterator, 0) would silently end the stream after zero
        # configurations; mirror SweepExecutor's field validation.
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    size = chunk_size if chunk_size is not None else executor.chunk_size
    if size is None:
        if approx_total is not None and not executor.is_serial:
            size = auto_chunk_size(approx_total, executor.workers, DEFAULT_CHUNK_SIZE)
        else:
            size = DEFAULT_CHUNK_SIZE
    allow_batch = evaluation != "scalar"
    if scenario is not None and _shard_eligible(scenario, model, executor, evaluation):
        chunk_fn = partial(evaluate_chunk, model, pass_rates, allow_batch=allow_batch)
        shards = iter_scenario_shards(scenario, size)
        return executor.imap(chunk_fn, shards, chunk_size=1)
    chunks = _chunked(iter(configs), size)
    if executor.is_serial and supports_prefix_evaluation(model):
        # Serial fast path: one evaluator spans the whole stream (no
        # per-chunk cold restarts, no pool plumbing). Values are
        # identical to the chunk-local path — memoization only reuses
        # states a from-scratch walk would recompute bit-for-bit, and
        # the columnar fold performs the same operations elementwise.
        if allow_batch and supports_batch_evaluation(model):
            batch_evaluator = BatchPrefixEvaluator(model, pass_rates)
            return (batch_evaluator.evaluate_many(chunk) for chunk in chunks)
        evaluator = PrefixEvaluator(model, pass_rates)
        return (evaluator.evaluate_many(chunk) for chunk in chunks)
    if supports_prefix_evaluation(model):
        chunk_fn = partial(evaluate_chunk, model, pass_rates, allow_batch=allow_batch)
    else:
        scratch = partial(_evaluate_scratch, model, pass_rates)
        chunk_fn = partial(_run_scratch_chunk, scratch)
    return executor.imap(chunk_fn, chunks, chunk_size=1)


def iter_evaluations(
    model: Any,
    configs: Iterator[PipelineConfig],
    executor: SweepExecutor | None = None,
    pass_rates: dict[str, float] | None = None,
    chunk_size: int | None = None,
    approx_total: int | None = None,
) -> Iterator[Any]:
    """Flattened :func:`iter_evaluation_chunks`: one cost per config,
    in configuration order."""
    for costs in iter_evaluation_chunks(
        model, configs, executor, pass_rates, chunk_size, approx_total
    ):
        yield from costs


def _run_scratch_chunk(evaluate: Any, configs: list[PipelineConfig]) -> list[Any]:
    """Evaluate one chunk without memoization (module-level, picklable)."""
    return [evaluate(config) for config in configs]


def evaluation_path(
    scenario: Scenario,
    executor: SweepExecutor | None = None,
    evaluation: str = "auto",
    dedup: bool | str = False,
) -> str:
    """The evaluation path :func:`explore` would take for this call:

    - ``"batch-cohort"`` — serial, whole depth cohorts as columnar
      arrays with lazily materialized rows;
    - ``"batch-cohort-pruned"`` — the same cohort walk with the
      scenario's pruning fused in (prefix bounds as boolean-mask
      compaction, per-config hooks as an emission-time filter);
    - ``"batch-shard"`` — parallel, workers receive compact
      :class:`~repro.explore.vectorized.CohortShard` descriptors and
      regenerate state columns locally (nothing per-row is pickled);
    - ``"batch-chunk"`` — columnar folds per pickled config chunk (the
      parallel fallback for batch-capable models off the stock shapes);
    - ``"scalar-memoized"`` — the scalar prefix walk;
    - ``"scalar-scratch"`` — per-config ``evaluate()`` for models that
      override it.

    Pass the campaign's ``dedup`` argument to report the path the
    scenario takes *inside* a ``Campaign.run(dedup=...)`` instead:

    - ``"batch-dedup"`` — the scenario is campaign-dedupable (it has a
      :func:`~repro.explore.campaign.scenario_compute_key`) and batch
      capable: group members close shared columnar states under a
      multi-link broadcast finalize and hand consumers lazy
      :class:`~repro.explore.vectorized.BatchRows` views.

    A dedupable scenario falls back to the solo paths above whenever
    dedup is off/``"materialize"``, ``evaluation="scalar"`` is forced,
    or the model cannot batch (then shared states are finalized and
    materialized per member, the scalar dedup walk).

    Purely informational, for self-describing perf repros; raises
    exactly like :func:`explore` for an invalid or unsatisfiable
    ``evaluation=``.
    """
    model = scenario.cost_model()
    _check_evaluation_mode(evaluation, model)
    resolved = resolve_executor(executor)
    if dedup not in (False, "materialize") and evaluation != "scalar":
        # Imported here: campaign builds on the engine, not vice versa.
        from repro.explore.campaign import scenario_compute_key

        if scenario_compute_key(scenario) is not None and supports_batch_evaluation(
            model
        ):
            return "batch-dedup"
    if _cohort_eligible(scenario, model, resolved, evaluation):
        if scenario.prune is not None or scenario.prefix_pruner() is not None:
            return "batch-cohort-pruned"
        return "batch-cohort"
    if _shard_eligible(scenario, model, resolved, evaluation):
        return "batch-shard"
    if evaluation != "scalar" and supports_batch_evaluation(model):
        return "batch-chunk"
    if supports_prefix_evaluation(model):
        return "scalar-memoized"
    return "scalar-scratch"


def _pruning_batch_ready(scenario: Scenario) -> bool:
    """Whether the scenario's config-level filters can ride the fused
    columnar walks: per-config hooks always can (they run as scalar
    emission-time filters over compacted cohorts / driver-side shard
    filters), a prefix pruner only through its batch form."""
    pruner = scenario.prefix_pruner()
    return pruner is None or pruner.batch_capable


def _cohort_eligible(
    scenario: Scenario, model: Any, executor: SweepExecutor, evaluation: str
) -> bool:
    """Whether :func:`explore` may stream whole depth cohorts as
    columnar batches: serial run and fully stock batch semantics (the
    cohort walk replicates state arrays, so it must know their layout).
    Depth pruning composes with cohorts; prefix pruners fuse in as
    mask compaction when they carry batch forms (both auto-derived
    pruners do), and per-config hooks filter compacted cohorts at
    emission time."""
    return (
        evaluation != "scalar"
        and executor.is_serial
        and uses_stock_batch_semantics(model)
        and _pruning_batch_ready(scenario)
    )


def _shard_eligible(
    scenario: Scenario, model: Any, executor: SweepExecutor, evaluation: str
) -> bool:
    """Whether a parallel run may ship
    :class:`~repro.explore.vectorized.CohortShard` descriptors instead
    of pickled config chunks: parallel executor and fully stock batch
    semantics (workers regenerate stock-shaped state columns), with any
    pruning batch-ready — the driver resolves pruner masks and hooks
    into explicit survivor indices, so workers never see either."""
    return (
        evaluation != "scalar"
        and not executor.is_serial
        and uses_stock_batch_semantics(model)
        and _pruning_batch_ready(scenario)
    )


def explore(
    scenario: Scenario,
    executor: SweepExecutor | None = None,
    chunk_size: int | None = None,
    *,
    sink: Any = None,
    collect: bool = True,
    collect_on_exit: bool = False,
    evaluation: str = "auto",
) -> ExplorationResult | None:
    """Evaluate a scenario's whole (pruned) design space.

    Parameters
    ----------
    scenario:
        What to explore and under which cost domain.
    executor:
        How to run the evaluations; defaults to serial. Parallel
        executors return rows in the same order as serial ones.
    chunk_size:
        Configurations per streamed chunk (default: the executor's
        ``chunk_size``, else :data:`DEFAULT_CHUNK_SIZE` sized down for
        small spaces on parallel executors). Peak intermediate memory
        is proportional to this, never to the design-space size.
    sink:
        Optional :class:`~repro.explore.sink.ResultSink`: report rows
        are streamed to it chunk by chunk, in enumeration order, as
        evaluations complete. The sink is opened before the first chunk
        and closed on exit — also on error. Sink failures raise
        :class:`~repro.errors.SinkError` with the scenario named.
    collect:
        With ``collect=False`` (requires a sink) the engine never
        accumulates evaluations and returns None: an export-only run's
        peak memory is set by the chunk window, not the design-space
        size. The default keeps the full :class:`ExplorationResult`.
        Frontier questions survive export-only runs through a
        :class:`~repro.explore.sink.ParetoSink` (an online
        dominance-pruned frontier, identical to the collected
        ``result.pareto()``).
    collect_on_exit:
        Run the cyclic GC pass deferred by the bulk-accumulation pause
        before returning, instead of letting it land on the caller's
        next allocation (useful when a huge ``explore()`` is followed
        by latency-sensitive work).
    evaluation:
        ``"auto"`` (default) rides the columnar batch path whenever the
        model supports it — serial stock runs stream whole depth
        cohorts with lazily materialized rows (pruning included: prefix
        bounds fuse in as mask compaction, per-config hooks as
        emission-time filters), parallel stock runs ship
        :class:`~repro.explore.vectorized.CohortShard` descriptors that
        workers fold locally, and batch-capable models off the stock
        shapes fold pickled chunks columnar — falling back to the
        scalar prefix walk for custom models. ``"batch"`` requires a
        batch path (raising :class:`ConfigurationError` when the model
        cannot take one); ``"scalar"`` forces the scalar fold. Every
        path produces bit-identical results (:func:`evaluation_path`
        reports which one runs).
    """
    sink = resolve_sink(sink)
    if not collect and sink is None:
        raise ConfigurationError(
            "collect=False discards every evaluation; pass sink= to "
            "stream rows somewhere (or drop collect=False)"
        )
    model = scenario.cost_model()
    _check_evaluation_mode(evaluation, model)
    # Pause the cyclic GC only when every allocation in the loop is the
    # engine's own (stock model, no per-config user hooks, no sink):
    # those objects are acyclic, so pausing changes wall-time only.
    # Custom models / prune hooks / sinks may build cycles, which must
    # stay collectable over a multi-million-config run (the auto-derived
    # pruners are engine-owned and acyclic, so they keep the pause).
    pause = (
        supports_prefix_evaluation(model)
        and scenario.prune is None
        and sink is None
    )
    label = f"scenario {scenario.name!r}"
    resolved = resolve_executor(executor)
    if _cohort_eligible(scenario, model, resolved, evaluation):
        size = chunk_size if chunk_size is not None else resolved.chunk_size
        if size is not None and size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {size}")
        return _explore_cohorts(
            scenario, model, size, sink, collect, collect_on_exit, pause, label
        )
    evaluations: list[Any] = []
    # Sink rows are built per chunk and dropped after the write — NOT
    # cached on the result. Keeping them would double-hold a row list
    # next to the evaluation list for the whole run (the bounded-memory
    # invariant ExplorationResult's lazy rows exist to protect); the
    # price is one lazy re-derivation if .rows is later accessed.
    with sink_stream(sink, scenario, label) as write:
        with _gc_paused() if pause else nullcontext():
            for costs in iter_evaluation_chunks(
                model,
                scenario.iter_configs(),
                executor=executor,
                pass_rates=scenario.pass_rates,
                chunk_size=chunk_size,
                approx_total=scenario.count_configs(),
                evaluation=evaluation,
                scenario=scenario,
            ):
                if collect:
                    evaluations.extend(costs)
                if write is not None:
                    write([cost_row(scenario, cost) for cost in costs])
    if collect_on_exit:
        gc.collect()
    if not collect:
        return None
    return ExplorationResult(scenario=scenario, evaluations=evaluations)


def _explore_cohorts(
    scenario: Scenario,
    model: Any,
    chunk_size: int | None,
    sink: Any,
    collect: bool,
    collect_on_exit: bool,
    pause: bool,
    label: str,
) -> ExplorationResult | None:
    """The serial columnar fast path of :func:`explore`: stream whole
    depth cohorts as :class:`~repro.explore.vectorized.BatchRows`.

    With ``collect=True`` every cohort is materialized in bulk (the
    result must hold all evaluations anyway); with ``collect=False``
    nothing is materialized except what the sink touches. Columnar
    sinks (``ParetoSink``/``TopKSink`` — anything overriding
    ``write_batch``) receive the lazy batch views directly and
    materialize only surviving rows, so live cost objects stay bounded
    by the survivor count, not the design-space size. Row-only sinks
    keep the streaming contract exactly: rows are buffered across
    cohort boundaries and written once per ``chunk_size`` rows, in
    enumeration order — byte-identical writes, same write count, same
    bounded peak, as the scalar chunk path.
    """
    evaluator = BatchPrefixEvaluator(model, scenario.pass_rates)
    evaluations: list[Any] = []
    columnar = sink is not None and uses_columnar_writes(sink)
    pending: list[dict[str, Any]] = []  # row buffer for row-only sinks
    with sink_stream(sink, scenario, label) as write:
        with _gc_paused() if pause else nullcontext():
            for batch in evaluator.iter_scenario_batches(scenario, chunk_size):
                if collect:
                    costs = batch.costs()
                    evaluations.extend(costs)
                    if write is not None and not columnar:
                        pending.extend(cost_row(scenario, cost) for cost in costs)
                elif write is not None and not columnar:
                    pending.extend(batch.rows())
                if write is None:
                    continue
                if columnar:
                    write_sink_batch(sink, batch, label)
                elif chunk_size is not None:
                    while len(pending) >= chunk_size:
                        write(pending[:chunk_size])
                        del pending[:chunk_size]
                elif pending:
                    # No pinned chunk size: one write per depth cohort.
                    write(pending)
                    pending.clear()
            if write is not None and not columnar and pending:
                write(pending)
    if collect_on_exit:
        gc.collect()
    if not collect:
        return None
    return ExplorationResult(scenario=scenario, evaluations=evaluations)


def _brute_force_throughput(model: Any, config: PipelineConfig) -> Any:
    """The seed's from-scratch throughput evaluation, kept verbatim."""
    from repro.core.cost import ConfigCost

    compute_fps = float("inf")
    slowest = "none"
    for block, impl in config.in_camera_blocks():
        if impl.fps < compute_fps:
            compute_fps = impl.fps
            slowest = f"{block.name}({impl.platform})"
    return ConfigCost(
        config=config,
        compute_fps=compute_fps,
        communication_fps=model.link.fps_for_bytes(config.offload_bytes),
        slowest_block=slowest,
    )


def _brute_force_energy(
    model: Any, pass_rates: dict[str, float] | None, config: PipelineConfig
) -> EnergyCost:
    """The seed's from-scratch energy evaluation, kept verbatim."""
    from repro.errors import PipelineError

    rate = 1.0
    block_energies: dict[str, float] = {}
    active = 0.0
    for block, impl in config.in_camera_blocks():
        block_energies[block.name] = rate * impl.energy_per_frame
        active += rate * impl.active_seconds
        block_rate = (
            pass_rates.get(block.name, block.pass_rate)
            if pass_rates is not None
            else block.pass_rate
        )
        if not 0.0 <= block_rate <= 1.0:
            raise PipelineError(
                f"pass rate for {block.name!r} must be in [0,1], got {block_rate}"
            )
        rate *= block_rate
    tx_energy = rate * model.link.tx_energy_for_bytes(config.offload_bytes)
    active += rate * model.link.seconds_for_bytes(config.offload_bytes)
    return EnergyCost(
        config=config,
        sensor_energy=config.pipeline.sensor_energy_per_frame,
        block_energies=block_energies,
        transmit_energy=tx_energy,
        transmit_rate=rate,
        active_seconds=active,
    )


def explore_brute_force(scenario: Scenario) -> ExplorationResult:
    """The pre-streaming engine, kept as oracle and baseline.

    Replicates what ``explore()`` did before the prefix-memoized
    streaming path landed: materializes the full configuration list
    through the validating :class:`PipelineConfig` constructor,
    evaluates every configuration from block 0 with the seed's
    evaluation loops through the public (validating, unslotted-speed)
    dataclass constructors, and builds all rows eagerly. Tests assert
    the streaming engine reproduces this byte for byte; the scaling
    benchmark measures how much faster the streaming engine is. The
    per-block float operations are the exact sequence the incremental
    path replays, which is why bit-identity holds.
    """
    model = scenario.cost_model()
    configs = [
        PipelineConfig(pipeline=config.pipeline, platforms=config.platforms)
        for config in scenario.iter_configs()
    ]
    custom = not supports_prefix_evaluation(model)
    if scenario.domain == "throughput":
        if custom:
            evaluations = [model.evaluate(config) for config in configs]
        else:
            evaluations = [_brute_force_throughput(model, config) for config in configs]
    elif custom:
        evaluations = [
            model.evaluate(config, scenario.pass_rates) for config in configs
        ]
    else:
        evaluations = [
            _brute_force_energy(model, scenario.pass_rates, config)
            for config in configs
        ]
    rows = [cost_row(scenario, cost) for cost in evaluations]
    return ExplorationResult(scenario=scenario, rows=rows, evaluations=evaluations)
