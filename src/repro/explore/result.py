"""Exploration results: feasibility, Pareto frontiers, ranking, export.

An :class:`ExplorationResult` holds one cost object per evaluated
configuration and answers the questions the paper asks of Figure 10 —
which configurations are feasible, which are optimal, and which are
*dominated* (beaten on every axis by another configuration and
therefore never worth building).

Rows (plain dicts, like :class:`repro.core.sweep.SweepResult` rows) are
a *derived view* over the evaluations: they are built lazily on first
access to :attr:`ExplorationResult.rows` and cached, while the export
paths (:meth:`to_csv` / :meth:`to_json` / :meth:`to_table`) stream rows
via :meth:`iter_rows` without forcing the cache — a million-config
result never double-holds a row list next to its evaluation list just
to be written to disk.
"""

from __future__ import annotations

import heapq
import json
import math
from typing import TYPE_CHECKING, Any, Iterator, Sequence

try:  # numpy backs the columnar batch fast paths; scalar folds never need it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from repro.core.cost import ConfigCost, EnergyCost
from repro.core.report import TextTable
from repro.errors import ConfigurationError, PipelineError

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.core.offload import OffloadReport
    from repro.core.sweep import SweepResult
    from repro.explore.scenario import Scenario

#: Default Pareto axes per domain: (axes, maximize).
DEFAULT_AXES: dict[str, tuple[tuple[str, ...], bool]] = {
    "throughput": (("compute_fps", "communication_fps"), True),
    "energy": (("total_energy_j", "active_seconds"), False),
}


def require_key(rows: Sequence[dict[str, Any]], key: str, kind: str = "metric") -> None:
    """Raise ConfigurationError naming the rows where ``key`` is absent
    (shared by SweepResult and ExplorationResult lookups)."""
    missing = [i for i, row in enumerate(rows) if key not in row]
    if missing:
        raise ConfigurationError(f"{kind} {key!r} missing in rows {missing[:5]}")


def json_safe_value(value: Any) -> Any:
    """Map non-finite floats to the strings ``"inf"``/``"-inf"``/``"nan"``.

    The one JSON-value mapping shared by :meth:`ExplorationResult.to_json`
    and the streaming :class:`repro.explore.sink.JsonlSink`, so a row
    serialized by either path is byte-identical to the other.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return "nan" if math.isnan(value) else ("inf" if value > 0 else "-inf")
    return value


def _base_row(config) -> dict[str, Any]:
    return {
        "config": config.label,
        "n_in_camera": config.n_in_camera,
        "platforms": "+".join(config.platforms) if config.platforms else "-",
        "offload_bytes": config.offload_bytes,
    }


def _throughput_row(cost: ConfigCost, target_fps: float | None) -> dict[str, Any]:
    row = _base_row(cost.config)
    row.update(
        compute_fps=cost.compute_fps,
        communication_fps=cost.communication_fps,
        total_fps=cost.total_fps,
        bottleneck=cost.bottleneck,
        slowest_block=cost.slowest_block,
        feasible=cost.meets(target_fps) if target_fps is not None else True,
    )
    return row


def _energy_row(cost: EnergyCost, budget_j: float | None) -> dict[str, Any]:
    row = _base_row(cost.config)
    row.update(
        sensor_energy_j=cost.sensor_energy,
        compute_energy_j=sum(cost.block_energies.values()),
        transmit_energy_j=cost.transmit_energy,
        total_energy_j=cost.total_energy,
        transmit_rate=cost.transmit_rate,
        active_seconds=cost.active_seconds,
        feasible=cost.total_energy <= budget_j if budget_j is not None else True,
    )
    return row


def cost_row(scenario: "Scenario", cost: Any) -> dict[str, Any]:
    """The report row of one cost object under a scenario's verdicts."""
    if scenario.domain == "throughput":
        return _throughput_row(cost, scenario.target_fps)
    return _energy_row(cost, scenario.energy_budget_j)


def best_row(
    rows: Sequence[dict[str, Any]], metric: str, maximize: bool = True
) -> dict[str, Any]:
    """The optimal row by one metric, ties to the earliest row.

    This is *the* tie rule of the whole stack — ``max``/``min`` return
    the first element attaining the optimum, so among equal-metric rows
    the earliest-enumerated configuration wins. Exposed as a function so
    layers that re-rank row subsets (the joint-fleet candidate
    reduction in :mod:`repro.explore.joint`) provably share the rule
    with :attr:`ExplorationResult.best` instead of re-encoding it.
    """
    if not rows:
        raise PipelineError(f"no rows to rank by {metric!r}")
    if maximize:
        return max(rows, key=lambda r: r[metric])
    return min(rows, key=lambda r: r[metric])


class ExplorationResult:
    """Every evaluated configuration of one scenario, with verdicts.

    ``rows`` and ``evaluations`` are index-aligned: ``evaluations[i]``
    is the :class:`~repro.core.cost.ConfigCost` or
    :class:`~repro.core.cost.EnergyCost` behind ``rows[i]``. Rows are
    derived from the evaluations on first access (assigning ``rows``
    replaces the derived view, which keeps ad-hoc post-processing
    working).
    """

    def __init__(
        self,
        scenario: "Scenario",
        rows: list[dict[str, Any]] | None = None,
        evaluations: list[Any] | None = None,
    ):
        self.scenario = scenario
        self.evaluations = [] if evaluations is None else evaluations
        self._rows = rows

    @property
    def rows(self) -> list[dict[str, Any]]:
        """One report row per evaluation (derived lazily, then cached)."""
        if self._rows is None:
            scenario = self.scenario
            self._rows = [cost_row(scenario, cost) for cost in self.evaluations]
        return self._rows

    @rows.setter
    def rows(self, value: list[dict[str, Any]]) -> None:
        self._rows = value

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Stream rows without materializing the cache (export path);
        serves the cached/assigned rows when they already exist."""
        if self._rows is not None:
            yield from self._rows
            return
        scenario = self.scenario
        for cost in self.evaluations:
            yield cost_row(scenario, cost)

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return len(self.evaluations)

    @property
    def feasible(self) -> list[dict[str, Any]]:
        """Rows clearing the scenario's target (all rows if untargeted)."""
        return [row for row in self.rows if row["feasible"]]

    @property
    def best(self) -> dict[str, Any]:
        """The optimal row for the domain: highest total FPS
        (throughput) or lowest expected energy (energy). Ties break to
        the earliest-enumerated configuration."""
        if not self.rows:
            raise PipelineError("no configurations evaluated")
        if self.scenario.domain == "throughput":
            return best_row(self.rows, "total_fps")
        return best_row(self.rows, "total_energy_j", maximize=False)

    def pareto(
        self,
        axes: Sequence[str] | None = None,
        maximize: bool | Sequence[bool] | None = None,
    ) -> list[dict[str, Any]]:
        """Non-dominated rows; defaults to the domain's canonical axes
        ((compute_fps, communication_fps) maximized for throughput,
        (total_energy_j, active_seconds) minimized for energy).

        ``maximize=None`` always means the domain's direction — also for
        explicitly passed ``axes`` — so an energy-domain frontier never
        silently flips to maximization."""
        default_axes, default_flag = DEFAULT_AXES[self.scenario.domain]
        if axes is None:
            axes = default_axes
        if maximize is None:
            maximize = default_flag
        return pareto_filter(self.rows, axes, maximize)

    def dominated(
        self,
        axes: Sequence[str] | None = None,
        maximize: bool | Sequence[bool] | None = None,
    ) -> list[dict[str, Any]]:
        """The complement of :meth:`pareto`: configs never worth building."""
        frontier = {id(row) for row in self.pareto(axes, maximize)}
        return [row for row in self.rows if id(row) not in frontier]

    def top_k(
        self, metric: str, k: int = 5, maximize: bool = True
    ) -> list[dict[str, Any]]:
        """The best ``k`` rows by one metric (stable: ties keep
        enumeration order)."""
        if k < 0:
            raise ConfigurationError(f"k must be >= 0, got {k}")
        require_key(self.rows, metric)
        # Stable also under reverse=True, so ties keep enumeration order
        # in both directions; works for any orderable metric type.
        ordered = sorted(self.rows, key=lambda r: r[metric], reverse=maximize)
        return ordered[:k]

    # -- export ---------------------------------------------------------

    def columns(self) -> list[str]:
        """Union of row keys, in first-appearance order."""
        cols: dict[str, None] = {}
        for row in self.iter_rows():
            for key in row:
                cols.setdefault(key)
            if self._rows is None:
                # Derived rows are homogeneous per domain; one suffices.
                break
        return list(cols)

    def to_table(self, title: str | None = None) -> TextTable:
        """The result as a :class:`~repro.core.report.TextTable`."""
        table = TextTable(self.columns(), title=title or self.scenario.name)
        table.add_rows(self.iter_rows())
        return table

    def to_csv(self, path: str | None = None) -> str:
        """CSV export (via :meth:`TextTable.to_csv`); optionally written
        to ``path``."""
        text = self.to_table().to_csv()
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    def to_json(self, path: str | None = None) -> str:
        """Full-precision JSON export of scenario name, domain and rows.

        Strictly valid JSON: non-finite floats (``inf`` compute rates on
        the raw-offload config, ``nan``) become the strings ``"inf"`` /
        ``"-inf"`` / ``"nan"`` rather than the non-standard ``Infinity``
        tokens ``json.dumps`` would otherwise emit."""
        text = json.dumps(
            {
                "scenario": self.scenario.name,
                "domain": self.scenario.domain,
                "rows": [
                    {key: json_safe_value(val) for key, val in row.items()}
                    for row in self.iter_rows()
                ],
            },
            indent=2,
            allow_nan=False,
        )
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    # -- backward-compatible adapters -----------------------------------

    def as_sweep_result(self) -> "SweepResult":
        """The rows as a legacy :class:`~repro.core.sweep.SweepResult`."""
        from repro.core.sweep import SweepResult

        return SweepResult(rows=list(self.rows))

    def as_offload_report(self) -> "OffloadReport":
        """The evaluations as a legacy
        :class:`~repro.core.offload.OffloadReport` (throughput domain
        only — the report's feasibility semantics are FPS-based)."""
        from repro.core.offload import OffloadReport

        if self.scenario.domain != "throughput":
            raise PipelineError(
                "OffloadReport is throughput-domain only; "
                f"this result is {self.scenario.domain!r}"
            )
        target = self.scenario.target_fps
        if target is None:
            raise PipelineError(
                "scenario has no target_fps; OffloadReport needs one"
            )
        return OffloadReport(costs=list(self.evaluations), target_fps=target)


class ParetoFrontier:
    """An online dominance-pruned Pareto frontier over streamed rows.

    The batch :func:`pareto_filter` needs every row at once; this class
    maintains the frontier *incrementally* — :meth:`add` folds one chunk
    of rows into the current non-dominated set — so ``pareto`` /
    ``pareto_size`` stay available on export-only (``collect=False``)
    runs whose rows were never retained. The maintained set is exactly
    what :func:`pareto_filter` would return over all rows seen so far,
    in the same (first-seen) order: dominance is transitive, so a row
    dominated by *any* earlier row is dominated by some current frontier
    member, and a row dominated by a *later* row is evicted when that
    row arrives. Tests assert the streamed frontier equals the collected
    one exactly.

    Same semantics as :func:`pareto_filter`: a row survives unless some
    other row beats it on every axis and strictly on at least one (per
    the ``maximize`` flags); exact ties all survive; missing or NaN axis
    values raise :class:`ConfigurationError` naming the offending row's
    stream position.
    """

    def __init__(
        self, axes: Sequence[str], maximize: bool | Sequence[bool] = True
    ):
        if not axes:
            raise ConfigurationError("pareto needs at least one axis")
        flags = (
            [maximize] * len(axes) if isinstance(maximize, bool) else list(maximize)
        )
        if len(flags) != len(axes):
            raise ConfigurationError(
                f"got {len(axes)} axes but {len(flags)} maximize flags"
            )
        self._axes = tuple(axes)
        self._flags = tuple(flags)
        self.n_seen = 0
        #: Parallel lists: frontier rows in first-seen order and their
        #: sign-normalized axis keys (all axes maximized).
        self._rows: list[dict[str, Any]] = []
        self._keys: list[list[float]] = []

    def _key(self, row: dict[str, Any], position: int) -> list[float]:
        key = []
        for axis, flag in zip(self._axes, self._flags):
            if axis not in row:
                raise ConfigurationError(f"axis {axis!r} missing in row {position}")
            value = row[axis]
            if isinstance(value, float) and math.isnan(value):
                raise ConfigurationError(f"axis {axis!r} is NaN in row {position}")
            key.append(value if flag else -value)
        return key

    def add(self, rows: Sequence[dict[str, Any]]) -> None:
        """Fold one chunk of rows into the frontier (stream order)."""
        n_axes = len(self._axes)
        frontier_rows = self._rows
        frontier_keys = self._keys
        for row in rows:
            mine = self._key(row, self.n_seen)
            self.n_seen += 1
            dominated = False
            evicted: list[int] = []
            for index, other in enumerate(frontier_keys):
                if all(other[d] >= mine[d] for d in range(n_axes)) and any(
                    other[d] > mine[d] for d in range(n_axes)
                ):
                    dominated = True
                    break
                if all(mine[d] >= other[d] for d in range(n_axes)) and any(
                    mine[d] > other[d] for d in range(n_axes)
                ):
                    evicted.append(index)
            if dominated:
                continue
            for index in reversed(evicted):
                del frontier_rows[index]
                del frontier_keys[index]
            frontier_rows.append(row)
            frontier_keys.append(mine)

    def add_batch(self, batch: Any) -> None:
        """Fold one columnar :class:`~repro.explore.vectorized.BatchRows`
        view into the frontier, materializing only surviving rows.
        Batches are member-tagged (campaign dedup members fold views of
        group-shared states tagged with their own scenario), so
        survivors materialize exactly as the member's solo rows.

        Semantically identical to ``add(batch.rows())`` — same frontier,
        same ``n_seen`` positions in every error message — but rows
        dominated by the frontier as of the batch start are rejected in
        one vectorized dominance pass without ever becoming dicts
        (sound by transitivity: a frontier member is only ever evicted
        by a row that dominates it, so a candidate dominated at batch
        start stays dominated). Candidates that pass the prefilter fold
        through the scalar :meth:`add`, which re-checks them against the
        *current* frontier, including earlier survivors of this batch.

        Falls back to the row path when numpy is unavailable or an axis
        is not columnar (:meth:`BatchRows.metric_column` raises
        ``KeyError``).
        """
        if _np is None:
            self.add(batch.rows())
            return
        m = len(batch)
        if m == 0:
            return
        try:
            columns = [batch.metric_column(axis) for axis in self._axes]
        except KeyError:
            self.add(batch.rows())
            return
        keys = []
        for column, flag in zip(columns, self._flags):
            column = _np.asarray(column, dtype=float)
            keys.append(column if flag else -column)
        # NaN axis values raise positionally in the scalar fold; limit
        # the vectorized pass to the rows before the first NaN and let
        # add() produce the exact error for the offender.
        bad = _np.zeros(m, dtype=bool)
        for key in keys:
            bad |= _np.isnan(key)
        limit = int(_np.argmax(bad)) if bad.any() else m
        base = self.n_seen
        survivors = _np.ones(limit, dtype=bool)
        if self._keys and limit:
            frontier = _np.array(self._keys, dtype=float)  # (n_front, axes)
            candidates = _np.stack([key[:limit] for key in keys], axis=1)
            # Chunk the (n_front, block, axes) broadcast to ~4M elements.
            step = max(1, 4_000_000 // (frontier.shape[0] * frontier.shape[1]))
            for lo in range(0, limit, step):
                block = candidates[lo : lo + step]
                geq = frontier[:, None, :] >= block[None, :, :]
                gt = frontier[:, None, :] > block[None, :, :]
                dominated = (geq.all(axis=2) & gt.any(axis=2)).any(axis=0)
                survivors[lo : lo + step] = ~dominated
        for idx in _np.nonzero(survivors)[0].tolist():
            self.n_seen = base + idx  # add() restores idx+1 itself
            self.add([batch.row(idx)])
        self.n_seen = base + limit
        for i in range(limit, m):
            self.add([batch.row(i)])  # first iteration raises on the NaN

    @property
    def rows(self) -> list[dict[str, Any]]:
        """The current non-dominated rows, in first-seen order."""
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


class TopK:
    """A bounded online top-k ranking over streamed rows — the ranking
    mirror of :class:`ParetoFrontier`.

    :meth:`ExplorationResult.top_k` sorts the full row list; this class
    maintains only a size-``k`` heap, so the best rows by one metric
    stay available on export-only (``collect=False``) runs whose rows
    were never retained, in memory bounded by ``k``. :attr:`rows` is
    *exactly* ``sorted(all rows seen, key=metric, reverse=maximize)[:k]``
    — including the stable tie rule (ties keep stream order, and at the
    cutoff boundary the earliest-seen rows win the last slots) — so the
    online and batch rankings are interchangeable (asserted row-for-row
    by the invariant suite).

    Metric values must be real numbers (the heap negates values for
    minimization); a missing or NaN metric raises
    :class:`ConfigurationError` naming the offending row's stream
    position — unlike the batch sort, which would silently misorder
    NaN.
    """

    def __init__(self, metric: str, k: int = 5, maximize: bool = True):
        if k < 0:
            raise ConfigurationError(f"k must be >= 0, got {k}")
        self.metric = metric
        self.k = k
        self.maximize = maximize
        self.n_seen = 0
        #: Min-heap of ((priority, -position), row): the worst surviving
        #: row sits at the root. Positions are unique, so heap keys never
        #: tie and rows are never compared.
        self._heap: list[tuple[tuple[float, int], dict[str, Any]]] = []

    def add(self, rows: Sequence[dict[str, Any]]) -> None:
        """Fold one chunk of rows into the ranking (stream order)."""
        metric, k, maximize = self.metric, self.k, self.maximize
        heap = self._heap
        for row in rows:
            position = self.n_seen
            self.n_seen += 1
            if metric not in row:
                raise ConfigurationError(
                    f"metric {metric!r} missing in row {position}"
                )
            value = row[metric]
            if not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"metric {metric!r} must be a number for online top-k, "
                    f"got {type(value).__name__} in row {position}"
                )
            if isinstance(value, float) and math.isnan(value):
                raise ConfigurationError(
                    f"metric {metric!r} is NaN in row {position}"
                )
            if k == 0:
                continue
            # Among equal metric values the earlier row ranks higher, so
            # earlier rows carry the larger tiebreak (-position).
            key = ((value if maximize else -value), -position)
            if len(heap) < k:
                heapq.heappush(heap, (key, row))
            elif key > heap[0][0]:
                heapq.heapreplace(heap, (key, row))

    def add_batch(self, batch: Any) -> None:
        """Fold one columnar :class:`~repro.explore.vectorized.BatchRows`
        view into the ranking, materializing only candidate rows.

        Semantically identical to ``add(batch.rows())`` — same surviving
        rows, ties and ``n_seen`` positions — but once the heap is full,
        rows that cannot displace the batch-start root are rejected by
        one vectorized comparison without ever becoming dicts (sound:
        the root value only grows, and an exact tie with the root never
        enters because later positions carry smaller tiebreaks, so the
        strict ``>`` mask is a superset of the rows the scalar fold
        would admit). Masked-in candidates still fold through the scalar
        :meth:`add` against the current root. Falls back to the row path
        when numpy is unavailable or the metric is not columnar.
        """
        if _np is None:
            self.add(batch.rows())
            return
        m = len(batch)
        if m == 0:
            return
        try:
            column = batch.metric_column(self.metric)
        except KeyError:
            self.add(batch.rows())
            return
        values = _np.asarray(column, dtype=float)
        if not self.maximize:
            values = -values
        bad = _np.isnan(values)
        limit = int(_np.argmax(bad)) if bad.any() else m
        base = self.n_seen
        k, heap = self.k, self._heap
        start = 0
        if k > 0:
            # Heap-fill phase: every row enters, no prefilter possible.
            while len(heap) < k and start < limit:
                self.n_seen = base + start
                self.add([batch.row(start)])
                start += 1
            if start < limit:
                root_value = heap[0][0][0]
                for off in _np.nonzero(values[start:limit] > root_value)[0].tolist():
                    idx = start + off
                    self.n_seen = base + idx
                    self.add([batch.row(idx)])
        self.n_seen = base + limit
        for i in range(limit, m):
            self.add([batch.row(i)])  # first iteration raises on the NaN

    @property
    def rows(self) -> list[dict[str, Any]]:
        """The current top-``k`` rows, best first (ties in stream order)."""
        ordered = sorted(self._heap, key=lambda entry: entry[0], reverse=True)
        return [row for _, row in ordered]

    def __len__(self) -> int:
        return len(self._heap)


def domain_frontier(domain: str) -> ParetoFrontier:
    """A :class:`ParetoFrontier` on the domain's canonical axes (what
    :meth:`ExplorationResult.pareto` defaults to)."""
    axes, maximize = DEFAULT_AXES[domain]
    return ParetoFrontier(axes, maximize)


def pareto_filter(
    rows: Sequence[dict[str, Any]],
    axes: Sequence[str],
    maximize: bool | Sequence[bool] = True,
) -> list[dict[str, Any]]:
    """The non-dominated subset of ``rows`` under the given axes.

    Row *a* dominates row *b* when *a* is at least as good on every axis
    and strictly better on at least one ('good' per the corresponding
    ``maximize`` flag). Rows with identical axis values do not dominate
    each other, so exact ties all survive; input order is preserved.

    One fold of a :class:`ParetoFrontier` over the whole sequence — the
    batch and streaming paths share one dominance definition, so they
    cannot drift apart.
    """
    frontier = ParetoFrontier(axes, maximize)
    frontier.add(rows)
    return frontier.rows
