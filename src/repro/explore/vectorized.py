"""Columnar batch evaluation: struct-of-arrays prefix states.

The memoized scalar walk (:mod:`repro.explore.incremental`) reduced the
per-configuration work to amortized O(1) block extensions — the ceiling
left is Python object work: one ``PipelineConfig``, one cost object and
one row dict per configuration, regardless of how few survive the
consumer's frontier/top-k/feasibility filters. This module removes that
ceiling for the stock cost models by evaluating whole *cohorts* of
configurations as numpy struct-of-arrays operations:

* A depth-``d`` cohort (every platform assignment with ``d`` in-camera
  blocks, in exact enumeration order) is built by repeating the depth
  ``d-1`` cohort's state arrays across the next block's options —
  ``np.repeat`` over rows, ``np.tile`` over choices reproduces
  :func:`itertools.product` order — and extending them with one
  ``extend_state_batch`` call per depth.
* Cost/row/config *objects* are materialized lazily: a
  :class:`BatchRows` view hands consumers numeric columns
  (:meth:`BatchRows.metric_column`) and only constructs Python objects
  for rows a consumer actually touches. Sinks with columnar support
  (``ParetoSink``/``TopKSink``) keep live cost objects bounded by the
  surviving-row count, not the design-space size.

Bit-identity is the correctness contract: the batch kernels perform the
same IEEE-754 float operations in the same order as the scalar fold
(elementwise per row), so every materialized cost, row and frontier is
byte-identical to the scalar and brute-force paths — asserted by the
invariant suite. That constraint shapes the kernels: the running-min
update is ``np.where(new < cur, new, cur)`` (the scalar branch, not
``np.minimum``, whose NaN semantics differ), and per-block energies
stay one array per level so the left-to-right accumulation order is
preserved.

Pruned and parallel runs ride the same columnar core:

* Prefix pruners carrying batch forms
  (:attr:`~repro.explore.enumerate.PrefixPruner.extend_batch`) fuse
  into the cohort walk as boolean-mask compaction — one fancy-index
  gather per depth drops pruned prefixes before they are repeated into
  deeper cohorts, reproducing DFS pruning semantics exactly; per-config
  ``scenario.prune`` hooks run as a scalar filter over the already
  compacted (small) cohort.
* Parallel executors ship :class:`CohortShard` descriptors — compact
  (depth, flat index range) slices of a cohort — instead of pickled
  config lists; workers regenerate the state columns locally from the
  prefix plan in O(depth) array operations
  (:meth:`BatchPrefixEvaluator.evaluate_shard`).

Custom models fall back automatically: :func:`supports_batch_evaluation`
admits a model only when every customized scalar step has a matching
batch override (and numpy is importable); everything else rides the
scalar :class:`~repro.explore.incremental.PrefixEvaluator`.

:class:`PrefixStateCache` extends campaign dedup from whole-space
sharing to trie-keyed *partial* sharing: each depth-``j`` prefix of a
block chain is keyed by its own cost-defining fingerprint, so scenarios
whose platform axes agree only on a prefix still share the batched
prefix-state cohorts in fleet sweeps.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator, Sequence

try:  # the batch path is optional; everything degrades to scalar without it
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None

from repro.core.cost import (
    ConfigCost,
    EnergyCost,
    EnergyCostModel,
    ThroughputCostModel,
    implementation_fingerprint,
)
from repro.core.pipeline import InCameraPipeline, PipelineConfig, _digest
from repro.errors import ConfigurationError
from repro.explore.enumerate import _normalize_hooks, enumeration_plan
from repro.explore.incremental import depth_link_cost, supports_prefix_evaluation
from repro.explore.result import cost_row

#: (scalar step, batch counterpart) pairs the capability probe checks.
_STEP_PAIRS = (
    ("initial_state", "initial_state_batch"),
    ("extend_state", "extend_state_batch"),
    ("finalize", "finalize_batch"),
)


def supports_batch_evaluation(model: Any) -> bool:
    """Whether a model is safe to evaluate through the columnar batch
    path — the batch-capability probe next to
    :func:`~repro.explore.incremental.supports_prefix_evaluation`.

    Requires numpy, a prefix-eligible model (stock ``evaluate``), and
    per-step consistency: for each (scalar, batch) step pair, a subclass
    that overrides the scalar step must override the batch counterpart
    too — otherwise the stock batch kernel would silently bypass the
    customized scalar semantics. Overriding only the batch step (a
    faster kernel with identical semantics) stays eligible, as does the
    fully stock model.
    """
    if np is None or not supports_prefix_evaluation(model):
        return False
    for base in (ThroughputCostModel, EnergyCostModel):
        if isinstance(model, base):
            cls = type(model)
            for scalar_name, batch_name in _STEP_PAIRS:
                scalar_stock = getattr(cls, scalar_name) is getattr(base, scalar_name)
                batch_stock = getattr(cls, batch_name) is getattr(base, batch_name)
                if not scalar_stock and batch_stock:
                    return False
            return True
    return False


def uses_stock_batch_semantics(model: Any) -> bool:
    """Whether every scalar *and* batch cost step is the stock
    implementation.

    Stricter than :func:`supports_batch_evaluation`, for the paths that
    assume the stock state *shapes*: cohort enumeration replicates state
    arrays across options and the prefix-state cache gathers rows by
    index, both of which require knowing the struct-of-arrays layout. A
    subclass with matching scalar+batch overrides is still batch-capable
    (per-chunk folds never reshape states) but takes neither shortcut.
    """
    if np is None or not supports_prefix_evaluation(model):
        return False
    steps = ("evaluate",) + tuple(name for pair in _STEP_PAIRS for name in pair)
    for base in (ThroughputCostModel, EnergyCostModel):
        if isinstance(model, base):
            cls = type(model)
            return all(getattr(cls, name) is getattr(base, name) for name in steps)
    return False


def batch_prefix_evaluator(
    model: Any,
    pass_rates: dict[str, float] | None = None,
    prefix_cache: "PrefixStateCache | None" = None,
) -> "BatchPrefixEvaluator | None":
    """A :class:`BatchPrefixEvaluator` for the model, or None when it is
    not batch-capable (the chunk entry points' one-line dispatch)."""
    if not supports_batch_evaluation(model):
        return None
    return BatchPrefixEvaluator(model, pass_rates, prefix_cache=prefix_cache)


# -- stock state-shape helpers ------------------------------------------
# Only the fully stock models reach these (gated by
# uses_stock_batch_semantics): throughput states are (fps array, label
# array), energy states (rate array, ((name, energy array), ...), active
# array).


def _repeat_state(state: Any, k: int, energy: bool) -> Any:
    """Each state row repeated ``k`` times (np.repeat copies bits)."""
    if energy:
        rate, energies, active = state
        return (
            np.repeat(rate, k),
            tuple((name, np.repeat(arr, k)) for name, arr in energies),
            np.repeat(active, k),
        )
    fps, labels = state
    return (np.repeat(fps, k), np.repeat(labels, k))


def _take_state(state: Any, indices: Any, energy: bool) -> Any:
    """State rows gathered by index (bit-exact copies)."""
    if energy:
        rate, energies, active = state
        return (
            rate[indices],
            tuple((name, arr[indices]) for name, arr in energies),
            active[indices],
        )
    fps, labels = state
    return (fps[indices], labels[indices])


def _materialize_costs(
    configs: Sequence[PipelineConfig], columns: dict[str, Any], energy: bool
) -> list[ConfigCost | EnergyCost]:
    """Cost objects for every row of a finalized column mapping.

    Mirrors the stock ``finalize`` field-for-field (same
    ``object.__new__`` construction the scalar hot loops use); array
    values pass through ``tolist()`` so every field is a plain Python
    float/str, indistinguishable from scalar evaluation.
    """
    new = object.__new__
    set_field = object.__setattr__
    out: list[ConfigCost | EnergyCost] = []
    append_out = out.append
    if not energy:
        compute = columns["compute_fps"].tolist()
        slowest = columns["slowest_block"].tolist()
        communication_fps = columns["communication_fps"]
        for i, config in enumerate(configs):
            cost = new(ConfigCost)
            set_field(cost, "config", config)
            set_field(cost, "compute_fps", compute[i])
            set_field(cost, "communication_fps", communication_fps)
            set_field(cost, "slowest_block", slowest[i])
            append_out(cost)
        return out
    rate = columns["transmit_rate"].tolist()
    transmit = columns["transmit_energy"].tolist()
    active = columns["active_seconds"].tolist()
    levels = [(name, arr.tolist()) for name, arr in columns["block_energies"]]
    for i, config in enumerate(configs):
        cost = new(EnergyCost)
        set_field(cost, "config", config)
        set_field(cost, "sensor_energy", config.pipeline.sensor_energy_per_frame)
        set_field(cost, "block_energies", {name: values[i] for name, values in levels})
        set_field(cost, "transmit_energy", transmit[i])
        set_field(cost, "transmit_rate", rate[i])
        set_field(cost, "active_seconds", active[i])
        append_out(cost)
    return out


class BatchRows:
    """A columnar view over one evaluated span of configurations.

    The lazy-materialization seam between the batch evaluator and its
    consumers: all rows share one pipeline and cut depth, their platform
    choices live in an ``(n, depth)`` integer matrix and their cost
    fields in struct-of-arrays columns. Python objects
    (:class:`PipelineConfig`, cost objects, row dicts) exist only for
    rows a consumer materializes — frontier/top-k sinks read
    :meth:`metric_column` and materialize survivors only, so live cost
    objects stay bounded by the surviving-row count.

    :attr:`n_materialized` counts rows turned into objects (what the
    benchmark's memory check asserts on). Materialized rows/costs are
    built through the same ``cost_row``/finalize field definitions as
    the scalar path, so they are byte-identical to it.
    """

    __slots__ = (
        "scenario",
        "pipeline",
        "depth",
        "level_names",
        "choices",
        "columns",
        "n_materialized",
        "_energy",
    )

    def __init__(
        self,
        scenario: Any,
        pipeline: InCameraPipeline,
        depth: int,
        level_names: tuple[Sequence[str], ...],
        choices: Any,
        columns: dict[str, Any],
        energy: bool,
    ):
        self.scenario = scenario
        self.pipeline = pipeline
        self.depth = depth
        self.level_names = level_names
        self.choices = choices
        self.columns = columns
        self.n_materialized = 0
        self._energy = energy

    def __len__(self) -> int:
        return self.choices.shape[0]

    def slice(self, lo: int, hi: int) -> "BatchRows":
        """Rows ``[lo, hi)`` as a new view (array slices share memory)."""
        columns = {}
        for key, value in self.columns.items():
            if key == "block_energies":
                columns[key] = tuple((name, arr[lo:hi]) for name, arr in value)
            elif isinstance(value, np.ndarray):
                columns[key] = value[lo:hi]
            else:  # per-depth scalars (communication_fps)
                columns[key] = value
        return BatchRows(
            self.scenario,
            self.pipeline,
            self.depth,
            self.level_names,
            self.choices[lo:hi],
            columns,
            self._energy,
        )

    def config(self, i: int) -> PipelineConfig:
        """Row ``i``'s configuration (trusted constructor: choices come
        from the blocks' own implementation tables)."""
        names = self.level_names
        row = self.choices[i].tolist()
        return PipelineConfig.trusted(
            self.pipeline, tuple(names[level][c] for level, c in enumerate(row))
        )

    def cost(self, i: int) -> ConfigCost | EnergyCost:
        """Row ``i``'s cost object (counts as one materialization)."""
        self.n_materialized += 1
        one = self.slice(i, i + 1)
        return _materialize_costs([self.config(i)], one.columns, self._energy)[0]

    def costs(self) -> list[ConfigCost | EnergyCost]:
        """Every row's cost object, in row order (bulk materialization)."""
        names = self.level_names
        configs = [
            PipelineConfig.trusted(
                self.pipeline, tuple(names[level][c] for level, c in enumerate(row))
            )
            for row in self.choices.tolist()
        ]
        self.n_materialized += len(configs)
        return _materialize_costs(configs, self.columns, self._energy)

    def row(self, i: int) -> dict[str, Any]:
        """Row ``i``'s report row — exactly the scalar path's
        ``cost_row`` over the materialized cost."""
        return cost_row(self.scenario, self.cost(i))

    def rows(self) -> list[dict[str, Any]]:
        """Every report row, in row order (bulk materialization)."""
        scenario = self.scenario
        return [cost_row(scenario, cost) for cost in self.costs()]

    def metric_column(self, name: str) -> Any:
        """Per-row values of one numeric report-row metric as an array,
        without materializing anything; raises :class:`KeyError` for
        metrics that are not columnar (``config``, ``bottleneck``,
        ``slowest_block``, ...) so consumers can fall back to
        :meth:`rows`. Derived metrics replay the scalar row expressions
        elementwise (``total_fps`` is the scalar ``min`` branch, not
        ``np.minimum``)."""
        n = len(self)
        columns = self.columns
        scenario = self.scenario
        if name == "n_in_camera":
            return np.full(n, self.depth)
        if name == "offload_bytes":
            return np.full(n, self.pipeline.output_bytes_after(self.depth))
        if self._energy:
            if name in ("transmit_rate", "active_seconds"):
                return columns[name]
            if name == "transmit_energy_j":
                return columns["transmit_energy"]
            if name == "sensor_energy_j":
                return np.full(n, self.pipeline.sensor_energy_per_frame)
            if name in ("compute_energy_j", "total_energy_j", "feasible"):
                compute = np.zeros(n)
                for _block, arr in columns["block_energies"]:
                    compute = compute + arr
                if name == "compute_energy_j":
                    return compute
                total = (
                    self.pipeline.sensor_energy_per_frame
                    + compute
                    + columns["transmit_energy"]
                )
                if name == "total_energy_j":
                    return total
                budget = scenario.energy_budget_j if scenario is not None else None
                if budget is None:
                    return np.ones(n, dtype=bool)
                return total <= budget
        else:
            if name == "compute_fps":
                return columns["compute_fps"]
            if name == "communication_fps":
                return np.full(n, columns["communication_fps"])
            if name == "total_fps":
                compute = columns["compute_fps"]
                communication = columns["communication_fps"]
                # min(a, b) returns b only when b < a — np.where keeps
                # that exact branch (NaN included), unlike np.minimum.
                return np.where(communication < compute, communication, compute)
            if name == "feasible":
                target = scenario.target_fps if scenario is not None else None
                if target is None:
                    return np.ones(n, dtype=bool)
                return np.logical_and(
                    columns["compute_fps"] >= target,
                    columns["communication_fps"] >= target,
                )
        raise KeyError(name)


class BatchChunkStates:
    """Pre-finalize compute-side states of one evaluated chunk, columnar.

    The batch counterpart of :meth:`PrefixEvaluator.states_many`'s
    ``(config, state)`` pair list: contiguous same-``(pipeline, depth)``
    runs of the chunk, each a ``(configs, depth, state, choices,
    level_names)`` segment — one struct-of-arrays state plus the
    ``(n, depth)`` choice matrix and per-level platform names that let a
    member build a lazy :class:`BatchRows` view without re-deriving
    them. Campaign dedup finalizes every run under each member
    scenario's own link terms (:class:`repro.explore.campaign.
    _StateFinalizer`); picklable, so process-pool leaders can ship
    states back like the scalar pairs.
    """

    __slots__ = ("segments", "energy")

    def __init__(
        self,
        segments: list[tuple[list[PipelineConfig], int, Any, Any, tuple]],
        energy: bool,
    ):
        self.segments = segments
        self.energy = energy

    def __len__(self) -> int:
        return sum(len(segment[0]) for segment in self.segments)


class CohortShard:
    """A compact wire descriptor of one run of depth-``depth`` cohort rows.

    The parallel counterpart of a pickled config-list chunk: instead of
    shipping ``PipelineConfig`` objects to pool workers, the driver
    ships ``(pipeline, depth, flat index range)`` and each worker
    regenerates the rows locally — mixed-radix decode of the flat
    product indices into an ``(n, depth)`` choice matrix (level 0 is the
    most significant digit, so flat order *is* enumeration order),
    then one columnar fold over the pipeline plan: O(depth) array
    operations per shard instead of O(rows) pickled objects.

    ``indices`` is None for an unfiltered scenario, where the shard
    covers the contiguous flat range ``[lo, hi)`` of the full option
    product. A pruned or hooked scenario's driver runs the masked
    pruner walk once (see :func:`iter_scenario_shards`) and ships the
    survivors' explicit flat indices — workers never need the pruner or
    the hooks, whose closures are not picklable in general.
    """

    __slots__ = ("pipeline", "depth", "lo", "hi", "indices")

    def __init__(
        self,
        pipeline: InCameraPipeline,
        depth: int,
        lo: int,
        hi: int,
        indices: Any = None,
    ):
        self.pipeline = pipeline
        self.depth = depth
        self.lo = lo
        self.hi = hi
        self.indices = indices

    def __len__(self) -> int:
        if self.indices is not None:
            return len(self.indices)
        return self.hi - self.lo

    def __getstate__(self):
        return (self.pipeline, self.depth, self.lo, self.hi, self.indices)

    def __setstate__(self, state):
        self.pipeline, self.depth, self.lo, self.hi, self.indices = state


class _Level:
    """One enumerable block's per-platform tables, in enumeration
    (sorted platform name) order."""

    __slots__ = ("block", "names", "lookup", "impls")

    def __init__(self, block: Any):
        self.block = block
        self.names = sorted(block.implementations)
        self.lookup = {name: j for j, name in enumerate(self.names)}
        self.impls = [block.implementations[name] for name in self.names]


class _PipelinePlan:
    """Cached per-pipeline evaluation tables (levels truncate at the
    first block with no implementations, like the enumeration plan) plus
    the per-depth link-term cache."""

    __slots__ = ("pipeline", "levels", "link_costs")

    def __init__(self, pipeline: InCameraPipeline):
        self.pipeline = pipeline
        self.levels: list[_Level] = []
        for block in pipeline.blocks:
            if not block.implementations:
                break
            self.levels.append(_Level(block))
        self.link_costs: dict[int, Any] = {}


class PrefixStateCache:
    """Trie-keyed partial dedup of batched prefix-state cohorts.

    Campaign-level dedup (:class:`~repro.explore.campaign.
    PipelineCostCache`) shares evaluations only between scenarios whose
    *whole* (chain, platform-axis) identity matches. Fleets often agree
    on less: a shared front-end chain with per-camera back-ends. This
    cache keys every depth-``j`` prefix by its own cost-defining
    fingerprint — per-block (name, pass rate, implementation cost table
    in enumeration order), the cost domain, and the pass-rate overrides
    restricted to the prefix's block names — and stores the full
    option-product *cohort* of struct-of-arrays states at that depth.
    Any batch evaluator folding a chunk then gathers each row's prefix
    state from the deepest cached cohort by flat product index and only
    extends the suffix.

    Bit-identity holds across scenarios: equal fingerprints imply equal
    per-level cost tables in equal enumeration order, and cohort rows
    are produced by the same elementwise operations a direct fold would
    perform. States are link-independent, so sharing across links is
    always safe.

    Cohort width is the product of option counts, so priming stops at
    ``max_rows`` rows per level; deeper prefixes gather the deepest
    cached cohort and extend per chunk. A lock guards priming — the
    cache is shared across a campaign's scenarios on serial and thread
    backends (process pools would pickle private copies, so the driver
    does not offer it there).
    """

    def __init__(self, max_rows: int = 4096):
        if max_rows < 1:
            raise ConfigurationError(f"max_rows must be >= 1, got {max_rows}")
        self.max_rows = max_rows
        self.hits = 0
        self.misses = 0
        self.width_capped = 0
        self._states: dict[tuple, Any] = {}
        self._lock = threading.Lock()

    @property
    def stats(self) -> dict[str, int]:
        """Observable counters: priming hits/misses, cached cohort
        entries, and how many :meth:`deepest` lookups the ``max_rows``
        width cap truncated (``width_capped`` > 0 on a fleet means
        deeper sharing was available but priced out — raise
        ``max_rows`` to trade memory for hits)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._states),
                "width_capped": self.width_capped,
            }

    @staticmethod
    def _fingerprint(
        levels: Sequence[_Level],
        j: int,
        energy: bool,
        pass_rates: dict[str, float] | None,
    ) -> tuple:
        payload = tuple(
            (
                level.block.name,
                level.block.pass_rate,
                tuple(implementation_fingerprint(impl) for impl in level.impls),
            )
            for level in levels[:j]
        )
        rates = None
        if pass_rates:
            names = {level.block.name for level in levels[:j]}
            rates = tuple(
                sorted(item for item in pass_rates.items() if item[0] in names)
            )
        return ("energy" if energy else "throughput", j, rates, _digest(payload))

    def deepest(
        self, evaluator: "BatchPrefixEvaluator", levels: Sequence[_Level], depth: int
    ) -> tuple[int, Any]:
        """``(j, cohort state)`` for the deepest cacheable prefix level
        ``j <= depth`` (priming missing levels), or ``(0, None)`` when
        even the first level's cohort exceeds the row cap."""
        energy = evaluator._energy
        pass_rates = evaluator.pass_rates
        width = 1
        target = 0
        capped = False
        for j in range(1, depth + 1):
            width *= len(levels[j - 1].names)
            if width > self.max_rows:
                capped = True
                break
            target = j
        if capped:
            with self._lock:
                self.width_capped += 1
        if target == 0:
            return (0, None)
        keys = [
            self._fingerprint(levels, j, energy, pass_rates)
            for j in range(1, target + 1)
        ]
        with self._lock:
            state = None
            have = 0
            for j in range(target, 0, -1):
                state = self._states.get(keys[j - 1])
                if state is not None:
                    have = j
                    break
            if have == target:
                self.hits += 1
                return (target, state)
            self.misses += 1
            if have == 0:
                state = evaluator.model.initial_state_batch(1)
            for j in range(have, target):
                level = levels[j]
                k = len(level.names)
                n_prev = state[0].shape[0]
                tile = np.tile(np.arange(k, dtype=np.intp), n_prev)
                state = evaluator._extend(_repeat_state(state, k, energy), level, tile)
                self._states[keys[j]] = state
            return (target, state)


class BatchPrefixEvaluator:
    """Evaluate configurations of stock-semantics models as columnar
    struct-of-arrays folds — the batch sibling of
    :class:`~repro.explore.incremental.PrefixEvaluator`.

    Three entry points share one fold core: :meth:`evaluate_many` (an
    arbitrary chunk, materialized cost objects — what campaign chunks
    and parallel workers use), :meth:`states_chunk` (pre-finalize states
    for dedup leaders), and :meth:`iter_scenario_batches` (whole-space
    cohort enumeration with lazy :class:`BatchRows`, the solo
    ``explore()`` fast path). Every path replays the scalar fold's float
    operations elementwise, so results are bit-identical to the scalar
    evaluator (and to brute force) — asserted row-for-row by the
    invariant suite.

    ``prefix_cache`` plugs in a :class:`PrefixStateCache` (ignored for
    models with custom batch steps, whose state shapes are unknown).
    """

    def __init__(
        self,
        model: ThroughputCostModel | EnergyCostModel,
        pass_rates: dict[str, float] | None = None,
        prefix_cache: PrefixStateCache | None = None,
    ):
        if pass_rates is not None and not isinstance(model, EnergyCostModel):
            raise ConfigurationError(
                "pass_rates only apply to EnergyCostModel evaluation"
            )
        if not supports_batch_evaluation(model):
            raise ConfigurationError(
                "model is not batch-capable (numpy missing, custom evaluate(), "
                "or a customized scalar step without its batch counterpart); "
                "use the scalar PrefixEvaluator"
            )
        self.model = model
        self.pass_rates = pass_rates
        self._energy = isinstance(model, EnergyCostModel)
        self._stock = uses_stock_batch_semantics(model)
        # Cache entries assume the stock state layout; a model with
        # custom (matched) batch steps folds every chunk from the root.
        self.prefix_cache = prefix_cache if self._stock else None
        self._plans: dict[int, _PipelinePlan] = {}

    def _plan_for(self, pipeline: InCameraPipeline) -> _PipelinePlan:
        plan = self._plans.get(id(pipeline))
        if plan is None or plan.pipeline is not pipeline:
            plan = _PipelinePlan(pipeline)
            self._plans[id(pipeline)] = plan
        return plan

    def _extend(self, state: Any, level: _Level, choices: Any) -> Any:
        if self._energy:
            return self.model.extend_state_batch(
                state, level.block, level.impls, choices, self.pass_rates
            )
        return self.model.extend_state_batch(state, level.block, level.impls, choices)

    # -- arbitrary chunks ------------------------------------------------

    def _segments(
        self, configs: Sequence[PipelineConfig]
    ) -> Iterator[tuple[InCameraPipeline, int, list[PipelineConfig]]]:
        """Contiguous same-(pipeline, depth) runs, preserving order."""
        i = 0
        n = len(configs)
        while i < n:
            pipeline = configs[i].pipeline
            depth = len(configs[i].platforms)
            j = i + 1
            while (
                j < n
                and configs[j].pipeline is pipeline
                and len(configs[j].platforms) == depth
            ):
                j += 1
            yield pipeline, depth, list(configs[i:j])
            i = j

    def _run_choices(
        self, plan: _PipelinePlan, depth: int, run: Sequence[PipelineConfig]
    ) -> Any:
        """The ``(n, depth)`` choice matrix of one same-depth run."""
        levels = plan.levels
        try:
            rows = [
                [levels[level].lookup[platform] for level, platform in enumerate(c.platforms)]
                for c in run
            ]
        except (KeyError, IndexError):
            # An invalid trusted() platform choice (or a block past the
            # enumerable levels): surface the standard PipelineError the
            # validated path produces, exactly like the scalar walk.
            for config in run:
                config.in_camera_blocks()
            raise
        return np.array(rows, dtype=np.intp).reshape(len(run), depth)

    def _run_state(
        self, plan: _PipelinePlan, depth: int, run: Sequence[PipelineConfig]
    ) -> Any:
        """The pre-finalize state arrays of one same-depth run."""
        return self._fold_choices(plan, depth, self._run_choices(plan, depth, run))

    def _fold_choices(self, plan: _PipelinePlan, depth: int, choices: Any) -> Any:
        """The pre-finalize state arrays of one ``(n, depth)`` choice
        matrix — the shared fold core of chunk evaluation
        (:meth:`_run_state`) and shard regeneration
        (:meth:`evaluate_shard`/:meth:`states_shard`)."""
        levels = plan.levels
        start = 0
        state = None
        cache = self.prefix_cache
        if cache is not None and depth:
            start, cohort = cache.deepest(self, levels, depth)
            if start:
                flat = choices[:, 0]
                for level in range(1, start):
                    flat = flat * len(levels[level].names) + choices[:, level]
                state = _take_state(cohort, flat, self._energy)
        if state is None:
            start = 0
            state = self.model.initial_state_batch(choices.shape[0])
        for level in range(start, depth):
            state = self._extend(state, levels[level], choices[:, level])
        return state

    def evaluate_many(
        self, configs: Iterable[PipelineConfig]
    ) -> list[ConfigCost | EnergyCost]:
        """Costs for a configuration sequence, in sequence order —
        drop-in for :meth:`PrefixEvaluator.evaluate_many` (values are
        bit-identical; only the fold is columnar)."""
        configs = configs if isinstance(configs, Sequence) else list(configs)
        model = self.model
        energy = self._energy
        out: list[ConfigCost | EnergyCost] = []
        for pipeline, depth, run in self._segments(configs):
            plan = self._plan_for(pipeline)
            state = self._run_state(plan, depth, run)
            link_cost = depth_link_cost(
                model.link, energy, plan.link_costs, depth, run[0]
            )
            out.extend(
                _materialize_costs(run, model.finalize_batch(state, link_cost), energy)
            )
        return out

    def states_chunk(self, configs: Iterable[PipelineConfig]) -> BatchChunkStates:
        """The chunk's pre-finalize states as a :class:`BatchChunkStates`
        — the batch counterpart of :meth:`PrefixEvaluator.states_many`
        for campaign dedup leaders."""
        configs = configs if isinstance(configs, Sequence) else list(configs)
        segments = []
        for pipeline, depth, run in self._segments(configs):
            plan = self._plan_for(pipeline)
            choices = self._run_choices(plan, depth, run)
            state = self._fold_choices(plan, depth, choices)
            names = tuple(level.names for level in plan.levels[:depth])
            segments.append((run, depth, state, choices, names))
        return BatchChunkStates(segments, self._energy)

    # -- shard regeneration ----------------------------------------------

    def _shard_rows(
        self, shard: CohortShard
    ) -> tuple[_PipelinePlan, Any, list[PipelineConfig]]:
        """Decode a shard into its plan, ``(n, depth)`` choice matrix and
        trusted configs — mixed-radix decode from the least significant
        (deepest) level, the inverse of the enumeration's
        ``flat = flat * k + choice`` accumulation."""
        if not self._stock:
            raise ConfigurationError(
                "shard evaluation needs fully stock batch cost semantics "
                "(custom batch steps have unknown state shapes); ship "
                "config chunks through evaluate_many instead"
            )
        plan = self._plan_for(shard.pipeline)
        levels = plan.levels
        depth = shard.depth
        if depth > len(levels):
            raise ConfigurationError(
                f"shard depth {depth} exceeds the pipeline's "
                f"{len(levels)} enumerable levels"
            )
        if shard.indices is not None:
            flat = np.asarray(shard.indices, dtype=np.intp).copy()
        else:
            flat = np.arange(shard.lo, shard.hi, dtype=np.intp)
        choices = np.empty((flat.shape[0], depth), dtype=np.intp)
        for level in range(depth - 1, -1, -1):
            k = len(levels[level].names)
            choices[:, level] = flat % k
            flat //= k
        names = [level.names for level in levels[:depth]]
        trusted = PipelineConfig.trusted
        configs = [
            trusted(
                shard.pipeline, tuple(names[level][c] for level, c in enumerate(row))
            )
            for row in choices.tolist()
        ]
        return plan, choices, configs

    def evaluate_shard(self, shard: CohortShard) -> list[ConfigCost | EnergyCost]:
        """Costs for every row of a :class:`CohortShard`, in flat-index
        order — what pool workers run instead of
        :meth:`evaluate_many` over a pickled config chunk. Row values
        are bit-identical to the scalar fold of the same configs."""
        plan, choices, configs = self._shard_rows(shard)
        if not configs:
            return []
        state = self._fold_choices(plan, shard.depth, choices)
        link_cost = depth_link_cost(
            self.model.link, self._energy, plan.link_costs, shard.depth, configs[0]
        )
        return _materialize_costs(
            configs, self.model.finalize_batch(state, link_cost), self._energy
        )

    def states_shard(self, shard: CohortShard) -> BatchChunkStates:
        """A shard's pre-finalize states as :class:`BatchChunkStates` —
        the shard counterpart of :meth:`states_chunk` for campaign
        dedup leaders."""
        plan, choices, configs = self._shard_rows(shard)
        if not configs:
            return BatchChunkStates([], self._energy)
        state = self._fold_choices(plan, shard.depth, choices)
        names = tuple(level.names for level in plan.levels[: shard.depth])
        return BatchChunkStates(
            [(configs, shard.depth, state, choices, names)], self._energy
        )

    # -- whole-space cohort enumeration ----------------------------------

    def iter_scenario_batches(
        self, scenario: Any, chunk_size: int | None = None
    ) -> Iterator[BatchRows]:
        """Stream a scenario's whole design space as lazy
        :class:`BatchRows`, one depth cohort at a time (sliced to
        ``chunk_size`` rows when given), in exact enumeration order.

        The solo ``explore()`` fast path: per depth, the previous
        cohort's state arrays are repeated across the next block's
        options and extended with one batch call — O(depth) array
        operations for the whole space, no per-configuration Python
        work until a consumer materializes a row. Pruning fuses into
        the same folds:

        * Depth pruning is honored (pruned depths still fold their
          states, which deeper depths extend).
        * A batch-capable prefix pruner (``scenario.prefix_pruner()``
          with :attr:`~repro.explore.enumerate.PrefixPruner.
          extend_batch`) runs as boolean-mask compaction: its keep mask
          gathers the surviving ``state``/``choices`` rows after every
          extend, so a pruned prefix is never repeated into deeper
          cohorts — exactly the scalar DFS's subtree cut. Bounds that
          are not depth-monotone additionally supply ``emit_mask``,
          applied to an emission-only gather so the *running* cohort
          keeps every row some deeper depth still needs. Survivor rows
          are byte-identical to the scalar pruned walk. A pruner
          without a batch form raises — callers gate on
          ``PrefixPruner.batch_capable``.
        * Per-config ``scenario.prune`` hooks run as a scalar filter
          over the already compacted cohort at emission time, in
          enumeration order with the scalar path's short-circuit
          semantics (hooks see only rows every other filter kept).
        """
        if not self._stock:
            raise ConfigurationError(
                "cohort enumeration needs fully stock batch cost semantics "
                "(custom batch steps have unknown state shapes); evaluate "
                "chunks through evaluate_many instead"
            )
        pruner = scenario.prefix_pruner()
        if pruner is not None and not pruner.batch_capable:
            raise ConfigurationError(
                "cohort enumeration with a prefix pruner needs its batch form "
                "(initial_batch/extend_batch); use the scalar path"
            )
        hooks = _normalize_hooks(scenario.prune)
        pipeline = scenario.pipeline
        plan = self._plan_for(pipeline)
        option_lists = enumeration_plan(pipeline, scenario.max_blocks)
        levels = plan.levels[: len(option_lists)]
        prune_depth = scenario.depth_prune_hook()
        energy = self._energy
        model = self.model
        link_cache = plan.link_costs
        trusted = PipelineConfig.trusted

        def hook_filter(depth: int, choices: Any, state: Any) -> tuple[Any, Any]:
            """Per-config hooks over the compacted cohort — the same
            configs, order and any()-short-circuit as the scalar walk's
            keep() filter."""
            names = [level.names for level in levels[:depth]]
            kept = [
                i
                for i, row in enumerate(choices.tolist())
                if not any(
                    hook(
                        trusted(
                            pipeline,
                            tuple(names[level][c] for level, c in enumerate(row)),
                        )
                    )
                    for hook in hooks
                )
            ]
            if len(kept) == choices.shape[0]:
                return choices, state
            idx = np.array(kept, dtype=np.intp)
            return choices[idx], _take_state(state, idx, energy)

        def emit(depth: int, choices: Any, state: Any) -> Iterator[BatchRows]:
            if choices.shape[0] == 0:
                return
            representative = trusted(
                pipeline, tuple(level.names[0] for level in levels[:depth])
            )
            link_cost = depth_link_cost(
                model.link, energy, link_cache, depth, representative
            )
            batch = BatchRows(
                scenario,
                pipeline,
                depth,
                tuple(level.names for level in levels[:depth]),
                choices,
                model.finalize_batch(state, link_cost),
                energy,
            )
            n = len(batch)
            if chunk_size is None or n <= chunk_size:
                yield batch
                return
            for lo in range(0, n, chunk_size):
                yield batch.slice(lo, min(lo + chunk_size, n))

        state = model.initial_state_batch(1)
        pstate = pruner.initial_batch(1) if pruner is not None else None
        choices = np.zeros((1, 0), dtype=np.intp)
        if scenario.include_empty and not (
            prune_depth is not None and prune_depth(0)
        ):
            # The raw-offload row has no platform choices, so the prefix
            # bound never applies to it; per-config hooks still do.
            emit_choices, emit_state = choices, state
            if hooks:
                emit_choices, emit_state = hook_filter(0, choices, state)
            yield from emit(0, emit_choices, emit_state)
        for depth in range(1, len(levels) + 1):
            level = levels[depth - 1]
            k = len(level.names)
            tile = np.tile(np.arange(k, dtype=np.intp), choices.shape[0])
            # repeat rows x tile options == itertools.product order.
            state = self._extend(_repeat_state(state, k, energy), level, tile)
            choices = np.concatenate(
                [np.repeat(choices, k, axis=0), tile[:, None]], axis=1
            )
            if pruner is not None:
                pstate = tuple(np.repeat(arr, k) for arr in pstate)
                pstate, keep = pruner.extend_batch(depth - 1, tile, pstate)
                if not keep.all():
                    idx = np.flatnonzero(keep)
                    choices = choices[idx]
                    state = _take_state(state, idx, energy)
                    pstate = tuple(arr[idx] for arr in pstate)
                if choices.shape[0] == 0:
                    # Every prefix is provably infeasible at every
                    # remaining depth; deeper cohorts are empty too.
                    return
            if prune_depth is not None and prune_depth(depth):
                continue
            emit_choices, emit_state = choices, state
            if pruner is not None and pruner.emit_mask is not None:
                mask = pruner.emit_mask(depth, pstate)
                if mask is not None and not mask.all():
                    # Emission-only gather: the running cohort keeps
                    # rows other depths still need.
                    idx = np.flatnonzero(mask)
                    emit_choices = choices[idx]
                    emit_state = _take_state(state, idx, energy)
            if hooks:
                emit_choices, emit_state = hook_filter(depth, emit_choices, emit_state)
            yield from emit(depth, emit_choices, emit_state)


# -- cohort sharding ----------------------------------------------------


def iter_scenario_shards(
    scenario: Any, shard_size: int
) -> Iterator[CohortShard]:
    """Describe a scenario's design space as :class:`CohortShard`
    descriptors of at most ``shard_size`` rows, in exact enumeration
    order.

    The parallel twin of :meth:`BatchPrefixEvaluator.
    iter_scenario_batches`: instead of folding cohorts, the driver only
    *addresses* them — each shard names a run of flat product indices a
    worker decodes and folds locally, so nothing per-row is ever
    pickled. An unfiltered scenario yields pure ``[lo, hi)`` range
    shards per depth (O(1) driver work). With a batch-capable prefix
    pruner and/or per-config hooks, the driver runs the masked pruner
    walk once over flat indices (the same keep/emit masks the fused
    cohort walk applies, so the survivor sequence is byte-identical to
    the scalar pruned enumeration), filters hooks here in enumeration
    order — hooks may be stateful and are never pickled — and ships the
    survivors' explicit index arrays.
    """
    pruner = scenario.prefix_pruner()
    if pruner is not None and not pruner.batch_capable:
        raise ConfigurationError(
            "cohort sharding with a prefix pruner needs its batch form "
            "(initial_batch/extend_batch); use the scalar path"
        )
    if shard_size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
    hooks = _normalize_hooks(scenario.prune)
    pipeline = scenario.pipeline
    option_lists = enumeration_plan(pipeline, scenario.max_blocks)
    counts = [len(options) for options in option_lists]
    prune_depth = scenario.depth_prune_hook()
    trusted = PipelineConfig.trusted

    def range_shards(depth: int, total: int) -> Iterator[CohortShard]:
        for lo in range(0, total, shard_size):
            yield CohortShard(pipeline, depth, lo, min(lo + shard_size, total))

    def index_shards(depth: int, flat: Any) -> Iterator[CohortShard]:
        n = flat.shape[0]
        for lo in range(0, n, shard_size):
            hi = min(lo + shard_size, n)
            yield CohortShard(pipeline, depth, 0, hi - lo, flat[lo:hi])

    def hook_keep(depth: int, flat: Any) -> Any:
        """Decode each flat index and apply the hooks — same configs,
        order and short-circuit as the scalar walk's keep() filter."""
        kept = []
        for value in flat.tolist():
            choice = []
            for level in range(depth - 1, -1, -1):
                value, digit = divmod(value, counts[level])
                choice.append(option_lists[level][digit])
            choice.reverse()
            config = trusted(pipeline, tuple(choice))
            kept.append(not any(hook(config) for hook in hooks))
        return np.array(kept, dtype=bool)

    if scenario.include_empty and not (prune_depth is not None and prune_depth(0)):
        # The raw-offload row: hooks apply, the prefix bound never does.
        if not hooks or bool(hook_keep(0, np.zeros(1, dtype=np.intp))[0]):
            yield CohortShard(pipeline, 0, 0, 1)
    if pruner is None and not hooks:
        total = 1
        for depth in range(1, len(counts) + 1):
            total *= counts[depth - 1]
            if prune_depth is not None and prune_depth(depth):
                continue
            yield from range_shards(depth, total)
        return
    # Masked walk over flat indices: the driver replays exactly the
    # fused cohort walk's compaction, but carries only the flat index
    # column (and the pruner's bound state) instead of cost states.
    flat = np.zeros(1, dtype=np.intp)
    pstate = pruner.initial_batch(1) if pruner is not None else None
    for depth in range(1, len(counts) + 1):
        k = counts[depth - 1]
        tile = np.tile(np.arange(k, dtype=np.intp), flat.shape[0])
        flat = np.repeat(flat, k) * k + tile
        if pruner is not None:
            pstate = tuple(np.repeat(arr, k) for arr in pstate)
            pstate, keep = pruner.extend_batch(depth - 1, tile, pstate)
            if not keep.all():
                idx = np.flatnonzero(keep)
                flat = flat[idx]
                pstate = tuple(arr[idx] for arr in pstate)
            if flat.shape[0] == 0:
                return
        if prune_depth is not None and prune_depth(depth):
            continue
        emit_flat = flat
        if pruner is not None and pruner.emit_mask is not None:
            mask = pruner.emit_mask(depth, pstate)
            if mask is not None and not mask.all():
                emit_flat = flat[np.flatnonzero(mask)]
        if hooks and emit_flat.shape[0]:
            keep = hook_keep(depth, emit_flat)
            if not keep.all():
                emit_flat = emit_flat[np.flatnonzero(keep)]
        if emit_flat.shape[0]:
            yield from index_shards(depth, emit_flat)
