"""Sound lower-bound depth pruning derived from a scenario's constraint.

A cut depth fixes everything platform choices cannot change: the
offload payload (hence the communication rate and the transmit energy)
and, in the energy domain, the expected transmit rate (pass rates live
on blocks, not implementations). Combining those exact per-depth terms
with the best case over platform choices gives *bounds*, not
heuristics: a depth is pruned only when **no** platform assignment at
that depth can satisfy the scenario's constraint. Pruned exploration
therefore loses only infeasible configurations — the feasible set, the
Pareto frontier restricted to feasible rows, and the per-row values of
every surviving configuration are identical to the unpruned run.

*Throughput*: depth ``d``'s communication rate is exactly
``link.fps_for_bytes(payload(d))``, and its best achievable compute
rate is ``min over blocks 1..d of (max impl fps)``. If either misses
``target_fps``, every configuration at depth ``d`` fails the paper's
two-axis criterion.

*Energy*: depth ``d``'s expected energy is at least sensor energy plus
each block's cheapest implementation scaled by the exact reach rate,
plus the exact transmit energy for depth ``d``'s payload. If that lower
bound exceeds ``energy_budget_j``, every configuration at the depth is
over budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:  # numpy backs the optional batch pruner forms; scalar pruning never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from repro.core.cost import option_energy_columns, option_fps_column
from repro.core.pipeline import InCameraPipeline
from repro.errors import PipelineError
from repro.explore.enumerate import (
    PRUNED_SUBTREE,
    DepthPruneHook,
    PrefixPruner,
    enumeration_plan,
)
from repro.hw.network import LinkModel

if TYPE_CHECKING:  # imported lazily to avoid an import cycle
    from repro.explore.scenario import Scenario


def throughput_depth_bounds(
    pipeline: InCameraPipeline,
    link: LinkModel,
    max_blocks: int | None = None,
) -> list[tuple[float, float]]:
    """Per-depth (best compute fps, exact communication fps).

    Entry ``d`` bounds cut depth ``d`` (0 = raw offload). The compute
    entry is an upper bound on any configuration's ``compute_fps`` at
    that depth; the communication entry is exact for every
    configuration at that depth.
    """
    option_lists = enumeration_plan(pipeline, max_blocks)
    bounds = [(float("inf"), link.fps_for_bytes(pipeline.sensor_bytes))]
    best_compute = float("inf")
    for depth, options in enumerate(option_lists, start=1):
        block = pipeline.blocks[depth - 1]
        fastest = max(block.implementations[name].fps for name in options)
        best_compute = min(best_compute, fastest)
        bounds.append((best_compute, link.fps_for_bytes(pipeline.output_bytes_after(depth))))
    return bounds


def energy_depth_lower_bounds(
    pipeline: InCameraPipeline,
    link: LinkModel,
    pass_rates: dict[str, float] | None = None,
    max_blocks: int | None = None,
) -> list[float]:
    """Per-depth lower bound on expected joules per captured frame.

    Entry ``d`` is sensor energy + the cheapest implementation of each
    of the first ``d`` blocks scaled by its exact reach rate + the
    exact transmit energy of depth ``d``'s payload. No configuration at
    depth ``d`` can cost less.
    """
    option_lists = enumeration_plan(pipeline, max_blocks)
    sensor = pipeline.sensor_energy_per_frame
    bounds = [sensor + link.tx_energy_for_bytes(pipeline.sensor_bytes)]
    rate = 1.0
    compute_floor = 0.0
    for depth, options in enumerate(option_lists, start=1):
        block = pipeline.blocks[depth - 1]
        cheapest = min(block.implementations[name].energy_per_frame for name in options)
        compute_floor += rate * cheapest
        block_rate = (
            pass_rates.get(block.name, block.pass_rate)
            if pass_rates is not None
            else block.pass_rate
        )
        # Same validation as the evaluation path: an invalid override
        # must raise here too, never silently corrupt a "sound" bound.
        if not 0.0 <= block_rate <= 1.0:
            raise PipelineError(
                f"pass rate for {block.name!r} must be in [0,1], got {block_rate}"
            )
        rate *= block_rate
        transmit = rate * link.tx_energy_for_bytes(pipeline.output_bytes_after(depth))
        bounds.append(sensor + compute_floor + transmit)
    return bounds


def compute_fps_prefix_pruner(scenario: "Scenario") -> PrefixPruner | None:
    """Per-config lower-bound pruning *within* surviving depths.

    The depth pruner cuts depths where no platform assignment can clear
    the constraint; this pruner cuts individual subtrees where the
    *chosen* platforms already cannot. A configuration's ``compute_fps``
    is the min over its chosen implementations' rates, and extending a
    prefix can only lower that min — so once a prefix's running min
    drops below ``target_fps``, every completion at every deeper cut
    depth is compute-infeasible and the subtree is skipped before any
    configuration is constructed.

    Exact, not heuristic: the running min over chosen platforms *is*
    each completion's compute-rate upper bound, so only provably
    infeasible configurations are dropped — the feasible set is
    identical to the unpruned run (tested against
    :func:`repro.explore.explore_brute_force`). Throughput domain with a
    ``target_fps`` only; None otherwise.
    """
    if scenario.domain != "throughput" or scenario.target_fps is None:
        return None
    target = scenario.target_fps
    fps_tables = [
        {name: impl.fps for name, impl in block.implementations.items()}
        for block in scenario.pipeline.blocks
    ]

    def extend(block_index: int, platform: str, state: float):
        fps = fps_tables[block_index][platform]
        floor = state if state < fps else fps
        return PRUNED_SUBTREE if floor < target else floor

    initial_batch = extend_batch = None
    if _np is not None:
        # Batch form: state is one float column (the running min fps per
        # cohort row). The bound is depth-monotone — a row the mask
        # keeps is feasible-so-far at every remaining depth — so the
        # compacted cohort is already the exact survivor set and no
        # emit_mask is needed.
        fps_columns = [
            option_fps_column(
                [block.implementations[name] for name in sorted(block.implementations)]
            )
            for block in scenario.pipeline.blocks
        ]

        def initial_batch(n: int) -> tuple:
            return (_np.full(n, float("inf")),)

        def extend_batch(block_index: int, choices, state: tuple):
            (floor,) = state
            fps = fps_columns[block_index][choices]
            # Elementwise twin of the scalar `state if state < fps else
            # fps` branch (not np.minimum: NaN/tie semantics differ).
            floor = _np.where(floor < fps, floor, fps)
            return (floor,), ~(floor < target)

    return PrefixPruner(
        initial=float("inf"),
        extend=extend,
        initial_batch=initial_batch,
        extend_batch=extend_batch,
    )


#: Relative slack on the energy prefix bound: the bound accumulates the
#: prefix energy in a different float association order than
#: ``EnergyCost.total_energy`` (incremental fold vs ``sensor + sum(...) +
#: transmit``), so an analytically equal bound can round one ulp either
#: way. Comparing against ``budget * (1 + slack)`` keeps the pruner
#: sound through reassociation — far below any real feasibility margin.
_ENERGY_BOUND_SLACK = 1e-12


def energy_prefix_pruner(scenario: "Scenario") -> PrefixPruner | None:
    """Per-config lower-bound pruning *within* surviving depths, energy
    domain — the mirror of :func:`compute_fps_prefix_pruner`.

    The prefix's expected energy is exact (sensor + each chosen
    implementation scaled by its exact reach rate), and the cheapest
    possible completion from depth ``k`` is a precomputable tail bound::

        T[D] = tx(D)
        T[k] = min(tx(k), cheapest[k+1] + pass_rate[k+1] * T[k+1])

    — either transmit right here (the depth-``k`` completion, exact for
    this prefix), or run the next block's cheapest implementation and
    continue optimally. ``prefix_energy + reach_rate * T[k]`` therefore
    lower-bounds *every* completion of the prefix at every deeper cut
    depth, so a prefix is cut only when no completion can stay within
    ``energy_budget_j``.

    That min, however, gives away exactness the enumerator does not
    require: the enumeration walks each cut depth *separately*, so
    during the depth-``d`` walk every completion of a prefix transmits
    at depth ``d`` precisely — and the pruner supplies a **dual bound**
    through :attr:`~repro.explore.enumerate.PrefixPruner.for_depth`
    that combines the cheapest-completion chain with the *per-depth
    pruner's exact transmit term* for that depth::

        T_d[d] = tx(d)                       (exact, as in the depth pruner)
        T_d[k] = cheapest[k+1] + pass_rate[k+1] * T_d[k+1]

    ``T_d[k] >= T[k]`` always (the min includes ``T_d``), so the dual
    bound cuts a superset of the single bound's prefixes while staying
    sound for the depth being walked. The gap matters on
    *late-collapsing payload chains* — pipelines whose ``output_bytes``
    stay large until a late block collapses them: there the min-tail
    assumes the cheap deep completion, which simply does not exist in a
    shallow depth's walk, and the single bound can cut nothing even
    though every depth-``d`` completion provably busts the budget
    through its still-huge transmit term. The generic ``extend`` keeps
    the depth-agnostic min (sound for any caller that walks depths
    jointly). Either way the feasible set is identical to the unpruned
    run (tested against :func:`repro.explore.explore_brute_force`,
    including randomized late-collapsing pipelines). Energy domain with
    a budget only; None otherwise.
    """
    if scenario.domain != "energy" or scenario.energy_budget_j is None:
        return None
    pipeline = scenario.pipeline
    link = scenario.cost_model().link
    pass_rates = scenario.pass_rates
    option_lists = enumeration_plan(pipeline, scenario.max_blocks)
    n_depths = len(option_lists)
    rates: list[float] = []
    cheapest: list[float] = []
    energy_tables: list[dict[str, float]] = []
    for depth, options in enumerate(option_lists, start=1):
        block = pipeline.blocks[depth - 1]
        block_rate = (
            pass_rates.get(block.name, block.pass_rate)
            if pass_rates is not None
            else block.pass_rate
        )
        # Same validation as the evaluation path: an invalid override
        # must raise here too, never silently corrupt a sound bound.
        if not 0.0 <= block_rate <= 1.0:
            raise PipelineError(
                f"pass rate for {block.name!r} must be in [0,1], got {block_rate}"
            )
        rates.append(block_rate)
        table = {
            name: block.implementations[name].energy_per_frame for name in options
        }
        energy_tables.append(table)
        cheapest.append(min(table.values()))
    # Exact per-depth transmit terms (what the depth pruner bounds with).
    tx = [
        link.tx_energy_for_bytes(pipeline.output_bytes_after(k))
        for k in range(n_depths + 1)
    ]
    # Depth-agnostic tail bounds per prefix length: cheapest completion
    # cost relative to the prefix's reach rate, minimized over all
    # deeper cut depths (serves the generic extend).
    tails = [0.0] * (n_depths + 1)
    tails[n_depths] = tx[n_depths]
    for k in range(n_depths - 1, -1, -1):
        tails[k] = min(tx[k], cheapest[k] + rates[k] * tails[k + 1])
    # Dual bounds: one tail table per target cut depth d, closing with
    # that depth's exact transmit term instead of the min — T_d[k]
    # lower-bounds the completion of a length-k prefix at exactly depth
    # d, so the depth-d walk can cut strictly more than the min-tail.
    tails_for_depth: list[list[float]] = []
    for d in range(n_depths + 1):
        tail = [0.0] * (d + 1)
        tail[d] = tx[d]
        for k in range(d - 1, -1, -1):
            tail[k] = cheapest[k] + rates[k] * tail[k + 1]
        tails_for_depth.append(tail)
    budget = scenario.energy_budget_j * (1.0 + _ENERGY_BOUND_SLACK)
    sensor = pipeline.sensor_energy_per_frame

    def extend(block_index: int, platform: str, state: tuple[float, float]):
        rate, energy = state
        energy += rate * energy_tables[block_index][platform]
        rate *= rates[block_index]
        if energy + rate * tails[block_index + 1] > budget:
            return PRUNED_SUBTREE
        return (rate, energy)

    def for_depth(depth: int):
        tail = tails_for_depth[depth]

        def extend_at_depth(block_index: int, platform: str, state: tuple[float, float]):
            rate, energy = state
            energy += rate * energy_tables[block_index][platform]
            rate *= rates[block_index]
            if energy + rate * tail[block_index + 1] > budget:
                return PRUNED_SUBTREE
            return (rate, energy)

        return extend_at_depth

    initial_batch = extend_batch = emit_mask = None
    if _np is not None:
        # Batch form of the dual bound. The dual tails are *not*
        # depth-monotone (a prefix cut in the depth-``d`` walk can
        # survive the depth-``d+1`` walk on late-collapsing payload
        # chains), so the batch state carries one accumulated violation
        # column per target cut depth: ``viol_d[i]`` is True iff the
        # scalar depth-``d`` DFS would have cut row ``i``'s prefix at
        # some level walked so far (the |= accumulation mirrors the
        # scalar walk's earliest-cut short-circuit). A row is compacted
        # away only when violated for *every* remaining depth — the
        # exact generic-extend soundness contract — and the emit mask
        # for depth ``d`` is simply ``~viol_d``, reproducing the
        # depth-aware survivor set byte-for-byte.
        energy_columns = [
            option_energy_columns(
                [pipeline.blocks[depth - 1].implementations[name] for name in options]
            )[0]
            for depth, options in enumerate(option_lists, start=1)
        ]

        def initial_batch(n: int) -> tuple:
            return (
                _np.ones(n),
                _np.full(n, sensor),
                *(_np.zeros(n, dtype=bool) for _ in range(n_depths)),
            )

        def extend_batch(block_index: int, choices, state: tuple):
            rate, energy = state[0], state[1]
            viols = list(state[2:])
            energy = energy + rate * energy_columns[block_index][choices]
            rate = rate * rates[block_index]
            prefix_len = block_index + 1
            keep = _np.zeros(len(rate), dtype=bool)
            for d in range(prefix_len, n_depths + 1):
                # tails_for_depth[d][prefix_len] is the scalar walk's
                # tail[block_index + 1]; same floats, same order.
                viol = viols[d - 1] | (
                    energy + rate * tails_for_depth[d][prefix_len] > budget
                )
                viols[d - 1] = viol
                keep |= ~viol
            return (rate, energy, *viols), keep

        def emit_mask(depth: int, state: tuple):
            return ~state[1 + depth]

    return PrefixPruner(
        initial=(1.0, sensor),
        extend=extend,
        for_depth=for_depth,
        initial_batch=initial_batch,
        extend_batch=extend_batch,
        emit_mask=emit_mask,
    )


def shared_capacity_suffix_bounds(
    demands: "list[list[float]] | tuple",
) -> list[float]:
    """Suffix sums of per-member best-case link demand.

    ``demands[i]`` lists member ``i``'s possible transmit rates (bps),
    one per candidate split. Entry ``k`` of the result is the *minimum
    aggregate demand any completion of a length-k joint prefix can add*:
    the sum over members ``k..n-1`` of each member's cheapest candidate.
    This is a true lower bound — every member must pick some candidate,
    and no candidate demands less than the member's min — so pruning a
    joint prefix whose committed demand plus this bound exceeds capacity
    can never drop a feasible joint assignment.
    """
    n = len(demands)
    suffix = [0.0] * (n + 1)
    for index in range(n - 1, -1, -1):
        if not len(demands[index]):
            raise ValueError(
                f"member {index} has no candidate splits; an empty candidate "
                "list makes every joint assignment infeasible — handle it "
                "before building capacity bounds"
            )
        suffix[index] = min(demands[index]) + suffix[index + 1]
    return suffix


def shared_capacity_prefix_pruner(
    demands: "list[list[float]] | tuple",
    capacity_bps: float,
) -> PrefixPruner:
    """Sound lower-bound pruning over *joint* member prefixes.

    The joint-fleet search (:mod:`repro.explore.joint`) walks members in
    fleet order assigning each a candidate split; this pruner reuses the
    :class:`~repro.explore.enumerate.PrefixPruner` shape with level =
    member index and choice = candidate index. The carried state is the
    aggregate demand committed so far; a subtree is cut exactly when::

        committed + demand[member][candidate] + suffix_min[member + 1]
            > capacity_bps

    i.e. when even the best-case completion (every remaining member at
    its cheapest candidate) overflows the shared uplink. Only provably
    infeasible joint assignments are dropped, so the pruned search finds
    the same optimum (and the same first-attaining assignment) as the
    brute-force product walk — the invariant suite checks this against
    an :func:`itertools.product` oracle.
    """
    suffix = shared_capacity_suffix_bounds(demands)

    def extend(member_index: int, candidate_index: int, state: float):
        total = state + demands[member_index][candidate_index]
        if total + suffix[member_index + 1] > capacity_bps:
            return PRUNED_SUBTREE
        return total

    return PrefixPruner(initial=0.0, extend=extend)


def lower_bound_depth_hook(scenario: "Scenario") -> DepthPruneHook | None:
    """The scenario's sound depth pruner, or None when unconstrained.

    Returns a :data:`~repro.explore.enumerate.DepthPruneHook` that
    prunes exactly the depths where the scenario's constraint is
    *provably* unsatisfiable; with no ``target_fps`` / no
    ``energy_budget_j`` there is nothing sound to prune, so None.
    """
    # Bound against the link evaluation will actually use: a pre-built
    # model may carry a different uplink than scenario.link, and bounds
    # derived from the wrong link could prune feasible configurations.
    link = scenario.cost_model().link
    if scenario.domain == "throughput":
        target = scenario.target_fps
        if target is None:
            return None
        bounds = throughput_depth_bounds(scenario.pipeline, link, scenario.max_blocks)
        pruned = [compute < target or comm < target for compute, comm in bounds]
    else:
        budget = scenario.energy_budget_j
        if budget is None:
            return None
        lower = energy_depth_lower_bounds(
            scenario.pipeline,
            link,
            scenario.pass_rates,
            scenario.max_blocks,
        )
        pruned = [bound > budget for bound in lower]

    def hook(depth: int) -> bool:
        return depth < len(pruned) and pruned[depth]

    return hook
