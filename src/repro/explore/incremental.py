"""Prefix-memoized configuration evaluation.

The design space is a trie over platform choices: every depth-``d``
configuration is a depth-``d-1`` prefix plus one block, and both cost
models are prefix-decomposable (see :mod:`repro.core.cost`). Evaluating
each configuration from block 0 therefore repeats work exponentially —
the same sum-of-products structure exploited by the
storage/computation/communication tradeoff literature lets us pay for
each trie *node* once instead of once per descendant leaf.

:class:`PrefixEvaluator` walks an arbitrary configuration sequence
keeping the cost states along the most recent configuration's platform
path. For the engine's enumeration order (and any contiguous chunk of
it) consecutive configurations share all but a suffix of their path, so
the amortized work per configuration is O(1) block extensions instead
of O(depth): across a full enumeration with branching factor *b* the
total number of extensions is ``b/(b-1)`` per configuration. Because
:meth:`~repro.core.cost.ThroughputCostModel.extend_state` replays
exactly the float operations of ``evaluate()`` in the same order,
memoized results are bit-identical to from-scratch ones — the engine's
correctness gate (tests) compares them byte-for-byte.

The evaluator is deliberately sequence-agnostic: it never assumes
enumeration order, it just benefits from it. Out-of-order sequences
(e.g. a user-sorted config list) stay correct and degrade gracefully
toward from-scratch cost.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.core.cost import (
    ConfigCost,
    EnergyCost,
    EnergyCostModel,
    ThroughputCostModel,
)
from repro.core.pipeline import PipelineConfig
from repro.errors import ConfigurationError, PipelineError


def supports_prefix_evaluation(model: Any) -> bool:
    """Whether a model is safe to evaluate through the prefix walk.

    A subclass that overrides ``evaluate()`` (e.g. to post-process
    costs) would be silently bypassed by the incremental path, so only
    models whose ``evaluate`` is the stock prefix fold qualify;
    everything else falls back to per-config ``evaluate()`` calls.
    Subclasses that customize ``extend_state``/``finalize`` while
    keeping the stock ``evaluate`` remain eligible — the walk uses
    their overridden steps.
    """
    if isinstance(model, ThroughputCostModel):
        return type(model).evaluate is ThroughputCostModel.evaluate
    if isinstance(model, EnergyCostModel):
        return type(model).evaluate is EnergyCostModel.evaluate
    return False


def uses_stock_cost_semantics(model: Any) -> bool:
    """Whether *every* cost-defining step of the model is the stock
    implementation — ``evaluate``, ``initial_state``, ``extend_state``
    and ``finalize``.

    Stricter than :func:`supports_prefix_evaluation`: a subclass that
    customizes ``extend_state``/``finalize`` while keeping the stock
    ``evaluate`` is still prefix-eligible (the walk uses its overridden
    steps), but its cost semantics are no longer the raw
    ``Implementation``/link tables — so anything that derives *bounds*
    from those tables (``Scenario.auto_prune`` /
    ``auto_prune_configs``) must require this check, not mere
    prefix-eligibility, or a sound-looking bound could prune
    configurations the model rates feasible.
    """
    steps = ("evaluate", "initial_state", "extend_state", "finalize")
    for base in (ThroughputCostModel, EnergyCostModel):
        if isinstance(model, base):
            cls = type(model)
            return all(getattr(cls, name) is getattr(base, name) for name in steps)
    return False


def depth_link_cost(
    link: Any, energy: bool, cache: dict[int, Any], depth: int, config: PipelineConfig
) -> Any:
    """The per-depth link term, computed once per cut depth and cached.

    The payload crossing the uplink depends only on the cut depth, not
    the platform choices — so the walk caches ``depth -> finalize arg``
    ((transmit joules, transmit seconds) in the energy domain, the
    communication frame rate in the throughput domain). Shared by
    :class:`PrefixEvaluator` and the campaign dedup finalizer
    (:class:`repro.explore.campaign._StateFinalizer`): one definition,
    so the dedup finalize-replay stays expression-identical to solo
    evaluation.
    """
    cached = cache.get(depth)
    if cached is None:
        offload_bytes = config.offload_bytes
        if energy:
            cached = (
                link.tx_energy_for_bytes(offload_bytes),
                link.seconds_for_bytes(offload_bytes),
            )
        else:
            cached = link.fps_for_bytes(offload_bytes)
        cache[depth] = cached
    return cached


class PrefixEvaluator:
    """Evaluate configurations of one pipeline with prefix reuse.

    Parameters
    ----------
    model:
        A :class:`~repro.core.cost.ThroughputCostModel` or
        :class:`~repro.core.cost.EnergyCostModel` (or an eligible
        subclass, see :func:`supports_prefix_evaluation`).
    pass_rates:
        Energy domain only: per-block pass-rate overrides, forwarded to
        every ``extend_state`` step.

    One evaluator serves one pipeline at a time: the memoized path and
    the per-depth link-cost cache are invalidated automatically when a
    configuration of a different pipeline arrives.
    """

    def __init__(
        self,
        model: ThroughputCostModel | EnergyCostModel,
        pass_rates: dict[str, float] | None = None,
    ):
        if pass_rates is not None and not isinstance(model, EnergyCostModel):
            raise ConfigurationError(
                "pass_rates only apply to EnergyCostModel evaluation"
            )
        self.model = model
        self.pass_rates = pass_rates
        self._energy = isinstance(model, EnergyCostModel)
        self._memoized = supports_prefix_evaluation(model)
        self._pipeline = None
        self._platforms: tuple[str, ...] = ()
        self._states: list[Any] = []  # state after in-camera block i
        self._link_costs: dict[int, Any] = {}  # cut depth -> finalize arg
        #: (block index, platform) -> slowest-block label. Keyed by
        #: position, not id(impl): one Implementation object may be
        #: registered on several blocks, and the label names the block.
        self._labels: dict[tuple[int, str], str] = {}

    def _reset(self, pipeline) -> None:
        self._pipeline = pipeline
        self._platforms = ()
        self._states = []
        self._link_costs = {}
        self._labels = {}

    def _invalidate_path(self) -> None:
        """Drop the memoized path after a mid-walk exception: the state
        stack no longer corresponds to ``_platforms``, and a later
        evaluation on this evaluator must not extend from it. The
        per-depth link/label caches stay — they are value-correct
        regardless of the path. Cleared in place: the evaluation loops
        hold local aliases of the stack."""
        self._platforms = ()
        del self._states[:]

    def _link_cost(self, depth: int, config: PipelineConfig) -> Any:
        """Per-depth link term (see :func:`depth_link_cost`)."""
        return depth_link_cost(
            self.model.link, self._energy, self._link_costs, depth, config
        )

    def evaluate(self, config: PipelineConfig) -> ConfigCost | EnergyCost:
        """The configuration's cost, reusing the memoized prefix path."""
        if not self._memoized:
            if self._energy:
                return self.model.evaluate(config, self.pass_rates)
            return self.model.evaluate(config)
        return self.evaluate_many((config,))[0]

    def evaluate_many(
        self, configs: Iterable[PipelineConfig]
    ) -> list[ConfigCost | EnergyCost]:
        """Evaluate a configuration sequence (one executor chunk).

        Semantically ``[self.evaluate(c) for c in configs]`` — the loop
        from :meth:`evaluate` is inlined here with the evaluator state
        held in locals, because per-config attribute loads and method
        dispatch dominate once the amortized extension count drops to
        O(1). The two stock models additionally get fully specialized
        loops (their ``extend_state``/``finalize`` bodies inlined);
        eligible subclasses run the generic memoized walk through their
        overridden steps. The property tests pin every path to
        from-scratch ``model.evaluate`` results, so they cannot drift
        apart.
        """
        if not self._memoized:
            evaluate = self.evaluate
            return [evaluate(config) for config in configs]
        model_type = type(self.model)
        if model_type is ThroughputCostModel:
            return self._throughput_many(configs)
        if model_type is EnergyCostModel:
            return self._energy_many(configs)
        return self._generic_many(configs)

    def _walk_states(
        self, configs: Iterable[PipelineConfig]
    ) -> Iterator[tuple[PipelineConfig, Any]]:
        """The generic memoized walk, lazily: one (config, pre-finalize
        state) pair per configuration, through the model's overridable
        ``initial_state``/``extend_state`` steps.

        The shared core of :meth:`_generic_many` (which finalizes each
        pair as it arrives) and :meth:`states_many` (which returns the
        pairs themselves) — one copy of the common-prefix matching and
        state-stack bookkeeping, so the two paths cannot drift.
        Consumers reading per-config caches (the per-depth link terms)
        must do so before advancing: a pipeline switch mid-sequence
        resets them.
        """
        model = self.model
        energy = self._energy
        pass_rates = self.pass_rates
        extend = model.extend_state
        try:
            for config in configs:
                if config.pipeline is not self._pipeline:
                    self._reset(config.pipeline)
                platforms = config.platforms
                prev = self._platforms
                states = self._states
                n = len(platforms)
                if n and len(prev) >= n - 1 and prev[: n - 1] == platforms[: n - 1]:
                    common = (
                        n
                        if len(prev) >= n and prev[n - 1] == platforms[n - 1]
                        else n - 1
                    )
                else:
                    common = 0
                    for mine, theirs in zip(prev, platforms):
                        if mine != theirs:
                            break
                        common += 1
                if len(states) > common:
                    del states[common:]
                state = states[common - 1] if common else model.initial_state()
                if common < n:
                    blocks = config.pipeline.blocks
                    append = states.append
                    if energy:
                        for i in range(common, n):
                            block = blocks[i]
                            state = extend(
                                state,
                                block,
                                block.implementations[platforms[i]],
                                pass_rates,
                            )
                            append(state)
                    else:
                        for i in range(common, n):
                            block = blocks[i]
                            state = extend(
                                state, block, block.implementations[platforms[i]]
                            )
                            append(state)
                self._platforms = platforms
                yield config, state
        except KeyError:
            # An invalid trusted() platform choice: re-raise as the
            # standard PipelineError the validated path would produce.
            self._invalidate_path()
            config.in_camera_blocks()
            raise
        except BaseException:
            # Also covers GeneratorExit: a consumer that raises (or
            # abandons the walk) between yields leaves the memoized
            # path invalidated, exactly like an in-walk failure.
            self._invalidate_path()
            raise

    def _generic_many(
        self, configs: Iterable[PipelineConfig]
    ) -> list[ConfigCost | EnergyCost]:
        """Memoized walk through the model's extend/finalize methods."""
        finalize = self.model.finalize
        out: list[ConfigCost | EnergyCost] = []
        append_out = out.append
        for config, state in self._walk_states(configs):
            n = len(config.platforms)
            # Re-read the cache each iteration: a pipeline switch inside
            # the walk replaces it.
            link_cost = self._link_costs.get(n)
            if link_cost is None:
                link_cost = self._link_cost(n, config)
            append_out(finalize(state, config, link_cost))
        return out

    def states_many(
        self, configs: Iterable[PipelineConfig]
    ) -> list[tuple[PipelineConfig, Any]]:
        """The memoized walk *stopped before finalize*: one (config,
        prefix state) pair per configuration.

        The state is the model's link-independent compute-side fold —
        ``(min fps, slowest label)`` for throughput, ``(reach rate,
        block energies, active seconds)`` for energy — i.e. everything
        about the configuration's cost that does not depend on the
        uplink. Campaign-level dedup evaluates a shared pipeline's
        states once and finalizes them under each member scenario's own
        link terms; because ``extend_state`` replays exactly the float
        operations of ``evaluate()``, a state finalized under link *L*
        is bit-identical to evaluating the configuration against *L*
        from scratch (the invariant suite asserts this byte for byte).
        Requires a prefix-eligible model (the walk *is* the stock
        ``evaluate`` minus its last step; a custom ``evaluate()`` has no
        well-defined pre-finalize state to share).
        """
        if not self._memoized:
            raise ConfigurationError(
                "states_many needs a prefix-eligible cost model (stock "
                "evaluate); models overriding evaluate() have no "
                "shareable pre-finalize state"
            )
        return list(self._walk_states(configs))

    # The two loops below are _generic_many with the stock models'
    # extend_state/finalize bodies inlined (identical expressions in
    # identical order, so results stay bit-identical — pinned by the
    # property tests). At amortized O(1) extensions per configuration,
    # the per-block method dispatch they remove is the remaining cost.

    def _throughput_many(
        self, configs: Iterable[PipelineConfig]
    ) -> list[ConfigCost]:
        new = object.__new__
        set_field = object.__setattr__
        labels = self._labels
        out: list[ConfigCost] = []
        append_out = out.append
        try:
            for config in configs:
                if config.pipeline is not self._pipeline:
                    self._reset(config.pipeline)
                    labels = self._labels
                platforms = config.platforms
                prev = self._platforms
                states = self._states
                n = len(platforms)
                if n and len(prev) >= n - 1 and prev[: n - 1] == platforms[: n - 1]:
                    common = (
                        n
                        if len(prev) >= n and prev[n - 1] == platforms[n - 1]
                        else n - 1
                    )
                else:
                    common = 0
                    for mine, theirs in zip(prev, platforms):
                        if mine != theirs:
                            break
                        common += 1
                if len(states) > common:
                    del states[common:]
                state = states[common - 1] if common else (float("inf"), "none")
                if common < n:
                    blocks = config.pipeline.blocks
                    append = states.append
                    for i in range(common, n):
                        block = blocks[i]
                        impl = block.implementations[platforms[i]]
                        if impl.fps < state[0]:
                            key = (i, platforms[i])
                            label = labels.get(key)
                            if label is None:
                                label = f"{block.name}({impl.platform})"
                                labels[key] = label
                            state = (impl.fps, label)
                        append(state)
                self._platforms = platforms
                communication_fps = self._link_costs.get(n)
                if communication_fps is None:
                    communication_fps = self._link_cost(n, config)
                cost = new(ConfigCost)
                set_field(cost, "config", config)
                set_field(cost, "compute_fps", state[0])
                set_field(cost, "communication_fps", communication_fps)
                set_field(cost, "slowest_block", state[1])
                append_out(cost)
        except KeyError:
            self._invalidate_path()
            config.in_camera_blocks()
            raise
        except BaseException:
            self._invalidate_path()
            raise
        return out

    def _energy_many(self, configs: Iterable[PipelineConfig]) -> list[EnergyCost]:
        new = object.__new__
        set_field = object.__setattr__
        pass_rates = self.pass_rates
        out: list[EnergyCost] = []
        append_out = out.append
        try:
            for config in configs:
                if config.pipeline is not self._pipeline:
                    self._reset(config.pipeline)
                platforms = config.platforms
                prev = self._platforms
                states = self._states
                n = len(platforms)
                if n and len(prev) >= n - 1 and prev[: n - 1] == platforms[: n - 1]:
                    common = (
                        n
                        if len(prev) >= n and prev[n - 1] == platforms[n - 1]
                        else n - 1
                    )
                else:
                    common = 0
                    for mine, theirs in zip(prev, platforms):
                        if mine != theirs:
                            break
                        common += 1
                if len(states) > common:
                    del states[common:]
                state = states[common - 1] if common else (1.0, (), 0.0)
                if common < n:
                    blocks = config.pipeline.blocks
                    append = states.append
                    rate, energies, active = state
                    for i in range(common, n):
                        block = blocks[i]
                        impl = block.implementations[platforms[i]]
                        energy = rate * impl.energy_per_frame
                        active = active + rate * impl.active_seconds
                        block_rate = (
                            pass_rates.get(block.name, block.pass_rate)
                            if pass_rates is not None
                            else block.pass_rate
                        )
                        if not 0.0 <= block_rate <= 1.0:
                            raise PipelineError(
                                f"pass rate for {block.name!r} must be in [0,1], "
                                f"got {block_rate}"
                            )
                        rate = rate * block_rate
                        energies = energies + ((block.name, energy),)
                        state = (rate, energies, active)
                        append(state)
                self._platforms = platforms
                link_cost = self._link_costs.get(n)
                if link_cost is None:
                    link_cost = self._link_cost(n, config)
                rate, energies, active = state
                cost = new(EnergyCost)
                set_field(cost, "config", config)
                set_field(cost, "sensor_energy", config.pipeline.sensor_energy_per_frame)
                set_field(cost, "block_energies", dict(energies))
                set_field(cost, "transmit_energy", rate * link_cost[0])
                set_field(cost, "transmit_rate", rate)
                set_field(cost, "active_seconds", active + rate * link_cost[1])
                append_out(cost)
        except KeyError:
            self._invalidate_path()
            config.in_camera_blocks()
            raise
        except BaseException:
            self._invalidate_path()
            raise
        return out


def evaluate_chunk(
    model: ThroughputCostModel | EnergyCostModel,
    pass_rates: dict[str, float] | None,
    configs: Sequence[PipelineConfig],
    prefix_cache: Any = None,
    allow_batch: bool = True,
) -> list[ConfigCost | EnergyCost]:
    """Evaluate one contiguous chunk of configurations.

    Module-level (picklable) so the process-pool backend can ship
    chunks to workers; each chunk gets its own evaluator, so memoization
    never crosses chunk boundaries and results are independent of how
    the stream was chunked. Both the solo engine and the campaign
    driver's tagged chunks evaluate through this one function, which is
    why interleaving a fleet (under any scheduling policy) cannot
    change any scenario's values.

    Batch-capable models fold the chunk columnar (bit-identical values,
    see :mod:`repro.explore.vectorized`) unless ``allow_batch`` is
    False; everything else takes the scalar :class:`PrefixEvaluator`.
    ``prefix_cache`` (an optional
    :class:`~repro.explore.vectorized.PrefixStateCache`) lets fleet
    chunks share batched prefix states across scenarios.

    ``configs`` may also be a
    :class:`~repro.explore.vectorized.CohortShard` descriptor instead
    of a config sequence: workers then regenerate the rows locally from
    the flat indices (O(depth) array work, nothing per-row pickled) —
    the shard-eligibility gate guarantees a batch-capable stock model.
    """
    from repro.explore.vectorized import CohortShard, batch_prefix_evaluator

    if isinstance(configs, CohortShard):
        batch = batch_prefix_evaluator(model, pass_rates, prefix_cache)
        if batch is None:
            raise ConfigurationError(
                "CohortShard evaluation requires a batch-capable cost model"
            )
        return batch.evaluate_shard(configs)
    if allow_batch:
        batch = batch_prefix_evaluator(model, pass_rates, prefix_cache)
        if batch is not None:
            return batch.evaluate_many(configs)
    return PrefixEvaluator(model, pass_rates).evaluate_many(configs)


def evaluate_chunk_states(
    model: ThroughputCostModel | EnergyCostModel,
    pass_rates: dict[str, float] | None,
    configs: Sequence[PipelineConfig],
    prefix_cache: Any = None,
    allow_batch: bool = True,
) -> Any:
    """Chunk-shaped :meth:`PrefixEvaluator.states_many` (module-level
    for process-pool picklability) — the dedup counterpart of
    :func:`evaluate_chunk`: the campaign driver ships a shared
    pipeline's chunks through this when several scenarios will finalize
    the same compute-side states under their own links.

    Batch-capable models return the states columnar as a
    :class:`~repro.explore.vectorized.BatchChunkStates` (the finalizer
    branches on the type) whose segments carry the decoded choice
    matrix and per-level platform names alongside each depth-cohort
    state — everything a member needs to wrap the shared state in a
    lazy :class:`~repro.explore.vectorized.BatchRows` view after a
    multi-link ``finalize_batch_multi`` without re-deriving configs;
    the scalar walk returns (config, state) pairs as before. Like
    :func:`evaluate_chunk`, ``configs`` may be a
    :class:`~repro.explore.vectorized.CohortShard` the worker decodes
    locally.
    """
    from repro.explore.vectorized import CohortShard, batch_prefix_evaluator

    if isinstance(configs, CohortShard):
        batch = batch_prefix_evaluator(model, pass_rates, prefix_cache)
        if batch is None:
            raise ConfigurationError(
                "CohortShard evaluation requires a batch-capable cost model"
            )
        return batch.states_shard(configs)
    if allow_batch:
        batch = batch_prefix_evaluator(model, pass_rates, prefix_cache)
        if batch is not None:
            return batch.states_chunk(configs)
    return PrefixEvaluator(model, pass_rates).states_many(configs)
