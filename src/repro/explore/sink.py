"""Streaming result sinks: write exploration rows as chunks complete.

:class:`~repro.explore.result.ExplorationResult` already exports lazily,
but the engine used to collect every evaluation before the result
existed — an export-only workload still paid for the full cache. A
:class:`ResultSink` receives report rows *while the engine streams*, so
``explore(..., sink=..., collect=False)`` and export-only campaigns run
in memory bounded by the chunk window, never by the design-space size.

The file sinks reproduce the result-object exports exactly:
:class:`CsvSink` output is byte-identical to
:meth:`ExplorationResult.to_csv`, and every :class:`JsonlSink` line is
the compact serialization of the corresponding row object inside
:meth:`ExplorationResult.to_json` (same key order, same non-finite-float
mapping, so parsing the lines yields exactly that export's ``rows``) —
one row per line instead of one indented document, so a million-row
export can be consumed incrementally by downstream tooling.

Lifecycle: the engine calls :meth:`ResultSink.open` once before the
first chunk, :meth:`ResultSink.write_rows` once per completed chunk (in
enumeration order), and :meth:`ResultSink.close` exactly once, also on
error. Sinks are single-use: one open/close cycle per exploration.
"""

from __future__ import annotations

import csv
import io
import json
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence, TextIO

from repro.core.report import TextTable
from repro.errors import ConfigurationError, SinkError
from repro.explore.result import DEFAULT_AXES, ParetoFrontier, TopK, json_safe_value

if TYPE_CHECKING:  # imported lazily to avoid an import cycle
    from repro.explore.scenario import Scenario


class ResultSink:
    """Consumer of streamed exploration rows (subclass or duck-type).

    The default :meth:`open`/:meth:`close` do nothing, so a minimal sink
    only implements :meth:`write_rows`. Exceptions raised by a sink
    method abort the exploration and surface as
    :class:`repro.errors.SinkError` with the scenario named.
    """

    def open(self, scenario: "Scenario | None") -> None:
        """Called once before the first chunk. ``scenario`` is None for
        scenario-less streams (e.g. ``parameter_sweep`` pass-through)."""

    def write_rows(self, rows: Sequence[dict[str, Any]]) -> None:
        """Called once per completed chunk with its report rows, in
        enumeration order."""
        raise NotImplementedError

    def write_batch(self, batch: Any) -> None:
        """Called instead of :meth:`write_rows` when the engine streams
        columnar :class:`~repro.explore.vectorized.BatchRows` views.

        The default materializes the batch's rows and delegates to
        :meth:`write_rows`, so every sink works on the batch path
        unchanged; sinks that can consume columns directly
        (:class:`ParetoSink`, :class:`TopKSink`) override this to keep
        materialized rows bounded by their survivors.
        """
        self.write_rows(batch.rows())

    def close(self) -> None:
        """Called exactly once when the stream ends — also on error, so
        file handles are never leaked and partial output is flushed."""


class _FileSink(ResultSink):
    """Shared path-or-handle plumbing for the file-format sinks."""

    def __init__(self, target: str | TextIO):
        self._target = target
        self._handle: TextIO | None = None
        self._owns_handle = False
        self._opened = False

    def open(self, scenario: "Scenario | None") -> None:
        if self._opened:
            raise ConfigurationError(
                f"{type(self).__name__} is single-use; create a new sink "
                "per exploration"
            )
        self._opened = True
        if isinstance(self._target, str):
            self._handle = open(self._target, "w", encoding="utf-8", newline="")
            self._owns_handle = True
        else:
            self._handle = self._target

    def _require_handle(self) -> TextIO:
        if self._handle is None:
            raise ConfigurationError(
                f"{type(self).__name__}.write_rows called before open()"
            )
        return self._handle

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is None:
            return
        if self._owns_handle:
            handle.close()
        else:
            # Caller-owned handles stay open, but the close contract
            # promises partial output is flushed — push buffered rows
            # through so the file is complete the moment we report done.
            flush = getattr(handle, "flush", None)
            if flush is not None:
                flush()


class CsvSink(_FileSink):
    """Stream rows as CSV, byte-identical to
    :meth:`ExplorationResult.to_csv`.

    Columns are locked when the header is written — from ``columns`` if
    given, else from the first row's keys (engine rows are homogeneous
    per domain — exactly what ``ExplorationResult.columns()`` returns) —
    and cells are formatted through :meth:`TextTable._format`, so
    concatenating the streamed output reproduces the eager export byte
    for byte. Rows missing a column render as ``-``, as in
    :meth:`TextTable.add_row`; a row carrying keys *outside* the locked
    columns raises (a streamed header cannot be widened after the fact,
    and silently dropping values would corrupt the export) — pass
    ``columns=`` up front or use :class:`JsonlSink` for heterogeneous
    rows (e.g. a ``parameter_sweep`` whose fn varies its keys).
    """

    def __init__(self, target: str | TextIO, columns: Sequence[str] | None = None):
        super().__init__(target)
        self._columns: list[str] | None = list(columns) if columns else None
        self._colset: frozenset[str] | None = (
            frozenset(self._columns) if self._columns else None
        )
        self._writer: Any = None

    def open(self, scenario: "Scenario | None") -> None:
        super().open(scenario)
        if self._columns is not None:
            # Explicit columns: the header does not depend on any row,
            # so write it up front — an empty stream still produces a
            # valid (header-only) CSV instead of a zero-byte file.
            self._writer = csv.writer(self._require_handle(), lineterminator="\n")
            self._writer.writerow(self._columns)

    def write_rows(self, rows: Sequence[dict[str, Any]]) -> None:
        if not rows:
            return
        handle = self._require_handle()
        if self._writer is None:
            self._columns = list(rows[0])
            self._colset = frozenset(self._columns)
            self._writer = csv.writer(handle, lineterminator="\n")
            self._writer.writerow(self._columns)
        colset = self._colset
        for row in rows:
            if not colset.issuperset(row):
                extra = sorted(set(row) - colset)
                raise ConfigurationError(
                    f"row keys {extra} are outside the CSV columns locked "
                    f"at the header ({self._columns}); pass columns= to "
                    "CsvSink or stream heterogeneous rows through JsonlSink"
                )
        fmt = TextTable._format
        self._writer.writerows(
            [fmt(row.get(column, "-")) for column in self._columns] for row in rows
        )


class JsonlSink(_FileSink):
    """Stream rows as JSON Lines (one compact object per line).

    Values pass through the same :func:`json_safe_value` mapping as
    :meth:`ExplorationResult.to_json`, and key order is preserved, so
    parsing the streamed lines yields exactly that export's ``rows``
    array (the serialization itself is compact, not ``indent=2``).
    Strictly valid JSON per line (``allow_nan=False``).
    """

    def write_rows(self, rows: Sequence[dict[str, Any]]) -> None:
        if not rows:
            return
        handle = self._require_handle()
        lines = []
        for row in rows:
            safe = {key: json_safe_value(value) for key, value in row.items()}
            lines.append(json.dumps(safe, allow_nan=False))
            lines.append("\n")
        handle.write("".join(lines))


class CallbackSink(ResultSink):
    """Hand every chunk's rows to a callable (dashboards, queues, ad-hoc
    accumulation). The callable receives the row list of one chunk; it
    must not mutate the rows it is shown."""

    def __init__(self, callback: Callable[[Sequence[dict[str, Any]]], None]):
        if not callable(callback):
            raise ConfigurationError(
                f"callback must be callable, got {type(callback).__name__}"
            )
        self._callback = callback

    def write_rows(self, rows: Sequence[dict[str, Any]]) -> None:
        self._callback(rows)


class ParetoSink(ResultSink):
    """Maintain an online Pareto frontier of the streamed rows.

    The streaming counterpart of :meth:`ExplorationResult.pareto`: rows
    fold into a :class:`~repro.explore.result.ParetoFrontier` chunk by
    chunk, so an export-only (``collect=False``) run still answers the
    frontier question — memory is bounded by the frontier size, never
    the design-space size. Axes default to the scenario's domain axes
    at :meth:`open` (like ``pareto()`` with no arguments); pass explicit
    ``axes``/``maximize`` for custom frontiers or scenario-less streams.

    After the run, :attr:`frontier` holds the maintained
    :class:`ParetoFrontier`; :meth:`pareto` returns its rows — exactly
    :func:`~repro.explore.result.pareto_filter` over every streamed row
    (tested identical to the collected-mode frontier).
    """

    def __init__(
        self,
        axes: Sequence[str] | None = None,
        maximize: bool | Sequence[bool] | None = None,
    ):
        self._axes = tuple(axes) if axes is not None else None
        self._maximize = maximize
        self.frontier: ParetoFrontier | None = None
        if self._axes is not None:
            self.frontier = ParetoFrontier(
                self._axes, True if maximize is None else maximize
            )

    def open(self, scenario: "Scenario | None") -> None:
        if self.frontier is not None:
            return  # explicit axes: scenario-independent
        if scenario is None:
            raise ConfigurationError(
                "ParetoSink needs axes= for scenario-less streams (no "
                "domain to take the default frontier axes from)"
            )
        axes, default_flag = DEFAULT_AXES[scenario.domain]
        maximize = default_flag if self._maximize is None else self._maximize
        self.frontier = ParetoFrontier(axes, maximize)

    def write_rows(self, rows: Sequence[dict[str, Any]]) -> None:
        if self.frontier is None:
            raise ConfigurationError(
                "ParetoSink.write_rows called before open()"
            )
        self.frontier.add(rows)

    def write_batch(self, batch: Any) -> None:
        """Fold a columnar batch through
        :meth:`ParetoFrontier.add_batch` — only rows surviving the
        dominance prefilter are ever materialized."""
        if self.frontier is None:
            raise ConfigurationError(
                "ParetoSink.write_batch called before open()"
            )
        self.frontier.add_batch(batch)

    def pareto(self) -> list[dict[str, Any]]:
        """The non-dominated rows streamed so far (first-seen order)."""
        return [] if self.frontier is None else self.frontier.rows


class TopKSink(ResultSink):
    """Maintain bounded online top-k rankings of the streamed rows.

    The ranking counterpart of :class:`ParetoSink`, with one bounded
    heap per requested metric: rows fold into
    :class:`~repro.explore.result.TopK` instances chunk by chunk, so an
    export-only (``collect=False``) run still answers
    ``result.top_k(metric, k)``-shaped questions — memory is bounded by
    ``k`` per metric, never by the design-space size, and the rankings
    are row-for-row identical to the batch
    :meth:`ExplorationResult.top_k` over the same rows (the invariant
    suite asserts it).

    Parameters
    ----------
    metric / k / maximize:
        The single-ranking form, mirroring ``top_k``'s signature:
        ``TopKSink("total_fps", k=5)``.
    metrics:
        The multi-ranking form: ``(metric, k, maximize)`` triples, one
        bounded heap each — a dashboard tracks several leaderboards
        through one sink. Exactly one of ``metric``/``metrics`` must be
        given.
    """

    def __init__(
        self,
        metric: str | None = None,
        k: int = 5,
        maximize: bool = True,
        *,
        metrics: Sequence[tuple[str, int, bool]] | None = None,
    ):
        if (metric is None) == (metrics is None):
            raise ConfigurationError(
                "pass exactly one of metric= (single ranking) or "
                "metrics= (several (metric, k, maximize) rankings)"
            )
        if metric is not None:
            metrics = ((metric, k, maximize),)
        rankings: dict[str, TopK] = {}
        for spec in metrics:
            if not isinstance(spec, (tuple, list)) or len(spec) != 3:
                raise ConfigurationError(
                    "each metrics= entry must be a (metric, k, maximize) "
                    f"triple, got {spec!r}"
                )
            name, bound, flag = spec
            if name in rankings:
                raise ConfigurationError(f"duplicate top-k metric {name!r}")
            rankings[name] = TopK(name, bound, flag)
        self.rankings = rankings

    def write_rows(self, rows: Sequence[dict[str, Any]]) -> None:
        for ranking in self.rankings.values():
            ranking.add(rows)

    def write_batch(self, batch: Any) -> None:
        """Fold a columnar batch through each ranking's
        :meth:`TopK.add_batch` — only candidate rows beating the current
        cutoff are ever materialized."""
        for ranking in self.rankings.values():
            ranking.add_batch(batch)

    def top_k(self, metric: str | None = None) -> list[dict[str, Any]]:
        """The current best-``k`` rows for ``metric`` (the only tracked
        metric when omitted), best first — exactly what the batch
        ``top_k`` would return over the streamed rows."""
        if metric is None:
            if len(self.rankings) != 1:
                raise ConfigurationError(
                    f"this sink tracks {sorted(self.rankings)}; name the "
                    "metric to report"
                )
            metric = next(iter(self.rankings))
        if metric not in self.rankings:
            raise ConfigurationError(
                f"metric {metric!r} is not tracked; this sink tracks "
                f"{sorted(self.rankings)}"
            )
        return self.rankings[metric].rows


class MemorySink(ResultSink):
    """Accumulate all streamed rows in memory (tests, small spaces).

    The in-memory counterpart of the file sinks: after the run,
    :attr:`rows` is the full row list in enumeration order — what
    ``ExplorationResult.rows`` would have held.
    """

    def __init__(self) -> None:
        self.rows: list[dict[str, Any]] = []
        self.chunks = 0

    def write_rows(self, rows: Sequence[dict[str, Any]]) -> None:
        self.chunks += 1
        self.rows.extend(rows)


def resolve_sink(sink: Any) -> ResultSink | None:
    """Validate a ``sink=`` argument: None, a ResultSink, or any object
    with a callable ``write_rows`` (duck-typed custom sinks)."""
    if sink is None or isinstance(sink, ResultSink):
        return sink
    if callable(getattr(sink, "write_rows", None)):
        return sink
    raise ConfigurationError(
        "sink must be a ResultSink (or provide write_rows), got "
        f"{type(sink).__name__}"
    )


def open_sink(sink: Any, scenario: "Scenario | None", label: str) -> None:
    """Open a sink (tolerating duck-typed sinks without ``open``);
    failures surface as :class:`SinkError` naming the stream."""
    method = getattr(sink, "open", None)
    if method is None:
        return
    try:
        method(scenario)
    except SinkError:
        raise
    except Exception as exc:
        raise SinkError(f"sink {type(sink).__name__} failed to open for {label}") from exc


def write_sink(sink: Any, rows: Sequence[dict[str, Any]], label: str) -> None:
    """Write one chunk's rows; failures surface as :class:`SinkError`."""
    try:
        sink.write_rows(rows)
    except SinkError:
        raise
    except Exception as exc:
        raise SinkError(
            f"sink {type(sink).__name__} failed writing rows for {label}"
        ) from exc


def uses_columnar_writes(sink: Any) -> bool:
    """Whether the sink consumes columnar batches natively — i.e. it
    overrides :meth:`ResultSink.write_batch` rather than inheriting the
    materialize-and-delegate default. Row-only sinks keep the exact
    write-per-chunk granularity the streaming contract promises (the
    engine buffers rows to chunk boundaries for them); columnar sinks
    receive the lazy batch views directly."""
    if "write_batch" in getattr(sink, "__dict__", {}):
        return True
    method = getattr(type(sink), "write_batch", None)
    return method is not None and method is not ResultSink.write_batch


def write_sink_batch(sink: Any, batch: Any, label: str) -> None:
    """Write one columnar batch; sinks without ``write_batch``
    (duck-typed ``write_rows``-only sinks) receive the materialized
    rows. Batches arrive member-tagged — solo explores and campaign
    dedup members alike hand each sink ``BatchRows`` carrying that
    member's own scenario, so materialized rows and metric columns are
    indistinguishable from a solo run's. Failures surface as
    :class:`SinkError`."""
    method = getattr(sink, "write_batch", None)
    if method is None:
        write_sink(sink, batch.rows(), label)
        return
    try:
        method(batch)
    except SinkError:
        raise
    except Exception as exc:
        raise SinkError(
            f"sink {type(sink).__name__} failed writing rows for {label}"
        ) from exc


def close_sink(sink: Any, label: str) -> None:
    """Close a sink (tolerating sinks without ``close``); failures
    surface as :class:`SinkError` naming the stream."""
    method = getattr(sink, "close", None)
    if method is None:
        return
    try:
        method()
    except SinkError:
        raise
    except Exception as exc:
        raise SinkError(f"sink {type(sink).__name__} failed to close for {label}") from exc


@contextmanager
def sink_stream(
    sink: Any, scenario: "Scenario | None", label: str
) -> Iterator[Callable[[Sequence[dict[str, Any]]], None] | None]:
    """One-sink streaming session: open on entry, yield a writer, close
    on exit — with the error-masking rule every consumer needs (a close
    failure surfaces only when no in-flight error is already
    propagating). Yields None when ``sink`` is None so callers can gate
    row construction on the writer without a separate code path.
    """
    if sink is None:
        yield None
        return
    open_sink(sink, scenario, label)
    error: BaseException | None = None
    try:
        yield lambda rows: write_sink(sink, rows, label)
    except BaseException as exc:
        error = exc
        raise
    finally:
        try:
            close_sink(sink, label)
        except Exception:
            if error is None:
                raise
            # The in-flight error is the primary failure; a close error
            # during unwind must not mask it.


def csv_text(rows: Iterable[dict[str, Any]]) -> str:
    """Render rows to CSV text through a :class:`CsvSink` (helper for
    tests and ad-hoc use; same bytes as streaming to a file)."""
    buffer = io.StringIO()
    sink = CsvSink(buffer)
    sink.open(None)
    sink.write_rows(list(rows))
    sink.close()
    return buffer.getvalue()
