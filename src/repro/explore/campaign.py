"""Batch exploration campaigns: many scenarios, one shared executor.

The paper explores one design space at a time; a production exploration
service faces *fleets* of them — every camera product, link tier and
power budget is its own scenario. Running N solo ``explore()`` calls
costs N pools and serializes the fleet; a :class:`Campaign` shards all
scenarios across **one** :class:`~repro.explore.executor.SweepExecutor`
by interleaving their configuration chunks through ``imap`` under a
pluggable :class:`~repro.explore.scheduling.SchedulingPolicy`
(round-robin by default; policies live in
:mod:`repro.explore.scheduling` and the driver feeds every collected
chunk's *measured* evaluation latency back through their ``observe``
channel — :class:`~repro.explore.scheduling.AdaptiveLatency` schedules
on it), so every worker stays busy until the whole fleet is done and a
campaign of N scenarios costs one pool, not N.

Dedup contract: with ``dedup=True``, scenarios whose
:func:`scenario_compute_key`s match (the same pipeline and platform
axis at different links — the design-space-sweep fleet shape) share one
evaluation pass: the group's leader evaluates pre-finalize compute
states, and every member's costs are finalized under its own per-depth
link terms by the :class:`PipelineCostCache`. Because the finalize
replays exactly the solo evaluation's float operations, per-scenario
results stay byte-identical to ``dedup=False`` and to solo
``explore()`` — the invariant suite asserts it over seeded random
fleets. :attr:`CampaignResult.cache_stats` reports evaluations skipped.
By default the group finalize is *columnar and lazy* end to end: each
shared :class:`~repro.explore.vectorized.BatchChunkStates` segment is
closed for all members at once by one ``finalize_batch_multi``
broadcast (an ``(n_members, n_rows)`` sweep of the member link terms)
and members hand their consumers lazy member-tagged
:class:`~repro.explore.vectorized.BatchRows` views — under
``collect=False`` with columnar sinks a fleet of N links materializes
only frontier/heap survivors, never N x rows Python objects
(``dedup="materialize"`` keeps the per-member materialized finalize
for comparison). Scalar state payloads (non-batch models, numpy-less
installs) fall back to the per-member scalar finalize transparently.

Sharding contract: on a parallel executor, shard-eligible scenarios
(stock batch semantics with a batch-capable — or absent — pruner)
stream compact :class:`~repro.explore.vectorized.CohortShard`
descriptors through the interleaver instead of materialized config
lists; workers regenerate each chunk's rows locally from the flat
index ranges (O(depth) array rebuilds), so a process pool pickles a
few integers per chunk rather than per-config tuples. Results remain
byte-identical to the materialized stream — the shard decode replays
enumeration order exactly.

Backpressure contract: ``iter_runs(max_pending_runs=k)`` bounds how far
the fleet may be fed into the executor ahead of the consumer — once
``k`` scenarios are fully submitted without their runs having been
consumed, chunk submission pauses (the pool drains its in-flight window
and genuinely idles) until the consumer pulls the next run.

Correctness contract: chunks are tagged with their scenario and each is
evaluated by a chunk-local
:class:`~repro.explore.incremental.PrefixEvaluator` (memoization never
crosses scenarios), and ``imap`` returns results in submission order —
so each scenario's evaluations land in its own enumeration order and
are byte-identical to a solo ``explore()`` of the same scenario,
regardless of worker count or how the fleet was interleaved (tests
compare them byte for byte). Scheduling policies only reorder *which
scenario's* chunk is submitted next, never the chunks within one
scenario, so every builtin policy preserves that identity.

Streaming contract: :meth:`Campaign.iter_runs` yields each
:class:`ScenarioRun` the moment its last chunk lands — a dashboard
renders the first finished scenario while the rest of the fleet is
still evaluating — and :meth:`Campaign.run` is a drain over it.
Per-scenario :class:`~repro.explore.sink.ResultSink` outputs receive
rows as that scenario's chunks complete (and are closed/flushed the
moment their scenario finishes), and ``collect=False`` keeps only
running statistics (evaluated count, feasible count, best row, and an
online :class:`~repro.explore.result.ParetoFrontier`) — an export-only
campaign's peak memory is set by the chunk window plus the frontier
size, never by the fleet's combined design-space size. A sink failure
aborts the campaign with a clear :class:`~repro.errors.SinkError`
naming the scenario; every other scenario's sink is still closed
(flushed), so one bad sink never corrupts the rest of the fleet's
outputs. Abandoning ``iter_runs()`` mid-fleet closes the executor
stream and every open sink the same way.
"""

from __future__ import annotations

import gc
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

try:  # numpy backs the lazy dedup folds; everything else is scalar-safe
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from repro.core.cost import platform_axis_fingerprint
from repro.core.report import TextTable, campaign_summary_table
from repro.errors import ConfigurationError, PipelineError
from repro.explore.engine import (
    DEFAULT_CHUNK_SIZE,
    _chunked,
    _evaluate_scratch,
    _gc_paused,
    _shard_eligible,
)
from repro.explore.executor import (
    SweepExecutor,
    auto_chunk_size,
    resolve_executor,
)
from repro.explore.incremental import (
    depth_link_cost,
    evaluate_chunk,
    evaluate_chunk_states,
    supports_prefix_evaluation,
)
from repro.explore.result import (
    DEFAULT_AXES,
    ExplorationResult,
    ParetoFrontier,
    cost_row,
    domain_frontier,
)
from repro.explore.scenario import Scenario
from repro.explore.vectorized import (
    BatchChunkStates,
    BatchRows,
    PrefixStateCache,
    _materialize_costs,
    iter_scenario_shards,
)

# Scheduling policies grew into their own module (repro.explore.
# scheduling) when the measured-latency feedback channel landed; the
# re-exports keep every existing `from repro.explore.campaign import
# RoundRobin`-style import working.
from repro.explore.scheduling import (
    SCHEDULING_POLICIES,  # noqa: F401  (re-exported API)
    AdaptiveLatency,  # noqa: F401  (re-exported API)
    PriorityWeighted,  # noqa: F401  (re-exported API)
    RoundRobin,
    SchedulingPolicy,
    ShortestScenarioFirst,  # noqa: F401  (re-exported API)
    observe_policy,
    resolve_policy,
)
from repro.explore.sink import (
    close_sink,
    open_sink,
    resolve_sink,
    uses_columnar_writes,
    write_sink,
    write_sink_batch,
)

# -- chunk plumbing -----------------------------------------------------

#: Chunk evaluation modes carried in a tagged chunk's spec: the stock
#: prefix-memoized path, the from-scratch fallback for models overriding
#: evaluate(), and the dedup path that returns pre-finalize states for
#: the collector to close under each member scenario's own link.
_MODE_MEMOIZED = "memoized"
_MODE_SCRATCH = "scratch"
_MODE_STATES = "states"

#: One tagged chunk's spec: (model, pass_rates, mode, prefix_cache).
#: ``prefix_cache`` is the fleet-shared
#: :class:`~repro.explore.vectorized.PrefixStateCache` (trie-keyed
#: partial prefix dedup across scenarios) on serial/thread backends, or
#: None — process pools would pickle private per-task copies, sharing
#: nothing, so the driver does not offer it there.
_ChunkSpec = tuple[Any, "dict[str, float] | None", str, Any]


def _evaluate_tagged_chunk(
    tagged: tuple[int, _ChunkSpec, list[Any]],
) -> tuple[int, Any, float]:
    """Evaluate one scenario-tagged chunk (module-level for process-pool
    picklability). The tagged item carries *its own* scenario's (model,
    pass_rates, mode, prefix_cache) spec — not the whole fleet's — so a
    process backend serializes one model per task, same as solo
    ``explore()``; the index travels with the results so the collector
    can route them back to their scenario, and the measured wall-clock
    evaluation seconds (clocked inside the worker, so pool queueing is
    excluded) feed the scheduling policy's ``observe`` channel."""
    index, (model, pass_rates, mode, prefix_cache), configs = tagged
    begin = time.perf_counter()
    if mode == _MODE_STATES:
        payload: Any = evaluate_chunk_states(model, pass_rates, configs, prefix_cache)
    elif mode == _MODE_MEMOIZED:
        payload = evaluate_chunk(model, pass_rates, configs, prefix_cache)
    else:
        payload = [_evaluate_scratch(model, pass_rates, config) for config in configs]
    return index, payload, time.perf_counter() - begin


# -- cross-scenario evaluation dedup ------------------------------------


def scenario_compute_key(scenario: Scenario) -> tuple | None:
    """The scenario's *compute identity* for campaign-level dedup, or
    None when it is ineligible for sharing.

    Two scenarios with equal keys enumerate the same configuration
    stream and fold identical compute-side prefix states — everything
    about their evaluations except the per-depth link terms — so a fleet
    can evaluate the states once and finalize them under each member's
    own uplink. The key is ``(pipeline chain fingerprint, platform-axis
    fingerprint, domain, enumeration bounds, pass-rate overrides)``;
    the link is deliberately absent (sharing across links is the whole
    point) and the two fingerprints are deliberately separate — a pair
    of structurally identical pipelines with different implementation
    prices must never share entries (the cache-poisoning guard tests
    pin this).

    Ineligible (returns None): scenarios with a pre-built ``model``
    (its cost semantics — and its link — are the subclass's business),
    and scenarios with any pruning (``prune`` / ``prune_depth`` hooks,
    ``auto_prune``, ``auto_prune_configs``): pruned streams depend on
    the constraint *and the link*, so two members of a would-be group
    can enumerate different subsequences.
    """
    if scenario.model is not None:
        return None
    if scenario.prune is not None or scenario.prune_depth is not None:
        return None
    if scenario.auto_prune or scenario.auto_prune_configs:
        return None
    pass_rates = (
        tuple(sorted(scenario.pass_rates.items()))
        if scenario.pass_rates is not None
        else None
    )
    return (
        scenario.pipeline.fingerprint(),
        platform_axis_fingerprint(scenario.pipeline),
        scenario.domain,
        scenario.max_blocks,
        scenario.include_empty,
        pass_rates,
    )


class _StateFinalizer:
    """Close shared compute-side prefix states under one scenario's own
    per-depth link terms.

    Delegates to the *stock* ``model.finalize`` (the definition the
    memoized walks are tested bit-identical against) with the link term
    from the one shared :func:`~repro.explore.incremental.
    depth_link_cost` definition — so a state evaluated once for a dedup
    group and finalized here is bit-identical to evaluating the
    configuration solo against this scenario's link (the invariant
    suite compares them byte for byte), and a future cost-field change
    lands here automatically instead of in a third hand-inlined copy.
    """

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self._model = scenario.cost_model()
        self._energy = scenario.domain == "energy"
        self._link_costs: dict[int, Any] = {}  # cut depth -> finalize arg

    def link_cost(self, depth: int, config: Any) -> Any:
        """This scenario's per-depth finalize argument (cached): the
        communication rate (throughput) or (transmit joules, transmit
        seconds) pair (energy) of the cut-depth payload."""
        return depth_link_cost(
            self._model.link, self._energy, self._link_costs, depth, config
        )

    def finalize(self, payload: Any) -> list[Any]:
        model = self._model
        link, energy, cache = model.link, self._energy, self._link_costs
        if isinstance(payload, BatchChunkStates):
            # Columnar leader states: close each same-depth run with one
            # finalize_batch call and materialize through the same field
            # definitions the batch evaluator uses — bit-identical to
            # finalizing each (config, state) pair through the scalar
            # ``finalize`` below.
            out: list[Any] = []
            for configs, depth, state, _choices, _names in payload.segments:
                link_cost = depth_link_cost(link, energy, cache, depth, configs[0])
                out.extend(
                    _materialize_costs(
                        configs, model.finalize_batch(state, link_cost), energy
                    )
                )
            return out
        finalize = model.finalize
        out = []
        append_out = out.append
        for config, state in payload:
            link_cost = depth_link_cost(
                link, energy, cache, len(config.platforms), config
            )
            append_out(finalize(state, config, link_cost))
        return out


class PipelineCostCache:
    """Campaign-level cross-scenario evaluation dedup.

    Fleets routinely carry the same pipeline at several links (the
    design-space sweep shape: one product, every uplink tier); their
    compute-side costs are link-independent, so evaluating each scenario
    solo recomputes identical prefix folds once per link. This cache
    groups a fleet's scenarios by :func:`scenario_compute_key`; each
    group's *leader* (first in fleet order) evaluates its chunks into
    pre-finalize states (:func:`~repro.explore.incremental.
    evaluate_chunk_states`), and every member — leader and followers —
    gets the states closed under its own link terms by a
    :class:`_StateFinalizer`. Followers never enter the interleaver:
    their chunks mirror the leader's the moment each leader chunk
    lands, preserving streaming, per-scenario enumeration order, sinks
    and export-only mode unchanged.

    The dedup outcome is surfaced through
    :attr:`CampaignResult.cache_stats`, derived from each run's
    ``dedup_source`` provenance — one source of truth, no separate
    counters to drift.
    """

    def __init__(self, scenarios: Sequence[Scenario]):
        self.leader_of: dict[int, int] = {}
        self.followers_of: dict[int, list[int]] = {}
        by_key: dict[tuple, int] = {}
        for index, scenario in enumerate(scenarios):
            key = scenario_compute_key(scenario)
            if key is None:
                continue
            leader = by_key.setdefault(key, index)
            if leader != index:
                self.leader_of[index] = leader
                self.followers_of.setdefault(leader, []).append(index)
        self._finalizers: dict[int, _StateFinalizer] = {}
        for leader, followers in self.followers_of.items():
            for member in (leader, *followers):
                self._finalizers[member] = _StateFinalizer(scenarios[member])

    @property
    def follower_indices(self) -> frozenset[int]:
        return frozenset(self.leader_of)

    def is_shared_leader(self, index: int) -> bool:
        """Whether this scenario evaluates states on behalf of a group."""
        return index in self.followers_of

    def members_of(self, leader: int) -> tuple[int, ...]:
        """The group's member indices, leader first, in fleet order."""
        return (leader, *self.followers_of.get(leader, ()))

    def finalize(self, index: int, payload: Any) -> list[Any]:
        """Scenario ``index``'s costs for one shared chunk of states —
        scalar (config, state) pairs or a columnar
        :class:`~repro.explore.vectorized.BatchChunkStates` — fully
        materialized (the ``dedup="materialize"`` path)."""
        return self._finalizers[index].finalize(payload)

    def finalize_group(
        self, leader: int, payload: BatchChunkStates
    ) -> list[list[BatchRows]]:
        """Every member's lazy :class:`~repro.explore.vectorized.
        BatchRows` views of one leader chunk, in :meth:`members_of`
        order — the columnar end of the dedup path.

        Each segment's shared state closes under the whole group's link
        terms with ONE ``finalize_batch_multi`` broadcast (the per-cell
        float operations replay each member's scalar finalize exactly,
        so member rows stay bit-identical to a solo walk), and every
        member's view shares the segment's choice matrix and
        compute-side columns by reference. Nothing per-row is
        materialized here: consumers (columnar sinks, streaming stats)
        materialize survivors only.
        """
        members = self.members_of(leader)
        finalizers = [self._finalizers[member] for member in members]
        model = finalizers[0]._model
        energy = payload.energy
        out: list[list[BatchRows]] = [[] for _ in members]
        for configs, depth, state, choices, names in payload.segments:
            stack = [
                finalizer.link_cost(depth, configs[0]) for finalizer in finalizers
            ]
            columns_stack = model.finalize_batch_multi(state, stack)
            pipeline = configs[0].pipeline
            for slot, (finalizer, columns) in enumerate(
                zip(finalizers, columns_stack)
            ):
                out[slot].append(
                    BatchRows(
                        finalizer.scenario,
                        pipeline,
                        depth,
                        names,
                        choices,
                        columns,
                        energy,
                    )
                )
        return out


class _FleetProgress:
    """Chunk bookkeeping behind completion detection: a scenario is
    complete when its stream is known exhausted AND every chunk it
    emitted has been collected."""

    def __init__(self, n: int):
        self.emitted = [0] * n
        self.collected = [0] * n
        self.exhausted = [False] * n
        self._pending = set(range(n))

    def complete(self, index: int) -> bool:
        return self.exhausted[index] and self.collected[index] == self.emitted[index]

    def pop_complete(self) -> list[int]:
        """Scenario indices that completed since the last call, in fleet
        order (each returned exactly once)."""
        done = sorted(index for index in self._pending if self.complete(index))
        self._pending.difference_update(done)
        return done


def _interleave_chunks(
    scenarios: Sequence[Scenario],
    specs: Sequence[_ChunkSpec],
    sizes: Sequence[int],
    policy: SchedulingPolicy,
    progress: _FleetProgress,
    skip: frozenset[int] = frozenset(),
    shard: Sequence[bool] | None = None,
) -> Iterator[tuple[int, _ChunkSpec, list[Any]]]:
    """One chunk per policy selection: the selected scenario's next
    chunk is yielded (tagged), exhausted scenarios leave the live set,
    and no scenario's enumeration is materialized past its next chunk.
    Emission/exhaustion is recorded in ``progress`` so the collector can
    detect per-scenario completion. Scenarios in ``skip`` (dedup
    followers, fed by mirroring their leader's chunks at collection)
    never enter the live set and are never enumerated here.

    Scenarios flagged in ``shard`` stream
    :class:`~repro.explore.vectorized.CohortShard` descriptors instead
    of materialized config lists: workers regenerate the rows locally
    from the flat index ranges, so a process pool pickles O(1) data per
    chunk instead of per-config tuples. Shard boundaries follow the same
    per-scenario sizes, and both stream shapes flow through the same
    policy selection — scheduling is unchanged."""
    streams = {
        index: (
            iter_scenario_shards(scenario, sizes[index])
            if shard is not None and shard[index]
            else _chunked(scenario.iter_configs(), sizes[index])
        )
        for index, scenario in enumerate(scenarios)
        if index not in skip
    }
    live = [index for index in range(len(scenarios)) if index not in skip]
    policy.start(scenarios)
    try:
        while live:
            index = policy.select(tuple(live))
            if index not in live:
                raise ConfigurationError(
                    f"scheduling policy {getattr(policy, 'name', policy)!r} "
                    f"selected scenario {index}, not in the live set {live}"
                )
            chunk = next(streams[index], None)
            if chunk is None:
                live.remove(index)
                progress.exhausted[index] = True
                continue
            progress.emitted[index] += 1
            yield index, specs[index], chunk
    finally:
        # Mark abandoned streams exhausted-at-current-count so late
        # completion scans cannot block, and close their enumerators.
        for index in range(len(scenarios)):
            progress.exhausted[index] = True
        for stream in streams.values():
            stream.close()


@dataclass
class ScenarioRun:
    """One scenario's outcome inside a campaign.

    ``result`` is the full :class:`ExplorationResult` when the campaign
    collected (byte-identical to a solo ``explore()``), or None on an
    export-only run — the summary statistics are tracked streamingly
    either way, including the domain-default Pareto frontier:
    ``pareto_size`` and :meth:`pareto` work in both modes (streamed
    through an online :class:`~repro.explore.result.ParetoFrontier`
    under ``collect=False``, identical to the collected frontier).
    ``wall_seconds`` is the time from campaign start until this
    scenario's last chunk was collected (scenarios share the executor,
    so exclusive per-scenario time is not a meaningful quantity).
    ``dedup_source`` names the scenario whose shared compute-side
    states this run was finalized from (None when it evaluated its own
    configurations — always, unless the campaign ran with
    ``dedup=True`` and the fleet shared a compute key).
    ``n_materialized`` counts the rows lazy dedup finalization actually
    turned into Python objects for this scenario (collected runs
    materialize everything; export-only runs only the best row, the
    frontier's survivors and heap candidates) — None when the rows
    never rode the lazy path (no dedup, a scalar fallback, or
    ``dedup="materialize"``).
    """

    scenario: Scenario
    result: ExplorationResult | None
    n_evaluated: int
    n_feasible: int
    best: dict[str, Any] | None
    _pareto_size: int | None
    wall_seconds: float
    frontier: list[dict[str, Any]] | None = field(default=None, repr=False)
    dedup_source: str | None = None
    n_materialized: int | None = None

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def pareto_size(self) -> int:
        """Size of the domain-default Pareto frontier.

        Export-only runs know it from the streamed frontier; collected
        runs compute it on first access — the dominance filter is
        O(rows x frontier) and consumers that never look at the
        frontier (the joint-fleet optimizer's phase-1 campaign) should
        not pay for it per member.
        """
        if self._pareto_size is None:
            self._pareto_size = len(self.pareto()) if self.n_evaluated else 0
        return self._pareto_size

    def pareto(self) -> list[dict[str, Any]]:
        """The domain-default Pareto frontier rows: from the collected
        result when available, else the streamed frontier. Raises
        :class:`~repro.errors.PipelineError` on an export-only run that
        opted out of frontier tracking (``frontier=False``) — the rows
        are gone and the frontier was never maintained."""
        if self.result is not None:
            return self.result.pareto() if len(self.result) else []
        if self.frontier is None:
            raise PipelineError(
                f"run {self.scenario.name!r} was export-only with "
                "frontier tracking disabled (frontier=False); no Pareto "
                "frontier is available"
            )
        return list(self.frontier)

    def summary_row(self) -> dict[str, Any]:
        """One campaign-report row (see
        :func:`repro.core.report.campaign_summary_table`)."""
        metric = _best_metric(self.scenario.domain)
        return {
            "scenario": self.scenario.name,
            "domain": self.scenario.domain,
            "configs": self.n_evaluated,
            "feasible": self.n_feasible,
            "best_config": self.best["config"] if self.best else "-",
            "best_metric": self.best[metric] if self.best else "-",
            "pareto": self.pareto_size,
            "seconds": self.wall_seconds,
            "dedup": self.dedup_source or "-",
            "materialized": (
                "-" if self.n_materialized is None else self.n_materialized
            ),
        }


class CampaignResult:
    """Per-scenario outcomes of one campaign, plus the fleet summary."""

    def __init__(
        self,
        name: str,
        runs: list[ScenarioRun],
        wall_seconds: float,
        policy: str = RoundRobin.name,
        dedup: bool | str = False,
        prefix_cache_stats: dict[str, Any] | None = None,
    ):
        self.name = name
        self.runs = runs
        self.wall_seconds = wall_seconds
        self.policy = policy
        self.dedup = dedup
        self.prefix_cache_stats = prefix_cache_stats

    @property
    def cache_stats(self) -> dict[str, Any]:
        """The cross-scenario dedup outcome of this campaign.

        ``evaluations_computed`` counts cost-model evaluations actually
        performed; ``evaluations_skipped`` counts configurations whose
        costs were finalized from another scenario's shared compute
        states instead of being re-evaluated (zero unless the campaign
        ran with ``dedup=True`` and the fleet shared a compute key —
        see :func:`scenario_compute_key`). ``prefix_cache`` carries the
        fleet-shared :class:`~repro.explore.vectorized.PrefixStateCache`
        counters — hits, misses, entries, and ``width_capped`` (cohorts
        whose width exceeded the seeding cap and were folded from
        scratch) — None when the campaign ran without ``dedup=True``,
        or the explicit ``{"shared": False}`` sentinel on a dedup
        process pool: process workers would each pickle a *private*
        trie copy, so nothing is ever shared there and the driver
        offers no cache at all rather than report counters that never
        counted shared work.

        ``dedup_groups`` surfaces the lazy finalize accounting per
        dedup group, keyed by leader scenario name:
        ``states_evaluated`` (compute-side states the leader folded
        once for the group), ``member_rows_closed`` (rows finalized
        across all members from those shared states — N links x rows),
        and ``rows_materialized`` (object constructions consumers
        actually performed — repeat touches of one row each count, it
        is a work counter, not a distinct-row count; under
        ``collect=False`` with columnar sinks this is roughly the
        survivors, the lazy win — fully-materialized members, e.g.
        under ``dedup="materialize"`` or collected runs, count every
        closed row).
        """
        shared = [run for run in self.runs if run.dedup_source is not None]
        by_name = {run.name: run for run in self.runs}
        groups: dict[str, dict[str, int]] = {}
        for leader_name in sorted({run.dedup_source for run in shared}):
            leader = by_name[leader_name]
            members = [leader] + [
                run for run in shared if run.dedup_source == leader_name
            ]
            groups[leader_name] = {
                "states_evaluated": leader.n_evaluated,
                "member_rows_closed": sum(run.n_evaluated for run in members),
                "rows_materialized": sum(
                    run.n_evaluated
                    if run.n_materialized is None
                    else run.n_materialized
                    for run in members
                ),
            }
        return {
            "dedup": self.dedup,
            "scenarios_shared": len(shared),
            "shared_sources": sorted({run.dedup_source for run in shared}),
            "evaluations_computed": sum(
                run.n_evaluated for run in self.runs if run.dedup_source is None
            ),
            "evaluations_skipped": sum(run.n_evaluated for run in shared),
            "dedup_groups": groups,
            "prefix_cache": self.prefix_cache_stats,
        }

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[ScenarioRun]:
        return iter(self.runs)

    def __getitem__(self, name: str) -> ScenarioRun:
        for run in self.runs:
            if run.name == name:
                return run
        raise KeyError(
            f"no scenario {name!r} in campaign {self.name!r}; "
            f"have {[run.name for run in self.runs]}"
        )

    def weighted_completion_seconds(
        self, weights: Mapping[str, float] | None = None
    ) -> float:
        """Weighted mean completion time of the fleet's scenarios.

        ``sum_i w_i * C_i / sum_i w_i`` where ``C_i`` is scenario *i*'s
        ``wall_seconds`` — the time from campaign start until its last
        chunk was collected, i.e. when it streamed out of
        :meth:`Campaign.iter_runs`. This is the objective the
        :class:`~repro.explore.scheduling.WeightedCompletionTime`
        policy (WSPT order) minimizes; weights key on scenario name,
        scenarios without an entry weigh 1.0, and unknown names are
        rejected (they would silently never apply).
        """
        weights = dict(weights or {})
        names = {run.name for run in self.runs}
        unknown = sorted(set(weights) - names)
        if unknown:
            raise ConfigurationError(
                f"completion-time weights for unknown scenarios {unknown}; "
                f"campaign has {sorted(names)}"
            )
        for name, weight in weights.items():
            if not weight > 0:
                raise ConfigurationError(
                    f"weight for {name!r} must be positive, got {weight}"
                )
        total = sum(weights.get(run.name, 1.0) for run in self.runs)
        if total == 0:
            return 0.0
        return (
            sum(weights.get(run.name, 1.0) * run.wall_seconds for run in self.runs)
            / total
        )

    def summary_rows(self) -> list[dict[str, Any]]:
        return [run.summary_row() for run in self.runs]

    def to_table(self, title: str | None = None) -> TextTable:
        """The fleet summary as a :class:`~repro.core.report.TextTable`."""
        return campaign_summary_table(
            self.summary_rows(),
            title=title or f"campaign {self.name!r} "
            f"({len(self.runs)} scenarios, {self.policy}, "
            f"{self.wall_seconds:.3f}s)",
        )


def _best_metric(domain: str) -> str:
    return "total_fps" if domain == "throughput" else "total_energy_j"


class _StreamingStats:
    """Running per-scenario statistics for export-only campaigns:
    everything the summary needs that does not require all rows —
    including the domain-default Pareto frontier, maintained online."""

    __slots__ = (
        "n_evaluated",
        "n_feasible",
        "best",
        "frontier",
        "_metric",
        "_maximize",
    )

    def __init__(self, domain: str, track_frontier: bool = True):
        self.n_evaluated = 0
        self.n_feasible = 0
        self.best: dict[str, Any] | None = None
        #: None when frontier tracking is opted out (``frontier=False``
        #: campaigns): dominance filtering is O(rows x frontier) and
        #: consumers that never ask for the frontier — the joint-fleet
        #: optimizer's candidate-sink phase — should not pay it.
        self.frontier: ParetoFrontier | None = (
            domain_frontier(domain) if track_frontier else None
        )
        self._metric = _best_metric(domain)
        self._maximize = DEFAULT_AXES[domain][1]

    def update(self, rows: Sequence[dict[str, Any]]) -> None:
        metric, maximize = self._metric, self._maximize
        best = self.best
        feasible = 0
        for row in rows:
            if row["feasible"]:
                feasible += 1
            value = row[metric]
            # Strict comparison: ties keep the earliest-enumerated row,
            # matching ExplorationResult.best.
            if best is None or (value > best[metric] if maximize else value < best[metric]):
                best = row
        self.best = best
        self.n_evaluated += len(rows)
        self.n_feasible += feasible
        if self.frontier is not None:
            self.frontier.add(rows)

    def update_batch(self, batch: BatchRows) -> None:
        """:meth:`update` over a lazy columnar batch, materializing only
        the rows the statistics actually keep (the new best row and the
        frontier's survivors).

        Exactly equivalent to ``update(batch.rows())``: the sequential
        strict-comparison scan keeps the first row attaining the extreme
        metric value among strict improvements — which is precisely the
        first argmax/argmin of the column restricted to rows beating the
        running best — and NaN metric values never improve on a non-NaN
        best (every comparison against NaN is False), matching the
        scalar scan branch for branch. Falls back to the row path when
        numpy is unavailable or the metric is not columnar.
        """
        if _np is None:
            self.update(batch.rows())
            return
        try:
            values = batch.metric_column(self._metric)
            feasible = batch.metric_column("feasible")
        except KeyError:
            self.update(batch.rows())
            return
        n = len(batch)
        if n == 0:
            return
        maximize = self._maximize
        winner: int | None = None
        if self.best is None:
            first = float(values[0])
            if first != first:
                # A NaN first row becomes best and no comparison against
                # NaN ever replaces it — the scalar scan keeps row 0.
                winner = 0
            else:
                winner = int(
                    _np.nanargmax(values) if maximize else _np.nanargmin(values)
                )
        else:
            current = self.best[self._metric]
            improved = (values > current) if maximize else (values < current)
            if bool(_np.any(improved)):
                winner = int(
                    _np.nanargmax(values) if maximize else _np.nanargmin(values)
                )
        if winner is not None:
            self.best = batch.row(winner)
        self.n_evaluated += n
        self.n_feasible += int(_np.count_nonzero(feasible))
        if self.frontier is not None:
            self.frontier.add_batch(batch)


class Campaign:
    """A batch of scenarios explored through one shared executor.

    Parameters
    ----------
    scenarios:
        The fleet; scenario names must be unique (they key sinks and
        result lookup).
    name:
        Campaign label for reports.
    """

    def __init__(self, scenarios: Sequence[Scenario], name: str = "campaign"):
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ConfigurationError("campaign needs at least one scenario")
        for scenario in scenarios:
            if not isinstance(scenario, Scenario):
                raise ConfigurationError(
                    f"campaign scenarios must be Scenario instances, got "
                    f"{type(scenario).__name__}"
                )
        names = [scenario.name for scenario in scenarios]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(
                f"campaign scenario names must be unique; duplicated: {duplicates}"
            )
        self.scenarios = scenarios
        self.name = name

    # -- sink resolution -------------------------------------------------

    def _resolve_sinks(self, sinks: Any) -> list[Any]:
        if sinks is None:
            return [None] * len(self.scenarios)
        if isinstance(sinks, Mapping):
            names = {scenario.name for scenario in self.scenarios}
            unknown = sorted(set(sinks) - names)
            if unknown:
                raise ConfigurationError(
                    f"sinks for unknown scenarios {unknown}; campaign has "
                    f"{sorted(names)}"
                )
            return [
                resolve_sink(sinks.get(scenario.name)) for scenario in self.scenarios
            ]
        if callable(sinks):
            return [resolve_sink(sinks(scenario)) for scenario in self.scenarios]
        raise ConfigurationError(
            "sinks must be a mapping {scenario name: sink}, a factory "
            f"callable, or None, got {type(sinks).__name__}"
        )

    # -- the drivers -----------------------------------------------------

    def iter_runs(
        self,
        executor: SweepExecutor | None = None,
        chunk_size: int | None = None,
        *,
        sinks: Any = None,
        collect: bool = True,
        collect_on_exit: bool = False,
        policy: Any = None,
        dedup: bool | str = False,
        max_pending_runs: int | None = None,
        frontier: bool = True,
    ) -> Iterator[ScenarioRun]:
        """Stream the fleet: yield each :class:`ScenarioRun` the moment
        its scenario's last chunk lands.

        The streaming counterpart of :meth:`run` (which is a drain over
        this iterator): scenarios complete at different times — under
        :class:`ShortestScenarioFirst` the smallest one finishes while
        the largest has barely started — and each is yielded (its sink
        closed and flushed first) without waiting for the fleet to
        drain. Yield order is completion order, not fleet order.

        Abandoning the iterator mid-fleet is safe: the executor stream
        is closed (the shared pool shuts down after in-flight chunks
        finish) and every open sink is closed (flushed), exactly as on
        an error. Parameters are those of :meth:`run`, plus:

        ``max_pending_runs`` is the backpressure knob for slow
        consumers (dashboards): at most that many scenarios may be
        fully fed into the executor ahead of the runs the consumer has
        actually taken. When the bound is reached, chunk submission
        pauses — the shared pool genuinely idles once its in-flight
        window drains, instead of racing ahead of a stalled consumer —
        and resumes the moment the consumer pulls the next run. The
        serial executor is lock-step (it evaluates exactly one chunk
        per pull) and needs no bound. Results are unaffected; only the
        pacing changes.
        """
        executor = resolve_executor(executor)
        if dedup not in (False, True, "lazy", "materialize"):
            raise ConfigurationError(
                "dedup must be False, True, 'lazy' or 'materialize', "
                f"got {dedup!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_pending_runs is not None and max_pending_runs < 1:
            raise ConfigurationError(
                f"max_pending_runs must be >= 1, got {max_pending_runs}"
            )
        policy = resolve_policy(policy)
        scenarios = self.scenarios
        sink_list = self._resolve_sinks(sinks)
        if not collect and sinks is not None:
            # Summary-only campaigns (collect=False, sinks=None) are a
            # deliberate mode; but *partial* sink coverage on an
            # export-only run would silently discard the uncovered
            # scenarios' rows — the mistake explore() fails fast on.
            uncovered = [
                scenario.name
                for scenario, sink in zip(scenarios, sink_list)
                if sink is None
            ]
            if uncovered:
                raise ConfigurationError(
                    "collect=False with sinks discards rows of scenarios "
                    f"without one ({uncovered}); give every scenario a sink "
                    "or drop sinks entirely for a summary-only campaign"
                )
        return self._stream_runs(
            executor,
            chunk_size,
            sink_list,
            collect,
            collect_on_exit,
            policy,
            PipelineCostCache(scenarios) if dedup else None,
            max_pending_runs,
            dedup != "materialize",
            frontier,
        )

    def _stream_runs(
        self,
        executor: SweepExecutor,
        chunk_size: int | None,
        sink_list: list[Any],
        collect: bool,
        collect_on_exit: bool,
        policy: SchedulingPolicy,
        cache: PipelineCostCache | None,
        max_pending_runs: int | None,
        dedup_lazy: bool = True,
        track_frontier: bool = True,
    ) -> Iterator[ScenarioRun]:
        """The generator behind :meth:`iter_runs` (argument validation
        stays eager in the caller, before the first ``next()``)."""
        scenarios = self.scenarios
        followers = cache.follower_indices if cache is not None else frozenset()
        models = [scenario.cost_model() for scenario in scenarios]
        # Partial prefix dedup rides the dedup opt-in: one fleet-shared
        # trie-keyed state cache, offered only where sharing is real —
        # serial and thread backends see one object; a process pool
        # would pickle a private copy per task and share nothing (each
        # worker would prime and query its own trie), so the driver
        # reports the explicit {"shared": False} sentinel there instead
        # of counters that never counted shared work.
        prefix_cache = None
        prefix_cache_stats: dict[str, Any] | None = None
        if cache is not None:
            if executor.is_process:
                prefix_cache_stats = {"shared": False}
            else:
                prefix_cache = PrefixStateCache()
        spec_list: list[_ChunkSpec] = []
        for index, (model, scenario) in enumerate(zip(models, scenarios)):
            if cache is not None and cache.is_shared_leader(index):
                mode = _MODE_STATES
            elif supports_prefix_evaluation(model):
                mode = _MODE_MEMOIZED
            else:
                mode = _MODE_SCRATCH
            spec_list.append(
                (
                    model,
                    scenario.pass_rates,
                    mode,
                    prefix_cache if mode != _MODE_SCRATCH else None,
                )
            )
        specs = tuple(spec_list)
        sizes = [
            self._chunk_size_for(scenario, executor, chunk_size)
            for scenario in scenarios
        ]
        # Cohort sharding on parallel executors: shard-eligible
        # scenarios (stock batch semantics, batch-capable pruner) ship
        # compact (depth, flat-index-range) descriptors instead of
        # pickled config lists; workers rebuild the rows locally.
        # Scratch-mode scenarios carry a custom model and are never
        # shard-eligible, but guard anyway so the pairing is explicit.
        shard_flags = [
            specs[index][2] != _MODE_SCRATCH
            and _shard_eligible(scenarios[index], models[index], executor, "auto")
            for index in range(len(scenarios))
        ]
        # Same pause rule as solo explore(): engine-only allocations
        # (the dedup states and finalized costs are engine-owned and
        # acyclic, so the states mode keeps the pause).
        pause = (
            all(mode != _MODE_SCRATCH for _, _, mode, _ in specs)
            and all(scenario.prune is None for scenario in scenarios)
            and all(sink is None for sink in sink_list)
        )
        evaluations: list[list[Any]] | None = (
            [[] for _ in scenarios] if collect else None
        )
        # When a collected scenario also streams to a sink, its rows are
        # built anyway — keep them so the ExplorationResult is seeded
        # instead of re-deriving every row for the summary. Unlike solo
        # explore(), this adds no peak memory: building a ScenarioRun
        # forces every collected result's rows for the feasible/Pareto
        # summary, so the cache would materialize at run end regardless.
        row_caches: list[list[dict[str, Any]] | None] = [
            [] if collect and sink is not None else None for sink in sink_list
        ]
        stats = [
            _StreamingStats(scenario.domain, track_frontier)
            for scenario in scenarios
        ]
        # Per-scenario lazy-materialization accounting: None where rows
        # were never lazily closed (no dedup, or the materialize mode);
        # dedup group members under the lazy path count the rows their
        # consumers actually turned into Python objects.
        materialized: list[int | None] = [None] * len(scenarios)
        if cache is not None and dedup_lazy:
            for leader in cache.followers_of:
                for member in cache.members_of(leader):
                    materialized[member] = 0
        progress = _FleetProgress(len(scenarios))
        completed_at = [0.0] * len(scenarios)
        start = time.perf_counter()
        opened: list[int] = []
        closed: set[int] = set()
        handed: set[int] = set()
        order = {scenario.name: i for i, scenario in enumerate(scenarios)}
        error: BaseException | None = None
        interleaved = _interleave_chunks(
            scenarios, specs, sizes, policy, progress, followers, shard_flags
        )

        def _window_gate() -> bool:
            # Backpressure: once `max_pending_runs` scenarios are fully
            # fed into the pipe (enumeration exhausted) without their
            # runs having been consumed, stop submitting new chunks.
            pending = sum(
                1
                for index in range(len(scenarios))
                if progress.exhausted[index] and index not in handed
            )
            return pending < max_pending_runs

        results = executor.imap(
            _evaluate_tagged_chunk,
            interleaved,
            chunk_size=1,
            window_gate=_window_gate if max_pending_runs is not None else None,
        )

        def _absorb(index: int, costs: list[Any], now: float) -> None:
            """Route one collected (or mirrored) chunk's costs into the
            scenario's accumulation/sink/stats paths."""
            sink = sink_list[index]
            if evaluations is not None:
                evaluations[index].extend(costs)
            if sink is not None or evaluations is None:
                rows = [cost_row(scenarios[index], cost) for cost in costs]
                if evaluations is None:
                    # Streaming stats are only consulted on export-only
                    # runs; collected runs derive the summary from the
                    # result instead.
                    stats[index].update(rows)
                elif row_caches[index] is not None:
                    row_caches[index].extend(rows)
                if sink is not None:
                    write_sink(sink, rows, self._label(index))
            progress.collected[index] += 1
            completed_at[index] = now

        def _absorb_batches(index: int, batches: list[BatchRows], now: float) -> None:
            """Route one dedup group member's lazy columnar views — the
            batch counterpart of :func:`_absorb`. Collected runs bulk-
            materialize (a ScenarioRun forces every collected cost
            anyway); export-only runs fold the views through the
            streaming stats and columnar sinks, so only the survivors
            (best row, frontier members, heap entries) ever become
            Python objects."""
            sink = sink_list[index]
            label = self._label(index)
            if evaluations is not None:
                costs = [cost for batch in batches for cost in batch.costs()]
                evaluations[index].extend(costs)
                if sink is not None:
                    rows = [cost_row(scenarios[index], cost) for cost in costs]
                    if row_caches[index] is not None:
                        row_caches[index].extend(rows)
                    write_sink(sink, rows, label)
            else:
                columnar = sink is not None and uses_columnar_writes(sink)
                pending: list[dict[str, Any]] | None = (
                    [] if sink is not None and not columnar else None
                )
                for batch in batches:
                    stats[index].update_batch(batch)
                    if columnar:
                        write_sink_batch(sink, batch, label)
                    elif pending is not None:
                        pending.extend(batch.rows())
                if pending is not None:
                    # Row-only sinks keep one write per chunk, exactly
                    # the granularity _absorb's row path delivers.
                    write_sink(sink, pending, label)
            count = materialized[index]
            materialized[index] = (count or 0) + sum(
                batch.n_materialized for batch in batches
            )
            progress.collected[index] += 1
            completed_at[index] = now

        def _sync_followers() -> None:
            # A follower's stream is its leader's, mirrored at
            # *collection* time (its emitted/collected counts track the
            # leader's collected chunks in the loop below) — so it is
            # complete exactly when the leader is. Marking it exhausted
            # on the leader's mere enumeration exhaustion would complete
            # it early: a parallel interleaver runs ahead of collection
            # by the in-flight window.
            if cache is not None:
                for follower, leader in cache.leader_of.items():
                    progress.exhausted[follower] = progress.complete(leader)

        # The GC pause must cover the bulk-accumulation regions but NOT
        # the yields: consumer code between next() calls would otherwise
        # run with cycle collection disabled for the whole fleet.
        # Scenario completions are rare (N per campaign), so leaving and
        # re-entering the paused region around them costs nothing.
        pause_guard: ExitStack | None = None

        def _enter_pause() -> None:
            nonlocal pause_guard
            if pause and pause_guard is None:
                pause_guard = ExitStack()
                pause_guard.enter_context(_gc_paused())

        def _exit_pause() -> None:
            nonlocal pause_guard
            if pause_guard is not None:
                pause_guard.close()
                pause_guard = None

        try:
            # Opening happens inside the try so a sink whose open()
            # fails still gets every *previously opened* sink closed
            # (flushed) on the way out.
            for index, sink in enumerate(sink_list):
                if sink is not None:
                    open_sink(sink, scenarios[index], self._label(index))
                    opened.append(index)
            _enter_pause()
            for index, payload, seconds in results:
                observe_policy(policy, index, len(payload), seconds)
                now = time.perf_counter() - start
                if cache is not None and cache.is_shared_leader(index):
                    # The leader's chunk arrived as pre-finalize states:
                    # close them under every group member's own link —
                    # one evaluation pass serves the whole group, and
                    # each follower's chunk lands (same boundaries, same
                    # enumeration order) the moment the leader's does.
                    # Columnar states close lazily (one broadcast per
                    # segment for the whole group, survivors-only
                    # materialization); scalar states — and the
                    # "materialize" opt-out — keep the per-member
                    # materialized finalize.
                    if dedup_lazy and isinstance(payload, BatchChunkStates):
                        group = cache.finalize_group(index, payload)
                        for member, batches in zip(
                            cache.members_of(index), group
                        ):
                            if member != index:
                                progress.emitted[member] += 1
                            _absorb_batches(member, batches, now)
                    else:
                        _absorb(index, cache.finalize(index, payload), now)
                        for follower in cache.followers_of[index]:
                            progress.emitted[follower] += 1
                            _absorb(follower, cache.finalize(follower, payload), now)
                else:
                    _absorb(index, payload, now)
                _sync_followers()
                done = self._finish_complete(
                    progress,
                    sink_list,
                    opened,
                    closed,
                    evaluations,
                    row_caches,
                    stats,
                    completed_at,
                    cache,
                    materialized,
                )
                if done:
                    _exit_pause()
                    for run in done:
                        yield run
                        handed.add(order[run.name])
                    _enter_pause()
            # Exhaustions discovered after a scenario's final collection
            # (and zero-chunk scenarios) surface once the stream drains.
            _sync_followers()
            done = self._finish_complete(
                progress,
                sink_list,
                opened,
                closed,
                evaluations,
                row_caches,
                stats,
                completed_at,
                cache,
                materialized,
            )
            _exit_pause()
            for run in done:
                yield run
                handed.add(order[run.name])
        except BaseException as exc:
            error = exc
            raise
        finally:
            _exit_pause()
            # Snapshot the fleet-shared prefix-cache counters (hits,
            # misses, entries, width-capped rejections) for run() to
            # surface through CampaignResult.cache_stats — or the
            # {"shared": False} sentinel on a dedup process pool.
            self._prefix_cache_stats = (
                prefix_cache.stats if prefix_cache is not None else prefix_cache_stats
            )
            # Stop the executor stream first (the pool shuts down after
            # in-flight chunks finish), then the enumerators, then flush
            # every sink not already closed at scenario completion.
            stream_close = getattr(results, "close", None)
            if stream_close is not None:
                stream_close()
            interleaved.close()
            close_error: BaseException | None = None
            for index in opened:
                if index in closed:
                    continue
                try:
                    close_sink(sink_list[index], self._label(index))
                except Exception as exc:
                    # Keep closing the rest: one bad sink must not leave
                    # other scenarios' outputs unflushed.
                    if close_error is None:
                        close_error = exc
            if collect_on_exit:
                gc.collect()
            if close_error is not None and error is None:
                raise close_error

    def _finish_complete(
        self,
        progress: _FleetProgress,
        sink_list: list[Any],
        opened: list[int],
        closed: set[int],
        evaluations: list[list[Any]] | None,
        row_caches: list[list[dict[str, Any]] | None],
        stats: list[_StreamingStats],
        completed_at: list[float],
        cache: PipelineCostCache | None = None,
        materialized: list[int | None] | None = None,
    ) -> list[ScenarioRun]:
        """Runs for scenarios that just completed, their sinks closed
        first so a handed-out run's exports are already flushed."""
        runs: list[ScenarioRun] = []
        for index in progress.pop_complete():
            if index in opened and index not in closed:
                closed.add(index)
                close_sink(sink_list[index], self._label(index))
            dedup_source = None
            if cache is not None and index in cache.leader_of:
                dedup_source = self.scenarios[cache.leader_of[index]].name
            runs.append(
                self._build_run(
                    index,
                    evaluations[index] if evaluations is not None else None,
                    row_caches[index],
                    stats[index],
                    completed_at[index],
                    dedup_source,
                    materialized[index] if materialized is not None else None,
                )
            )
        return runs

    def run(
        self,
        executor: SweepExecutor | None = None,
        chunk_size: int | None = None,
        *,
        sinks: Any = None,
        collect: bool = True,
        collect_on_exit: bool = False,
        policy: Any = None,
        dedup: bool | str = False,
        frontier: bool = True,
    ) -> CampaignResult:
        """Explore every scenario through one shared executor.

        A drain over :meth:`iter_runs` — identical results, with the
        per-scenario runs reassembled into fleet order.

        Parameters
        ----------
        executor:
            The one pool all scenarios share; defaults to serial. Row
            order per scenario is its enumeration order for any worker
            count.
        chunk_size:
            Configurations per streamed chunk for every scenario
            (default: the executor's ``chunk_size``, else sized per
            scenario the way solo ``explore()`` would).
        sinks:
            Per-scenario streaming outputs: a mapping from scenario
            name to sink (scenarios without an entry get none) or a
            factory ``scenario -> sink | None``.
        collect:
            With ``collect=False`` no :class:`ExplorationResult` caches
            are built — each :class:`ScenarioRun` carries streaming
            statistics only (the Pareto frontier maintained online) and
            peak memory is bounded by the chunk window. Legal with no
            sinks at all (a summary-only campaign) or with a sink for
            *every* scenario (an export-only campaign); partial coverage
            would silently discard rows and is rejected.
        collect_on_exit:
            Run the GC pass deferred by the bulk-accumulation pause
            before returning (see :func:`repro.explore.explore`).
        policy:
            The :class:`SchedulingPolicy` interleaving the fleet's
            chunks — an instance or a builtin name
            (:data:`SCHEDULING_POLICIES`); default round-robin. Policies
            reorder scenario completion, never per-scenario results.
        dedup:
            Share link-independent compute-side prefix states across
            scenarios with equal :func:`scenario_compute_key`s (the
            same pipeline at several links): each group evaluates once
            and every member's costs are finalized under its own link
            terms — per-scenario results stay byte-identical to a
            ``dedup=False`` run (and to solo ``explore()``), asserted
            by the invariant suite. :attr:`CampaignResult.cache_stats`
            reports the evaluations skipped. ``True`` (alias
            ``"lazy"``) closes columnar leader states for the whole
            group in one multi-link broadcast per segment and hands
            members lazy :class:`~repro.explore.vectorized.BatchRows`
            views — under ``collect=False`` only survivors
            materialize; ``"materialize"`` keeps the per-member
            materialized finalize (identical values, O(rows x members)
            Python objects) — the lazy path's benchmark baseline.
        frontier:
            ``False`` skips the online Pareto frontier on export-only
            runs (it is O(rows x frontier size) — dominating the whole
            campaign when the domain axes anti-correlate, as the
            compute/communication tradeoff makes them). Such runs raise
            from :meth:`ScenarioRun.pareto` / ``pareto_size`` instead
            of answering; collected runs are unaffected (their frontier
            derives lazily from the rows).
        """
        resolved = resolve_policy(policy)
        start = time.perf_counter()
        runs = list(
            self.iter_runs(
                executor,
                chunk_size,
                sinks=sinks,
                collect=collect,
                collect_on_exit=collect_on_exit,
                policy=resolved,
                dedup=dedup,
                frontier=frontier,
            )
        )
        wall = time.perf_counter() - start
        order = {scenario.name: i for i, scenario in enumerate(self.scenarios)}
        runs.sort(key=lambda run: order[run.name])
        return CampaignResult(
            name=self.name,
            runs=runs,
            wall_seconds=wall,
            policy=getattr(resolved, "name", type(resolved).__name__),
            dedup=dedup,
            prefix_cache_stats=getattr(self, "_prefix_cache_stats", None),
        )

    def _label(self, index: int) -> str:
        return f"scenario {self.scenarios[index].name!r}"

    @staticmethod
    def _chunk_size_for(
        scenario: Scenario, executor: SweepExecutor, chunk_size: int | None
    ) -> int:
        if chunk_size is not None:
            return chunk_size
        if executor.chunk_size is not None:
            return executor.chunk_size
        if not executor.is_serial:
            return auto_chunk_size(
                scenario.count_configs(), executor.workers, DEFAULT_CHUNK_SIZE
            )
        return DEFAULT_CHUNK_SIZE

    def _build_run(
        self,
        index: int,
        scenario_evaluations: list[Any] | None,
        row_cache: list[dict[str, Any]] | None,
        run_stats: _StreamingStats,
        completed_at: float,
        dedup_source: str | None = None,
        n_materialized: int | None = None,
    ) -> ScenarioRun:
        scenario = self.scenarios[index]
        if scenario_evaluations is not None:
            result = ExplorationResult(
                scenario=scenario,
                rows=row_cache,
                evaluations=scenario_evaluations,
            )
            n_evaluated = len(result)
            n_feasible = len(result.feasible)
            try:
                best = result.best
            except PipelineError:
                best = None
            pareto_size = None  # computed lazily on first access
            frontier = None
        else:
            result = None
            n_evaluated = run_stats.n_evaluated
            n_feasible = run_stats.n_feasible
            best = run_stats.best
            if run_stats.frontier is not None:
                frontier = run_stats.frontier.rows
                pareto_size = len(frontier)
            else:  # frontier tracking opted out: pareto() raises
                frontier = None
                pareto_size = None
        return ScenarioRun(
            scenario=scenario,
            result=result,
            n_evaluated=n_evaluated,
            n_feasible=n_feasible,
            best=best,
            _pareto_size=pareto_size,
            wall_seconds=round(completed_at, 6),
            frontier=frontier,
            dedup_source=dedup_source,
            n_materialized=n_materialized,
        )


def run_campaign(
    scenarios: Sequence[Scenario],
    executor: SweepExecutor | None = None,
    chunk_size: int | None = None,
    *,
    name: str = "campaign",
    sinks: Any = None,
    collect: bool = True,
    collect_on_exit: bool = False,
    policy: Any = None,
    dedup: bool | str = False,
) -> CampaignResult:
    """One-call convenience: ``Campaign(scenarios, name).run(...)``."""
    return Campaign(scenarios, name=name).run(
        executor,
        chunk_size,
        sinks=sinks,
        collect=collect,
        collect_on_exit=collect_on_exit,
        policy=policy,
        dedup=dedup,
    )
