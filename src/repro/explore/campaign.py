"""Batch exploration campaigns: many scenarios, one shared executor.

The paper explores one design space at a time; a production exploration
service faces *fleets* of them — every camera product, link tier and
power budget is its own scenario. Running N solo ``explore()`` calls
costs N pools and serializes the fleet; a :class:`Campaign` shards all
scenarios across **one** :class:`~repro.explore.executor.SweepExecutor`
by round-robin interleaving their configuration chunks through ``imap``,
so every worker stays busy until the whole fleet is done and a campaign
of N scenarios costs one pool, not N.

Correctness contract: chunks are tagged with their scenario and each is
evaluated by a chunk-local
:class:`~repro.explore.incremental.PrefixEvaluator` (memoization never
crosses scenarios), and ``imap`` returns results in submission order —
so each scenario's evaluations land in its own enumeration order and
are byte-identical to a solo ``explore()`` of the same scenario,
regardless of worker count or how the fleet was interleaved (tests
compare them byte for byte).

Streaming contract: per-scenario :class:`~repro.explore.sink.ResultSink`
outputs receive rows as that scenario's chunks complete, and
``collect=False`` keeps only running statistics (evaluated count,
feasible count, best row) — an export-only campaign's peak memory is
set by the chunk window, never by the fleet's combined design-space
size. A sink failure aborts the campaign with a clear
:class:`~repro.errors.SinkError` naming the scenario; every other
scenario's sink is still closed (flushed), so one bad sink never
corrupts the rest of the fleet's outputs.
"""

from __future__ import annotations

import gc
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from repro.core.report import TextTable, campaign_summary_table
from repro.errors import ConfigurationError, PipelineError
from repro.explore.engine import (
    DEFAULT_CHUNK_SIZE,
    _chunked,
    _evaluate_scratch,
    _gc_paused,
)
from repro.explore.executor import (
    SweepExecutor,
    auto_chunk_size,
    resolve_executor,
)
from repro.explore.incremental import evaluate_chunk, supports_prefix_evaluation
from repro.explore.result import DEFAULT_AXES, ExplorationResult, cost_row
from repro.explore.scenario import Scenario
from repro.explore.sink import close_sink, open_sink, resolve_sink, write_sink

def _evaluate_tagged_chunk(
    tagged: tuple[int, tuple[Any, dict[str, float] | None, bool], list[Any]],
) -> tuple[int, list[Any]]:
    """Evaluate one scenario-tagged chunk (module-level for process-pool
    picklability). The tagged item carries *its own* scenario's (model,
    pass_rates, prefix-eligible) spec — not the whole fleet's — so a
    process backend serializes one model per task, same as solo
    ``explore()``; the index travels with the costs so the collector can
    route them back to their scenario."""
    index, (model, pass_rates, memoized), configs = tagged
    if memoized:
        return index, evaluate_chunk(model, pass_rates, configs)
    return index, [_evaluate_scratch(model, pass_rates, config) for config in configs]


def _interleave_chunks(
    scenarios: Sequence[Scenario],
    specs: Sequence[tuple[Any, dict[str, float] | None, bool]],
    sizes: Sequence[int],
) -> Iterator[tuple[int, tuple[Any, dict[str, float] | None, bool], list[Any]]]:
    """Round-robin one chunk per live scenario: no scenario starves, no
    scenario's enumeration is materialized past its next chunk."""
    streams: deque[tuple[int, Iterator[list[Any]]]] = deque(
        (index, _chunked(scenario.iter_configs(), sizes[index]))
        for index, scenario in enumerate(scenarios)
    )
    while streams:
        index, stream = streams.popleft()
        chunk = next(stream, None)
        if chunk is None:
            continue
        yield index, specs[index], chunk
        streams.append((index, stream))


@dataclass
class ScenarioRun:
    """One scenario's outcome inside a campaign.

    ``result`` is the full :class:`ExplorationResult` when the campaign
    collected (byte-identical to a solo ``explore()``), or None on an
    export-only run — the summary statistics are tracked streamingly
    either way. ``pareto_size`` needs every row at once, so it is None
    when the campaign did not collect. ``wall_seconds`` is the time from
    campaign start until this scenario's last chunk was collected
    (scenarios share the executor, so exclusive per-scenario time is
    not a meaningful quantity).
    """

    scenario: Scenario
    result: ExplorationResult | None
    n_evaluated: int
    n_feasible: int
    best: dict[str, Any] | None
    pareto_size: int | None
    wall_seconds: float

    @property
    def name(self) -> str:
        return self.scenario.name

    def summary_row(self) -> dict[str, Any]:
        """One campaign-report row (see
        :func:`repro.core.report.campaign_summary_table`)."""
        metric = _best_metric(self.scenario.domain)
        return {
            "scenario": self.scenario.name,
            "domain": self.scenario.domain,
            "configs": self.n_evaluated,
            "feasible": self.n_feasible,
            "best_config": self.best["config"] if self.best else "-",
            "best_metric": self.best[metric] if self.best else "-",
            "pareto": self.pareto_size if self.pareto_size is not None else "-",
            "seconds": self.wall_seconds,
        }


class CampaignResult:
    """Per-scenario outcomes of one campaign, plus the fleet summary."""

    def __init__(self, name: str, runs: list[ScenarioRun], wall_seconds: float):
        self.name = name
        self.runs = runs
        self.wall_seconds = wall_seconds

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[ScenarioRun]:
        return iter(self.runs)

    def __getitem__(self, name: str) -> ScenarioRun:
        for run in self.runs:
            if run.name == name:
                return run
        raise KeyError(
            f"no scenario {name!r} in campaign {self.name!r}; "
            f"have {[run.name for run in self.runs]}"
        )

    def summary_rows(self) -> list[dict[str, Any]]:
        return [run.summary_row() for run in self.runs]

    def to_table(self, title: str | None = None) -> TextTable:
        """The fleet summary as a :class:`~repro.core.report.TextTable`."""
        return campaign_summary_table(
            self.summary_rows(),
            title=title or f"campaign {self.name!r} "
            f"({len(self.runs)} scenarios, {self.wall_seconds:.3f}s)",
        )


def _best_metric(domain: str) -> str:
    return "total_fps" if domain == "throughput" else "total_energy_j"


class _StreamingStats:
    """Running per-scenario statistics for export-only campaigns:
    everything the summary needs that does not require all rows."""

    __slots__ = ("n_evaluated", "n_feasible", "best", "_metric", "_maximize")

    def __init__(self, domain: str):
        self.n_evaluated = 0
        self.n_feasible = 0
        self.best: dict[str, Any] | None = None
        self._metric = _best_metric(domain)
        self._maximize = DEFAULT_AXES[domain][1]

    def update(self, rows: Sequence[dict[str, Any]]) -> None:
        metric, maximize = self._metric, self._maximize
        best = self.best
        feasible = 0
        for row in rows:
            if row["feasible"]:
                feasible += 1
            value = row[metric]
            # Strict comparison: ties keep the earliest-enumerated row,
            # matching ExplorationResult.best.
            if best is None or (value > best[metric] if maximize else value < best[metric]):
                best = row
        self.best = best
        self.n_evaluated += len(rows)
        self.n_feasible += feasible


class Campaign:
    """A batch of scenarios explored through one shared executor.

    Parameters
    ----------
    scenarios:
        The fleet; scenario names must be unique (they key sinks and
        result lookup).
    name:
        Campaign label for reports.
    """

    def __init__(self, scenarios: Sequence[Scenario], name: str = "campaign"):
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ConfigurationError("campaign needs at least one scenario")
        for scenario in scenarios:
            if not isinstance(scenario, Scenario):
                raise ConfigurationError(
                    f"campaign scenarios must be Scenario instances, got "
                    f"{type(scenario).__name__}"
                )
        names = [scenario.name for scenario in scenarios]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(
                f"campaign scenario names must be unique; duplicated: {duplicates}"
            )
        self.scenarios = scenarios
        self.name = name

    # -- sink resolution -------------------------------------------------

    def _resolve_sinks(self, sinks: Any) -> list[Any]:
        if sinks is None:
            return [None] * len(self.scenarios)
        if isinstance(sinks, Mapping):
            names = {scenario.name for scenario in self.scenarios}
            unknown = sorted(set(sinks) - names)
            if unknown:
                raise ConfigurationError(
                    f"sinks for unknown scenarios {unknown}; campaign has "
                    f"{sorted(names)}"
                )
            return [
                resolve_sink(sinks.get(scenario.name)) for scenario in self.scenarios
            ]
        if callable(sinks):
            return [resolve_sink(sinks(scenario)) for scenario in self.scenarios]
        raise ConfigurationError(
            "sinks must be a mapping {scenario name: sink}, a factory "
            f"callable, or None, got {type(sinks).__name__}"
        )

    # -- the driver ------------------------------------------------------

    def run(
        self,
        executor: SweepExecutor | None = None,
        chunk_size: int | None = None,
        *,
        sinks: Any = None,
        collect: bool = True,
        collect_on_exit: bool = False,
    ) -> CampaignResult:
        """Explore every scenario through one shared executor.

        Parameters
        ----------
        executor:
            The one pool all scenarios share; defaults to serial. Row
            order per scenario is its enumeration order for any worker
            count.
        chunk_size:
            Configurations per streamed chunk for every scenario
            (default: the executor's ``chunk_size``, else sized per
            scenario the way solo ``explore()`` would).
        sinks:
            Per-scenario streaming outputs: a mapping from scenario
            name to sink (scenarios without an entry get none) or a
            factory ``scenario -> sink | None``.
        collect:
            With ``collect=False`` no :class:`ExplorationResult` caches
            are built — each :class:`ScenarioRun` carries streaming
            statistics only (``pareto_size`` is None) and peak memory
            is bounded by the chunk window. Legal with no sinks at all
            (a summary-only campaign) or with a sink for *every*
            scenario (an export-only campaign); partial coverage would
            silently discard rows and is rejected.
        collect_on_exit:
            Run the GC pass deferred by the bulk-accumulation pause
            before returning (see :func:`repro.explore.explore`).
        """
        executor = resolve_executor(executor)
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        scenarios = self.scenarios
        sink_list = self._resolve_sinks(sinks)
        if not collect and sinks is not None:
            # Summary-only campaigns (collect=False, sinks=None) are a
            # deliberate mode; but *partial* sink coverage on an
            # export-only run would silently discard the uncovered
            # scenarios' rows — the mistake explore() fails fast on.
            uncovered = [
                scenario.name
                for scenario, sink in zip(scenarios, sink_list)
                if sink is None
            ]
            if uncovered:
                raise ConfigurationError(
                    "collect=False with sinks discards rows of scenarios "
                    f"without one ({uncovered}); give every scenario a sink "
                    "or drop sinks entirely for a summary-only campaign"
                )
        models = [scenario.cost_model() for scenario in scenarios]
        specs = tuple(
            (model, scenario.pass_rates, supports_prefix_evaluation(model))
            for model, scenario in zip(models, scenarios)
        )
        sizes = [
            self._chunk_size_for(scenario, executor, chunk_size)
            for scenario in scenarios
        ]
        # Same pause rule as solo explore(): engine-only allocations.
        pause = (
            all(memoized for _, _, memoized in specs)
            and all(scenario.prune is None for scenario in scenarios)
            and all(sink is None for sink in sink_list)
        )
        evaluations: list[list[Any]] | None = (
            [[] for _ in scenarios] if collect else None
        )
        # When a collected scenario also streams to a sink, its rows are
        # built anyway — keep them so the ExplorationResult is seeded
        # instead of re-deriving every row for the summary. Unlike solo
        # explore(), this adds no peak memory: _build_runs forces every
        # collected result's rows for the feasible/Pareto summary, so
        # the cache would materialize at run end regardless.
        row_caches: list[list[dict[str, Any]] | None] = [
            [] if collect and sink is not None else None for sink in sink_list
        ]
        stats = [_StreamingStats(scenario.domain) for scenario in scenarios]
        completed_at = [0.0] * len(scenarios)
        start = time.perf_counter()
        opened: list[int] = []
        error: BaseException | None = None
        try:
            # Opening happens inside the try so a sink whose open()
            # fails still gets every *previously opened* sink closed
            # (flushed) on the way out.
            for index, sink in enumerate(sink_list):
                if sink is not None:
                    open_sink(sink, scenarios[index], self._label(index))
                    opened.append(index)
            with _gc_paused() if pause else nullcontext():
                for index, costs in executor.imap(
                    _evaluate_tagged_chunk,
                    _interleave_chunks(scenarios, specs, sizes),
                    chunk_size=1,
                ):
                    scenario = scenarios[index]
                    sink = sink_list[index]
                    if evaluations is not None:
                        evaluations[index].extend(costs)
                    if sink is not None or evaluations is None:
                        rows = [cost_row(scenario, cost) for cost in costs]
                        if evaluations is None:
                            # Streaming stats are only consulted on
                            # export-only runs; collected runs derive
                            # the summary from the result instead.
                            stats[index].update(rows)
                        elif row_caches[index] is not None:
                            row_caches[index].extend(rows)
                        if sink is not None:
                            write_sink(sink, rows, self._label(index))
                    completed_at[index] = time.perf_counter() - start
        except BaseException as exc:
            error = exc
            raise
        finally:
            close_error: BaseException | None = None
            for index in opened:
                try:
                    close_sink(sink_list[index], self._label(index))
                except Exception as exc:
                    # Keep closing the rest: one bad sink must not leave
                    # other scenarios' outputs unflushed.
                    if close_error is None:
                        close_error = exc
            if close_error is not None and error is None:
                raise close_error
        if collect_on_exit:
            gc.collect()
        wall = time.perf_counter() - start
        runs = self._build_runs(evaluations, row_caches, stats, completed_at)
        return CampaignResult(name=self.name, runs=runs, wall_seconds=wall)

    def _label(self, index: int) -> str:
        return f"scenario {self.scenarios[index].name!r}"

    @staticmethod
    def _chunk_size_for(
        scenario: Scenario, executor: SweepExecutor, chunk_size: int | None
    ) -> int:
        if chunk_size is not None:
            return chunk_size
        if executor.chunk_size is not None:
            return executor.chunk_size
        if not executor.is_serial:
            return auto_chunk_size(
                scenario.count_configs(), executor.workers, DEFAULT_CHUNK_SIZE
            )
        return DEFAULT_CHUNK_SIZE

    def _build_runs(
        self,
        evaluations: list[list[Any]] | None,
        row_caches: list[list[dict[str, Any]] | None],
        stats: list[_StreamingStats],
        completed_at: list[float],
    ) -> list[ScenarioRun]:
        runs: list[ScenarioRun] = []
        for index, scenario in enumerate(self.scenarios):
            if evaluations is not None:
                result = ExplorationResult(
                    scenario=scenario,
                    rows=row_caches[index],
                    evaluations=evaluations[index],
                )
                n_evaluated = len(result)
                n_feasible = len(result.feasible)
                try:
                    best = result.best
                except PipelineError:
                    best = None
                pareto_size: int | None = len(result.pareto()) if n_evaluated else 0
            else:
                result = None
                run_stats = stats[index]
                n_evaluated = run_stats.n_evaluated
                n_feasible = run_stats.n_feasible
                best = run_stats.best
                pareto_size = None
            runs.append(
                ScenarioRun(
                    scenario=scenario,
                    result=result,
                    n_evaluated=n_evaluated,
                    n_feasible=n_feasible,
                    best=best,
                    pareto_size=pareto_size,
                    wall_seconds=round(completed_at[index], 6),
                )
            )
        return runs


def run_campaign(
    scenarios: Sequence[Scenario],
    executor: SweepExecutor | None = None,
    chunk_size: int | None = None,
    *,
    name: str = "campaign",
    sinks: Any = None,
    collect: bool = True,
    collect_on_exit: bool = False,
) -> CampaignResult:
    """One-call convenience: ``Campaign(scenarios, name).run(...)``."""
    return Campaign(scenarios, name=name).run(
        executor,
        chunk_size,
        sinks=sinks,
        collect=collect,
        collect_on_exit=collect_on_exit,
    )
