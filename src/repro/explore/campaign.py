"""Batch exploration campaigns: many scenarios, one shared executor.

The paper explores one design space at a time; a production exploration
service faces *fleets* of them — every camera product, link tier and
power budget is its own scenario. Running N solo ``explore()`` calls
costs N pools and serializes the fleet; a :class:`Campaign` shards all
scenarios across **one** :class:`~repro.explore.executor.SweepExecutor`
by interleaving their configuration chunks through ``imap`` under a
pluggable :class:`SchedulingPolicy` (round-robin by default), so every
worker stays busy until the whole fleet is done and a campaign of N
scenarios costs one pool, not N.

Correctness contract: chunks are tagged with their scenario and each is
evaluated by a chunk-local
:class:`~repro.explore.incremental.PrefixEvaluator` (memoization never
crosses scenarios), and ``imap`` returns results in submission order —
so each scenario's evaluations land in its own enumeration order and
are byte-identical to a solo ``explore()`` of the same scenario,
regardless of worker count or how the fleet was interleaved (tests
compare them byte for byte). Scheduling policies only reorder *which
scenario's* chunk is submitted next, never the chunks within one
scenario, so every builtin policy preserves that identity.

Streaming contract: :meth:`Campaign.iter_runs` yields each
:class:`ScenarioRun` the moment its last chunk lands — a dashboard
renders the first finished scenario while the rest of the fleet is
still evaluating — and :meth:`Campaign.run` is a drain over it.
Per-scenario :class:`~repro.explore.sink.ResultSink` outputs receive
rows as that scenario's chunks complete (and are closed/flushed the
moment their scenario finishes), and ``collect=False`` keeps only
running statistics (evaluated count, feasible count, best row, and an
online :class:`~repro.explore.result.ParetoFrontier`) — an export-only
campaign's peak memory is set by the chunk window plus the frontier
size, never by the fleet's combined design-space size. A sink failure
aborts the campaign with a clear :class:`~repro.errors.SinkError`
naming the scenario; every other scenario's sink is still closed
(flushed), so one bad sink never corrupts the rest of the fleet's
outputs. Abandoning ``iter_runs()`` mid-fleet closes the executor
stream and every open sink the same way.
"""

from __future__ import annotations

import gc
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.core.report import TextTable, campaign_summary_table
from repro.errors import ConfigurationError, PipelineError
from repro.explore.engine import (
    DEFAULT_CHUNK_SIZE,
    _chunked,
    _evaluate_scratch,
    _gc_paused,
)
from repro.explore.executor import (
    SweepExecutor,
    auto_chunk_size,
    resolve_executor,
)
from repro.explore.incremental import evaluate_chunk, supports_prefix_evaluation
from repro.explore.result import (
    DEFAULT_AXES,
    ExplorationResult,
    ParetoFrontier,
    cost_row,
    domain_frontier,
)
from repro.explore.scenario import Scenario
from repro.explore.sink import close_sink, open_sink, resolve_sink, write_sink


# -- scheduling policies ------------------------------------------------


class SchedulingPolicy:
    """Decides which scenario the interleaver draws its next chunk from.

    The one pluggable point of the campaign driver: before each chunk
    submission the interleaver calls :meth:`select` with the indices of
    the scenarios that still have chunks, and submits one chunk of the
    returned scenario. Policies only reorder *between* scenarios — each
    scenario's own chunks are always submitted in enumeration order, so
    per-scenario results stay byte-identical to solo ``explore()`` under
    every policy (tested).

    :meth:`start` is called once per campaign run with the full fleet,
    so one policy instance can be reused across runs (state resets) and
    can precompute per-scenario keys (sizes, weights).
    """

    #: Registry key and report label ("round_robin", ...).
    name = "policy"

    def start(self, scenarios: Sequence[Scenario]) -> None:
        """Reset state for a new run over ``scenarios``."""

    def select(self, live: Sequence[int]) -> int:
        """The scenario index to draw the next chunk from.

        ``live`` holds the indices (ascending) of scenarios whose
        enumeration is not yet exhausted; the return value must be one
        of them.
        """
        raise NotImplementedError


class RoundRobin(SchedulingPolicy):
    """One chunk per live scenario, cyclically: no scenario starves, and
    the fleet's first results arrive from every scenario early. The
    default, byte-compatible with the original fixed interleaver."""

    name = "round_robin"

    def __init__(self) -> None:
        self._last = -1

    def start(self, scenarios: Sequence[Scenario]) -> None:
        self._last = -1

    def select(self, live: Sequence[int]) -> int:
        for index in live:
            if index > self._last:
                self._last = index
                return index
        self._last = live[0]
        return live[0]


class ShortestScenarioFirst(SchedulingPolicy):
    """Run scenarios to completion in ascending design-space size.

    Shortest-job-first over :meth:`Scenario.count_configs` estimates
    (exact up to per-config pruning): small scenarios finish — and
    stream out of :meth:`Campaign.iter_runs` — before large ones start,
    minimizing mean completion time across the fleet. Ties keep fleet
    order.
    """

    name = "shortest_scenario_first"

    def __init__(self) -> None:
        self._order: tuple[int, ...] = ()

    def start(self, scenarios: Sequence[Scenario]) -> None:
        sizes = [scenario.count_configs() for scenario in scenarios]
        self._order = tuple(
            sorted(range(len(scenarios)), key=lambda index: (sizes[index], index))
        )

    def select(self, live: Sequence[int]) -> int:
        alive = set(live)
        for index in self._order:
            if index in alive:
                return index
        return live[0]


class PriorityWeighted(SchedulingPolicy):
    """Interleave chunks proportionally to per-scenario weights.

    Smooth weighted round-robin: each selection adds every live
    scenario's weight to its credit, picks the highest credit (ties to
    the earliest scenario) and charges the picked one the live total —
    over time scenario *i* receives ``weight[i] / sum(weights)`` of the
    submitted chunks, without bursts. Deterministic, so campaign results
    are reproducible run to run.

    Parameters
    ----------
    weights:
        Mapping from scenario *name* to a positive weight; scenarios
        without an entry get ``default_weight``. Unknown names are
        rejected at :meth:`start` (they would silently never apply).
    default_weight:
        Weight of scenarios absent from ``weights``.
    """

    name = "priority_weighted"

    def __init__(
        self,
        weights: Mapping[str, float] | None = None,
        default_weight: float = 1.0,
    ):
        if default_weight <= 0:
            raise ConfigurationError(
                f"default_weight must be positive, got {default_weight}"
            )
        weights = dict(weights or {})
        for name, weight in weights.items():
            if not weight > 0:
                raise ConfigurationError(
                    f"weight for {name!r} must be positive, got {weight}"
                )
        self._by_name = weights
        self._default = default_weight
        self._weights: list[float] = []
        self._credit: list[float] = []

    def start(self, scenarios: Sequence[Scenario]) -> None:
        names = {scenario.name for scenario in scenarios}
        unknown = sorted(set(self._by_name) - names)
        if unknown:
            raise ConfigurationError(
                f"priority weights for unknown scenarios {unknown}; "
                f"campaign has {sorted(names)}"
            )
        self._weights = [
            self._by_name.get(scenario.name, self._default) for scenario in scenarios
        ]
        self._credit = [0.0] * len(scenarios)

    def select(self, live: Sequence[int]) -> int:
        credit, weights = self._credit, self._weights
        total = 0.0
        for index in live:
            credit[index] += weights[index]
            total += weights[index]
        best = live[0]
        for index in live[1:]:
            if credit[index] > credit[best]:
                best = index
        credit[best] -= total
        return best


#: Builtin policy factories by name (the string forms ``policy=`` takes).
SCHEDULING_POLICIES: dict[str, Callable[[], SchedulingPolicy]] = {
    RoundRobin.name: RoundRobin,
    ShortestScenarioFirst.name: ShortestScenarioFirst,
    PriorityWeighted.name: PriorityWeighted,
}


def resolve_policy(policy: Any) -> SchedulingPolicy:
    """Default to round-robin; accept a builtin name or a policy
    instance (duck-typed: anything with ``start``/``select``)."""
    if policy is None:
        return RoundRobin()
    if isinstance(policy, str):
        try:
            return SCHEDULING_POLICIES[policy]()
        except KeyError:
            raise ConfigurationError(
                f"unknown scheduling policy {policy!r}; builtin policies "
                f"are {sorted(SCHEDULING_POLICIES)} (or pass a "
                "SchedulingPolicy instance)"
            ) from None
    if isinstance(policy, SchedulingPolicy) or (
        callable(getattr(policy, "select", None))
        and callable(getattr(policy, "start", None))
    ):
        return policy
    raise ConfigurationError(
        "policy must be a SchedulingPolicy, one of "
        f"{sorted(SCHEDULING_POLICIES)}, or None, got {type(policy).__name__}"
    )


# -- chunk plumbing -----------------------------------------------------


def _evaluate_tagged_chunk(
    tagged: tuple[int, tuple[Any, dict[str, float] | None, bool], list[Any]],
) -> tuple[int, list[Any]]:
    """Evaluate one scenario-tagged chunk (module-level for process-pool
    picklability). The tagged item carries *its own* scenario's (model,
    pass_rates, prefix-eligible) spec — not the whole fleet's — so a
    process backend serializes one model per task, same as solo
    ``explore()``; the index travels with the costs so the collector can
    route them back to their scenario."""
    index, (model, pass_rates, memoized), configs = tagged
    if memoized:
        return index, evaluate_chunk(model, pass_rates, configs)
    return index, [_evaluate_scratch(model, pass_rates, config) for config in configs]


class _FleetProgress:
    """Chunk bookkeeping behind completion detection: a scenario is
    complete when its stream is known exhausted AND every chunk it
    emitted has been collected."""

    def __init__(self, n: int):
        self.emitted = [0] * n
        self.collected = [0] * n
        self.exhausted = [False] * n
        self._pending = set(range(n))

    def complete(self, index: int) -> bool:
        return self.exhausted[index] and self.collected[index] == self.emitted[index]

    def pop_complete(self) -> list[int]:
        """Scenario indices that completed since the last call, in fleet
        order (each returned exactly once)."""
        done = sorted(index for index in self._pending if self.complete(index))
        self._pending.difference_update(done)
        return done


def _interleave_chunks(
    scenarios: Sequence[Scenario],
    specs: Sequence[tuple[Any, dict[str, float] | None, bool]],
    sizes: Sequence[int],
    policy: SchedulingPolicy,
    progress: _FleetProgress,
) -> Iterator[tuple[int, tuple[Any, dict[str, float] | None, bool], list[Any]]]:
    """One chunk per policy selection: the selected scenario's next
    chunk is yielded (tagged), exhausted scenarios leave the live set,
    and no scenario's enumeration is materialized past its next chunk.
    Emission/exhaustion is recorded in ``progress`` so the collector can
    detect per-scenario completion."""
    streams = [
        _chunked(scenario.iter_configs(), sizes[index])
        for index, scenario in enumerate(scenarios)
    ]
    live = list(range(len(scenarios)))
    policy.start(scenarios)
    try:
        while live:
            index = policy.select(tuple(live))
            if index not in live:
                raise ConfigurationError(
                    f"scheduling policy {getattr(policy, 'name', policy)!r} "
                    f"selected scenario {index}, not in the live set {live}"
                )
            chunk = next(streams[index], None)
            if chunk is None:
                live.remove(index)
                progress.exhausted[index] = True
                continue
            progress.emitted[index] += 1
            yield index, specs[index], chunk
    finally:
        # Mark abandoned streams exhausted-at-current-count so late
        # completion scans cannot block, and close their enumerators.
        for index, stream in enumerate(streams):
            progress.exhausted[index] = True
            stream.close()


@dataclass
class ScenarioRun:
    """One scenario's outcome inside a campaign.

    ``result`` is the full :class:`ExplorationResult` when the campaign
    collected (byte-identical to a solo ``explore()``), or None on an
    export-only run — the summary statistics are tracked streamingly
    either way, including the domain-default Pareto frontier:
    ``pareto_size`` and :meth:`pareto` work in both modes (streamed
    through an online :class:`~repro.explore.result.ParetoFrontier`
    under ``collect=False``, identical to the collected frontier).
    ``wall_seconds`` is the time from campaign start until this
    scenario's last chunk was collected (scenarios share the executor,
    so exclusive per-scenario time is not a meaningful quantity).
    """

    scenario: Scenario
    result: ExplorationResult | None
    n_evaluated: int
    n_feasible: int
    best: dict[str, Any] | None
    pareto_size: int
    wall_seconds: float
    frontier: list[dict[str, Any]] | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.scenario.name

    def pareto(self) -> list[dict[str, Any]]:
        """The domain-default Pareto frontier rows: from the collected
        result when available, else the streamed frontier."""
        if self.result is not None:
            return self.result.pareto() if len(self.result) else []
        return list(self.frontier or [])

    def summary_row(self) -> dict[str, Any]:
        """One campaign-report row (see
        :func:`repro.core.report.campaign_summary_table`)."""
        metric = _best_metric(self.scenario.domain)
        return {
            "scenario": self.scenario.name,
            "domain": self.scenario.domain,
            "configs": self.n_evaluated,
            "feasible": self.n_feasible,
            "best_config": self.best["config"] if self.best else "-",
            "best_metric": self.best[metric] if self.best else "-",
            "pareto": self.pareto_size,
            "seconds": self.wall_seconds,
        }


class CampaignResult:
    """Per-scenario outcomes of one campaign, plus the fleet summary."""

    def __init__(
        self,
        name: str,
        runs: list[ScenarioRun],
        wall_seconds: float,
        policy: str = RoundRobin.name,
    ):
        self.name = name
        self.runs = runs
        self.wall_seconds = wall_seconds
        self.policy = policy

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[ScenarioRun]:
        return iter(self.runs)

    def __getitem__(self, name: str) -> ScenarioRun:
        for run in self.runs:
            if run.name == name:
                return run
        raise KeyError(
            f"no scenario {name!r} in campaign {self.name!r}; "
            f"have {[run.name for run in self.runs]}"
        )

    def summary_rows(self) -> list[dict[str, Any]]:
        return [run.summary_row() for run in self.runs]

    def to_table(self, title: str | None = None) -> TextTable:
        """The fleet summary as a :class:`~repro.core.report.TextTable`."""
        return campaign_summary_table(
            self.summary_rows(),
            title=title or f"campaign {self.name!r} "
            f"({len(self.runs)} scenarios, {self.policy}, "
            f"{self.wall_seconds:.3f}s)",
        )


def _best_metric(domain: str) -> str:
    return "total_fps" if domain == "throughput" else "total_energy_j"


class _StreamingStats:
    """Running per-scenario statistics for export-only campaigns:
    everything the summary needs that does not require all rows —
    including the domain-default Pareto frontier, maintained online."""

    __slots__ = (
        "n_evaluated",
        "n_feasible",
        "best",
        "frontier",
        "_metric",
        "_maximize",
    )

    def __init__(self, domain: str):
        self.n_evaluated = 0
        self.n_feasible = 0
        self.best: dict[str, Any] | None = None
        self.frontier: ParetoFrontier = domain_frontier(domain)
        self._metric = _best_metric(domain)
        self._maximize = DEFAULT_AXES[domain][1]

    def update(self, rows: Sequence[dict[str, Any]]) -> None:
        metric, maximize = self._metric, self._maximize
        best = self.best
        feasible = 0
        for row in rows:
            if row["feasible"]:
                feasible += 1
            value = row[metric]
            # Strict comparison: ties keep the earliest-enumerated row,
            # matching ExplorationResult.best.
            if best is None or (value > best[metric] if maximize else value < best[metric]):
                best = row
        self.best = best
        self.n_evaluated += len(rows)
        self.n_feasible += feasible
        self.frontier.add(rows)


class Campaign:
    """A batch of scenarios explored through one shared executor.

    Parameters
    ----------
    scenarios:
        The fleet; scenario names must be unique (they key sinks and
        result lookup).
    name:
        Campaign label for reports.
    """

    def __init__(self, scenarios: Sequence[Scenario], name: str = "campaign"):
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ConfigurationError("campaign needs at least one scenario")
        for scenario in scenarios:
            if not isinstance(scenario, Scenario):
                raise ConfigurationError(
                    f"campaign scenarios must be Scenario instances, got "
                    f"{type(scenario).__name__}"
                )
        names = [scenario.name for scenario in scenarios]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(
                f"campaign scenario names must be unique; duplicated: {duplicates}"
            )
        self.scenarios = scenarios
        self.name = name

    # -- sink resolution -------------------------------------------------

    def _resolve_sinks(self, sinks: Any) -> list[Any]:
        if sinks is None:
            return [None] * len(self.scenarios)
        if isinstance(sinks, Mapping):
            names = {scenario.name for scenario in self.scenarios}
            unknown = sorted(set(sinks) - names)
            if unknown:
                raise ConfigurationError(
                    f"sinks for unknown scenarios {unknown}; campaign has "
                    f"{sorted(names)}"
                )
            return [
                resolve_sink(sinks.get(scenario.name)) for scenario in self.scenarios
            ]
        if callable(sinks):
            return [resolve_sink(sinks(scenario)) for scenario in self.scenarios]
        raise ConfigurationError(
            "sinks must be a mapping {scenario name: sink}, a factory "
            f"callable, or None, got {type(sinks).__name__}"
        )

    # -- the drivers -----------------------------------------------------

    def iter_runs(
        self,
        executor: SweepExecutor | None = None,
        chunk_size: int | None = None,
        *,
        sinks: Any = None,
        collect: bool = True,
        collect_on_exit: bool = False,
        policy: Any = None,
    ) -> Iterator[ScenarioRun]:
        """Stream the fleet: yield each :class:`ScenarioRun` the moment
        its scenario's last chunk lands.

        The streaming counterpart of :meth:`run` (which is a drain over
        this iterator): scenarios complete at different times — under
        :class:`ShortestScenarioFirst` the smallest one finishes while
        the largest has barely started — and each is yielded (its sink
        closed and flushed first) without waiting for the fleet to
        drain. Yield order is completion order, not fleet order.

        Abandoning the iterator mid-fleet is safe: the executor stream
        is closed (the shared pool shuts down after in-flight chunks
        finish) and every open sink is closed (flushed), exactly as on
        an error. Parameters are those of :meth:`run`.
        """
        executor = resolve_executor(executor)
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        policy = resolve_policy(policy)
        scenarios = self.scenarios
        sink_list = self._resolve_sinks(sinks)
        if not collect and sinks is not None:
            # Summary-only campaigns (collect=False, sinks=None) are a
            # deliberate mode; but *partial* sink coverage on an
            # export-only run would silently discard the uncovered
            # scenarios' rows — the mistake explore() fails fast on.
            uncovered = [
                scenario.name
                for scenario, sink in zip(scenarios, sink_list)
                if sink is None
            ]
            if uncovered:
                raise ConfigurationError(
                    "collect=False with sinks discards rows of scenarios "
                    f"without one ({uncovered}); give every scenario a sink "
                    "or drop sinks entirely for a summary-only campaign"
                )
        return self._stream_runs(
            executor, chunk_size, sink_list, collect, collect_on_exit, policy
        )

    def _stream_runs(
        self,
        executor: SweepExecutor,
        chunk_size: int | None,
        sink_list: list[Any],
        collect: bool,
        collect_on_exit: bool,
        policy: SchedulingPolicy,
    ) -> Iterator[ScenarioRun]:
        """The generator behind :meth:`iter_runs` (argument validation
        stays eager in the caller, before the first ``next()``)."""
        scenarios = self.scenarios
        models = [scenario.cost_model() for scenario in scenarios]
        specs = tuple(
            (model, scenario.pass_rates, supports_prefix_evaluation(model))
            for model, scenario in zip(models, scenarios)
        )
        sizes = [
            self._chunk_size_for(scenario, executor, chunk_size)
            for scenario in scenarios
        ]
        # Same pause rule as solo explore(): engine-only allocations.
        pause = (
            all(memoized for _, _, memoized in specs)
            and all(scenario.prune is None for scenario in scenarios)
            and all(sink is None for sink in sink_list)
        )
        evaluations: list[list[Any]] | None = (
            [[] for _ in scenarios] if collect else None
        )
        # When a collected scenario also streams to a sink, its rows are
        # built anyway — keep them so the ExplorationResult is seeded
        # instead of re-deriving every row for the summary. Unlike solo
        # explore(), this adds no peak memory: building a ScenarioRun
        # forces every collected result's rows for the feasible/Pareto
        # summary, so the cache would materialize at run end regardless.
        row_caches: list[list[dict[str, Any]] | None] = [
            [] if collect and sink is not None else None for sink in sink_list
        ]
        stats = [_StreamingStats(scenario.domain) for scenario in scenarios]
        progress = _FleetProgress(len(scenarios))
        completed_at = [0.0] * len(scenarios)
        start = time.perf_counter()
        opened: list[int] = []
        closed: set[int] = set()
        error: BaseException | None = None
        interleaved = _interleave_chunks(scenarios, specs, sizes, policy, progress)
        results = executor.imap(_evaluate_tagged_chunk, interleaved, chunk_size=1)
        # The GC pause must cover the bulk-accumulation regions but NOT
        # the yields: consumer code between next() calls would otherwise
        # run with cycle collection disabled for the whole fleet.
        # Scenario completions are rare (N per campaign), so leaving and
        # re-entering the paused region around them costs nothing.
        pause_guard: ExitStack | None = None

        def _enter_pause() -> None:
            nonlocal pause_guard
            if pause and pause_guard is None:
                pause_guard = ExitStack()
                pause_guard.enter_context(_gc_paused())

        def _exit_pause() -> None:
            nonlocal pause_guard
            if pause_guard is not None:
                pause_guard.close()
                pause_guard = None

        try:
            # Opening happens inside the try so a sink whose open()
            # fails still gets every *previously opened* sink closed
            # (flushed) on the way out.
            for index, sink in enumerate(sink_list):
                if sink is not None:
                    open_sink(sink, scenarios[index], self._label(index))
                    opened.append(index)
            _enter_pause()
            for index, costs in results:
                scenario = scenarios[index]
                sink = sink_list[index]
                if evaluations is not None:
                    evaluations[index].extend(costs)
                if sink is not None or evaluations is None:
                    rows = [cost_row(scenario, cost) for cost in costs]
                    if evaluations is None:
                        # Streaming stats are only consulted on
                        # export-only runs; collected runs derive
                        # the summary from the result instead.
                        stats[index].update(rows)
                    elif row_caches[index] is not None:
                        row_caches[index].extend(rows)
                    if sink is not None:
                        write_sink(sink, rows, self._label(index))
                progress.collected[index] += 1
                completed_at[index] = time.perf_counter() - start
                done = self._finish_complete(
                    progress,
                    sink_list,
                    opened,
                    closed,
                    evaluations,
                    row_caches,
                    stats,
                    completed_at,
                )
                if done:
                    _exit_pause()
                    yield from done
                    _enter_pause()
            # Exhaustions discovered after a scenario's final collection
            # (and zero-chunk scenarios) surface once the stream drains.
            done = self._finish_complete(
                progress,
                sink_list,
                opened,
                closed,
                evaluations,
                row_caches,
                stats,
                completed_at,
            )
            _exit_pause()
            yield from done
        except BaseException as exc:
            error = exc
            raise
        finally:
            _exit_pause()
            # Stop the executor stream first (the pool shuts down after
            # in-flight chunks finish), then the enumerators, then flush
            # every sink not already closed at scenario completion.
            stream_close = getattr(results, "close", None)
            if stream_close is not None:
                stream_close()
            interleaved.close()
            close_error: BaseException | None = None
            for index in opened:
                if index in closed:
                    continue
                try:
                    close_sink(sink_list[index], self._label(index))
                except Exception as exc:
                    # Keep closing the rest: one bad sink must not leave
                    # other scenarios' outputs unflushed.
                    if close_error is None:
                        close_error = exc
            if collect_on_exit:
                gc.collect()
            if close_error is not None and error is None:
                raise close_error

    def _finish_complete(
        self,
        progress: _FleetProgress,
        sink_list: list[Any],
        opened: list[int],
        closed: set[int],
        evaluations: list[list[Any]] | None,
        row_caches: list[list[dict[str, Any]] | None],
        stats: list[_StreamingStats],
        completed_at: list[float],
    ) -> list[ScenarioRun]:
        """Runs for scenarios that just completed, their sinks closed
        first so a handed-out run's exports are already flushed."""
        runs: list[ScenarioRun] = []
        for index in progress.pop_complete():
            if index in opened and index not in closed:
                closed.add(index)
                close_sink(sink_list[index], self._label(index))
            runs.append(
                self._build_run(
                    index,
                    evaluations[index] if evaluations is not None else None,
                    row_caches[index],
                    stats[index],
                    completed_at[index],
                )
            )
        return runs

    def run(
        self,
        executor: SweepExecutor | None = None,
        chunk_size: int | None = None,
        *,
        sinks: Any = None,
        collect: bool = True,
        collect_on_exit: bool = False,
        policy: Any = None,
    ) -> CampaignResult:
        """Explore every scenario through one shared executor.

        A drain over :meth:`iter_runs` — identical results, with the
        per-scenario runs reassembled into fleet order.

        Parameters
        ----------
        executor:
            The one pool all scenarios share; defaults to serial. Row
            order per scenario is its enumeration order for any worker
            count.
        chunk_size:
            Configurations per streamed chunk for every scenario
            (default: the executor's ``chunk_size``, else sized per
            scenario the way solo ``explore()`` would).
        sinks:
            Per-scenario streaming outputs: a mapping from scenario
            name to sink (scenarios without an entry get none) or a
            factory ``scenario -> sink | None``.
        collect:
            With ``collect=False`` no :class:`ExplorationResult` caches
            are built — each :class:`ScenarioRun` carries streaming
            statistics only (the Pareto frontier maintained online) and
            peak memory is bounded by the chunk window. Legal with no
            sinks at all (a summary-only campaign) or with a sink for
            *every* scenario (an export-only campaign); partial coverage
            would silently discard rows and is rejected.
        collect_on_exit:
            Run the GC pass deferred by the bulk-accumulation pause
            before returning (see :func:`repro.explore.explore`).
        policy:
            The :class:`SchedulingPolicy` interleaving the fleet's
            chunks — an instance or a builtin name
            (:data:`SCHEDULING_POLICIES`); default round-robin. Policies
            reorder scenario completion, never per-scenario results.
        """
        resolved = resolve_policy(policy)
        start = time.perf_counter()
        runs = list(
            self.iter_runs(
                executor,
                chunk_size,
                sinks=sinks,
                collect=collect,
                collect_on_exit=collect_on_exit,
                policy=resolved,
            )
        )
        wall = time.perf_counter() - start
        order = {scenario.name: i for i, scenario in enumerate(self.scenarios)}
        runs.sort(key=lambda run: order[run.name])
        return CampaignResult(
            name=self.name,
            runs=runs,
            wall_seconds=wall,
            policy=getattr(resolved, "name", type(resolved).__name__),
        )

    def _label(self, index: int) -> str:
        return f"scenario {self.scenarios[index].name!r}"

    @staticmethod
    def _chunk_size_for(
        scenario: Scenario, executor: SweepExecutor, chunk_size: int | None
    ) -> int:
        if chunk_size is not None:
            return chunk_size
        if executor.chunk_size is not None:
            return executor.chunk_size
        if not executor.is_serial:
            return auto_chunk_size(
                scenario.count_configs(), executor.workers, DEFAULT_CHUNK_SIZE
            )
        return DEFAULT_CHUNK_SIZE

    def _build_run(
        self,
        index: int,
        scenario_evaluations: list[Any] | None,
        row_cache: list[dict[str, Any]] | None,
        run_stats: _StreamingStats,
        completed_at: float,
    ) -> ScenarioRun:
        scenario = self.scenarios[index]
        if scenario_evaluations is not None:
            result = ExplorationResult(
                scenario=scenario,
                rows=row_cache,
                evaluations=scenario_evaluations,
            )
            n_evaluated = len(result)
            n_feasible = len(result.feasible)
            try:
                best = result.best
            except PipelineError:
                best = None
            pareto_size = len(result.pareto()) if n_evaluated else 0
            frontier = None
        else:
            result = None
            n_evaluated = run_stats.n_evaluated
            n_feasible = run_stats.n_feasible
            best = run_stats.best
            frontier = run_stats.frontier.rows
            pareto_size = len(frontier)
        return ScenarioRun(
            scenario=scenario,
            result=result,
            n_evaluated=n_evaluated,
            n_feasible=n_feasible,
            best=best,
            pareto_size=pareto_size,
            wall_seconds=round(completed_at, 6),
            frontier=frontier,
        )


def run_campaign(
    scenarios: Sequence[Scenario],
    executor: SweepExecutor | None = None,
    chunk_size: int | None = None,
    *,
    name: str = "campaign",
    sinks: Any = None,
    collect: bool = True,
    collect_on_exit: bool = False,
    policy: Any = None,
) -> CampaignResult:
    """One-call convenience: ``Campaign(scenarios, name).run(...)``."""
    return Campaign(scenarios, name=name).run(
        executor,
        chunk_size,
        sinks=sinks,
        collect=collect,
        collect_on_exit=collect_on_exit,
        policy=policy,
    )
