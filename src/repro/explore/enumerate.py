"""Lazy configuration enumeration with pluggable pruning hooks.

The paper's design space is every (cut point, platform assignment) of a
pipeline. The seed materialized it eagerly; at scale (deep pipelines,
many platforms per block) the space is exponential, so this module
yields configurations one at a time and lets callers prune whole cut
depths or individual configurations before they are ever evaluated.

Enumeration order is deterministic and identical to the historical
eager order: the raw-offload configuration first (if requested), then
cut depths 1..limit, platform choices per block in sorted name order,
cartesian products in :func:`itertools.product` order. Pruning removes
entries from this sequence without reordering the survivors, so a
pruned enumeration is always a subsequence of the unpruned one.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterator, Sequence

from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.errors import PipelineError

#: Per-configuration hook: return True to skip (prune) the configuration.
PruneHook = Callable[[PipelineConfig], bool]

#: Per-depth hook: return True to skip every configuration with that many
#: in-camera blocks (0 = the raw-offload configuration).
DepthPruneHook = Callable[[int], bool]


def _normalize_hooks(
    prune: PruneHook | Sequence[PruneHook] | None,
) -> tuple[PruneHook, ...]:
    if prune is None:
        return ()
    if callable(prune):
        return (prune,)
    return tuple(prune)


def iter_configs(
    pipeline: InCameraPipeline,
    max_blocks: int | None = None,
    include_empty: bool = True,
    prune: PruneHook | Sequence[PruneHook] | None = None,
    prune_depth: DepthPruneHook | None = None,
) -> Iterator[PipelineConfig]:
    """Lazily yield every (cut point, platform) configuration.

    Parameters
    ----------
    pipeline:
        The pipeline to enumerate.
    max_blocks:
        Cap on the number of in-camera blocks (default: all).
    include_empty:
        Include the raw-offload configuration (``S~``).
    prune:
        One hook or a sequence of hooks; a configuration is skipped when
        any hook returns True for it.
    prune_depth:
        Depth-level hook; when it returns True for a cut depth, no
        configuration at that depth is constructed at all (cheaper than
        per-config pruning for communication-bound cutoffs).

    Argument validation happens eagerly, before the first ``next()``.
    """
    limit = len(pipeline.blocks) if max_blocks is None else max_blocks
    if not 0 <= limit <= len(pipeline.blocks):
        raise PipelineError(f"max_blocks must be in [0, {len(pipeline.blocks)}]")
    hooks = _normalize_hooks(prune)
    return _generate(pipeline, limit, include_empty, hooks, prune_depth)


def _generate(
    pipeline: InCameraPipeline,
    limit: int,
    include_empty: bool,
    hooks: tuple[PruneHook, ...],
    prune_depth: DepthPruneHook | None,
) -> Iterator[PipelineConfig]:
    def keep(config: PipelineConfig) -> bool:
        return not any(hook(config) for hook in hooks)

    if include_empty and not (prune_depth is not None and prune_depth(0)):
        config = PipelineConfig(pipeline=pipeline, platforms=())
        if keep(config):
            yield config
    for depth in range(1, limit + 1):
        option_lists = [
            sorted(block.implementations) for block in pipeline.blocks[:depth]
        ]
        if any(not opts for opts in option_lists):
            return  # a block with no implementation cannot run in camera
        if prune_depth is not None and prune_depth(depth):
            continue
        for choice in product(*option_lists):
            config = PipelineConfig(pipeline=pipeline, platforms=tuple(choice))
            if keep(config):
                yield config


def count_configs(
    pipeline: InCameraPipeline,
    max_blocks: int | None = None,
    include_empty: bool = True,
) -> int:
    """Size of the unpruned design space, without constructing configs.

    Matches ``len(list(iter_configs(...)))`` for the same arguments (no
    pruning); useful for sizing executor chunks and for reporting how
    much a prune hook saved.
    """
    limit = len(pipeline.blocks) if max_blocks is None else max_blocks
    if not 0 <= limit <= len(pipeline.blocks):
        raise PipelineError(f"max_blocks must be in [0, {len(pipeline.blocks)}]")
    total = 1 if include_empty else 0  # the raw-offload configuration
    per_depth = 1
    for block in pipeline.blocks[:limit]:
        if not block.implementations:
            break
        per_depth *= len(block.implementations)
        total += per_depth
    return total
