"""Lazy configuration enumeration with pluggable pruning hooks.

The paper's design space is every (cut point, platform assignment) of a
pipeline. The seed materialized it eagerly; at scale (deep pipelines,
many platforms per block) the space is exponential, so this module
yields configurations one at a time and lets callers prune whole cut
depths or individual configurations before they are ever evaluated.

Enumeration order is deterministic and identical to the historical
eager order: the raw-offload configuration first (if requested), then
cut depths 1..limit, platform choices per block in sorted name order,
cartesian products in :func:`itertools.product` order. Pruning removes
entries from this sequence without reordering the survivors, so a
pruned enumeration is always a subsequence of the unpruned one.

Both :func:`iter_configs` and :func:`count_configs` derive their depth
walk from one shared :func:`enumeration_plan`, so the enumeration rules
cannot drift apart (the counting function used to re-implement the
walk; any future rule change now lands in both automatically).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Iterator, Sequence

from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.errors import PipelineError

#: Per-configuration hook: return True to skip (prune) the configuration.
PruneHook = Callable[[PipelineConfig], bool]

#: Per-depth hook: return True to skip every configuration with that many
#: in-camera blocks (0 = the raw-offload configuration).
DepthPruneHook = Callable[[int], bool]

#: Sentinel a :class:`PrefixPruner`'s ``extend`` returns to cut the whole
#: subtree rooted at the extended prefix.
PRUNED_SUBTREE = object()


@dataclass(frozen=True)
class PrefixPruner:
    """A stateful bound over platform-choice *prefixes*.

    Depth pruning cuts whole cut depths; a prefix pruner cuts subtrees
    *within* a depth: while the enumerator extends a partial platform
    assignment one block at a time, ``extend(block_index, platform,
    state)`` folds the choice into an accumulated bound state and
    returns either the new state or :data:`PRUNED_SUBTREE`, in which
    case no configuration extending that prefix is constructed at all.

    Soundness is the hook author's contract: a prefix may be cut only
    when *every* completion of it (at the current and every deeper cut
    depth) is provably infeasible — the enumerator asks about a prefix
    once per depth it could complete to. See
    :func:`repro.explore.prune.compute_fps_prefix_pruner` for the
    canonical instance (running min of chosen implementation rates vs a
    throughput target: extending a pipeline never raises its compute
    rate, so a prefix below target can cut its whole subtree).

    The enumerator walks each cut depth separately, so during the
    depth-``d`` walk every completion of a prefix is *exactly* at depth
    ``d`` — a strictly easier bounding problem than "every deeper
    depth". A pruner may exploit that through ``for_depth``: when set,
    the enumerator calls ``for_depth(d)`` once per walked depth and uses
    the returned extend function for that depth's DFS instead of the
    generic ``extend``. The depth-aware soundness contract is
    correspondingly narrower: cut a prefix only when every completion
    *at that depth* is provably infeasible. See
    :func:`repro.explore.prune.energy_prefix_pruner` for the canonical
    instance (the dual bound: per-depth exact transmit terms instead of
    the min over all completion depths).

    A pruner may additionally carry a *batch* form of the same bound,
    which the columnar cohort walk
    (:meth:`repro.explore.vectorized.BatchPrefixEvaluator.iter_scenario_batches`)
    fuses into its depth folds as boolean-mask compaction. The batch
    state is a flat tuple of equal-length 1-D arrays (row ``i`` is the
    scalar bound state of cohort row ``i``), so the caller can repeat it
    along options (``np.repeat`` per array) and compact it with one
    fancy-index gather per array without knowing its meaning:

    - ``initial_batch(n)`` returns the batch state of ``n`` empty
      prefixes.
    - ``extend_batch(block_index, choices, state)`` folds one option
      tile (``choices`` selects each row's platform in enumeration
      order) and returns ``(new_state, keep_mask)``. ``keep_mask[i]``
      False asserts row ``i``'s subtree is infeasible at *every*
      remaining cut depth — exactly the generic ``extend`` contract —
      so the caller drops the row from all deeper cohorts.
    - ``emit_mask(depth, state)`` (optional) returns the boolean mask of
      compacted rows that survive the depth-``depth`` walk of the
      *depth-aware* bound — exactly the rows ``for_depth(depth)`` would
      yield. None (or an all-True mask) means the compacted cohort is
      already the exact survivor set, which holds for depth-monotone
      bounds like the throughput floor.

    Elementwise, the batch forms must perform the same float operations
    in the same order as their scalar counterparts: the fused walk's
    survivor set is then *byte-identical* to the scalar pruned walk's.

    Parameters
    ----------
    initial:
        The state of the empty prefix.
    extend:
        ``(block_index, platform, state) -> new_state | PRUNED_SUBTREE``.
    for_depth:
        Optional ``depth -> extend``-shaped factory for depth-aware
        bounds; when None the generic ``extend`` serves every depth.
    initial_batch:
        Optional ``n -> state_columns`` for the batch form.
    extend_batch:
        Optional ``(block_index, choices, state_columns) ->
        (new_state_columns, keep_mask)``.
    emit_mask:
        Optional ``(depth, state_columns) -> mask | None`` mapping the
        compacted cohort to the depth-aware survivor set.
    """

    initial: Any
    extend: Callable[[int, str, Any], Any]
    for_depth: Callable[[int], Callable[[int, str, Any], Any]] | None = None
    initial_batch: Callable[[int], tuple] | None = None
    extend_batch: Callable[[int, Any, tuple], tuple[tuple, Any]] | None = None
    emit_mask: Callable[[int, tuple], Any] | None = None

    @property
    def batch_capable(self) -> bool:
        """Whether the pruner can ride the fused columnar walk."""
        return self.initial_batch is not None and self.extend_batch is not None


def _normalize_hooks(
    prune: PruneHook | Sequence[PruneHook] | None,
) -> tuple[PruneHook, ...]:
    if prune is None:
        return ()
    if callable(prune):
        return (prune,)
    return tuple(prune)


def enumeration_plan(
    pipeline: InCameraPipeline, max_blocks: int | None = None
) -> list[list[str]]:
    """The per-depth platform options shared by iteration and counting.

    Returns one sorted option list per enumerable cut depth: entry
    ``d-1`` holds the platform choices of block ``d``. The plan is
    truncated at the first block with no implementations (a block that
    cannot run in camera ends the enumerable depths) and capped at
    ``max_blocks``. Argument validation happens here, eagerly.
    """
    limit = len(pipeline.blocks) if max_blocks is None else max_blocks
    if not 0 <= limit <= len(pipeline.blocks):
        raise PipelineError(f"max_blocks must be in [0, {len(pipeline.blocks)}]")
    option_lists: list[list[str]] = []
    for block in pipeline.blocks[:limit]:
        options = sorted(block.implementations)
        if not options:
            break
        option_lists.append(options)
    return option_lists


def iter_configs(
    pipeline: InCameraPipeline,
    max_blocks: int | None = None,
    include_empty: bool = True,
    prune: PruneHook | Sequence[PruneHook] | None = None,
    prune_depth: DepthPruneHook | None = None,
    prune_prefix: PrefixPruner | None = None,
) -> Iterator[PipelineConfig]:
    """Lazily yield every (cut point, platform) configuration.

    Parameters
    ----------
    pipeline:
        The pipeline to enumerate.
    max_blocks:
        Cap on the number of in-camera blocks (default: all).
    include_empty:
        Include the raw-offload configuration (``S~``).
    prune:
        One hook or a sequence of hooks; a configuration is skipped when
        any hook returns True for it.
    prune_depth:
        Depth-level hook; when it returns True for a cut depth, no
        configuration at that depth is constructed at all (cheaper than
        per-config pruning for communication-bound cutoffs).
    prune_prefix:
        Subtree-level bound *within* surviving depths (see
        :class:`PrefixPruner`); when its ``extend`` cuts a prefix, no
        completion of that prefix is constructed. Survivors keep the
        exact product order, so a prefix-pruned enumeration is still a
        subsequence of the unpruned one.

    Argument validation happens eagerly, before the first ``next()``.
    """
    option_lists = enumeration_plan(pipeline, max_blocks)
    hooks = _normalize_hooks(prune)
    return _generate(
        pipeline, option_lists, include_empty, hooks, prune_depth, prune_prefix
    )


def _prefix_pruned_choices(
    option_lists: list[list[str]], depth: int, pruner: PrefixPruner
) -> Iterator[tuple[str, ...]]:
    """Depth-``depth`` platform assignments surviving the prefix bound,
    in exact :func:`itertools.product` order (DFS over sorted options is
    the product order; cut subtrees just drop their contiguous run)."""
    extend = pruner.for_depth(depth) if pruner.for_depth is not None else pruner.extend
    last = depth - 1

    def walk(level: int, prefix: tuple[str, ...], state: Any) -> Iterator[tuple[str, ...]]:
        for platform in option_lists[level]:
            extended = extend(level, platform, state)
            if extended is PRUNED_SUBTREE:
                continue
            choice = prefix + (platform,)
            if level == last:
                yield choice
            else:
                yield from walk(level + 1, choice, extended)

    return walk(0, (), pruner.initial)


def _generate(
    pipeline: InCameraPipeline,
    option_lists: list[list[str]],
    include_empty: bool,
    hooks: tuple[PruneHook, ...],
    prune_depth: DepthPruneHook | None,
    prune_prefix: PrefixPruner | None = None,
) -> Iterator[PipelineConfig]:
    def keep(config: PipelineConfig) -> bool:
        return not any(hook(config) for hook in hooks)

    # Choices come straight from block.implementations keys, so the
    # trusted (validation-free) constructor is safe on this hot path.
    trusted = PipelineConfig.trusted
    if include_empty and not (prune_depth is not None and prune_depth(0)):
        # The raw-offload configuration has no platform choices, so the
        # prefix bound never applies to it.
        config = trusted(pipeline, ())
        if keep(config):
            yield config
    for depth in range(1, len(option_lists) + 1):
        if prune_depth is not None and prune_depth(depth):
            continue
        if prune_prefix is not None:
            for choice in _prefix_pruned_choices(option_lists, depth, prune_prefix):
                config = trusted(pipeline, choice)
                if keep(config):
                    yield config
        elif hooks:
            for choice in product(*option_lists[:depth]):
                config = trusted(pipeline, choice)
                if keep(config):
                    yield config
        else:
            # Unhooked hot path: no per-config predicate machinery and
            # trusted() inlined (the classmethod dispatch alone is
            # measurable across millions of configurations).
            new = object.__new__
            set_field = object.__setattr__
            for choice in product(*option_lists[:depth]):
                config = new(PipelineConfig)
                set_field(config, "pipeline", pipeline)
                set_field(config, "platforms", choice)
                yield config


def count_configs(
    pipeline: InCameraPipeline,
    max_blocks: int | None = None,
    include_empty: bool = True,
    prune_depth: DepthPruneHook | None = None,
) -> int:
    """Size of the design space, without constructing configurations.

    Matches ``len(list(iter_configs(...)))`` for the same arguments as
    long as no *per-config* ``prune`` hook or *prefix* pruner filters
    further (depth-level pruning is exact here; counting those would
    require enumerating, so with them this is an upper bound).
    Useful for sizing executor chunks and for reporting how much a depth
    pruner saved: ``count_configs(p) - count_configs(p, prune_depth=h)``.
    """
    option_lists = enumeration_plan(pipeline, max_blocks)
    total = 0
    if include_empty and not (prune_depth is not None and prune_depth(0)):
        total += 1  # the raw-offload configuration
    per_depth = 1
    for depth, options in enumerate(option_lists, start=1):
        per_depth *= len(options)
        if prune_depth is not None and prune_depth(depth):
            continue
        total += per_depth
    return total
