"""Lazy configuration enumeration with pluggable pruning hooks.

The paper's design space is every (cut point, platform assignment) of a
pipeline. The seed materialized it eagerly; at scale (deep pipelines,
many platforms per block) the space is exponential, so this module
yields configurations one at a time and lets callers prune whole cut
depths or individual configurations before they are ever evaluated.

Enumeration order is deterministic and identical to the historical
eager order: the raw-offload configuration first (if requested), then
cut depths 1..limit, platform choices per block in sorted name order,
cartesian products in :func:`itertools.product` order. Pruning removes
entries from this sequence without reordering the survivors, so a
pruned enumeration is always a subsequence of the unpruned one.

Both :func:`iter_configs` and :func:`count_configs` derive their depth
walk from one shared :func:`enumeration_plan`, so the enumeration rules
cannot drift apart (the counting function used to re-implement the
walk; any future rule change now lands in both automatically).
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterator, Sequence

from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.errors import PipelineError

#: Per-configuration hook: return True to skip (prune) the configuration.
PruneHook = Callable[[PipelineConfig], bool]

#: Per-depth hook: return True to skip every configuration with that many
#: in-camera blocks (0 = the raw-offload configuration).
DepthPruneHook = Callable[[int], bool]


def _normalize_hooks(
    prune: PruneHook | Sequence[PruneHook] | None,
) -> tuple[PruneHook, ...]:
    if prune is None:
        return ()
    if callable(prune):
        return (prune,)
    return tuple(prune)


def enumeration_plan(
    pipeline: InCameraPipeline, max_blocks: int | None = None
) -> list[list[str]]:
    """The per-depth platform options shared by iteration and counting.

    Returns one sorted option list per enumerable cut depth: entry
    ``d-1`` holds the platform choices of block ``d``. The plan is
    truncated at the first block with no implementations (a block that
    cannot run in camera ends the enumerable depths) and capped at
    ``max_blocks``. Argument validation happens here, eagerly.
    """
    limit = len(pipeline.blocks) if max_blocks is None else max_blocks
    if not 0 <= limit <= len(pipeline.blocks):
        raise PipelineError(f"max_blocks must be in [0, {len(pipeline.blocks)}]")
    option_lists: list[list[str]] = []
    for block in pipeline.blocks[:limit]:
        options = sorted(block.implementations)
        if not options:
            break
        option_lists.append(options)
    return option_lists


def iter_configs(
    pipeline: InCameraPipeline,
    max_blocks: int | None = None,
    include_empty: bool = True,
    prune: PruneHook | Sequence[PruneHook] | None = None,
    prune_depth: DepthPruneHook | None = None,
) -> Iterator[PipelineConfig]:
    """Lazily yield every (cut point, platform) configuration.

    Parameters
    ----------
    pipeline:
        The pipeline to enumerate.
    max_blocks:
        Cap on the number of in-camera blocks (default: all).
    include_empty:
        Include the raw-offload configuration (``S~``).
    prune:
        One hook or a sequence of hooks; a configuration is skipped when
        any hook returns True for it.
    prune_depth:
        Depth-level hook; when it returns True for a cut depth, no
        configuration at that depth is constructed at all (cheaper than
        per-config pruning for communication-bound cutoffs).

    Argument validation happens eagerly, before the first ``next()``.
    """
    option_lists = enumeration_plan(pipeline, max_blocks)
    hooks = _normalize_hooks(prune)
    return _generate(pipeline, option_lists, include_empty, hooks, prune_depth)


def _generate(
    pipeline: InCameraPipeline,
    option_lists: list[list[str]],
    include_empty: bool,
    hooks: tuple[PruneHook, ...],
    prune_depth: DepthPruneHook | None,
) -> Iterator[PipelineConfig]:
    def keep(config: PipelineConfig) -> bool:
        return not any(hook(config) for hook in hooks)

    # Choices come straight from block.implementations keys, so the
    # trusted (validation-free) constructor is safe on this hot path.
    trusted = PipelineConfig.trusted
    if include_empty and not (prune_depth is not None and prune_depth(0)):
        config = trusted(pipeline, ())
        if keep(config):
            yield config
    for depth in range(1, len(option_lists) + 1):
        if prune_depth is not None and prune_depth(depth):
            continue
        if hooks:
            for choice in product(*option_lists[:depth]):
                config = trusted(pipeline, choice)
                if keep(config):
                    yield config
        else:
            # Unhooked hot path: no per-config predicate machinery and
            # trusted() inlined (the classmethod dispatch alone is
            # measurable across millions of configurations).
            new = object.__new__
            set_field = object.__setattr__
            for choice in product(*option_lists[:depth]):
                config = new(PipelineConfig)
                set_field(config, "pipeline", pipeline)
                set_field(config, "platforms", choice)
                yield config


def count_configs(
    pipeline: InCameraPipeline,
    max_blocks: int | None = None,
    include_empty: bool = True,
    prune_depth: DepthPruneHook | None = None,
) -> int:
    """Size of the design space, without constructing configurations.

    Matches ``len(list(iter_configs(...)))`` for the same arguments as
    long as no *per-config* hook filters further (depth-level pruning is
    exact here; counting per-config hooks would require enumerating).
    Useful for sizing executor chunks and for reporting how much a depth
    pruner saved: ``count_configs(p) - count_configs(p, prune_depth=h)``.
    """
    option_lists = enumeration_plan(pipeline, max_blocks)
    total = 0
    if include_empty and not (prune_depth is not None and prune_depth(0)):
        total += 1  # the raw-offload configuration
    per_depth = 1
    for depth, options in enumerate(option_lists, start=1):
        per_depth *= len(options)
        if prune_depth is not None and prune_depth(depth):
            continue
        total += per_depth
    return total
