"""Joint-fleet exploration: N cameras contending for one shared uplink.

The source paper treats each camera as sole owner of its link; the
related work (Eriksson et al., "Distributed Algorithms for Feature
Extraction Off-loading in Multi-Camera Visual Sensor Networks";
Ballotta et al., "Computation-Communication Trade-offs and Sensor
Selection in Real-time Estimation for Processing Networks") studies the
harder regime this module adds: *N* member scenarios choose their
offload splits **jointly**, and feasibility couples them through
aggregate link demand — the sum of per-member transmit rates at the
chosen splits must fit one shared uplink of fixed capacity.

The coupling model
------------------

Each member is an ordinary throughput-domain :class:`Scenario` with a
``target_fps`` (built *at the shared link*, so its solo rows already
price communication over that uplink). A member that cuts its pipeline
at depth ``d`` must ship ``offload_bytes(d)`` per frame at its target
rate, so its committed share of the uplink is exactly::

    demand_bps = bytes_to_bits(offload_bytes) * target_fps

Demand depends on the *cut depth only* (platform choices never change
the payload), which is what makes the joint search tractable: among a
member's solo-feasible rows, one representative per depth — the first
row attaining that depth's maximum ``total_fps``, the same
first-enumerated tie rule as :func:`repro.explore.result.best_row` —
is an **exact** compression for the fleet objective below: swapping
any feasible row for its depth representative preserves every demand
and can only raise the member's rate.

The objective is fleet-level: maximize the *minimum member FPS* over
joint assignments whose aggregate demand fits the capacity (the
max-min fairness point); the weighted-mean-completion-time objective
over ``iter_runs`` lands alongside as
:meth:`~repro.explore.campaign.CampaignResult.weighted_completion_seconds`
plus the ``weighted_completion`` scheduling policy.

Machinery reuse, not re-enumeration
-----------------------------------

Phase 1 evaluates every member's solo design space through one
:class:`~repro.explore.campaign.Campaign` — the chunk interleaver, any
:class:`~repro.explore.scheduling.SchedulingPolicy`, and (with
``dedup=True``) the cross-member evaluation dedup + fleet-shared
:class:`~repro.explore.vectorized.PrefixStateCache`: members sharing a
pipeline hit the lazy columnar group-finalize path and are costed
once. Member rows are therefore byte-identical to solo ``explore()``
runs by the campaign's standing contract. Phase 2 runs the outer DFS
over per-member candidates with the sound shared-capacity lower-bound
pruner from :mod:`repro.explore.prune` (level = member index, choice =
candidate index): a joint prefix is cut exactly when its committed
demand plus every remaining member's *cheapest* candidate demand
already overflows the capacity.

The byte-identity contract extends here: a joint fleet whose capacity
is at least :meth:`JointFleetScenario.solo_demand_bps` (every member
free to pick its worst-case payload simultaneously) is *uncontended* —
the capacity pruner can never fire, member rows reproduce solo
``explore()`` byte-identically, and the fleet optimum equals the
weakest member's solo-best feasible rate (the invariant suite asserts
all three).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.report import TextTable, joint_fleet_summary_table
from repro.errors import ConfigurationError, PipelineError
from repro.explore.campaign import Campaign, CampaignResult
from repro.explore.enumerate import PRUNED_SUBTREE
from repro.explore.executor import SweepExecutor
from repro.explore.prune import shared_capacity_prefix_pruner
from repro.explore.result import best_row
from repro.explore.scenario import Scenario
from repro.explore.sink import ResultSink
from repro.units import bytes_to_bits

try:  # the sink's columnar fast path; the row path needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


@dataclass(frozen=True)
class JointFleetScenario:
    """N member scenarios sharing one uplink of fixed capacity.

    Parameters
    ----------
    name:
        Fleet label (reports, campaign name).
    members:
        The member scenarios. Throughput domain with a ``target_fps``
        each (the demand model needs a sustained rate), unique names
        (campaign-legal), and conventionally built at the shared link
        so solo rows price communication over the uplink they contend
        for (:meth:`ScenarioCatalog.build_joint_fleets` does this).
    capacity_bps:
        The shared uplink capacity in bits/second that the members'
        aggregate demand must fit.
    weights:
        Optional per-member completion-time weights (aligned with
        ``members``) for the weighted-mean-completion-time objective;
        forwarded to
        :meth:`~repro.explore.campaign.CampaignResult.weighted_completion_seconds`
        and usable as ``policy=WeightedCompletionTime(fleet.weight_map())``.
    """

    name: str
    members: tuple[Scenario, ...]
    capacity_bps: float
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(self.members))
        if not self.members:
            raise ConfigurationError("joint fleet needs at least one member")
        for member in self.members:
            if not isinstance(member, Scenario):
                raise ConfigurationError(
                    f"fleet members must be Scenario instances, got "
                    f"{type(member).__name__}"
                )
            if member.domain != "throughput" or member.target_fps is None:
                raise ConfigurationError(
                    f"joint fleet member {member.name!r} must be a "
                    "throughput-domain scenario with a target_fps — the "
                    "shared-uplink demand model is payload bits x "
                    "sustained frame rate"
                )
        names = [member.name for member in self.members]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"fleet member names must be unique, got {names}"
            )
        if not (
            isinstance(self.capacity_bps, (int, float))
            and math.isfinite(self.capacity_bps)
            and self.capacity_bps > 0
        ):
            raise ConfigurationError(
                f"capacity_bps must be a positive finite number, got "
                f"{self.capacity_bps!r}"
            )
        if self.weights is not None:
            object.__setattr__(self, "weights", tuple(self.weights))
            if len(self.weights) != len(self.members):
                raise ConfigurationError(
                    f"weights must align with members "
                    f"({len(self.members)}), got {len(self.weights)}"
                )
            for name, weight in zip(names, self.weights):
                if not weight > 0:
                    raise ConfigurationError(
                        f"weight for {name!r} must be positive, got {weight}"
                    )

    def weight_map(self) -> dict[str, float] | None:
        """The weights keyed by member name (None when unweighted)."""
        if self.weights is None:
            return None
        return {
            member.name: weight
            for member, weight in zip(self.members, self.weights)
        }

    def solo_demand_bps(self) -> float:
        """Capacity sufficient for *any* simultaneous member choices.

        The sum over members of each member's worst-case demand across
        every cut depth (``0..len(blocks)``, clamped by ``max_blocks``).
        A fleet with ``capacity_bps >= solo_demand_bps()`` is
        *uncontended*: no joint assignment can overflow the uplink, so
        the shared-capacity constraint is vacuous and the joint optimum
        degenerates to each member's independent solo optimum.
        """
        total = 0.0
        for member in self.members:
            pipeline = member.pipeline
            depths = len(pipeline.blocks)
            if member.max_blocks is not None:
                depths = min(depths, member.max_blocks)
            total += max(
                bytes_to_bits(pipeline.output_bytes_after(depth))
                * member.target_fps
                for depth in range(depths + 1)
            )
        return total

    def is_uncontended(self) -> bool:
        """True when the capacity admits every joint assignment."""
        return self.capacity_bps >= self.solo_demand_bps()


@dataclass
class JointCandidate:
    """One member split the joint search may assign: the depth's best
    solo-feasible row, its rate, and its committed uplink demand."""

    row: dict[str, Any]
    depth: int
    fps: float
    demand_bps: float


def member_demand_bps(member: Scenario, row: Mapping[str, Any]) -> float:
    """The uplink share (bits/second) row's split commits the member to:
    payload bits per frame times the sustained target frame rate."""
    return bytes_to_bits(row["offload_bytes"]) * member.target_fps


def joint_candidates(
    member: Scenario, rows: Sequence[dict[str, Any]]
) -> list[JointCandidate]:
    """One candidate per cut depth from a member's solo rows.

    Among solo-feasible rows, each depth is represented by the first
    row attaining that depth's maximum ``total_fps`` (the
    :func:`~repro.explore.result.best_row` tie rule). Exact for the
    max-min objective: demand is a function of the payload, hence of
    the depth alone, so replacing any feasible row with its depth
    representative preserves every aggregate demand and can only raise
    the member's rate — the compressed search space contains a joint
    optimum of the full space. Candidates keep depth first-appearance
    (= enumeration) order, so the DFS tie-break is deterministic.
    """
    by_depth: dict[int, list[dict[str, Any]]] = {}
    order: list[int] = []
    for row in rows:
        if not row["feasible"]:
            continue
        depth = row["n_in_camera"]
        if depth not in by_depth:
            by_depth[depth] = []
            order.append(depth)
        by_depth[depth].append(row)
    candidates = []
    for depth in order:
        representative = best_row(by_depth[depth], "total_fps")
        candidates.append(
            JointCandidate(
                row=representative,
                depth=depth,
                fps=representative["total_fps"],
                demand_bps=member_demand_bps(member, representative),
            )
        )
    return candidates


class JointCandidateSink(ResultSink):
    """Build a member's per-depth candidates while its rows stream.

    The export-only (``collect=False``) counterpart of
    :func:`joint_candidates`: instead of collecting the member's full
    row list and compressing it afterwards, the sink folds each chunk
    into a running (depth -> best feasible row) map. On the columnar
    batch path a whole single-depth cohort batch reduces to at most one
    materialized row (the first feasible row attaining the batch's
    maximum ``total_fps``), so memory stays bounded by the number of
    depths, never the design-space size.

    Exactness: the running entry for a depth is replaced only on a
    *strictly* greater rate, so the surviving row is the first in
    stream (= enumeration) order attaining the depth's maximum — the
    :func:`~repro.explore.result.best_row` tie rule, byte-identical to
    what :func:`joint_candidates` picks from collected rows (asserted
    by the unit suite).
    """

    def __init__(self, member: Scenario):
        self.member = member
        #: depth -> (best fps, its first-attaining row), insertion order
        #: = depth first-appearance order.
        self._by_depth: dict[int, tuple[float, dict[str, Any]]] = {}

    def write_rows(self, rows: Sequence[dict[str, Any]]) -> None:
        by_depth = self._by_depth
        for row in rows:
            if not row["feasible"]:
                continue
            depth = row["n_in_camera"]
            held = by_depth.get(depth)
            if held is None or row["total_fps"] > held[0]:
                by_depth[depth] = (row["total_fps"], row)

    def write_batch(self, batch: Any) -> None:
        """One cohort batch -> at most one materialized winner row."""
        if _np is None or len(batch) == 0:
            self.write_rows(batch.rows())
            return
        try:
            fps = batch.metric_column("total_fps")
            feasible = batch.metric_column("feasible")
        except KeyError:  # pragma: no cover - stock throughput columns
            self.write_rows(batch.rows())
            return
        mask = feasible.astype(bool)
        if not bool(mask.any()):
            return
        masked = _np.where(mask, fps, -_np.inf)
        best = masked.max()
        # argmax of the masked column returns the FIRST index attaining
        # the maximum — exactly the stream-order tie rule.
        depth = batch.depth
        held = self._by_depth.get(depth)
        if held is None or best > held[0]:
            winner = batch.row(int(masked.argmax()))
            # Keep the row's own float, not the column's, so candidate
            # rates compare byte-identically to the collected path.
            self._by_depth[depth] = (winner["total_fps"], winner)

    def candidates(self) -> list[JointCandidate]:
        """The per-depth candidates streamed so far, in depth
        first-appearance order."""
        return [
            JointCandidate(
                row=row,
                depth=depth,
                fps=fps,
                demand_bps=member_demand_bps(self.member, row),
            )
            for depth, (fps, row) in self._by_depth.items()
        ]


def search_joint_assignment(
    candidates: Sequence[Sequence[JointCandidate]],
    capacity_bps: float,
) -> tuple[tuple[int, ...] | None, float, float, dict[str, int]]:
    """Max-min DFS over per-member candidates under the capacity bound.

    Walks members in fleet order, each choosing a candidate in depth
    order, carrying the aggregate demand through the
    :func:`~repro.explore.prune.shared_capacity_prefix_pruner` (sound:
    cuts only joint prefixes no completion can make feasible) plus an
    objective branch-and-bound (a candidate whose running min rate
    cannot *strictly* improve the incumbent is skipped — every leaf
    reached therefore improves, and the reported assignment is the
    first in DFS order attaining the final optimum, a deterministic
    tie-break).

    Returns ``(choice, value, demand, counters)``: per-member candidate
    indices (None when no feasible joint assignment exists), the fleet
    min-FPS optimum, its aggregate demand, and the search counters
    (``n_candidate_space``, ``n_searched`` leaves,
    ``n_capacity_pruned``, ``n_bound_pruned`` subtrees).
    """
    n = len(candidates)
    space = 1
    for member in candidates:
        space *= len(member)
    counters = {
        "n_candidate_space": space,
        "n_searched": 0,
        "n_capacity_pruned": 0,
        "n_bound_pruned": 0,
    }
    if space == 0:
        # A member with no feasible split makes every joint assignment
        # infeasible; there is nothing sound to search.
        return None, float("-inf"), 0.0, counters
    demands = [[c.demand_bps for c in member] for member in candidates]
    pruner = shared_capacity_prefix_pruner(demands, capacity_bps)
    best_choice: tuple[int, ...] | None = None
    best_value = float("-inf")
    best_demand = 0.0
    choice = [0] * n

    def dfs(member_index: int, state: float, floor: float) -> None:
        nonlocal best_choice, best_value, best_demand
        if member_index == n:
            counters["n_searched"] += 1
            best_choice = tuple(choice)
            best_value = floor
            best_demand = state
            return
        for index, candidate in enumerate(candidates[member_index]):
            extended = floor if floor < candidate.fps else candidate.fps
            if extended <= best_value:
                counters["n_bound_pruned"] += 1
                continue
            next_state = pruner.extend(member_index, index, state)
            if next_state is PRUNED_SUBTREE:
                counters["n_capacity_pruned"] += 1
                continue
            choice[member_index] = index
            dfs(member_index + 1, next_state, extended)

    dfs(0, pruner.initial, float("inf"))
    return best_choice, best_value, best_demand, counters


class JointFleetResult:
    """The outcome of one joint-fleet search.

    ``campaign`` holds every member's full solo outcome (rows
    byte-identical to solo ``explore()``); ``best_assignment`` the
    chosen :class:`JointCandidate` per member (None when some member
    has no feasible split or no joint assignment fits the capacity).
    """

    def __init__(
        self,
        fleet: JointFleetScenario,
        campaign: CampaignResult,
        candidates: list[list[JointCandidate]],
        best_choice: tuple[int, ...] | None,
        best_fleet_fps: float,
        best_demand_bps: float,
        counters: dict[str, int],
    ):
        self.fleet = fleet
        self.campaign = campaign
        self.candidates = candidates
        self.best_choice = best_choice
        self.best_fleet_fps = best_fleet_fps
        self.best_demand_bps = best_demand_bps
        self.counters = counters

    @property
    def capacity_bps(self) -> float:
        return self.fleet.capacity_bps

    @property
    def feasible(self) -> bool:
        """Whether any joint assignment fits the shared capacity."""
        return self.best_choice is not None

    @property
    def best_assignment(self) -> list[JointCandidate] | None:
        """The optimum's per-member candidates, in fleet order."""
        if self.best_choice is None:
            return None
        return [
            member[index]
            for member, index in zip(self.candidates, self.best_choice)
        ]

    @property
    def utilization(self) -> float | None:
        """The optimum's share of the capacity (None when infeasible)."""
        if self.best_choice is None:
            return None
        return self.best_demand_bps / self.capacity_bps

    def weighted_completion_seconds(
        self, weights: Mapping[str, float] | None = None
    ) -> float:
        """The fleet's weighted mean completion time over the member
        campaign, defaulting to the fleet's own weights."""
        if weights is None:
            weights = self.fleet.weight_map()
        return self.campaign.weighted_completion_seconds(weights)

    def summary_rows(self) -> list[dict[str, Any]]:
        """One report row per member (see
        :func:`repro.core.report.joint_fleet_summary_table`)."""
        assignment = self.best_assignment
        rows = []
        for index, member in enumerate(self.fleet.members):
            run = self.campaign[member.name]
            solo_best = (
                max(candidate.fps for candidate in self.candidates[index])
                if self.candidates[index]
                else "-"
            )
            assigned = assignment[index] if assignment is not None else None
            rows.append(
                {
                    "member": member.name,
                    "configs": run.n_evaluated,
                    "feasible": run.n_feasible,
                    "solo_best_fps": solo_best,
                    "joint_config": assigned.row["config"] if assigned else "-",
                    "joint_fps": assigned.fps if assigned else "-",
                    "demand_bps": assigned.demand_bps if assigned else "-",
                    "capacity_share": (
                        assigned.demand_bps / self.capacity_bps
                        if assigned
                        else "-"
                    ),
                }
            )
        return rows

    def to_table(self, title: str | None = None) -> TextTable:
        """The per-member summary as a
        :class:`~repro.core.report.TextTable`."""
        if title is None:
            verdict = (
                f"min {self.best_fleet_fps:.3g} FPS, "
                f"{self.utilization:.1%} of {self.capacity_bps:.3g} bps"
                if self.feasible
                else f"infeasible at {self.capacity_bps:.3g} bps"
            )
            title = (
                f"joint fleet {self.fleet.name!r} "
                f"({len(self.fleet.members)} members, {verdict})"
            )
        return joint_fleet_summary_table(self.summary_rows(), title=title)


def explore_joint(
    fleet: JointFleetScenario,
    executor: SweepExecutor | None = None,
    chunk_size: int | None = None,
    *,
    policy: Any = None,
    dedup: bool | str = True,
    collect: bool = True,
) -> JointFleetResult:
    """Explore a joint fleet: solo member sweeps, then the joint search.

    Phase 1 runs every member through one
    :class:`~repro.explore.campaign.Campaign` on the shared ``executor``
    under ``policy`` — ``dedup=True`` (the default here: joint fleets
    are a dedup-heavy shape, N cameras often sharing a pipeline) shares
    compute-side states across members via the campaign's
    ``PipelineCostCache`` / fleet-shared ``PrefixStateCache``. Member
    rows are byte-identical to solo ``explore()`` runs.

    Phase 2 compresses each member's feasible rows to per-depth
    candidates (:func:`joint_candidates`) and finds the max-min-FPS
    joint assignment fitting ``fleet.capacity_bps``
    (:func:`search_joint_assignment`).

    ``collect=False`` is the export-only fast path: phase 1 streams
    each member's rows through a :class:`JointCandidateSink` instead of
    retaining them, so memory (and the per-row materialization cost)
    stays bounded by depths x members. The resulting candidates — and
    therefore the joint optimum — are byte-identical to the collected
    path; only ``result.campaign[...].result`` is None.
    """
    if not isinstance(fleet, JointFleetScenario):
        raise ConfigurationError(
            f"explore_joint needs a JointFleetScenario, got "
            f"{type(fleet).__name__}"
        )
    sinks = (
        None
        if collect
        else {member.name: JointCandidateSink(member) for member in fleet.members}
    )
    campaign = Campaign(list(fleet.members), name=fleet.name).run(
        executor,
        chunk_size,
        policy=policy,
        dedup=dedup,
        sinks=sinks,
        collect=collect,
        # The joint layer never asks for member Pareto frontiers, and
        # the throughput domain's anti-correlated axes make the online
        # frontier the dominant cost of an export-only sweep.
        frontier=collect,
    )
    candidates = []
    feasible_space = 1
    for member in fleet.members:
        run = campaign[member.name]
        if sinks is not None:
            candidates.append(sinks[member.name].candidates())
        elif run.result is None:  # pragma: no cover - collect=True above
            raise PipelineError(
                f"member {member.name!r} has no collected rows to search"
            )
        else:
            candidates.append(joint_candidates(member, run.result.rows))
        feasible_space *= run.n_feasible
    choice, value, demand, counters = search_joint_assignment(
        candidates, fleet.capacity_bps
    )
    counters = {"n_feasible_space": feasible_space, **counters}
    return JointFleetResult(
        fleet=fleet,
        campaign=campaign,
        candidates=candidates,
        best_choice=choice,
        best_fleet_fps=value,
        best_demand_bps=demand,
        counters=counters,
    )
