"""Unified design-space exploration across both cost domains.

The paper's central exercise — enumerate every (cut point, platform)
configuration of a pipeline and find the ones that clear the target on
both the computation and the communication axis — appears twice, once
per case study, with a different cost model each time. This package
turns that exercise into one reusable engine:

* :mod:`.enumerate` — lazy configuration enumeration with pluggable
  pruning hooks (the design space is exponential in pipeline depth);
* :mod:`.executor` — chunked thread/process-parallel sweep execution
  with deterministic result ordering and a serial fallback;
* :mod:`.scenario` — the declarative :class:`Scenario` spec: pipeline +
  link + cost domain + target constraint in one object;
* :mod:`.result` — :class:`ExplorationResult` with feasibility,
  Pareto-frontier extraction, dominated-config elimination, top-k
  ranking, CSV/JSON export, and adapters back to the legacy
  ``SweepResult`` / ``OffloadReport`` types;
* :mod:`.incremental` — :class:`PrefixEvaluator`, prefix-memoized
  evaluation turning per-config cost from O(depth) into amortized O(1)
  block extensions (bit-identical to from-scratch evaluation);
* :mod:`.vectorized` — :class:`BatchPrefixEvaluator`, the columnar
  batch core: depth cohorts fold as numpy struct-of-arrays states with
  lazily materialized rows (bit-identical to the scalar fold), plus
  :class:`PrefixStateCache`, trie-keyed partial prefix dedup across a
  fleet's scenarios;
* :mod:`.prune` — sound lower-bound pruning derived from a scenario's
  constraint: whole depths (``Scenario(..., auto_prune=True)``) and
  per-config subtrees within surviving depths
  (``auto_prune_configs=True``);
* :mod:`.engine` — :func:`explore`, the streaming entry point tying
  them together, and :func:`explore_brute_force`, the pre-streaming
  oracle it is tested byte-identical against;
* :mod:`.sink` — :class:`ResultSink` streaming outputs (CSV / JSONL /
  callback / in-memory): ``explore(..., sink=..., collect=False)``
  exports a design space in memory bounded by the chunk window;
* :mod:`.catalog` — the named, parameterized scenario library the case
  studies register into (``load_builtin()``);
* :mod:`.campaign` — :class:`Campaign`, many scenarios sharded across
  *one* shared executor with per-scenario results byte-identical to
  solo :func:`explore` runs, cross-scenario evaluation dedup
  (``dedup=True`` shares link-independent compute states across a
  fleet), ``iter_runs`` streaming with ``max_pending_runs``
  backpressure, plus the fleet summary report;
* :mod:`.scheduling` — the campaign chunk-scheduling policies
  (round-robin, shortest-first, priority-weighted, the
  measured-latency-driven :class:`AdaptiveLatency`, and the
  WSPT :class:`WeightedCompletionTime`) and the ``observe`` feedback
  channel that reports every measured chunk latency back to them;
* :mod:`.joint` — :func:`explore_joint`, the joint-fleet domain: N
  member scenarios share one uplink of fixed capacity, feasibility
  couples them through aggregate demand, and the max-min-FPS joint
  assignment is searched over per-depth candidates under a sound
  shared-capacity lower-bound pruner (member rows stay byte-identical
  to solo runs — phase 1 *is* a campaign).

Quickstart::

    from repro.explore import Scenario, SweepExecutor, explore
    from repro.hw.network import ETHERNET_25G
    from repro.vr.scenarios import build_vr_pipeline

    scenario = Scenario(
        name="fig10", pipeline=build_vr_pipeline(),
        link=ETHERNET_25G, target_fps=30.0,
    )
    result = explore(scenario, executor=SweepExecutor(workers=4))
    print(result.best["config"], [r["config"] for r in result.pareto()])
"""

from repro.explore.campaign import (
    Campaign,
    CampaignResult,
    PipelineCostCache,
    ScenarioRun,
    run_campaign,
    scenario_compute_key,
)
from repro.explore.scheduling import (
    SCHEDULING_POLICIES,
    AdaptiveLatency,
    PriorityWeighted,
    RoundRobin,
    SchedulingPolicy,
    ShortestScenarioFirst,
    WeightedCompletionTime,
    resolve_policy,
)
from repro.explore.catalog import (
    CATALOG,
    CatalogEntry,
    FleetSpec,
    JointFleetSpec,
    ScenarioCatalog,
    load_builtin,
    register_scenario,
)
from repro.explore.joint import (
    JointCandidate,
    JointCandidateSink,
    JointFleetResult,
    JointFleetScenario,
    explore_joint,
    joint_candidates,
    member_demand_bps,
    search_joint_assignment,
)
from repro.explore.engine import (
    EVALUATION_MODES,
    evaluation_path,
    explore,
    explore_brute_force,
    iter_evaluations,
)
from repro.explore.enumerate import (
    PRUNED_SUBTREE,
    DepthPruneHook,
    PrefixPruner,
    PruneHook,
    count_configs,
    enumeration_plan,
    iter_configs,
)
from repro.explore.executor import SweepExecutor
from repro.explore.incremental import PrefixEvaluator, supports_prefix_evaluation
from repro.explore.vectorized import (
    BatchPrefixEvaluator,
    BatchRows,
    CohortShard,
    PrefixStateCache,
    iter_scenario_shards,
    supports_batch_evaluation,
    uses_stock_batch_semantics,
)
from repro.explore.prune import (
    compute_fps_prefix_pruner,
    energy_depth_lower_bounds,
    energy_prefix_pruner,
    lower_bound_depth_hook,
    shared_capacity_prefix_pruner,
    shared_capacity_suffix_bounds,
    throughput_depth_bounds,
)
from repro.explore.result import (
    ExplorationResult,
    ParetoFrontier,
    TopK,
    best_row,
    domain_frontier,
    pareto_filter,
)
from repro.explore.scenario import DOMAINS, Scenario
from repro.explore.sink import (
    CallbackSink,
    CsvSink,
    JsonlSink,
    MemorySink,
    ParetoSink,
    ResultSink,
    TopKSink,
)

__all__ = [
    "AdaptiveLatency",
    "BatchPrefixEvaluator",
    "BatchRows",
    "CATALOG",
    "CallbackSink",
    "Campaign",
    "CampaignResult",
    "CatalogEntry",
    "CohortShard",
    "CsvSink",
    "DOMAINS",
    "DepthPruneHook",
    "EVALUATION_MODES",
    "ExplorationResult",
    "FleetSpec",
    "JointCandidate",
    "JointCandidateSink",
    "JointFleetResult",
    "JointFleetScenario",
    "JointFleetSpec",
    "JsonlSink",
    "MemorySink",
    "PRUNED_SUBTREE",
    "ParetoFrontier",
    "ParetoSink",
    "PipelineCostCache",
    "PrefixEvaluator",
    "PrefixPruner",
    "PrefixStateCache",
    "PriorityWeighted",
    "PruneHook",
    "ResultSink",
    "RoundRobin",
    "SCHEDULING_POLICIES",
    "Scenario",
    "ScenarioCatalog",
    "ScenarioRun",
    "SchedulingPolicy",
    "ShortestScenarioFirst",
    "SweepExecutor",
    "TopK",
    "TopKSink",
    "WeightedCompletionTime",
    "best_row",
    "compute_fps_prefix_pruner",
    "count_configs",
    "domain_frontier",
    "energy_depth_lower_bounds",
    "energy_prefix_pruner",
    "enumeration_plan",
    "evaluation_path",
    "explore",
    "explore_brute_force",
    "explore_joint",
    "iter_configs",
    "iter_evaluations",
    "iter_scenario_shards",
    "joint_candidates",
    "load_builtin",
    "lower_bound_depth_hook",
    "member_demand_bps",
    "pareto_filter",
    "register_scenario",
    "resolve_policy",
    "run_campaign",
    "scenario_compute_key",
    "search_joint_assignment",
    "shared_capacity_prefix_pruner",
    "shared_capacity_suffix_bounds",
    "supports_batch_evaluation",
    "supports_prefix_evaluation",
    "throughput_depth_bounds",
    "uses_stock_batch_semantics",
]
