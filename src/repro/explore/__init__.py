"""Unified design-space exploration across both cost domains.

The paper's central exercise — enumerate every (cut point, platform)
configuration of a pipeline and find the ones that clear the target on
both the computation and the communication axis — appears twice, once
per case study, with a different cost model each time. This package
turns that exercise into one reusable engine:

* :mod:`.enumerate` — lazy configuration enumeration with pluggable
  pruning hooks (the design space is exponential in pipeline depth);
* :mod:`.executor` — chunked thread/process-parallel sweep execution
  with deterministic result ordering and a serial fallback;
* :mod:`.scenario` — the declarative :class:`Scenario` spec: pipeline +
  link + cost domain + target constraint in one object;
* :mod:`.result` — :class:`ExplorationResult` with feasibility,
  Pareto-frontier extraction, dominated-config elimination, top-k
  ranking, CSV/JSON export, and adapters back to the legacy
  ``SweepResult`` / ``OffloadReport`` types;
* :mod:`.incremental` — :class:`PrefixEvaluator`, prefix-memoized
  evaluation turning per-config cost from O(depth) into amortized O(1)
  block extensions (bit-identical to from-scratch evaluation);
* :mod:`.prune` — sound lower-bound depth pruning derived from a
  scenario's constraint (``Scenario(..., auto_prune=True)``);
* :mod:`.engine` — :func:`explore`, the streaming entry point tying
  them together, and :func:`explore_brute_force`, the pre-streaming
  oracle it is tested byte-identical against.

Quickstart::

    from repro.explore import Scenario, SweepExecutor, explore
    from repro.hw.network import ETHERNET_25G
    from repro.vr.scenarios import build_vr_pipeline

    scenario = Scenario(
        name="fig10", pipeline=build_vr_pipeline(),
        link=ETHERNET_25G, target_fps=30.0,
    )
    result = explore(scenario, executor=SweepExecutor(workers=4))
    print(result.best["config"], [r["config"] for r in result.pareto()])
"""

from repro.explore.engine import explore, explore_brute_force, iter_evaluations
from repro.explore.enumerate import (
    DepthPruneHook,
    PruneHook,
    count_configs,
    enumeration_plan,
    iter_configs,
)
from repro.explore.executor import SweepExecutor
from repro.explore.incremental import PrefixEvaluator, supports_prefix_evaluation
from repro.explore.prune import (
    energy_depth_lower_bounds,
    lower_bound_depth_hook,
    throughput_depth_bounds,
)
from repro.explore.result import ExplorationResult, pareto_filter
from repro.explore.scenario import DOMAINS, Scenario

__all__ = [
    "DOMAINS",
    "DepthPruneHook",
    "ExplorationResult",
    "PrefixEvaluator",
    "PruneHook",
    "Scenario",
    "SweepExecutor",
    "count_configs",
    "energy_depth_lower_bounds",
    "enumeration_plan",
    "explore",
    "explore_brute_force",
    "iter_configs",
    "iter_evaluations",
    "lower_bound_depth_hook",
    "pareto_filter",
    "supports_prefix_evaluation",
    "throughput_depth_bounds",
]
