"""Chunked parallel sweep execution with a deterministic serial fallback.

Design-space evaluation is embarrassingly parallel: every configuration
or grid point is costed independently. :class:`SweepExecutor` fans work
out over a thread or process pool in contiguous chunks and reassembles
results in submission order, so a parallel run returns *exactly* the
list a serial run would — same rows, same order — which keeps benchmark
output and regression baselines byte-identical regardless of worker
count.

The process backend requires the mapped callable and its items to be
picklable. When they are not (lambdas, closures over live objects), the
executor falls back to the serial path instead of failing, so debugging
with ad-hoc functions always works. Mapped callables must therefore be
pure: the fallback may re-run items that a broken pool already started.
"""

from __future__ import annotations

import math
import pickle
import warnings
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Any, Callable, Iterable, TypeVar

from repro.errors import ConfigurationError

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Exceptions that mean "the pool could not run this work at all" (as
#: opposed to the work itself raising); these trigger the serial fallback.
#: TypeError/AttributeError appear here because CPython raises them (not
#: PicklingError) for lambdas, local functions, and objects holding live
#: resources such as locks. Exceptions raised *by the mapped callable*
#: never reach this set — :func:`_run_chunk` captures them in a
#: :class:`_ChunkError` so they propagate unchanged instead of being
#: mistaken for pool failures.
_FALLBACK_ERRORS = (
    pickle.PicklingError,
    BrokenExecutor,
    AttributeError,
    TypeError,
    OSError,
)


class _ChunkError:
    """An exception the mapped callable raised, shipped back intact."""

    def __init__(self, exc: Exception):
        self.exc = exc


def _run_chunk(fn: Callable[[_T], _R], chunk: list[_T]) -> "list[_R] | _ChunkError":
    """Evaluate one contiguous chunk (module-level for picklability)."""
    try:
        return [fn(item) for item in chunk]
    except Exception as exc:
        return _ChunkError(exc)


def resolve_executor(executor: "SweepExecutor | None") -> "SweepExecutor":
    """Default to serial; reject anything that is not a SweepExecutor
    (catches e.g. a swept parameter list landing on the reserved
    ``executor`` keyword)."""
    if executor is None:
        return SweepExecutor()
    if not isinstance(executor, SweepExecutor):
        raise ConfigurationError(
            f"executor must be a SweepExecutor or None, got {type(executor).__name__}"
        )
    return executor


@dataclass(frozen=True)
class SweepExecutor:
    """How to run a sweep: serial, threaded, or multi-process.

    Parameters
    ----------
    workers:
        Worker count. ``None``, 0 or 1 select the serial path (the
        default, and the debugging/picklability fallback).
    backend:
        ``'thread'`` (safe for any callable; helps when evaluation
        releases the GIL or does I/O) or ``'process'`` (true
        parallelism; requires picklable callables and items).
    chunk_size:
        Items per submitted task. Defaults to splitting the work into
        roughly four chunks per worker, which balances scheduling
        overhead against stragglers.
    """

    workers: int | None = None
    backend: str = "thread"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in ("thread", "process"):
            raise ConfigurationError(
                f"backend must be 'thread' or 'process', got {self.backend!r}"
            )
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {self.chunk_size}")

    @property
    def is_serial(self) -> bool:
        return self.workers is None or self.workers <= 1

    def _chunks(self, items: list[_T]) -> list[list[_T]]:
        size = self.chunk_size
        if size is None:
            workers = self.workers or 1
            size = max(1, math.ceil(len(items) / (4 * workers)))
        return [items[i : i + size] for i in range(0, len(items), size)]

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """``[fn(x) for x in items]``, possibly in parallel.

        Result order always matches item order. Exceptions raised by
        ``fn`` propagate unchanged; pool-infrastructure failures
        (unpicklable work on the process backend, a broken pool) fall
        back to the serial path with a warning.
        """
        items = list(items)
        if self.is_serial or len(items) <= 1:
            return [fn(item) for item in items]
        chunks = self._chunks(items)
        pool_cls: Any = (
            ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        )
        try:
            with pool_cls(max_workers=min(self.workers, len(chunks))) as pool:
                futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
                outcomes = [future.result() for future in futures]
        except _FALLBACK_ERRORS as exc:
            warnings.warn(
                f"{self.backend} pool could not run the sweep ({exc!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]
        results: list[_R] = []
        for outcome in outcomes:
            if isinstance(outcome, _ChunkError):
                raise outcome.exc
            results.extend(outcome)
        return results
