"""Chunked parallel sweep execution with a deterministic serial fallback.

Design-space evaluation is embarrassingly parallel: every configuration
or grid point is costed independently. :class:`SweepExecutor` fans work
out over a thread or process pool in contiguous chunks and reassembles
results in submission order, so a parallel run returns *exactly* the
list a serial run would — same rows, same order — which keeps benchmark
output and regression baselines byte-identical regardless of worker
count.

Two entry points share that contract: :meth:`SweepExecutor.map`
materializes the items and returns a list, while
:meth:`SweepExecutor.imap` consumes an *iterable* lazily and yields
results in item order with bounded memory — at most a fixed window of
chunks is ever in flight, so a design space far larger than RAM can
stream through.

The process backend requires the mapped callable and its items to be
picklable. When they are not (lambdas, closures over live objects), the
executor falls back to the serial path instead of failing, so debugging
with ad-hoc functions always works. Mapped callables must therefore be
pure: the fallback may re-run items that a broken pool already started.
"""

from __future__ import annotations

import math
import pickle
import warnings
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, TypeVar

from repro.errors import ConfigurationError

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Items per submitted task when streaming from an iterable of unknown
#: length (``imap`` cannot size chunks from a total count the way
#: ``map`` does).
STREAM_CHUNK_SIZE = 64

#: Cap applied by :func:`auto_chunk_size`: with ``2 * workers`` chunks
#: in flight, this bounds a streaming pipe's intermediate memory even
#: for grids of millions of points.
MAX_AUTO_CHUNK_SIZE = 1024


def auto_chunk_size(total: int, workers: int, cap: int = MAX_AUTO_CHUNK_SIZE) -> int:
    """Default chunk sizing for a known item count: about four chunks
    per worker (balances scheduling overhead against stragglers),
    capped so the bounded in-flight window never scales with the total.
    Shared by ``map``, ``parameter_sweep`` and the exploration engine —
    one formula, no drift."""
    return max(1, min(cap, math.ceil(total / (4 * workers))))

#: Exceptions that mean "the pool could not run this work at all" (as
#: opposed to the work itself raising); these trigger the serial fallback.
#: TypeError/AttributeError appear here because CPython raises them (not
#: PicklingError) for lambdas, local functions, and objects holding live
#: resources such as locks. Exceptions raised *by the mapped callable*
#: never reach this set — :func:`_run_chunk` captures them in a
#: :class:`_ChunkError` so they propagate unchanged instead of being
#: mistaken for pool failures.
_FALLBACK_ERRORS = (
    pickle.PicklingError,
    BrokenExecutor,
    AttributeError,
    TypeError,
    OSError,
)


class _ChunkError:
    """An exception the mapped callable raised, shipped back intact."""

    def __init__(self, exc: Exception):
        self.exc = exc


def _run_chunk(fn: Callable[[_T], _R], chunk: list[_T]) -> "list[_R] | _ChunkError":
    """Evaluate one contiguous chunk (module-level for picklability)."""
    try:
        return [fn(item) for item in chunk]
    except Exception as exc:
        return _ChunkError(exc)


def resolve_executor(executor: "SweepExecutor | None") -> "SweepExecutor":
    """Default to serial; reject anything that is not a SweepExecutor
    (catches e.g. a swept parameter list landing on the reserved
    ``executor`` keyword)."""
    if executor is None:
        return SweepExecutor()
    if not isinstance(executor, SweepExecutor):
        raise ConfigurationError(
            f"executor must be a SweepExecutor or None, got {type(executor).__name__}"
        )
    return executor


@dataclass(frozen=True)
class SweepExecutor:
    """How to run a sweep: serial, threaded, or multi-process.

    Parameters
    ----------
    workers:
        Worker count. ``None``, 0 or 1 select the serial path (the
        default, and the debugging/picklability fallback).
    backend:
        ``'thread'`` (safe for any callable; helps when evaluation
        releases the GIL or does I/O) or ``'process'`` (true
        parallelism; requires picklable callables and items).
    chunk_size:
        Items per submitted task. Defaults to splitting the work into
        roughly four chunks per worker (``map``) or to
        :data:`STREAM_CHUNK_SIZE` (``imap``, where the total is
        unknown); the default balances scheduling overhead against
        stragglers.
    """

    workers: int | None = None
    backend: str = "thread"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in ("thread", "process"):
            raise ConfigurationError(
                f"backend must be 'thread' or 'process', got {self.backend!r}"
            )
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {self.chunk_size}")

    @property
    def is_serial(self) -> bool:
        return self.workers is None or self.workers <= 1

    @property
    def is_process(self) -> bool:
        """Whether work ships to worker *processes* — pickled per task,
        so shared in-memory caches never reach them (drivers gate
        cache offers on this)."""
        return not self.is_serial and self.backend == "process"

    def _warn_fallback(self, exc: BaseException) -> None:
        warnings.warn(
            f"{self.backend} pool could not run the sweep ({exc!r}); "
            "falling back to serial execution",
            RuntimeWarning,
            stacklevel=3,
        )

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """``[fn(x) for x in items]``, possibly in parallel.

        Result order always matches item order. Exceptions raised by
        ``fn`` propagate unchanged; pool-infrastructure failures
        (unpicklable work on the process backend, a broken pool) fall
        back to the serial path with a warning.
        """
        items = list(items)
        if self.is_serial or len(items) <= 1:
            return [fn(item) for item in items]
        size = self.chunk_size
        if size is None:
            size = auto_chunk_size(len(items), self.workers)
        return list(self.imap(fn, items, chunk_size=size))

    def imap(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        chunk_size: int | None = None,
        window_gate: Callable[[], bool] | None = None,
    ) -> Iterator[_R]:
        """Lazily yield ``fn(x)`` for each item, in item order.

        The streaming counterpart of :meth:`map`: ``items`` may be any
        iterable (including an unbounded generator); it is consumed in
        chunks and at most ``2 * workers`` chunks are in flight at any
        moment, so peak memory is bounded by the chunk window, never by
        the total item count. Result order is item order, identical to
        a serial run. ``fn`` exceptions propagate unchanged (at the
        failing item's position in the output order); pool failures
        degrade the remaining stream to serial evaluation with one
        warning. Abandoning the iterator mid-stream shuts the pool down
        after the in-flight chunks finish.

        ``window_gate`` is an optional backpressure hook: while it
        returns False, no *new* chunks are submitted beyond the ones
        already in flight (at least one stays in flight whenever work
        remains, so a permanently closed gate still makes progress
        instead of deadlocking). The campaign driver uses it to stall
        the pool while completed-but-unconsumed scenario runs pile up.
        The serial path is lock-step (one item evaluates per pull) and
        never races ahead, so the gate is a no-op there.
        """
        if chunk_size is not None and chunk_size < 1:
            # Same rule __post_init__ enforces for the field; islice(0)
            # would otherwise silently end the stream after no items.
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        iterator = iter(items)
        if self.is_serial:
            return (fn(item) for item in iterator)
        size = chunk_size if chunk_size is not None else self.chunk_size
        if size is None:
            size = STREAM_CHUNK_SIZE
        return self._imap_pooled(fn, iterator, size, window_gate)

    def _imap_pooled(
        self,
        fn: Callable[[_T], _R],
        iterator: Iterator[_T],
        size: int,
        window_gate: Callable[[], bool] | None = None,
    ) -> Iterator[_R]:
        pool_cls: Any = (
            ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        )
        try:
            pool = pool_cls(max_workers=self.workers)
        except _FALLBACK_ERRORS as exc:
            self._warn_fallback(exc)
            for item in iterator:
                yield fn(item)
            return
        window = 2 * self.workers
        pending: deque[tuple[list[_T], Any]] = deque()  # (chunk, future|None)
        degraded = False

        def submit_upto_window() -> None:
            nonlocal degraded
            while len(pending) < window:
                # Backpressure: a closed gate stops refilling, but only
                # once something is in flight — the stream must always
                # be able to produce its next result.
                if window_gate is not None and pending and not window_gate():
                    return
                chunk = list(islice(iterator, size))
                if not chunk:
                    return
                if degraded:
                    pending.append((chunk, None))
                    continue
                try:
                    pending.append((chunk, pool.submit(_run_chunk, fn, chunk)))
                except _FALLBACK_ERRORS as exc:
                    self._warn_fallback(exc)
                    degraded = True
                    pending.append((chunk, None))

        with pool:
            while True:
                submit_upto_window()
                if not pending:
                    return
                chunk, future = pending.popleft()
                outcome: Any = None
                if future is not None:
                    try:
                        outcome = future.result()
                    except _FALLBACK_ERRORS as exc:
                        if not degraded:
                            self._warn_fallback(exc)
                            degraded = True
                if outcome is None:
                    for item in chunk:  # never submitted / pool died: run here
                        yield fn(item)
                elif isinstance(outcome, _ChunkError):
                    raise outcome.exc
                else:
                    yield from outcome
