"""The scenario catalog: named, parameterized exploration workloads.

Every case study used to build its :class:`~repro.explore.scenario.Scenario`
ad hoc; at fleet scale the *workload library* is a first-class object —
drivers, examples and campaigns select scenarios by name and override
parameters, without importing each case-study stack by hand. A
:class:`ScenarioCatalog` maps names to registered factory callables;
:func:`load_builtin` imports the case-study scenario modules
(:mod:`repro.vr.scenarios`, :mod:`repro.faceauth.scenario`,
:mod:`repro.compression.scenario`, :mod:`repro.harvest.scenario`,
:mod:`repro.snnap.scenario`), each of which registers its entries into
the shared :data:`CATALOG` at import — the diversified workload library
spans both cost domains, every link class in :mod:`repro.hw.network`,
and the accelerator-silicon axes (PE geometry, DVFS operating points)
next to the paper's (cut point, platform) axes.

Factories accept a ``link`` parameter wherever a scenario crosses an
uplink; :func:`resolve_link` lets callers name links by the short keys
in :data:`LINKS` (``"25g"``, ``"400g"``, ``"backscatter"``) instead of
importing :mod:`repro.hw.network` themselves.

Quickstart::

    from repro.explore.catalog import load_builtin

    catalog = load_builtin()
    scenario = catalog.build("vr-fig10", target_fps=60.0)
    fleet = [catalog.build(name) for name in catalog.names()]
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.explore.scenario import DOMAINS, Scenario
from repro.hw.network import (
    ETHERNET_25G,
    ETHERNET_400G,
    LOW_POWER_RADIO,
    RF_BACKSCATTER,
    WIFI_CLASS,
    LinkModel,
)

#: Short names for the library's stock uplinks (:mod:`repro.hw.network`);
#: factory ``link=`` parameters accept these keys as well as LinkModel
#: instances.
LINKS: dict[str, LinkModel] = {
    "25g": ETHERNET_25G,
    "400g": ETHERNET_400G,
    "backscatter": RF_BACKSCATTER,
    "wifi": WIFI_CLASS,
    "low-power": LOW_POWER_RADIO,
}


def resolve_link(link: str | LinkModel) -> LinkModel:
    """A :class:`LinkModel` from a stock-link key or a model instance."""
    if isinstance(link, LinkModel):
        return link
    if isinstance(link, str):
        try:
            return LINKS[link]
        except KeyError:
            raise ConfigurationError(
                f"unknown link {link!r}; stock links are {sorted(LINKS)} "
                "(or pass a LinkModel)"
            ) from None
    raise ConfigurationError(
        f"link must be a LinkModel or one of {sorted(LINKS)}, got "
        f"{type(link).__name__}"
    )


@dataclass(frozen=True)
class CatalogEntry:
    """One registered workload: a named, parameterized Scenario factory.

    Parameters
    ----------
    name:
        Catalog key (kebab-case by convention: ``vr-fig10``).
    domain:
        The cost domain the factory's scenarios evaluate under
        (``'throughput'`` or ``'energy'``) — lets drivers select fleets
        per domain without building anything.
    summary:
        One line for listings and reports.
    factory:
        Keyword-parameterized callable returning a fresh
        :class:`Scenario`.
    defaults:
        Keyword arguments the catalog applies on :meth:`build` (caller
        overrides win) — lets one factory back several named entries.
    """

    name: str
    domain: str
    summary: str
    factory: Callable[..., Scenario]
    defaults: tuple[tuple[str, Any], ...] = ()

    def build(self, **params: Any) -> Scenario:
        merged = dict(self.defaults)
        merged.update(params)
        scenario = self.factory(**merged)
        if not isinstance(scenario, Scenario):
            raise ConfigurationError(
                f"catalog factory {self.name!r} returned "
                f"{type(scenario).__name__}, not a Scenario"
            )
        if scenario.domain != self.domain:
            raise ConfigurationError(
                f"catalog entry {self.name!r} is registered for the "
                f"{self.domain!r} domain but built a {scenario.domain!r} scenario"
            )
        return scenario


@dataclass(frozen=True)
class FleetSpec:
    """A compact description of a dedup-heavy scenario fleet.

    The cross product *pipeline mix x link grid x pass-rate variants*
    that :meth:`ScenarioCatalog.build_fleet` expands into a
    campaign-legal scenario list: every named entry is built once per
    link in the grid (``@<link>``-suffixed names, the
    :meth:`~ScenarioCatalog.build_at_links` shape), and every
    energy-domain entry additionally once per pass-rate variant and
    link (``#pr<i>``-suffixed names). A handful of entries, links and
    variants therefore expands to hundreds-to-thousands of scenarios —
    the fleet-scale stress shape the campaign dedup path is built for.

    Parameters
    ----------
    entries:
        Catalog entry names (the pipeline mix).
    links:
        Stock-link keys (:data:`LINKS`) or :class:`LinkModel`
        instances (the link grid). Every entry must accept a ``link``
        factory parameter.
    pass_rate_variants:
        Early-discard cascade variants for energy-domain entries
        (throughput entries ignore them — pass rates only apply to the
        energy domain). Each variant is either a uniform rate applied
        to every pipeline block, or an explicit ``{block name: rate}``
        table (unknown names are ignored by the cost model, so one
        table can span a pipeline mix). Variants *replace* the built
        scenario's pass table.
    overrides:
        Shared factory keyword arguments applied to every build
        (per-entry defaults still merge underneath them).
    """

    entries: Sequence[str]
    links: Sequence[str | LinkModel]
    pass_rate_variants: Sequence[float | Mapping[str, float]] = ()
    overrides: Mapping[str, Any] | None = None


@dataclass(frozen=True)
class JointFleetSpec:
    """A compact description of shared-uplink joint fleets.

    The cross product *member mix x shared-link axis* that
    :meth:`ScenarioCatalog.build_joint_fleets` expands into one
    :class:`~repro.explore.joint.JointFleetScenario` per shared link:
    every named entry is built once per link (``@<link>``-suffixed
    member names, the :meth:`~ScenarioCatalog.build_at_links` shape) so
    each member's solo rows price communication over the very uplink
    the fleet contends for.

    Parameters
    ----------
    entries:
        Catalog entry names (the member mix). Throughput-domain entries
        whose factories take a ``link`` parameter and build scenarios
        with a ``target_fps`` — the joint demand model needs both.
    shared_links:
        Stock-link keys (:data:`LINKS`) or :class:`LinkModel`
        instances: one joint fleet per shared uplink.
    capacity_bps:
        The shared capacity each fleet's aggregate demand must fit;
        None (the default) uses each link's own ``goodput_bps`` — the
        physically shared medium.
    weights:
        Optional per-entry completion-time weights, aligned with
        ``entries`` (forwarded to every fleet).
    overrides:
        Shared factory keyword arguments applied to every member build
        (per-entry defaults still merge underneath them).
    """

    entries: Sequence[str]
    shared_links: Sequence[str | LinkModel]
    capacity_bps: float | None = None
    weights: Sequence[float] | None = None
    overrides: Mapping[str, Any] | None = None


def _same_factory(existing: Callable[..., Any], candidate: Callable[..., Any]) -> bool:
    """Whether two registrations refer to the same source factory.

    Object identity covers the common case; falling back to (module,
    qualname) keeps ``importlib.reload`` of a scenario module a no-op —
    a reload creates fresh function objects for the *same* definitions,
    which must re-register cleanly rather than conflict.
    """
    if existing is candidate:
        return True
    qualname = getattr(existing, "__qualname__", None)
    if qualname is None or "<lambda>" in qualname:
        # Every lambda in a module shares the qualname "<lambda>" — two
        # different anonymous factories must still collide loudly.
        return False
    return qualname == getattr(candidate, "__qualname__", object()) and getattr(
        existing, "__module__", None
    ) == getattr(candidate, "__module__", object())


class ScenarioCatalog:
    """A registry of named scenario factories."""

    def __init__(self) -> None:
        self._entries: dict[str, CatalogEntry] = {}

    def register(
        self,
        name: str,
        domain: str,
        summary: str,
        defaults: Mapping[str, Any] | None = None,
    ) -> Callable[[Callable[..., Scenario]], Callable[..., Scenario]]:
        """Decorator registering a factory under ``name``.

        Re-registering the *same* factory under the same name replaces
        the entry (repeated ``load_builtin()`` calls are no-ops; module
        reloads re-register their fresh function objects cleanly);
        registering a *different* factory under a taken name raises.
        """
        if domain not in DOMAINS:
            raise ConfigurationError(
                f"domain must be one of {DOMAINS}, got {domain!r}"
            )

        def decorate(factory: Callable[..., Scenario]) -> Callable[..., Scenario]:
            entry = CatalogEntry(
                name=name,
                domain=domain,
                summary=summary,
                factory=factory,
                defaults=tuple(sorted((defaults or {}).items())),
            )
            existing = self._entries.get(name)
            if existing is not None:
                same_metadata = (existing.domain, existing.summary, existing.defaults) == (
                    entry.domain,
                    entry.summary,
                    entry.defaults,
                )
                # A true re-registration (reload, repeated load_builtin)
                # re-runs the decorator with identical factory AND
                # metadata; anything else — a copy-pasted variant that
                # forgot to change the name, a different factory — must
                # collide loudly, never silently replace a workload.
                if not (_same_factory(existing.factory, factory) and same_metadata):
                    raise ConfigurationError(
                        f"catalog name {name!r} already registered "
                        f"(by {existing.factory!r})"
                    )
            self._entries[name] = entry
            return factory

        return decorate

    def get(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"no catalog scenario named {name!r}; available: {self.names()}"
            ) from None

    def build(self, name: str, /, **params: Any) -> Scenario:
        """A fresh :class:`Scenario` from the named entry; ``params``
        override the entry's registered defaults. The entry name is
        positional-only so factories may themselves take a ``name``
        parameter (scenario-label overrides)."""
        return self.get(name).build(**params)

    def names(self, domain: str | None = None) -> list[str]:
        """Registered names, sorted; optionally one domain only."""
        if domain is not None and domain not in DOMAINS:
            raise ConfigurationError(
                f"domain must be one of {DOMAINS}, got {domain!r}"
            )
        return sorted(
            name
            for name, entry in self._entries.items()
            if domain is None or entry.domain == domain
        )

    def entries(self) -> list[CatalogEntry]:
        """All entries, sorted by name."""
        return [self._entries[name] for name in self.names()]

    def build_all(
        self, domain: str | None = None, **params: Any
    ) -> list[Scenario]:
        """One fresh scenario per entry (optionally one domain) — the
        ready-made fleet for a :class:`~repro.explore.campaign.Campaign`."""
        return [self.build(name, **params) for name in self.names(domain)]

    def build_at_links(
        self, name: str, /, links: Sequence[str | LinkModel], **params: Any
    ) -> list[Scenario]:
        """The same catalog workload at several uplinks — the
        *dedup-heavy* fleet shape: one pipeline and platform axis, one
        scenario per link tier.

        The entry's factory must take a ``link`` parameter (every
        builtin entry that crosses an uplink does). Scenario names get
        an ``@<link>`` suffix so the fleet is campaign-legal (campaign
        scenario names must be unique); with
        ``Campaign(..., run(dedup=True))`` such a fleet evaluates its
        compute-side costs once, not once per link.
        """
        if not links:
            raise ConfigurationError("build_at_links needs at least one link")
        fleet = []
        for link in links:
            resolved = resolve_link(link)
            scenario = self.build(name, link=resolved, **params)
            suffix = f"@{resolved.name}"
            if not scenario.name.endswith(suffix):
                scenario = replace(scenario, name=scenario.name + suffix)
            fleet.append(scenario)
        names = [scenario.name for scenario in fleet]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"links {[resolve_link(link).name for link in links]} produce "
                f"duplicate scenario names {names}; pass distinct links"
            )
        return fleet

    def build_fleet(self, spec: FleetSpec) -> list[Scenario]:
        """Expand a :class:`FleetSpec` into a campaign-legal fleet.

        Every entry in the spec's pipeline mix is built across the
        whole link grid (names suffixed ``@<link>``); energy-domain
        entries are additionally rebuilt per pass-rate variant
        (``#pr<i>`` suffix, counted from 1). Scenario names are
        guaranteed unique across the expansion, so the list drops
        straight into a :class:`~repro.explore.campaign.Campaign`.

        Each (entry, variant) cell is one dedup group across the link
        grid: pass rates are part of
        :func:`~repro.explore.campaign.scenario_compute_key`, so with
        ``dedup=True`` the campaign evaluates compute-side states once
        per cell, never once per link.
        """
        if not spec.entries:
            raise ConfigurationError("FleetSpec needs at least one entry")
        overrides = dict(spec.overrides or {})
        fleet: list[Scenario] = []
        for name in spec.entries:
            entry = self.get(name)
            fleet.extend(self.build_at_links(name, spec.links, **overrides))
            if entry.domain != "energy" or not spec.pass_rate_variants:
                continue
            for index, variant in enumerate(spec.pass_rate_variants, start=1):
                for scenario in self.build_at_links(name, spec.links, **overrides):
                    if scenario.model is not None:
                        raise ConfigurationError(
                            f"catalog entry {name!r} builds a prebuilt-model "
                            "scenario; pass-rate variants would not reach "
                            "the model — drop the variants or the entry"
                        )
                    if isinstance(variant, (int, float)):
                        rates = {
                            block.name: float(variant)
                            for block in scenario.pipeline.blocks
                        }
                    else:
                        rates = dict(variant)
                    fleet.append(
                        replace(
                            scenario,
                            name=f"{scenario.name}#pr{index}",
                            pass_rates=rates,
                        )
                    )
        names = [scenario.name for scenario in fleet]
        if len(set(names)) != len(names):
            seen: set[str] = set()
            duplicates = sorted(
                {name for name in names if name in seen or seen.add(name)}
            )
            raise ConfigurationError(
                f"fleet spec expands to duplicate scenario names "
                f"{duplicates}; entries and links must be distinct"
            )
        return fleet

    def build_joint_fleets(self, spec: JointFleetSpec) -> list:
        """Expand a :class:`JointFleetSpec` into joint fleets.

        One :class:`~repro.explore.joint.JointFleetScenario` per shared
        link, named ``joint@<link>``, its members built *at that link*
        (``@<link>``-suffixed names via :meth:`build_at_links`, so the
        member list is campaign-legal and solo-comparable). The fleet
        capacity defaults to the shared link's ``goodput_bps``.
        Non-throughput entries are rejected here, with the entry named,
        rather than failing later inside the fleet's own validation.
        """
        from repro.explore.joint import JointFleetScenario

        if not spec.entries:
            raise ConfigurationError("JointFleetSpec needs at least one entry")
        if not spec.shared_links:
            raise ConfigurationError(
                "JointFleetSpec needs at least one shared link"
            )
        for name in spec.entries:
            entry = self.get(name)
            if entry.domain != "throughput":
                raise ConfigurationError(
                    f"joint fleets couple members through sustained "
                    f"transmit rates; entry {name!r} is "
                    f"{entry.domain}-domain — pass throughput entries"
                )
        overrides = dict(spec.overrides or {})
        fleets = []
        for link in spec.shared_links:
            resolved = resolve_link(link)
            members: list[Scenario] = []
            for name in spec.entries:
                members.extend(
                    self.build_at_links(name, [resolved], **overrides)
                )
            capacity = (
                resolved.goodput_bps
                if spec.capacity_bps is None
                else spec.capacity_bps
            )
            fleets.append(
                JointFleetScenario(
                    name=f"joint@{resolved.name}",
                    members=tuple(members),
                    capacity_bps=capacity,
                    weights=(
                        tuple(spec.weights) if spec.weights is not None else None
                    ),
                )
            )
        names = [fleet.name for fleet in fleets]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"shared links produce duplicate fleet names {names}; "
                "pass distinct links"
            )
        return fleets

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self.entries())


#: The shared default catalog the case-study modules register into.
CATALOG = ScenarioCatalog()

#: Register into the default catalog (the decorator the case-study
#: scenario modules use).
register_scenario = CATALOG.register


def load_builtin() -> ScenarioCatalog:
    """The default catalog with every built-in workload registered.

    Imports the case-study scenario modules for their registration side
    effects (idempotent) and returns :data:`CATALOG`.
    """
    import repro.compression.scenario  # noqa: F401
    import repro.faceauth.scenario  # noqa: F401
    import repro.harvest.scenario  # noqa: F401
    import repro.snnap.scenario  # noqa: F401
    import repro.vr.scenarios  # noqa: F401

    return CATALOG
