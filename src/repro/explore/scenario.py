"""Declarative exploration scenarios.

A :class:`Scenario` bundles everything one design-space exploration
needs — the pipeline, the uplink, the cost domain, the target
constraint, and the enumeration controls — into one object, so the
VR rig's throughput study and the face-authentication camera's energy
study run through the same engine instead of each having its own
ad-hoc driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.cost import EnergyCostModel, ThroughputCostModel
from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.errors import ConfigurationError
from repro.explore.enumerate import (
    DepthPruneHook,
    PrefixPruner,
    PruneHook,
    count_configs,
    iter_configs,
)
from repro.hw.network import LinkModel

#: The two evaluation domains of the paper: frames/second over a
#: mains-powered link (VR case study) and joules/frame on a harvested
#: budget (face-authentication case study).
DOMAINS = ("throughput", "energy")


@dataclass(frozen=True)
class Scenario:
    """One declarative design-space exploration.

    Parameters
    ----------
    name:
        Label used in reports and exports.
    pipeline:
        The block chain whose (cut point, platform) space is explored.
    link:
        The uplink carrying whatever the camera offloads.
    domain:
        ``'throughput'`` (frames/second, both axes must clear
        ``target_fps``) or ``'energy'`` (expected joules per captured
        frame, must stay within ``energy_budget_j``).
    target_fps:
        Throughput-domain feasibility bar (the paper's 30 FPS); when
        None every configuration is considered feasible.
    energy_budget_j:
        Energy-domain feasibility bar in joules/frame; when None every
        configuration is considered feasible.
    pass_rates:
        Energy domain only: measured per-block pass rates overriding
        the blocks' static ``pass_rate`` (benchmarks feed trace-derived
        rates here).
    model:
        Optional pre-built cost model (e.g. a customized
        ``ThroughputCostModel`` subclass). When None, a vanilla model
        for the domain is built from ``link``; when given, it must match
        the domain and is used as-is.
    max_blocks / include_empty:
        Enumeration bounds, as in :func:`repro.explore.iter_configs`.
    prune / prune_depth:
        Pruning hooks forwarded to the lazy enumerator.
    auto_prune:
        Derive a *sound* depth pruner from the scenario's constraint
        (see :mod:`repro.explore.prune`): cut depths where the exact
        communication rate / transmit-energy lower bound already misses
        ``target_fps`` / ``energy_budget_j`` are skipped before any
        configuration is constructed. Lower bounds only — pruning never
        removes a feasible configuration. Requires a constraint to
        bound against.
    auto_prune_configs:
        Per-config pruning *within* surviving depths: subtrees whose
        chosen platforms already provably miss the constraint are
        skipped before construction. Throughput domain: the running min
        of chosen implementation rates vs ``target_fps``
        (:func:`repro.explore.prune.compute_fps_prefix_pruner`); energy
        domain: the prefix's exact expected energy plus a cheapest-
        completion lower bound vs ``energy_budget_j``
        (:func:`repro.explore.prune.energy_prefix_pruner`). Both are
        sound lower bounds — the feasible set is identical to the
        unpruned run — but unlike ``auto_prune`` they drop individual
        infeasible configurations, so :meth:`count_configs` becomes an
        upper bound. Layers on top of (and composes with)
        ``auto_prune``.
    """

    name: str
    pipeline: InCameraPipeline
    link: LinkModel
    domain: str = "throughput"
    target_fps: float | None = None
    energy_budget_j: float | None = None
    pass_rates: dict[str, float] | None = None
    model: ThroughputCostModel | EnergyCostModel | None = None
    max_blocks: int | None = None
    include_empty: bool = True
    prune: PruneHook | Sequence[PruneHook] | None = None
    prune_depth: DepthPruneHook | None = field(default=None)
    auto_prune: bool = False
    auto_prune_configs: bool = False

    def __post_init__(self) -> None:
        if self.domain not in DOMAINS:
            raise ConfigurationError(
                f"domain must be one of {DOMAINS}, got {self.domain!r}"
            )
        if self.target_fps is not None:
            if self.domain != "throughput":
                raise ConfigurationError("target_fps only applies to the throughput domain")
            if self.target_fps <= 0:
                raise ConfigurationError(
                    f"target_fps must be positive, got {self.target_fps}"
                )
        if self.energy_budget_j is not None:
            if self.domain != "energy":
                raise ConfigurationError(
                    "energy_budget_j only applies to the energy domain"
                )
            if self.energy_budget_j <= 0:
                raise ConfigurationError(
                    f"energy_budget_j must be positive, got {self.energy_budget_j}"
                )
        if self.pass_rates is not None and self.domain != "energy":
            raise ConfigurationError("pass_rates only apply to the energy domain")
        if self.model is not None:
            expected = (
                ThroughputCostModel if self.domain == "throughput" else EnergyCostModel
            )
            if not isinstance(self.model, expected):
                raise ConfigurationError(
                    f"model must be a {expected.__name__} for the "
                    f"{self.domain} domain, got {type(self.model).__name__}"
                )
        if self.auto_prune:
            constrained = (
                self.target_fps is not None
                if self.domain == "throughput"
                else self.energy_budget_j is not None
            )
            if not constrained:
                raise ConfigurationError(
                    "auto_prune needs a constraint to bound against: set "
                    + (
                        "target_fps"
                        if self.domain == "throughput"
                        else "energy_budget_j"
                    )
                )
        if self.auto_prune_configs:
            constrained = (
                self.target_fps is not None
                if self.domain == "throughput"
                else self.energy_budget_j is not None
            )
            if not constrained:
                raise ConfigurationError(
                    "auto_prune_configs bounds prefixes against the "
                    "scenario constraint: set "
                    + (
                        "target_fps"
                        if self.domain == "throughput"
                        else "energy_budget_j"
                    )
                )
        if (self.auto_prune or self.auto_prune_configs) and self.model is not None:
            from repro.explore.incremental import uses_stock_cost_semantics

            if not uses_stock_cost_semantics(self.model):
                # The derived bounds encode the *stock* models' cost
                # semantics (impl fps / link rates); a model overriding
                # any cost step — evaluate(), or extend_state/finalize
                # even with the stock evaluate kept — may rate
                # configurations differently, and a bound against the
                # wrong semantics could silently drop feasible designs.
                # Fail fast instead.
                raise ConfigurationError(
                    "auto_prune/auto_prune_configs derive bounds from the "
                    "stock cost-model semantics; a model overriding "
                    "evaluate/initial_state/extend_state/finalize cannot "
                    "be soundly bounded — use explicit prune/prune_depth "
                    "hooks instead"
                )

    def depth_prune_hook(self) -> DepthPruneHook | None:
        """The effective depth pruner: the user hook, the auto-derived
        lower-bound pruner, or (with both) their union — a depth is
        skipped when either prunes it."""
        hooks = [self.prune_depth]
        if self.auto_prune:
            from repro.explore.prune import lower_bound_depth_hook

            hooks.append(lower_bound_depth_hook(self))
        hooks = [hook for hook in hooks if hook is not None]
        if not hooks:
            return None
        if len(hooks) == 1:
            return hooks[0]
        return lambda depth: any(hook(depth) for hook in hooks)

    def prefix_pruner(self) -> PrefixPruner | None:
        """The effective within-depth prefix bound (None unless
        ``auto_prune_configs``): the domain's sound per-config pruner."""
        if not self.auto_prune_configs:
            return None
        if self.domain == "throughput":
            from repro.explore.prune import compute_fps_prefix_pruner

            return compute_fps_prefix_pruner(self)
        from repro.explore.prune import energy_prefix_pruner

        return energy_prefix_pruner(self)

    def iter_configs(self) -> Iterator[PipelineConfig]:
        """The scenario's (lazily enumerated, pruned) design space."""
        return iter_configs(
            self.pipeline,
            max_blocks=self.max_blocks,
            include_empty=self.include_empty,
            prune=self.prune,
            prune_depth=self.depth_prune_hook(),
            prune_prefix=self.prefix_pruner(),
        )

    def count_configs(self) -> int:
        """Size of the depth-pruned design space, without constructing
        configurations. Exact unless per-config ``prune`` hooks or
        ``auto_prune_configs`` filter further, in which case it is an
        upper bound (the engine uses it to size streaming chunks;
        reporting uses it to quantify depth-pruning savings)."""
        return count_configs(
            self.pipeline,
            max_blocks=self.max_blocks,
            include_empty=self.include_empty,
            prune_depth=self.depth_prune_hook(),
        )

    def cost_model(self) -> ThroughputCostModel | EnergyCostModel:
        """The cost model evaluating this scenario's domain."""
        if self.model is not None:
            return self.model
        if self.domain == "throughput":
            return ThroughputCostModel(self.link)
        return EnergyCostModel(self.link)
