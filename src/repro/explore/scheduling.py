"""Chunk scheduling policies for campaign interleaving.

The campaign driver (:mod:`repro.explore.campaign`) has exactly one
degree of freedom: *which scenario's chunk is submitted next*. This
module owns that decision. A :class:`SchedulingPolicy` sees every
selection through :meth:`~SchedulingPolicy.select`, and — new with the
adaptive policy — every *outcome* through the
:meth:`~SchedulingPolicy.observe` feedback channel: the driver reports
each collected chunk's measured wall-clock evaluation latency back to
the policy, so policies can schedule on what the fleet actually costs
instead of what ``count_configs()`` estimates promise.

Policies only reorder *between* scenarios; each scenario's own chunks
are always submitted in enumeration order, so per-scenario results are
byte-identical to solo ``explore()`` under every policy — including
:class:`AdaptiveLatency`, whose selections depend on non-deterministic
timing (the invariant test suite asserts the identity over seeded
random fleets precisely because the interleaving itself is not
reproducible).

The builtin policies:

* :class:`RoundRobin` — one chunk per live scenario, cyclically;
* :class:`ShortestScenarioFirst` — ascending ``count_configs()`` order;
* :class:`PriorityWeighted` — smooth weighted round-robin;
* :class:`AdaptiveLatency` — longest-*estimated-remaining-time* first
  over an EWMA of measured per-configuration chunk latencies;
* :class:`WeightedCompletionTime` — run-to-completion WSPT order
  minimizing the weighted mean completion time over ``iter_runs``.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.explore.scenario import Scenario


class SchedulingPolicy:
    """Decides which scenario the interleaver draws its next chunk from.

    The one pluggable point of the campaign driver: before each chunk
    submission the interleaver calls :meth:`select` with the indices of
    the scenarios that still have chunks, and submits one chunk of the
    returned scenario. Policies only reorder *between* scenarios — each
    scenario's own chunks are always submitted in enumeration order, so
    per-scenario results stay byte-identical to solo ``explore()`` under
    every policy (tested).

    :meth:`start` is called once per campaign run with the full fleet,
    so one policy instance can be reused across runs (state resets) and
    can precompute per-scenario keys (sizes, weights).

    :meth:`observe` is the measured-latency feedback channel: the driver
    calls it once per *collected* chunk with the scenario it belonged
    to, how many configurations it held, and the wall-clock seconds its
    evaluation took (measured inside the worker, so pool queueing time
    is excluded). The default is a no-op — static policies ignore
    feedback; :class:`AdaptiveLatency` folds it into its cost model.
    """

    #: Registry key and report label ("round_robin", ...).
    name = "policy"

    def start(self, scenarios: Sequence[Scenario]) -> None:
        """Reset state for a new run over ``scenarios``."""

    def select(self, live: Sequence[int]) -> int:
        """The scenario index to draw the next chunk from.

        ``live`` holds the indices (ascending) of scenarios whose
        enumeration is not yet exhausted; the return value must be one
        of them.
        """
        raise NotImplementedError

    def observe(self, scenario_id: int, n_configs: int, seconds: float) -> None:
        """Measured feedback for one collected chunk of ``scenario_id``:
        ``n_configs`` configurations evaluated in ``seconds`` of worker
        wall-clock time. Called after the chunk's results landed, in
        collection order. Default: ignore."""


class RoundRobin(SchedulingPolicy):
    """One chunk per live scenario, cyclically: no scenario starves, and
    the fleet's first results arrive from every scenario early. The
    default, byte-compatible with the original fixed interleaver."""

    name = "round_robin"

    def __init__(self) -> None:
        self._last = -1

    def start(self, scenarios: Sequence[Scenario]) -> None:
        self._last = -1

    def select(self, live: Sequence[int]) -> int:
        for index in live:
            if index > self._last:
                self._last = index
                return index
        self._last = live[0]
        return live[0]


class ShortestScenarioFirst(SchedulingPolicy):
    """Run scenarios to completion in ascending design-space size.

    Shortest-job-first over :meth:`Scenario.count_configs` estimates
    (exact up to per-config pruning): small scenarios finish — and
    stream out of :meth:`Campaign.iter_runs` — before large ones start,
    minimizing mean completion time across the fleet. Ties keep fleet
    order.
    """

    name = "shortest_scenario_first"

    def __init__(self) -> None:
        self._order: tuple[int, ...] = ()

    def start(self, scenarios: Sequence[Scenario]) -> None:
        sizes = [scenario.count_configs() for scenario in scenarios]
        self._order = tuple(
            sorted(range(len(scenarios)), key=lambda index: (sizes[index], index))
        )

    def select(self, live: Sequence[int]) -> int:
        alive = set(live)
        for index in self._order:
            if index in alive:
                return index
        return live[0]


class PriorityWeighted(SchedulingPolicy):
    """Interleave chunks proportionally to per-scenario weights.

    Smooth weighted round-robin: each selection adds every live
    scenario's weight to its credit, picks the highest credit (ties to
    the earliest scenario) and charges the picked one the live total —
    over time scenario *i* receives ``weight[i] / sum(weights)`` of the
    submitted chunks, without bursts. Deterministic, so campaign results
    are reproducible run to run.

    Parameters
    ----------
    weights:
        Mapping from scenario *name* to a positive weight; scenarios
        without an entry get ``default_weight``. Unknown names are
        rejected at :meth:`start` (they would silently never apply).
    default_weight:
        Weight of scenarios absent from ``weights``.
    """

    name = "priority_weighted"

    def __init__(
        self,
        weights: Mapping[str, float] | None = None,
        default_weight: float = 1.0,
    ):
        if default_weight <= 0:
            raise ConfigurationError(
                f"default_weight must be positive, got {default_weight}"
            )
        weights = dict(weights or {})
        for name, weight in weights.items():
            if not weight > 0:
                raise ConfigurationError(
                    f"weight for {name!r} must be positive, got {weight}"
                )
        self._by_name = weights
        self._default = default_weight
        self._weights: list[float] = []
        self._credit: list[float] = []

    def start(self, scenarios: Sequence[Scenario]) -> None:
        names = {scenario.name for scenario in scenarios}
        unknown = sorted(set(self._by_name) - names)
        if unknown:
            raise ConfigurationError(
                f"priority weights for unknown scenarios {unknown}; "
                f"campaign has {sorted(names)}"
            )
        self._weights = [
            self._by_name.get(scenario.name, self._default) for scenario in scenarios
        ]
        self._credit = [0.0] * len(scenarios)

    def select(self, live: Sequence[int]) -> int:
        credit, weights = self._credit, self._weights
        total = 0.0
        for index in live:
            credit[index] += weights[index]
            total += weights[index]
        best = live[0]
        for index in live[1:]:
            if credit[index] > credit[best]:
                best = index
        credit[best] -= total
        return best


class AdaptiveLatency(SchedulingPolicy):
    """Longest-estimated-remaining-time first, over *measured* latencies.

    The static policies schedule on ``count_configs()`` — a size
    estimate that says nothing about how expensive one configuration of
    each scenario actually is (deep pipelines cost more per
    configuration than shallow ones, custom models more than stock
    ones). This policy instead maintains an exponentially-weighted
    moving average of each scenario's measured seconds-per-configuration
    from the :meth:`observe` feedback channel, estimates every live
    scenario's *remaining evaluation time* as ``remaining configurations
    x EWMA rate``, and always feeds the straggler — the scenario with
    the most estimated work left. Longest-remaining-processing-time is
    the classic makespan heuristic for shared workers: the fleet's tail
    scenario is kept continuously supplied instead of being discovered
    last, and because the estimates update with every collected chunk,
    a scenario that turns out slower than its size suggested is
    rebalanced toward *mid-flight*.

    Before the first observation of a scenario the rate falls back to
    the fleet-global EWMA (any measurement beats none), and before any
    observation at all to a uniform rate — degrading gracefully to
    largest-remaining-count-first, i.e. the estimate-only schedule.

    Selections depend on wall-clock measurements and are therefore not
    reproducible run to run; per-scenario *results* are unaffected
    (policies never reorder a scenario's own chunks — the invariant
    suite asserts byte-identity to solo ``explore()`` under this policy
    specifically).

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in (0, 1]: the weight of the newest
        chunk's measured rate. 1.0 means "trust only the last chunk".
    """

    name = "adaptive_latency"

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._remaining: list[float] = []
        self._rates: list[float | None] = []
        self._global_rate: float | None = None

    def start(self, scenarios: Sequence[Scenario]) -> None:
        # count_configs() is an upper bound under per-config pruning;
        # observe() clamps the remaining count at zero, so an optimistic
        # size only ever *over*-estimates remaining work (harmless: the
        # scenario drops out of the live set when truly exhausted).
        self._remaining = [float(scenario.count_configs()) for scenario in scenarios]
        self._rates = [None] * len(scenarios)
        self._global_rate = None

    def observe(self, scenario_id: int, n_configs: int, seconds: float) -> None:
        if n_configs <= 0:
            return
        rate = seconds / n_configs
        alpha = self.alpha
        previous = self._rates[scenario_id]
        self._rates[scenario_id] = (
            rate if previous is None else alpha * rate + (1.0 - alpha) * previous
        )
        previous = self._global_rate
        self._global_rate = (
            rate if previous is None else alpha * rate + (1.0 - alpha) * previous
        )
        self._remaining[scenario_id] = max(
            0.0, self._remaining[scenario_id] - n_configs
        )

    def estimated_remaining_seconds(self, scenario_id: int) -> float:
        """The scenario's estimated remaining evaluation time under the
        current cost model (exposed for reports and tests)."""
        rate = self._rates[scenario_id]
        if rate is None:
            rate = self._global_rate if self._global_rate is not None else 1.0
        return self._remaining[scenario_id] * rate

    def select(self, live: Sequence[int]) -> int:
        best = live[0]
        best_estimate = self.estimated_remaining_seconds(best)
        for index in live[1:]:
            estimate = self.estimated_remaining_seconds(index)
            if estimate > best_estimate:
                best, best_estimate = index, estimate
        return best


class WeightedCompletionTime(SchedulingPolicy):
    """Run scenarios to completion in descending weight-per-size order.

    The weighted-mean-completion-time objective over ``iter_runs``:
    minimize ``sum_i w_i * C_i`` where ``C_i`` is scenario *i*'s
    completion time in the stream. With one logical server and
    run-to-completion scheduling, weighted-shortest-processing-time
    (WSPT) is the classic exact rule — serve scenarios in descending
    ``weight / processing_time``, here estimated as ``weight /
    count_configs()``. High-weight and small scenarios stream out of
    :meth:`Campaign.iter_runs` first; ties keep fleet order. With equal
    weights this degrades exactly to :class:`ShortestScenarioFirst`
    order (``1/size`` sorts like ``size``).

    Parameters
    ----------
    weights:
        Mapping from scenario *name* to a positive completion-time
        weight; scenarios without an entry get ``default_weight``.
        Unknown names are rejected at :meth:`start` (they would
        silently never apply).
    default_weight:
        Weight of scenarios absent from ``weights``.
    """

    name = "weighted_completion"

    def __init__(
        self,
        weights: Mapping[str, float] | None = None,
        default_weight: float = 1.0,
    ):
        if default_weight <= 0:
            raise ConfigurationError(
                f"default_weight must be positive, got {default_weight}"
            )
        weights = dict(weights or {})
        for name, weight in weights.items():
            if not weight > 0:
                raise ConfigurationError(
                    f"weight for {name!r} must be positive, got {weight}"
                )
        self._by_name = weights
        self._default = default_weight
        self._order: tuple[int, ...] = ()

    def start(self, scenarios: Sequence[Scenario]) -> None:
        names = {scenario.name for scenario in scenarios}
        unknown = sorted(set(self._by_name) - names)
        if unknown:
            raise ConfigurationError(
                f"completion-time weights for unknown scenarios {unknown}; "
                f"campaign has {sorted(names)}"
            )
        ratios = [
            self._by_name.get(scenario.name, self._default)
            / max(1, scenario.count_configs())
            for scenario in scenarios
        ]
        self._order = tuple(
            sorted(range(len(scenarios)), key=lambda index: (-ratios[index], index))
        )

    def select(self, live: Sequence[int]) -> int:
        alive = set(live)
        for index in self._order:
            if index in alive:
                return index
        return live[0]


#: Builtin policy factories by name (the string forms ``policy=`` takes).
SCHEDULING_POLICIES: dict[str, Callable[[], SchedulingPolicy]] = {
    RoundRobin.name: RoundRobin,
    ShortestScenarioFirst.name: ShortestScenarioFirst,
    PriorityWeighted.name: PriorityWeighted,
    AdaptiveLatency.name: AdaptiveLatency,
    WeightedCompletionTime.name: WeightedCompletionTime,
}


def resolve_policy(policy: Any) -> SchedulingPolicy:
    """Default to round-robin; accept a builtin name or a policy
    instance (duck-typed: anything with ``start``/``select`` — a policy
    without ``observe`` simply receives no latency feedback)."""
    if policy is None:
        return RoundRobin()
    if isinstance(policy, str):
        try:
            return SCHEDULING_POLICIES[policy]()
        except KeyError:
            raise ConfigurationError(
                f"unknown scheduling policy {policy!r}; builtin policies "
                f"are {sorted(SCHEDULING_POLICIES)} (or pass a "
                "SchedulingPolicy instance)"
            ) from None
    if isinstance(policy, SchedulingPolicy) or (
        callable(getattr(policy, "select", None))
        and callable(getattr(policy, "start", None))
    ):
        return policy
    raise ConfigurationError(
        "policy must be a SchedulingPolicy, one of "
        f"{sorted(SCHEDULING_POLICIES)}, or None, got {type(policy).__name__}"
    )


def observe_policy(
    policy: SchedulingPolicy, scenario_id: int, n_configs: int, seconds: float
) -> None:
    """Feed one chunk's measured latency to a policy, tolerating
    duck-typed policies without an ``observe`` method (pre-feedback
    custom policies keep working unchanged)."""
    method = getattr(policy, "observe", None)
    if method is not None:
        method(scenario_id, n_configs, seconds)
