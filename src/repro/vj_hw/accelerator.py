"""Cycle/energy model for a streaming Viola-Jones engine.

Microarchitecture assumptions (in line with published FPGA/ASIC VJ engines,
e.g. Hiromoto et al. CVPR'07, Cho et al. ASAP'09, cited by the paper):

* the integral image and squared-integral image are computed in one
  streaming pass over the frame (two adds + one multiply per pixel, one
  write per table);
* feature evaluation is pipelined at one rectangle per cycle; a rectangle
  costs four table reads and three adds, plus one MAC for the weight;
* per-window setup (variance normalization) costs two rectangle reads and
  a square root, amortized as a fixed cycle count.

The engine's inputs are the *measured* scan statistics of the software
detector (:class:`repro.facedet.detector.ScanStats`), so hardware cost
follows the actual data-dependent cascade behaviour — the whole point of
the cascade as a pre-filter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.facedet.detector import ScanStats
from repro.hw.asic import AsicEnergyModel
from repro.hw.energy import EnergyReport

#: Average rectangles per Haar feature (2/3/4-rect mix).
_RECTS_PER_FEATURE = 2.8
#: Integral-table reads per rectangle sum.
_READS_PER_RECT = 4
#: Cycles per window for setup (origin dispatch + variance normalization).
_WINDOW_SETUP_CYCLES = 6
#: Streaming integral-image pass: pixels per cycle.
_INTEGRAL_PIXELS_PER_CYCLE = 2.0


@dataclass(frozen=True)
class VjScanCost:
    """Cycle and energy cost of scanning one frame."""

    cycles: int
    energy: EnergyReport
    seconds: float

    @property
    def total_joules(self) -> float:
        return self.energy.total


class ViolaJonesAccelerator:
    """Fixed-function cascade engine bound to an operating point.

    Parameters
    ----------
    energy_model:
        Technology/clock/voltage; defaults to the same 30 MHz, 0.9 V
        island as the NN accelerator (they share the sensor SoC).
    integral_word_bits:
        Width of integral-image words (24 bits covers QCIF sums).
    frame_buffer_bytes:
        Size of the integral-image SRAM (sets read energy).
    """

    def __init__(
        self,
        energy_model: AsicEnergyModel | None = None,
        integral_word_bits: int = 24,
        frame_buffer_bytes: float = 64 * 1024,
    ):
        if integral_word_bits < 8:
            raise HardwareModelError("integral words must be >= 8 bits")
        base = energy_model or AsicEnergyModel()
        # ~25 kGE: integral pipeline, feature datapath, window sequencer.
        self.energy_model = AsicEnergyModel(
            tech=base.tech, clock_hz=base.clock_hz, voltage=base.voltage,
            kilo_gates=25.0,
        )
        self.integral_word_bits = integral_word_bits
        self.frame_buffer_bytes = frame_buffer_bytes

    # ------------------------------------------------------------------
    def integral_pass_cost(self, pixels: int) -> tuple[int, EnergyReport]:
        """Cost of building both integral tables for a frame."""
        if pixels < 0:
            raise HardwareModelError(f"pixels must be >= 0, got {pixels}")
        em = self.energy_model
        cycles = int(pixels / _INTEGRAL_PIXELS_PER_CYCLE)
        report = EnergyReport()
        bits = self.integral_word_bits
        # Per pixel: ii add + row-buffer add, square MAC for ii_sq, and two
        # table writes.
        report.add("vj:integral_adds", pixels * 2 * em.add_energy(bits))
        report.add("vj:integral_square", pixels * em.mac_energy(8))
        report.add(
            "vj:integral_writes",
            pixels * 2 * em.sram_write_energy(bits, self.frame_buffer_bytes),
        )
        return cycles, report

    def scan_cost(self, stats: ScanStats, pixels: int) -> VjScanCost:
        """Total frame cost given the detector's measured work stats."""
        em = self.energy_model
        bits = self.integral_word_bits
        int_cycles, report = self.integral_pass_cost(pixels)

        rects = stats.feature_evaluations * _RECTS_PER_FEATURE
        table_reads = rects * _READS_PER_RECT + stats.windows_visited * 2 * _READS_PER_RECT
        report.add(
            "vj:table_reads",
            table_reads * em.sram_read_energy(bits, self.frame_buffer_bytes),
        )
        report.add("vj:rect_adds", rects * 3 * em.add_energy(bits))
        report.add("vj:feature_macs", stats.feature_evaluations * em.mac_energy(16))
        report.add(
            "vj:window_setup",
            stats.windows_visited * _WINDOW_SETUP_CYCLES * em.register_energy(16),
        )

        feature_cycles = int(rects)  # one rectangle per cycle, pipelined
        window_cycles = stats.windows_visited * _WINDOW_SETUP_CYCLES
        cycles = int_cycles + feature_cycles + window_cycles
        report.add("vj:control", cycles * 4 * em.register_energy(8))
        report = self.energy_model.report_with_leakage(report, cycles)
        return VjScanCost(
            cycles=cycles, energy=report, seconds=em.seconds(cycles)
        )
