"""Hardware cost model of the Viola-Jones cascade accelerator.

The paper uses VJ face detection as an *optional filtering block* in front
of the NN authenticator; its hardware value is that the cascade spends
almost no work on empty windows. This package turns the software detector's
work statistics (windows visited, features evaluated) into cycles and
joules for an on-chip fixed-function engine.
"""

from repro.vj_hw.accelerator import ViolaJonesAccelerator, VjScanCost

__all__ = ["ViolaJonesAccelerator", "VjScanCost"]
