"""Logical data-size model of the 16x4K pipeline (Figures 9 and 10).

Every block's output format is spelled out below; the resulting per-frame
byte counts — and therefore the communication FPS of every offload cut
point in Figure 10 — follow mechanically. Calibration detail lives in
DESIGN.md; the punchlines:

* the raw sensor stream is 12-bit Bayer (199 MB per 16-camera frame set,
  47.7 Gb/s at 30 FPS — the paper's "over 32 Gb/s");
* B1 *expands* data 3x by demosaicing (the paper's "computational stages
  that expand the data size are inefficient in isolation");
* B2 expands further (pairwise rectification pads each view to the pair's
  common footprint) and is the largest inter-block transfer, the one B3
  consumes;
* B3 collapses each pair to a depth map + one reference view;
* B4's stitched stereo panorama is the only output small enough to upload
  in real time over 25 GbE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MB


@dataclass(frozen=True)
class BlockOutput:
    """One block's logical output for a full 16-camera frame set."""

    block: str
    description: str
    bytes_per_frame: float

    @property
    def megabytes(self) -> float:
        return self.bytes_per_frame / MB


@dataclass(frozen=True)
class RigDataModel:
    """Logical geometry and per-stage formats of the camera rig.

    Parameters
    ----------
    n_cameras:
        Cameras on the ring (16 in the paper; must be even — the rig is
        consumed as adjacent pairs).
    width, height:
        Per-camera sensor geometry (4K).
    sensor_bits_per_pixel:
        Raw Bayer depth (12-bit packed).
    align_expansion:
        Footprint growth of pairwise rectification (common-projection
        padding), ~4/3.
    pano_width, pano_height:
        Per-eye equirectangular output geometry.
    """

    n_cameras: int = 16
    width: int = 3840
    height: int = 2160
    sensor_bits_per_pixel: float = 12.0
    demosaic_bytes_per_pixel: float = 4.5  # 12-bit planar RGB
    align_expansion: float = 4.0 / 3.0
    depth_bytes_per_pixel: float = 2.0  # 16-bit disparity
    reference_bytes_per_pixel: float = 2.25  # 12-bit YUV420 reference view
    pano_width: int = 7680
    pano_height: int = 2880
    pano_bytes_per_pixel: float = 2.25  # 12-bit YUV420 per eye

    def __post_init__(self) -> None:
        if self.n_cameras < 2 or self.n_cameras % 2 != 0:
            raise ConfigurationError(
                f"n_cameras must be even and >= 2, got {self.n_cameras}"
            )
        if self.width < 1 or self.height < 1:
            raise ConfigurationError("camera geometry must be positive")

    # ------------------------------------------------------------------
    @property
    def pixels_per_camera(self) -> int:
        return self.width * self.height

    @property
    def n_pairs(self) -> int:
        return self.n_cameras // 2

    # ------------------------------------------------------------------
    def sensor_bytes(self) -> float:
        """Raw Bayer capture, all cameras."""
        return self.n_cameras * self.pixels_per_camera * self.sensor_bits_per_pixel / 8.0

    def b1_bytes(self) -> float:
        """Demosaiced planar RGB, all cameras (expands the raw stream)."""
        return self.n_cameras * self.pixels_per_camera * self.demosaic_bytes_per_pixel

    def b2_bytes(self) -> float:
        """Rectified pair views: every camera re-projected with padding."""
        return (
            self.n_cameras
            * self.pixels_per_camera
            * self.align_expansion
            * self.demosaic_bytes_per_pixel
        )

    def b3_bytes(self) -> float:
        """Per pair: a full-resolution depth map plus one reference view."""
        per_pair = self.pixels_per_camera * (
            self.depth_bytes_per_pixel + self.reference_bytes_per_pixel
        )
        return self.n_pairs * per_pair

    def b4_bytes(self) -> float:
        """Two stitched equirectangular eyes."""
        return 2 * self.pano_width * self.pano_height * self.pano_bytes_per_pixel

    # ------------------------------------------------------------------
    def outputs(self) -> list[BlockOutput]:
        """Figure 9's data series: output size after each stage."""
        return [
            BlockOutput("sensor", "12-bit Bayer raw, 16 cameras", self.sensor_bytes()),
            BlockOutput("B1", "demosaiced 12-bit planar RGB", self.b1_bytes()),
            BlockOutput("B2", "rectified + padded pair views", self.b2_bytes()),
            BlockOutput("B3", "16-bit depth + YUV420 reference per pair", self.b3_bytes()),
            BlockOutput("B4", "stereo equirect panorama, YUV420", self.b4_bytes()),
        ]

    def output_after(self, last_block: str) -> float:
        """Bytes per frame crossing the uplink if ``last_block`` is the
        final in-camera stage ('sensor', 'B1', ... 'B4')."""
        table = {o.block: o.bytes_per_frame for o in self.outputs()}
        if last_block not in table:
            raise ConfigurationError(
                f"unknown block {last_block!r}; expected one of {sorted(table)}"
            )
        return table[last_block]

    def sensor_bit_rate(self, fps: float = 30.0) -> float:
        """Aggregate capture rate in bits/s (the paper's 'over 32 Gb/s')."""
        if fps <= 0:
            raise ConfigurationError(f"fps must be positive, got {fps}")
        return self.sensor_bytes() * 8.0 * fps
