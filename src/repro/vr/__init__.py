"""The real-time VR video pipeline (case study B).

Four blocks transform a 16-camera rig capture into a stereo panorama:

======  =================  =========================================
block   stage              implementation
======  =================  =========================================
B1      pre-processing     :mod:`.preprocess` (demosaic, vignette, WB)
B2      image alignment    :mod:`.align` (pairwise rectification)
B3      depth estimation   :mod:`.depth` (bilateral-space stereo)
B4      image stitching    :mod:`.stitch` (ODS panorama synthesis)
======  =================  =========================================

Two parallel descriptions coexist:

* the **functional** pipeline (:mod:`.pipeline`) renders/aligns/solves
  actual pixels at simulation scale;
* the **logical** data model (:mod:`.blocks`) and platform throughput
  models (:mod:`.platforms`) account for the full-scale 16x4K system the
  paper evaluates (Figures 9 and 10, Table I).
"""

from repro.vr.blocks import RigDataModel, BlockOutput
from repro.vr.preprocess import preprocess_frame, preprocess_rig
from repro.vr.align import AlignedPair, align_pair, align_rig
from repro.vr.depth import compute_pair_depth, compute_rig_depth
from repro.vr.stitch import PanoramaPair, stitch_panorama
from repro.vr.pipeline import VrPipeline, PipelineRun
from repro.vr.platforms import (
    B3Workload,
    PlatformThroughput,
    arm_block_fps,
    b3_cpu_fps,
    b3_fpga_fps,
    b3_gpu_fps,
)

__all__ = [
    "RigDataModel",
    "BlockOutput",
    "preprocess_frame",
    "preprocess_rig",
    "AlignedPair",
    "align_pair",
    "align_rig",
    "compute_pair_depth",
    "compute_rig_depth",
    "PanoramaPair",
    "stitch_panorama",
    "VrPipeline",
    "PipelineRun",
    "B3Workload",
    "PlatformThroughput",
    "arm_block_fps",
    "b3_cpu_fps",
    "b3_fpga_fps",
    "b3_gpu_fps",
]
