"""Per-block, per-platform throughput models for the full-scale system.

These produce the *compute* bars of Figure 10. The methodology follows the
paper's: B3's platform cost is the disparity-refinement kernel (the paper
times "five executions of the kernel over a frame"; grid preparation stays
on the host), B1/B2 run at ISP line rate at the sensors, and B4 is
marginal on every accelerated platform.

Model bases (constants documented inline, discrepancies vs. the paper's
bars recorded in EXPERIMENTS.md):

* **ARM/ISP stages** — a per-camera 4K ISP sustains ~1.4 Gpx/s for
  demosaic-class work (B1: 174 FPS) and ~0.83 Gpx/s for warp-class work
  (B2: 100 FPS); 16 cameras run in parallel so the system rate equals the
  per-camera rate.
* **B3 on CPU** — the grid solve is a scattered-gather workload; a
  Zynq-class ARM sustains ~0.5 GB/s of effective random-gather traffic.
* **B3 on GPU** — same traffic at ~26% of the K2200's 80 GB/s (scattered
  3-D neighbor reads defeat coalescing).
* **B3 on FPGA** — vertices stream through on-chip compute units at one
  vertex-iteration per CU-cycle; no DRAM gathers (that is the design's
  whole advantage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.fpga import FpgaDesign, ZYNQ_7020
from repro.hw.gpu import GpuModel, QUADRO_K2200_CLASS
from repro.vr.blocks import RigDataModel

#: Reference solver iteration count of the hardware kernel (calibrated so
#: the Zynq design reproduces the paper's ~30 FPS refinement throughput).
HW_SOLVER_ITERS = 10

#: Bytes touched per vertex-iteration by a software/GPU solve: three-axis
#: [1,2,1] neighbor gathers plus the write-back, float32.
BYTES_PER_VERTEX_ITER = 16.0

#: ISP line rates (pixels/s) for demosaic-class and warp-class stages.
ISP_DEMOSAIC_PX_PER_S = 1.45e9
ISP_WARP_PX_PER_S = 1.11e9

#: Effective random-gather bandwidth of the embedded ARM host (GB/s).
ARM_GATHER_BYTES_PER_S = 0.5e9

#: Fraction of GPU DRAM bandwidth achieved on scattered grid gathers.
GPU_GATHER_EFFICIENCY = 0.26


@dataclass(frozen=True)
class B3Workload:
    """Full-scale work of the disparity-refinement kernel per frame set."""

    n_pairs: int
    grid_vertices_per_pair: int
    solver_iters: int

    @classmethod
    def from_data_model(
        cls,
        model: RigDataModel,
        sigma_spatial: float = 8.0,
        solver_iters: int = HW_SOLVER_ITERS,
    ) -> "B3Workload":
        """Grid geometry at the logical 4K scale."""
        if sigma_spatial <= 0:
            raise ConfigurationError("sigma_spatial must be positive")
        ny = int(np.ceil(model.height / sigma_spatial))
        nx = int(np.ceil(model.width / sigma_spatial))
        nz = max(int(round(256.0 / sigma_spatial)), 2)
        return cls(
            n_pairs=model.n_pairs,
            grid_vertices_per_pair=ny * nx * nz,
            solver_iters=solver_iters,
        )

    @property
    def vertex_iters_per_pair(self) -> float:
        return float(self.grid_vertices_per_pair) * self.solver_iters

    @property
    def vertex_iters_total(self) -> float:
        return self.vertex_iters_per_pair * self.n_pairs

    @property
    def gather_bytes_total(self) -> float:
        """DRAM traffic of a software solve (CPU/GPU platforms)."""
        return self.vertex_iters_total * BYTES_PER_VERTEX_ITER


@dataclass(frozen=True)
class PlatformThroughput:
    """A compute-rate claim with its modeling basis."""

    platform: str
    block: str
    fps: float
    basis: str


# ---------------------------------------------------------------------------
# ISP-resident stages
# ---------------------------------------------------------------------------
def arm_block_fps(block: str, model: RigDataModel | None = None) -> PlatformThroughput:
    """B1/B2/B4 rates on the camera-side ARM + ISP path."""
    model = model or RigDataModel()
    px = model.pixels_per_camera
    if block == "B1":
        fps = ISP_DEMOSAIC_PX_PER_S / px
        basis = f"per-camera ISP demosaic at {ISP_DEMOSAIC_PX_PER_S/1e9:.2f} Gpx/s"
    elif block == "B2":
        fps = ISP_WARP_PX_PER_S / (px * model.align_expansion)
        basis = f"per-camera ISP warp at {ISP_WARP_PX_PER_S/1e9:.2f} Gpx/s"
    elif block == "B4":
        # Host-side blend of the two panorama eyes, sequential access.
        pano_px = 2 * model.pano_width * model.pano_height
        fps = 4.0e9 / (pano_px * 8.0)  # ~4 GB/s streaming, 8 B/px touched
        basis = "host-side blend, 4 GB/s sequential traffic"
    else:
        raise ConfigurationError(f"no ARM model for block {block!r}")
    return PlatformThroughput("arm", block, fps, basis)


# ---------------------------------------------------------------------------
# B3 platforms
# ---------------------------------------------------------------------------
def b3_cpu_fps(workload: B3Workload) -> PlatformThroughput:
    """Refinement kernel on the embedded ARM host (gather-bound)."""
    seconds = workload.gather_bytes_total / ARM_GATHER_BYTES_PER_S
    return PlatformThroughput(
        "cpu", "B3", 1.0 / seconds,
        f"{workload.gather_bytes_total/1e9:.1f} GB gathers at "
        f"{ARM_GATHER_BYTES_PER_S/1e9:.1f} GB/s",
    )


def b3_gpu_fps(
    workload: B3Workload, gpu: GpuModel = QUADRO_K2200_CLASS
) -> PlatformThroughput:
    """Refinement kernel on the discrete GPU (scatter-gather bound)."""
    bandwidth = gpu.peak_bytes_per_s * GPU_GATHER_EFFICIENCY
    seconds = workload.gather_bytes_total / bandwidth
    # One kernel launch per solver iteration per pair.
    seconds += workload.solver_iters * workload.n_pairs * gpu.launch_overhead_s
    return PlatformThroughput(
        "gpu", "B3", 1.0 / seconds,
        f"{workload.gather_bytes_total/1e9:.1f} GB gathers at "
        f"{bandwidth/1e9:.1f} GB/s effective",
    )


def b3_fpga_fps(
    workload: B3Workload,
    design: FpgaDesign | None = None,
    fpgas_per_pair: int = 1,
) -> PlatformThroughput:
    """Refinement kernel streamed through FPGA compute units.

    Each stereo pair gets ``fpgas_per_pair`` devices (the paper's
    evaluation: one Zynq per 2 cameras); pairs process in parallel, so the
    system rate equals the per-pair rate.
    """
    if fpgas_per_pair < 1:
        raise ConfigurationError("need at least one FPGA per pair")
    design = design or FpgaDesign(ZYNQ_7020)
    rate = design.items_per_second() * fpgas_per_pair
    if rate <= 0:
        raise ConfigurationError("FPGA design has no compute units")
    seconds = workload.vertex_iters_per_pair / rate
    return PlatformThroughput(
        "fpga", "B3", 1.0 / seconds,
        f"{design.max_units()*fpgas_per_pair} CUs at "
        f"{design.clock_hz/1e6:.0f} MHz, 1 vertex-iter/CU-cycle",
    )


def b4_fps(platform: str, model: RigDataModel | None = None) -> PlatformThroughput:
    """Stitching throughput per platform — marginal next to B3.

    On the GPU the blend is a trivial coalesced kernel; on the FPGA a
    dedicated blend pipeline consumes one pixel per cycle; the CPU number
    reuses the host-blend model.
    """
    model = model or RigDataModel()
    pano_px = 2 * model.pano_width * model.pano_height
    if platform == "cpu":
        return arm_block_fps("B4", model)
    if platform == "gpu":
        gpu = QUADRO_K2200_CLASS
        seconds = gpu.kernel_seconds(flops=pano_px * 30.0, bytes_moved=pano_px * 12.0)
        return PlatformThroughput("gpu", "B4", 1.0 / seconds, "coalesced blend kernel")
    if platform == "fpga":
        # 512-bit AXI stream feeds a wide blend pipeline: 16 px/cycle.
        fps = 125e6 * 16 / pano_px
        return PlatformThroughput("fpga", "B4", fps, "streaming blend, 16 px/cycle")
    raise ConfigurationError(f"unknown platform {platform!r}")
