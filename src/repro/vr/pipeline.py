"""End-to-end functional VR pipeline with per-block profiling.

Runs B1 -> B2 -> B3 -> B4 on an actual (simulation-scale) rig capture,
timing each block — the measurement behind Figure 9's compute-share
breakdown — and attaching the logical data-size accounting from
:mod:`repro.vr.blocks`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.rig import CameraRig, PanoramicScene, RigFrameSet
from repro.errors import ConfigurationError
from repro.vr.align import AlignedPair, align_rig
from repro.vr.blocks import RigDataModel
from repro.vr.depth import PairDepth, compute_rig_depth
from repro.vr.preprocess import preprocess_rig
from repro.vr.stitch import PanoramaPair, stitch_panorama

BLOCK_ORDER = ("B1", "B2", "B3", "B4")


@dataclass
class PipelineRun:
    """Everything one pipeline execution produced."""

    frames_rgb: list[np.ndarray]
    pairs: list[AlignedPair]
    pair_depths: list[PairDepth]
    panorama: PanoramaPair
    block_seconds: dict[str, float] = field(default_factory=dict)
    block_output_bytes: dict[str, float] = field(default_factory=dict)

    def compute_shares(self) -> dict[str, float]:
        """Fraction of total measured compute per block (Figure 9)."""
        total = sum(self.block_seconds.values())
        if total <= 0:
            raise ConfigurationError("pipeline recorded no compute time")
        return {b: self.block_seconds[b] / total for b in BLOCK_ORDER}

    def slowest_block(self) -> str:
        """The stage that bounds pipelined throughput."""
        return max(self.block_seconds, key=self.block_seconds.get)


class VrPipeline:
    """Configured pipeline bound to a rig and a logical data model.

    Parameters
    ----------
    rig:
        Simulation-scale camera rig.
    data_model:
        Logical 16x4K accounting (defaults to the paper's geometry with
        ``n_cameras`` matching the rig).
    min_depth_m:
        Nearest surface the stereo search must resolve.
    sigma_spatial, solver_iters:
        BSSA configuration for B3.
    pano_width:
        Output panorama width at simulation scale.
    """

    def __init__(
        self,
        rig: CameraRig,
        data_model: RigDataModel | None = None,
        min_depth_m: float = 1.0,
        sigma_spatial: float = 8.0,
        solver_iters: int = 15,
        pano_width: int | None = None,
        vignette_strength: float = 0.0,
    ):
        self.rig = rig
        self.data_model = data_model or RigDataModel(n_cameras=rig.n_cameras)
        if self.data_model.n_cameras != rig.n_cameras:
            raise ConfigurationError(
                f"data model has {self.data_model.n_cameras} cameras, rig has "
                f"{rig.n_cameras}"
            )
        self.min_depth_m = min_depth_m
        self.sigma_spatial = sigma_spatial
        self.solver_iters = solver_iters
        self.pano_width = pano_width or rig.sim_width * 4
        self.vignette_strength = vignette_strength

    # ------------------------------------------------------------------
    def run(self, frames: RigFrameSet) -> PipelineRun:
        """Execute all four blocks on one capture, timing each."""
        seconds: dict[str, float] = {}

        start = time.perf_counter()
        rgb = preprocess_rig(frames, vignette_strength=self.vignette_strength)
        seconds["B1"] = time.perf_counter() - start

        start = time.perf_counter()
        pairs = align_rig(rgb, self.rig, expansion=self.data_model.align_expansion)
        seconds["B2"] = time.perf_counter() - start

        start = time.perf_counter()
        depths = compute_rig_depth(
            pairs,
            min_depth_m=self.min_depth_m,
            sigma_spatial=self.sigma_spatial,
            solver_iters=self.solver_iters,
        )
        seconds["B3"] = time.perf_counter() - start

        start = time.perf_counter()
        panorama = stitch_panorama(depths, pano_width=self.pano_width)
        seconds["B4"] = time.perf_counter() - start

        outputs = {o.block: o.bytes_per_frame for o in self.data_model.outputs()}
        return PipelineRun(
            frames_rgb=rgb,
            pairs=pairs,
            pair_depths=depths,
            panorama=panorama,
            block_seconds=seconds,
            block_output_bytes=outputs,
        )

    def run_scene(
        self, scene: PanoramicScene, seed: int = 0, noise_sigma: float = 0.005
    ) -> PipelineRun:
        """Capture a scene with the rig and run the pipeline on it."""
        frames = self.rig.capture(scene, noise_sigma=noise_sigma, seed=seed)
        return self.run(frames)
