"""B4 — image stitching: compose pair outputs into an ODS stereo panorama.

Each rectified pair contributes a wedge of azimuth around its mid-yaw.
For every output column the stitcher samples the wedge's reference view,
displacing it horizontally by the refined disparity scaled per eye
(omni-directional stereo view synthesis), and feathers overlapping wedges
by angular distance. The output is the only data product small enough to
stream in real time (Figure 10's B4 cut point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.imaging.geometry import remap_bilinear
from repro.vr.depth import PairDepth


@dataclass(frozen=True)
class PanoramaPair:
    """Stereo equirectangular panorama: one image per eye."""

    left_eye: np.ndarray  # (H, W, 3)
    right_eye: np.ndarray
    coverage: np.ndarray  # (W,) total feather weight per column

    @property
    def shape(self) -> tuple[int, int]:
        return self.left_eye.shape[:2]


def _wrap_angle(a: np.ndarray | float) -> np.ndarray | float:
    return (a + np.pi) % (2.0 * np.pi) - np.pi


def stitch_panorama(
    pair_depths: list[PairDepth],
    pano_width: int = 512,
    pano_height: int | None = None,
    eye_disparity_scale: float = 0.5,
) -> PanoramaPair:
    """Synthesize the two ODS eyes from every pair's color + depth.

    Parameters
    ----------
    pair_depths:
        Output of :func:`repro.vr.depth.compute_rig_depth`.
    pano_width:
        Output panorama width (full 360 degrees of azimuth).
    pano_height:
        Output height; defaults to the pair image height.
    eye_disparity_scale:
        Fraction of the measured pair disparity applied as inter-eye
        displacement (0.5 puts the virtual eyes halfway between the
        physical cameras).
    """
    if not pair_depths:
        raise ConfigurationError("no pair outputs to stitch")
    if pano_width < 8:
        raise ConfigurationError(f"pano_width must be >= 8, got {pano_width}")
    height = pano_height or pair_depths[0].pair.shape[0]

    azimuths = (np.arange(pano_width) + 0.5) / pano_width * 2.0 * np.pi
    eyes = {
        "left": np.zeros((height, pano_width, 3), dtype=np.float64),
        "right": np.zeros((height, pano_width, 3), dtype=np.float64),
    }
    weight_acc = np.zeros(pano_width, dtype=np.float64)

    # Feather half-width: half the angular pitch between pairs.
    pitch = 2.0 * np.pi / len(pair_depths)
    feather = pitch * 0.75

    for pd in pair_depths:
        pair = pd.pair
        pair_h, pair_w = pair.shape
        cx = (pair_w - 1) / 2.0
        delta = np.asarray(_wrap_angle(azimuths - pair.mid_yaw))
        in_view = np.abs(delta) < feather
        if not in_view.any():
            continue
        cols = np.flatnonzero(in_view)
        # Column in the pair's rectified view for each covered azimuth.
        src_x = cx + pair.focal * np.tan(delta[cols])
        weights = np.clip(1.0 - np.abs(delta[cols]) / feather, 0.0, 1.0)

        ys = np.arange(height, dtype=np.float64)[:, None] * (pair_h / height)
        ys = np.clip(ys, 0, pair_h - 1)
        map_y = np.broadcast_to(ys, (height, len(cols))).copy()
        base_x = np.broadcast_to(src_x[None, :], (height, len(cols)))

        disp = remap_bilinear(pd.stereo.disparity_refined, map_y, base_x, fill=0.0)
        for eye, sign in (("left", +1.0), ("right", -1.0)):
            map_x = base_x + sign * eye_disparity_scale * disp / 2.0
            for c in range(3):
                sampled = remap_bilinear(
                    pair.left_color[:, :, c], map_y, map_x, fill=0.0
                )
                eyes[eye][:, cols, c] += sampled * weights[None, :]
        weight_acc[cols] += weights

    safe = np.maximum(weight_acc, 1e-12)[None, :, None]
    left = eyes["left"] / safe
    right = eyes["right"] / safe
    return PanoramaPair(
        left_eye=np.clip(left, 0.0, 1.0),
        right_eye=np.clip(right, 0.0, 1.0),
        coverage=weight_acc,
    )


def estimated_ops_per_pixel() -> float:
    """Per output pixel: disparity lookup + 2 eyes x 3 channels x 4-tap
    bilinear sampling + blend."""
    return 60.0
