"""B2 — image alignment: pairwise rectification into a common projection.

Adjacent cameras on the ring face different directions; before stereo
matching, both views of a pair are re-projected onto a shared virtual
image plane facing the pair's mid-azimuth. For outward ring cameras with
small vertical FOV this reduces to a per-column horizontal remap:

    x_target  ->  azimuth phi = mid_yaw + atan((x_t - c_t) / f_t)
    x_source  =  c_s + f_s * tan(phi - camera_yaw)

The output footprint is padded (``expansion``) so both re-projections fit,
which is why this stage *grows* the data stream (see
:class:`repro.vr.blocks.RigDataModel`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.rig import CameraRig
from repro.errors import ConfigurationError
from repro.imaging.geometry import remap_bilinear
from repro.imaging.image import as_gray


@dataclass(frozen=True)
class AlignedPair:
    """A rectified stereo pair ready for depth estimation."""

    left_index: int
    right_index: int
    left: np.ndarray  # rectified luma, left camera of the pair
    right: np.ndarray
    left_color: np.ndarray  # rectified reference view (RGB) for stitching
    mid_yaw: float
    focal: float
    baseline: float

    @property
    def shape(self) -> tuple[int, int]:
        return self.left.shape


def _rectify_view(
    image: np.ndarray,
    rig: CameraRig,
    camera_index: int,
    mid_yaw: float,
    out_width: int,
    out_focal: float,
) -> np.ndarray:
    """Re-project one camera's image onto the pair's virtual plane."""
    height = rig.sim_height
    cx_t = (out_width - 1) / 2.0
    cx_s = (rig.sim_width - 1) / 2.0
    xs_t = np.arange(out_width, dtype=np.float64)
    phi = mid_yaw + np.arctan((xs_t - cx_t) / out_focal)
    delta = phi - rig.camera_yaw(camera_index)
    # Clamp to the source FOV; outside samples fall to the fill value.
    xs_s = cx_s + rig.focal * np.tan(np.clip(delta, -np.pi / 2 + 0.02, np.pi / 2 - 0.02))
    map_x = np.broadcast_to(xs_s[None, :], (height, out_width))
    map_y = np.broadcast_to(
        np.arange(height, dtype=np.float64)[:, None], (height, out_width)
    )
    return remap_bilinear(image, map_y, map_x, fill=0.0)


def align_pair(
    frames_rgb: list[np.ndarray],
    rig: CameraRig,
    left_index: int,
    right_index: int,
    expansion: float = 4.0 / 3.0,
) -> AlignedPair:
    """Rectify one adjacent-camera pair into its common projection."""
    if expansion < 1.0:
        raise ConfigurationError(f"expansion must be >= 1, got {expansion}")
    yaw_l = rig.camera_yaw(left_index)
    yaw_r = rig.camera_yaw(right_index)
    # Mid-azimuth on the short arc between the two cameras.
    delta = (yaw_r - yaw_l + np.pi) % (2 * np.pi) - np.pi
    mid_yaw = yaw_l + delta / 2.0

    out_width = int(round(rig.sim_width * expansion))
    out_focal = rig.focal  # same angular resolution as the source cameras

    luma_l = as_gray(frames_rgb[left_index])
    luma_r = as_gray(frames_rgb[right_index])
    left = _rectify_view(luma_l, rig, left_index, mid_yaw, out_width, out_focal)
    right = _rectify_view(luma_r, rig, right_index, mid_yaw, out_width, out_focal)
    color = np.stack(
        [
            _rectify_view(
                frames_rgb[left_index][:, :, c], rig, left_index, mid_yaw,
                out_width, out_focal,
            )
            for c in range(3)
        ],
        axis=-1,
    )
    return AlignedPair(
        left_index=left_index,
        right_index=right_index,
        left=left,
        right=right,
        left_color=color,
        mid_yaw=float(mid_yaw),
        focal=float(out_focal),
        baseline=rig.pair_baseline(),
    )


def align_rig(
    frames_rgb: list[np.ndarray],
    rig: CameraRig,
    expansion: float = 4.0 / 3.0,
) -> list[AlignedPair]:
    """Rectify every adjacent pair of the rig."""
    if len(frames_rgb) != rig.n_cameras:
        raise ConfigurationError(
            f"got {len(frames_rgb)} frames for a {rig.n_cameras}-camera rig"
        )
    return [
        align_pair(frames_rgb, rig, i, j, expansion) for i, j in rig.stereo_pairs()
    ]


def estimated_ops_per_pixel() -> float:
    """Arithmetic per output pixel: bilinear remap (4 taps) x 4 channels
    plus the per-column angle math amortized over rows."""
    return 40.0
