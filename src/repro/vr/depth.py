"""B3 — depth estimation: bilateral-space stereo on every rectified pair.

This is the pipeline's dominant block (70% of compute in Figure 9, the
FPGA-accelerated stage of Figure 10). The functional solve is
:class:`repro.bilateral.BssaStereo`; this module binds it to the rig's
pair geometry and converts disparity to metric depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bilateral.stereo import BssaStereo, StereoResult
from repro.errors import ConfigurationError
from repro.vr.align import AlignedPair


@dataclass(frozen=True)
class PairDepth:
    """Depth output of one pair: stereo result plus metric conversion."""

    pair: AlignedPair
    stereo: StereoResult
    depth_m: np.ndarray  # metric depth of the refined disparity


def disparity_to_depth(
    disparity: np.ndarray, focal_px: float, baseline_m: float, max_depth: float = 50.0
) -> np.ndarray:
    """Triangulate: ``z = f * B / d`` with a far-plane clamp for d -> 0."""
    if focal_px <= 0 or baseline_m <= 0:
        raise ConfigurationError("focal and baseline must be positive")
    d = np.asarray(disparity, dtype=np.float64)
    with np.errstate(divide="ignore"):
        z = focal_px * baseline_m / np.maximum(d, 1e-9)
    return np.clip(z, 0.0, max_depth)


def max_disparity_for(
    pair: AlignedPair, min_depth_m: float = 1.0
) -> int:
    """Search range needed to resolve surfaces down to ``min_depth_m``."""
    if min_depth_m <= 0:
        raise ConfigurationError(f"min_depth must be positive, got {min_depth_m}")
    return max(int(np.ceil(pair.focal * pair.baseline / min_depth_m)), 1)


def compute_pair_depth(
    pair: AlignedPair,
    min_depth_m: float = 1.0,
    sigma_spatial: float = 8.0,
    solver_iters: int = 15,
    smoothness: float = 0.5,
    block_radius: int = 2,
) -> PairDepth:
    """Run BSSA on one rectified pair and triangulate."""
    engine = BssaStereo(
        max_disparity=max_disparity_for(pair, min_depth_m),
        sigma_spatial=sigma_spatial,
        solver_iters=solver_iters,
        smoothness=smoothness,
        block_radius=block_radius,
    )
    stereo = engine.compute(pair.left, pair.right)
    depth = disparity_to_depth(
        stereo.disparity_refined, pair.focal, pair.baseline
    )
    return PairDepth(pair=pair, stereo=stereo, depth_m=depth)


def compute_rig_depth(
    pairs: list[AlignedPair],
    min_depth_m: float = 1.0,
    sigma_spatial: float = 8.0,
    solver_iters: int = 15,
) -> list[PairDepth]:
    """Run B3 over every pair of the rig."""
    if not pairs:
        raise ConfigurationError("no pairs to process")
    return [
        compute_pair_depth(
            pair,
            min_depth_m=min_depth_m,
            sigma_spatial=sigma_spatial,
            solver_iters=solver_iters,
        )
        for pair in pairs
    ]
