"""Assembly of the Figure 10 experiment: pipeline + nine configurations.

Builds the VR pipeline as an :class:`repro.core.InCameraPipeline` with
every block's platform implementations priced by :mod:`.platforms`, and
enumerates the paper's nine configurations: offload after the sensor, B1,
B2, B3 on {CPU, GPU, FPGA}, and the full pipeline with B4 co-located on
B3's platform.

The module also registers the VR rig's throughput-domain workloads in
the shared scenario catalog (:mod:`repro.explore.catalog`): the paper's
25 GbE study, the 400 GbE scaling variant, and an auto-pruned entry for
large-fleet campaigns.
"""

from __future__ import annotations

from repro.core.block import Block, Implementation
from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.explore.catalog import register_scenario, resolve_link
from repro.explore.scenario import Scenario
from repro.hw.fpga import FpgaDesign
from repro.hw.network import ETHERNET_25G, LinkModel
from repro.vr.blocks import RigDataModel
from repro.vr.platforms import (
    B3Workload,
    arm_block_fps,
    b3_cpu_fps,
    b3_fpga_fps,
    b3_gpu_fps,
    b4_fps,
)


def build_vr_pipeline(
    model: RigDataModel | None = None,
    workload: B3Workload | None = None,
    fpga_design: FpgaDesign | None = None,
) -> InCameraPipeline:
    """The 16-camera VR pipeline with all platform options priced in."""
    model = model or RigDataModel()
    workload = workload or B3Workload.from_data_model(model)

    b1 = Block(
        name="B1",
        output_bytes=model.b1_bytes(),
        implementations={"arm": Implementation("arm", fps=arm_block_fps("B1", model).fps)},
    )
    b2 = Block(
        name="B2",
        output_bytes=model.b2_bytes(),
        implementations={"arm": Implementation("arm", fps=arm_block_fps("B2", model).fps)},
    )
    b3 = Block(
        name="B3",
        output_bytes=model.b3_bytes(),
        implementations={
            "cpu": Implementation("cpu", fps=b3_cpu_fps(workload).fps),
            "gpu": Implementation("gpu", fps=b3_gpu_fps(workload).fps),
            "fpga": Implementation(
                "fpga", fps=b3_fpga_fps(workload, design=fpga_design).fps
            ),
        },
    )
    b4 = Block(
        name="B4",
        output_bytes=model.b4_bytes(),
        implementations={
            "cpu": Implementation("cpu", fps=b4_fps("cpu", model).fps),
            "gpu": Implementation("gpu", fps=b4_fps("gpu", model).fps),
            "fpga": Implementation("fpga", fps=b4_fps("fpga", model).fps),
        },
    )
    return InCameraPipeline(
        name="vr-16cam",
        sensor_bytes=model.sensor_bytes(),
        blocks=(b1, b2, b3, b4),
    )


def paper_configurations(
    pipeline: InCameraPipeline,
) -> list[tuple[str, PipelineConfig]]:
    """The nine configurations of Figure 10, in the paper's order."""
    configs: list[tuple[str, PipelineConfig]] = [
        ("S~", PipelineConfig(pipeline, ())),
        ("S B1~", PipelineConfig(pipeline, ("arm",))),
        ("S B1 B2~", PipelineConfig(pipeline, ("arm", "arm"))),
    ]
    for platform in ("cpu", "gpu", "fpga"):
        configs.append(
            (
                f"S B1 B2 B3({platform})~",
                PipelineConfig(pipeline, ("arm", "arm", platform)),
            )
        )
    for platform in ("cpu", "gpu", "fpga"):
        configs.append(
            (
                f"S B1 B2 B3({platform}) B4({platform})~",
                PipelineConfig(pipeline, ("arm", "arm", platform, platform)),
            )
        )
    return configs


@register_scenario(
    "vr-fig10",
    domain="throughput",
    summary="Figure 10: the 16-camera VR rig at 25 GbE, 30 FPS real-time bar",
)
@register_scenario(
    "vr-fig10-400g",
    domain="throughput",
    summary="Figure 10 scaling variant: the VR rig over the hypothetical 400 GbE uplink",
    defaults={"link": "400g"},
)
@register_scenario(
    "vr-fig10-pruned",
    domain="throughput",
    summary="Figure 10 with sound depth + per-config pruning (large-fleet campaigns)",
    defaults={
        "auto_prune": True,
        "auto_prune_configs": True,
        "name": "vr-16cam@25GbE+pruned",
    },
)
def vr_offload_scenario(
    link: str | LinkModel = ETHERNET_25G,
    target_fps: float = 30.0,
    name: str | None = None,
    model: RigDataModel | None = None,
    auto_prune: bool = False,
    auto_prune_configs: bool = False,
) -> Scenario:
    """The VR rig's (cut point, platform) design space as a scenario.

    The paper's Figure 10 question in declarative form: which
    configurations of the 16-camera pipeline clear ``target_fps`` on
    both the compute and the communication axis over ``link``.
    """
    link = resolve_link(link)
    return Scenario(
        name=name or f"vr-16cam@{link.name}",
        pipeline=build_vr_pipeline(model=model),
        link=link,
        domain="throughput",
        target_fps=target_fps,
        auto_prune=auto_prune,
        auto_prune_configs=auto_prune_configs,
    )
