"""Assembly of the Figure 10 experiment: pipeline + nine configurations.

Builds the VR pipeline as an :class:`repro.core.InCameraPipeline` with
every block's platform implementations priced by :mod:`.platforms`, and
enumerates the paper's nine configurations: offload after the sensor, B1,
B2, B3 on {CPU, GPU, FPGA}, and the full pipeline with B4 co-located on
B3's platform.
"""

from __future__ import annotations

from repro.core.block import Block, Implementation
from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.hw.fpga import FpgaDesign
from repro.vr.blocks import RigDataModel
from repro.vr.platforms import (
    B3Workload,
    arm_block_fps,
    b3_cpu_fps,
    b3_fpga_fps,
    b3_gpu_fps,
    b4_fps,
)


def build_vr_pipeline(
    model: RigDataModel | None = None,
    workload: B3Workload | None = None,
    fpga_design: FpgaDesign | None = None,
) -> InCameraPipeline:
    """The 16-camera VR pipeline with all platform options priced in."""
    model = model or RigDataModel()
    workload = workload or B3Workload.from_data_model(model)

    b1 = Block(
        name="B1",
        output_bytes=model.b1_bytes(),
        implementations={"arm": Implementation("arm", fps=arm_block_fps("B1", model).fps)},
    )
    b2 = Block(
        name="B2",
        output_bytes=model.b2_bytes(),
        implementations={"arm": Implementation("arm", fps=arm_block_fps("B2", model).fps)},
    )
    b3 = Block(
        name="B3",
        output_bytes=model.b3_bytes(),
        implementations={
            "cpu": Implementation("cpu", fps=b3_cpu_fps(workload).fps),
            "gpu": Implementation("gpu", fps=b3_gpu_fps(workload).fps),
            "fpga": Implementation(
                "fpga", fps=b3_fpga_fps(workload, design=fpga_design).fps
            ),
        },
    )
    b4 = Block(
        name="B4",
        output_bytes=model.b4_bytes(),
        implementations={
            "cpu": Implementation("cpu", fps=b4_fps("cpu", model).fps),
            "gpu": Implementation("gpu", fps=b4_fps("gpu", model).fps),
            "fpga": Implementation("fpga", fps=b4_fps("fpga", model).fps),
        },
    )
    return InCameraPipeline(
        name="vr-16cam",
        sensor_bytes=model.sensor_bytes(),
        blocks=(b1, b2, b3, b4),
    )


def paper_configurations(
    pipeline: InCameraPipeline,
) -> list[tuple[str, PipelineConfig]]:
    """The nine configurations of Figure 10, in the paper's order."""
    configs: list[tuple[str, PipelineConfig]] = [
        ("S~", PipelineConfig(pipeline, ())),
        ("S B1~", PipelineConfig(pipeline, ("arm",))),
        ("S B1 B2~", PipelineConfig(pipeline, ("arm", "arm"))),
    ]
    for platform in ("cpu", "gpu", "fpga"):
        configs.append(
            (
                f"S B1 B2 B3({platform})~",
                PipelineConfig(pipeline, ("arm", "arm", platform)),
            )
        )
    for platform in ("cpu", "gpu", "fpga"):
        configs.append(
            (
                f"S B1 B2 B3({platform}) B4({platform})~",
                PipelineConfig(pipeline, ("arm", "arm", platform, platform)),
            )
        )
    return configs
