"""B1 — pre-processing: demosaic, vignette correction, white balance.

The ISP front end every camera feed passes through before geometric
processing. Note the data-size consequence modeled in
:mod:`repro.vr.blocks`: this stage *expands* the stream (1 Bayer sample
per pixel in, 3 color samples per pixel out).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.rig import RigFrameSet
from repro.errors import ImageError
from repro.imaging.bayer import demosaic_bilinear
from repro.imaging.image import clip01


def vignette_profile(height: int, width: int, strength: float = 0.3) -> np.ndarray:
    """cos^4-law lens falloff map (1.0 at center, darker at corners)."""
    if not 0.0 <= strength < 1.0:
        raise ImageError(f"strength must be in [0, 1), got {strength}")
    ys = (np.arange(height) - (height - 1) / 2.0) / max(height / 2.0, 1)
    xs = (np.arange(width) - (width - 1) / 2.0) / max(width / 2.0, 1)
    r2 = ys[:, None] ** 2 + xs[None, :] ** 2
    falloff = 1.0 - strength * np.clip(r2 / 2.0, 0.0, 1.0) ** 2
    return falloff


def preprocess_frame(
    raw: np.ndarray,
    vignette_strength: float = 0.0,
    white_balance: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> np.ndarray:
    """Demosaic one Bayer frame, undo vignetting, apply white balance.

    Returns an (H, W, 3) RGB image in [0, 1].
    """
    rgb = demosaic_bilinear(raw)
    if vignette_strength > 0:
        profile = vignette_profile(*raw.shape, strength=vignette_strength)
        rgb = rgb / profile[:, :, None]
    gains = np.asarray(white_balance, dtype=np.float64)
    if gains.shape != (3,) or gains.min() <= 0:
        raise ImageError("white_balance must be three positive gains")
    return clip01(rgb * gains[None, None, :])


def preprocess_rig(
    frames: RigFrameSet,
    vignette_strength: float = 0.0,
) -> list[np.ndarray]:
    """Run B1 over every camera of a rig capture."""
    return [
        preprocess_frame(raw, vignette_strength=vignette_strength)
        for raw in frames.raw
    ]


def estimated_ops_per_pixel() -> float:
    """Arithmetic per output pixel for the throughput models.

    Bilinear demosaic: ~9 MACs over the 3x3 neighborhood per missing
    channel (x2 channels) + vignette divide + 3 WB multiplies.
    """
    return 24.0
