"""Attentional cascade: training and window-level evaluation.

The cascade is the computational structure that makes Viola-Jones cheap on
non-faces (Figure 4b of the paper): early stages have very few features and
reject most windows; windows surviving every stage are detections. Stage
thresholds are tuned to a per-stage true-positive-rate target, and each
stage trains against the *false positives of the cascade so far*
(bootstrapping), exactly as in the original algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import TrainingError
from repro.facedet.adaboost import DecisionStump, adaboost_train, boosted_score
from repro.facedet.features import (
    HaarFeature,
    evaluate_features,
    window_stds,
    windows_to_integrals,
)


@dataclass(frozen=True)
class CascadeStage:
    """One boosted stage plus its tuned decision threshold."""

    stumps: tuple[DecisionStump, ...]
    threshold: float

    @property
    def n_features(self) -> int:
        return len(self.stumps)

    def scores(self, values: np.ndarray) -> np.ndarray:
        """Boosted scores for a (n_windows, n_pool_features) value matrix."""
        return boosted_score(list(self.stumps), values)

    def passes(self, values: np.ndarray) -> np.ndarray:
        """Boolean pass/fail per window."""
        return self.scores(values) >= self.threshold


@dataclass(frozen=True)
class CascadeClassifier:
    """An ordered sequence of stages over a shared feature pool."""

    features: tuple[HaarFeature, ...]
    stages: tuple[CascadeStage, ...]
    window: int

    def __post_init__(self) -> None:
        if not self.stages:
            raise TrainingError("cascade must have at least one stage")

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def features_per_stage(self) -> tuple[int, ...]:
        return tuple(stage.n_features for stage in self.stages)

    def used_feature_indices(self) -> list[int]:
        """Indices of pool features actually referenced by some stump."""
        used = {stump.feature_index for stage in self.stages for stump in stage.stumps}
        return sorted(used)

    # ------------------------------------------------------------------
    def classify_windows(
        self, windows: np.ndarray, return_stage_counts: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Run the full cascade on a stack of base-size windows.

        Parameters
        ----------
        windows:
            (n, window, window) grayscale stack.
        return_stage_counts:
            If true, also return how many stages each window survived —
            the statistic behind the accelerator's expected-work model.

        Returns
        -------
        Boolean detections (and optionally per-window stage counts).
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3 or windows.shape[1:] != (self.window, self.window):
            raise TrainingError(
                f"expected (n, {self.window}, {self.window}) windows, got {windows.shape}"
            )
        integrals = windows_to_integrals(windows)
        stds = window_stds(windows)
        n = windows.shape[0]
        alive = np.ones(n, dtype=bool)
        survived = np.zeros(n, dtype=np.int64)
        for stage in self.stages:
            if not alive.any():
                break
            idx = np.flatnonzero(alive)
            needed = [self.features[s.feature_index] for s in stage.stumps]
            # Evaluate only this stage's features on the surviving windows,
            # then scatter them into pool-indexed columns for scoring.
            values_local = evaluate_features(needed, integrals[idx], stds[idx])
            values = np.zeros((len(idx), len(self.features)), dtype=np.float64)
            for col, stump in enumerate(stage.stumps):
                values[:, stump.feature_index] = values_local[:, col]
            passed = stage.passes(values)
            survived[idx] += passed.astype(np.int64)
            alive[idx] = passed
        if return_stage_counts:
            return alive, survived
        return alive


def train_cascade(
    pos_windows: np.ndarray,
    neg_windows: np.ndarray,
    features: list[HaarFeature],
    stage_sizes: tuple[int, ...] = (3, 6, 12, 24),
    min_stage_tpr: float = 0.995,
    neg_factory: Callable[[int], np.ndarray] | None = None,
    min_negatives_per_stage: int = 50,
) -> CascadeClassifier:
    """Train an attentional cascade with negative bootstrapping.

    Parameters
    ----------
    pos_windows, neg_windows:
        Stacks of base-size grayscale windows.
    features:
        The Haar feature pool stumps may select from.
    stage_sizes:
        Number of boosted features per stage, front-to-back — the classic
        few-then-many shape (paper Figure 4b shows 3/15/53/...).
    min_stage_tpr:
        Each stage's threshold is lowered until at least this fraction of
        positives pass (detection rate is preserved multiplicatively).
    neg_factory:
        Optional callable mining fresh negatives, invoked when the negatives
        surviving the cascade so far run low; candidates it returns are
        filtered through the current cascade before use.
    min_negatives_per_stage:
        Stop adding stages early if fewer survivors than this remain and no
        factory can replenish them (the cascade has effectively converged).

    Returns
    -------
    CascadeClassifier
    """
    pos_windows = np.asarray(pos_windows, dtype=np.float64)
    neg_windows = np.asarray(neg_windows, dtype=np.float64)
    if pos_windows.ndim != 3 or neg_windows.ndim != 3:
        raise TrainingError("windows must be (n, H, W) stacks")
    if len(pos_windows) < 10:
        raise TrainingError("need at least 10 positive windows")
    if not 0.5 < min_stage_tpr <= 1.0:
        raise TrainingError(f"min_stage_tpr must be in (0.5, 1], got {min_stage_tpr}")
    window = pos_windows.shape[1]

    pos_integrals = windows_to_integrals(pos_windows)
    pos_stds = window_stds(pos_windows)
    pos_values = evaluate_features(features, pos_integrals, pos_stds)

    current_negs = neg_windows
    stages: list[CascadeStage] = []

    for size in stage_sizes:
        if len(current_negs) < min_negatives_per_stage and neg_factory is not None:
            current_negs = _replenish_negatives(
                current_negs, neg_factory, stages, features, window,
                target=max(min_negatives_per_stage * 4, 200),
            )
        if len(current_negs) < 2:
            break  # nothing left to reject: cascade converged

        neg_integrals = windows_to_integrals(current_negs)
        neg_stds = window_stds(current_negs)
        neg_values = evaluate_features(features, neg_integrals, neg_stds)

        values = np.vstack([pos_values, neg_values])
        labels = np.concatenate([np.ones(len(pos_values)), np.zeros(len(neg_values))])
        stumps = adaboost_train(values, labels, n_rounds=size)

        scores_pos = boosted_score(stumps, pos_values)
        # Threshold at the TPR target: the (1 - tpr) quantile of positives.
        threshold = float(np.quantile(scores_pos, 1.0 - min_stage_tpr))
        stage = CascadeStage(stumps=tuple(stumps), threshold=threshold)
        stages.append(stage)

        # Bootstrap: keep only negatives this stage still accepts.
        passed = stage.passes(neg_values)
        current_negs = current_negs[passed]

    if not stages:
        raise TrainingError("no stage could be trained (no negatives?)")
    return CascadeClassifier(features=tuple(features), stages=tuple(stages), window=window)


def _replenish_negatives(
    current: np.ndarray,
    factory: Callable[[int], np.ndarray],
    stages: list[CascadeStage],
    features: list[HaarFeature],
    window: int,
    target: int,
    max_batches: int = 10,
) -> np.ndarray:
    """Mine negatives that fool the cascade built so far."""
    collected = [current] if len(current) else []
    total = len(current)
    partial = CascadeClassifier(
        features=tuple(features), stages=tuple(stages), window=window
    ) if stages else None
    for attempt in range(max_batches):
        if total >= target:
            break
        # Later attempts request more candidates: the deeper the cascade,
        # the rarer the crops that still fool it.
        batch = np.asarray(factory(target * (1 + attempt)), dtype=np.float64)
        if batch.ndim != 3 or batch.shape[1] != window:
            raise TrainingError("neg_factory must return (n, window, window)")
        if partial is not None:
            keep = partial.classify_windows(batch)
            batch = batch[keep]
        if len(batch):
            collected.append(batch)
            total += len(batch)
    if not collected:
        return np.zeros((0, window, window))
    return np.vstack(collected)
