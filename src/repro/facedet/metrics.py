"""Detection scoring: IoU matching and precision/recall/F1.

Figure 4(c) reports *relative* accuracy (each metric normalized to the best
configuration in its sweep); :func:`relative_scores` implements that
normalization so the benchmark prints the same units as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.facedet.detector import Detection


@dataclass(frozen=True)
class DetectionScore:
    """Counts and derived detection metrics for a set of scenes."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def __add__(self, other: "DetectionScore") -> "DetectionScore":
        return DetectionScore(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
        )


def _box_iou(det: Detection, box: tuple[int, int, int]) -> float:
    by, bx, bs = box
    ay1, ax1 = det.y0 + det.side, det.x0 + det.side
    by1, bx1 = by + bs, bx + bs
    ih = max(0, min(ay1, by1) - max(det.y0, by))
    iw = max(0, min(ax1, bx1) - max(det.x0, bx))
    inter = ih * iw
    union = det.side**2 + bs**2 - inter
    return inter / union if union > 0 else 0.0


def match_detections(
    detections: list[Detection],
    truth_boxes: list[tuple[int, int, int]],
    iou_threshold: float = 0.4,
) -> DetectionScore:
    """Greedy best-first matching of detections to ground-truth boxes.

    Each truth box can satisfy at most one detection. Unmatched detections
    are false positives, unmatched boxes false negatives.
    """
    if not 0.0 < iou_threshold <= 1.0:
        raise ConfigurationError(f"iou_threshold must be in (0,1], got {iou_threshold}")
    unmatched = list(range(len(truth_boxes)))
    tp = 0
    fp = 0
    for det in sorted(detections, key=lambda d: -d.score):
        best_j = -1
        best_iou = iou_threshold
        for j in unmatched:
            iou = _box_iou(det, truth_boxes[j])
            if iou >= best_iou:
                best_iou = iou
                best_j = j
        if best_j >= 0:
            tp += 1
            unmatched.remove(best_j)
        else:
            fp += 1
    return DetectionScore(
        true_positives=tp, false_positives=fp, false_negatives=len(unmatched)
    )


def score_detections(
    per_scene: list[tuple[list[Detection], list[tuple[int, int, int]]]],
    iou_threshold: float = 0.4,
) -> DetectionScore:
    """Aggregate matching across scenes."""
    total = DetectionScore(0, 0, 0)
    for detections, boxes in per_scene:
        total = total + match_detections(detections, boxes, iou_threshold)
    return total


def relative_scores(scores: list[DetectionScore]) -> dict[str, np.ndarray]:
    """Normalize each metric to its maximum across a sweep (Fig. 4c units).

    Returns arrays aligned with ``scores`` for keys ``f1``, ``precision``
    and ``recall``; a sweep whose best value is 0 normalizes to all zeros.
    """
    out: dict[str, np.ndarray] = {}
    for name in ("f1", "precision", "recall"):
        vals = np.array([getattr(s, name) for s in scores], dtype=np.float64)
        peak = vals.max()
        out[name] = vals / peak if peak > 0 else vals
    return out
