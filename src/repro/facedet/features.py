"""Haar-like rectangular features over integral images.

A feature is a weighted sum of rectangle *means* within the detection
window. Using means (rather than raw sums) makes the feature value invariant
to window scale, so the same trained feature evaluates at any window size by
scaling its rectangles — this is what lets the sliding-window detector reuse
one cascade across the whole image pyramid.

Feature kinds (the classic VJ set):

* ``edge_h`` / ``edge_v`` — two abutting rectangles, dark/bright split;
* ``line_h`` / ``line_v`` — three rectangles, bright-dark-bright;
* ``quad`` — four rectangles in a checker layout (diagonal structure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.rng import make_rng
from repro.errors import ConfigurationError

#: Minimum edge of a feature rectangle in the base window, pixels.
_MIN_RECT = 2


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle in base-window coordinates with a weight."""

    y0: int
    x0: int
    y1: int
    x1: int
    weight: float

    def __post_init__(self) -> None:
        if not (self.y0 < self.y1 and self.x0 < self.x1):
            raise ConfigurationError(f"degenerate rect {self}")

    @property
    def area(self) -> int:
        return (self.y1 - self.y0) * (self.x1 - self.x0)


@dataclass(frozen=True)
class HaarFeature:
    """A Haar-like feature: weighted sum of rectangle means.

    ``window`` is the side of the base window the coordinates refer to.
    """

    rects: tuple[Rect, ...]
    window: int
    kind: str

    def __post_init__(self) -> None:
        if not self.rects:
            raise ConfigurationError("feature needs at least one rect")
        for rect in self.rects:
            if rect.y1 > self.window or rect.x1 > self.window:
                raise ConfigurationError(f"rect {rect} exceeds window {self.window}")

    def scaled_rects(self, scale: float) -> tuple[tuple[int, int, int, int, float], ...]:
        """Integer rectangle coordinates at ``scale`` x the base window.

        Rounding can slightly unbalance rectangle areas; evaluation divides
        by each rectangle's *actual* scaled area, so the mean-based feature
        stays consistent.
        """
        out = []
        for rect in self.rects:
            y0 = int(round(rect.y0 * scale))
            x0 = int(round(rect.x0 * scale))
            y1 = max(int(round(rect.y1 * scale)), y0 + 1)
            x1 = max(int(round(rect.x1 * scale)), x0 + 1)
            out.append((y0, x0, y1, x1, rect.weight))
        return tuple(out)


def _two_rect_h(y0: int, x0: int, h: int, w: int, window: int) -> HaarFeature:
    """Left-bright / right-dark vertical edge feature."""
    mid = x0 + w // 2
    return HaarFeature(
        rects=(
            Rect(y0, x0, y0 + h, mid, +1.0),
            Rect(y0, mid, y0 + h, x0 + w, -1.0),
        ),
        window=window,
        kind="edge_h",
    )


def _two_rect_v(y0: int, x0: int, h: int, w: int, window: int) -> HaarFeature:
    """Top-bright / bottom-dark horizontal edge feature."""
    mid = y0 + h // 2
    return HaarFeature(
        rects=(
            Rect(y0, x0, mid, x0 + w, +1.0),
            Rect(mid, x0, y0 + h, x0 + w, -1.0),
        ),
        window=window,
        kind="edge_v",
    )


def _three_rect_h(y0: int, x0: int, h: int, w: int, window: int) -> HaarFeature:
    """Bright-dark-bright vertical line feature (eyes flanking the nose)."""
    third = w // 3
    return HaarFeature(
        rects=(
            Rect(y0, x0, y0 + h, x0 + third, +1.0),
            Rect(y0, x0 + third, y0 + h, x0 + 2 * third, -2.0),
            Rect(y0, x0 + 2 * third, y0 + h, x0 + 3 * third, +1.0),
        ),
        window=window,
        kind="line_h",
    )


def _three_rect_v(y0: int, x0: int, h: int, w: int, window: int) -> HaarFeature:
    """Bright-dark-bright horizontal band feature (the eye band)."""
    third = h // 3
    return HaarFeature(
        rects=(
            Rect(y0, x0, y0 + third, x0 + w, +1.0),
            Rect(y0 + third, x0, y0 + 2 * third, x0 + w, -2.0),
            Rect(y0 + 2 * third, x0, y0 + 3 * third, x0 + w, +1.0),
        ),
        window=window,
        kind="line_v",
    )


def _four_rect(y0: int, x0: int, h: int, w: int, window: int) -> HaarFeature:
    """Checkerboard feature capturing diagonal contrast."""
    my = y0 + h // 2
    mx = x0 + w // 2
    return HaarFeature(
        rects=(
            Rect(y0, x0, my, mx, +1.0),
            Rect(y0, mx, my, x0 + w, -1.0),
            Rect(my, x0, y0 + h, mx, -1.0),
            Rect(my, mx, y0 + h, x0 + w, +1.0),
        ),
        window=window,
        kind="quad",
    )


_BUILDERS = {
    "edge_h": (_two_rect_h, 2, 1),  # builder, min w units, min h units
    "edge_v": (_two_rect_v, 1, 2),
    "line_h": (_three_rect_h, 3, 1),
    "line_v": (_three_rect_v, 1, 3),
    "quad": (_four_rect, 2, 2),
}


def generate_feature_pool(
    window: int = 20,
    max_features: int = 2500,
    seed: int | np.random.Generator | None = 0,
    kinds: tuple[str, ...] = ("edge_h", "edge_v", "line_h", "line_v", "quad"),
) -> list[HaarFeature]:
    """Sample a diverse pool of Haar features over the base window.

    The exhaustive VJ pool has ~160k features for a 24x24 window; training
    needs only a representative subsample. Sampling is uniform over kind,
    position and size, deduplicated, deterministic under ``seed``.
    """
    if window < 8:
        raise ConfigurationError(f"window must be >= 8, got {window}")
    unknown = set(kinds) - set(_BUILDERS)
    if unknown:
        raise ConfigurationError(f"unknown feature kinds: {sorted(unknown)}")
    rng = make_rng(seed)
    pool: list[HaarFeature] = []
    seen: set[tuple] = set()
    attempts = 0
    max_attempts = max_features * 50
    while len(pool) < max_features and attempts < max_attempts:
        attempts += 1
        kind = kinds[int(rng.integers(0, len(kinds)))]
        builder, wx_units, hy_units = _BUILDERS[kind]
        w = int(rng.integers(_MIN_RECT * wx_units, window + 1))
        h = int(rng.integers(_MIN_RECT * hy_units, window + 1))
        w -= w % wx_units  # keep sub-rectangles integral
        h -= h % hy_units
        if w < _MIN_RECT * wx_units or h < _MIN_RECT * hy_units:
            continue
        y0 = int(rng.integers(0, window - h + 1))
        x0 = int(rng.integers(0, window - w + 1))
        key = (kind, y0, x0, h, w)
        if key in seen:
            continue
        seen.add(key)
        pool.append(builder(y0, x0, h, w, window))
    return pool


# ---------------------------------------------------------------------------
# Batch evaluation on stacks of windows (training path)
# ---------------------------------------------------------------------------
def windows_to_integrals(windows: np.ndarray) -> np.ndarray:
    """Integral images for a stack of windows, shape (n, H+1, W+1)."""
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 3:
        raise ConfigurationError(f"expected (n, H, W) windows, got {windows.shape}")
    n, height, width = windows.shape
    out = np.zeros((n, height + 1, width + 1), dtype=np.float64)
    out[:, 1:, 1:] = windows.cumsum(axis=1).cumsum(axis=2)
    return out


def window_stds(windows: np.ndarray) -> np.ndarray:
    """Per-window standard deviation (lighting normalization factor)."""
    windows = np.asarray(windows, dtype=np.float64)
    return windows.reshape(windows.shape[0], -1).std(axis=1)


def evaluate_features(
    features: list[HaarFeature],
    integrals: np.ndarray,
    stds: np.ndarray | None = None,
) -> np.ndarray:
    """Evaluate every feature on every window.

    Parameters
    ----------
    features:
        Feature list (all with the same base window as the integrals).
    integrals:
        Stack from :func:`windows_to_integrals`, shape (n, H+1, W+1).
    stds:
        Optional per-window stds; if given, feature values are divided by
        ``max(std, eps)`` (variance normalization).

    Returns
    -------
    np.ndarray
        Matrix of shape (n_windows, n_features).
    """
    n = integrals.shape[0]
    values = np.zeros((n, len(features)), dtype=np.float64)
    for j, feature in enumerate(features):
        acc = np.zeros(n, dtype=np.float64)
        for rect in feature.rects:
            sums = (
                integrals[:, rect.y1, rect.x1]
                - integrals[:, rect.y0, rect.x1]
                - integrals[:, rect.y1, rect.x0]
                + integrals[:, rect.y0, rect.x0]
            )
            acc += rect.weight * sums / rect.area
        values[:, j] = acc
    if stds is not None:
        values /= np.maximum(stds, 1e-3)[:, None]
    return values
