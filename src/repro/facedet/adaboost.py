"""Decision-stump AdaBoost — the Viola-Jones stage learner.

Each weak learner is a threshold on one Haar feature. Training follows the
discrete AdaBoost of the original paper: at every round, pick the
(feature, threshold, polarity) with minimum weighted error, reweight, and
accumulate the stump with voting weight ``alpha = log((1 - err) / err)``.

The threshold search is fully vectorized: samples are argsorted per feature
once, and each round computes every possible threshold's weighted error
with two cumulative sums.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError


@dataclass(frozen=True)
class DecisionStump:
    """Weak classifier: ``polarity * value < polarity * threshold`` => face.

    ``alpha`` is the AdaBoost voting weight; ``feature_index`` refers into
    the feature pool the stump was trained against.
    """

    feature_index: int
    threshold: float
    polarity: int  # +1 or -1
    alpha: float

    def predict(self, values: np.ndarray) -> np.ndarray:
        """Binary {0,1} predictions for a column of feature values."""
        return (self.polarity * values < self.polarity * self.threshold).astype(np.float64)


def _best_stump(
    values: np.ndarray,
    order: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
) -> tuple[int, float, int, float]:
    """Find the minimum-weighted-error stump across all features.

    Parameters
    ----------
    values:
        (n_samples, n_features) feature matrix.
    order:
        Precomputed argsort of ``values`` along axis 0.
    labels:
        {0, 1} labels.
    weights:
        Current sample weights (sum to 1).

    Returns
    -------
    (feature_index, threshold, polarity, error)

    Notes
    -----
    For each feature, scanning thresholds in sorted order: classifying
    everything *below* the threshold as positive has weighted error
    ``S_plus_above + S_minus_below``; cumulative sums give both terms for
    every cut point at once. The opposite polarity is the complement.
    """
    n_samples, n_features = values.shape
    sorted_labels = labels[order]  # (n, f)
    sorted_weights = weights[order]
    w_pos = np.where(sorted_labels > 0.5, sorted_weights, 0.0)
    w_neg = sorted_weights - w_pos

    total_pos = w_pos.sum(axis=0)  # identical across features, kept general
    # Below-cut cumulative masses, including the current element.
    cum_pos = np.cumsum(w_pos, axis=0)
    cum_neg = np.cumsum(w_neg, axis=0)

    # Polarity +1: predict positive when value < threshold.
    # Error(cut k) = negatives below + positives above.
    err_plus = cum_neg + (total_pos[None, :] - cum_pos)
    err_minus = 1.0 - err_plus  # opposite polarity flips every decision

    best_plus = np.argmin(err_plus, axis=0)
    best_minus = np.argmin(err_minus, axis=0)
    min_plus = err_plus[best_plus, np.arange(n_features)]
    min_minus = err_minus[best_minus, np.arange(n_features)]

    use_minus = min_minus < min_plus
    per_feature_err = np.where(use_minus, min_minus, min_plus)
    feature = int(np.argmin(per_feature_err))
    error = float(per_feature_err[feature])
    polarity = -1 if use_minus[feature] else 1
    cut = int(best_minus[feature] if use_minus[feature] else best_plus[feature])

    # Threshold halfway between the cut sample and the next one.
    col = values[order[:, feature], feature]
    if cut + 1 < n_samples:
        threshold = float((col[cut] + col[cut + 1]) / 2.0)
    else:
        threshold = float(col[cut] + 1e-9)
    return feature, threshold, polarity, error


def adaboost_train(
    values: np.ndarray,
    labels: np.ndarray,
    n_rounds: int,
    initial_weights: np.ndarray | None = None,
) -> list[DecisionStump]:
    """Train ``n_rounds`` boosted stumps on a precomputed feature matrix.

    Parameters
    ----------
    values:
        (n_samples, n_features) feature values.
    labels:
        {0, 1} array of length n_samples.
    n_rounds:
        Number of weak learners to fit.
    initial_weights:
        Optional starting weights (default: VJ's class-balanced init).

    Raises
    ------
    TrainingError
        On degenerate inputs (single class, shape mismatch, ...).
    """
    values = np.asarray(values, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if values.ndim != 2:
        raise TrainingError(f"values must be 2-D, got {values.shape}")
    if labels.shape != (values.shape[0],):
        raise TrainingError("labels must align with the rows of values")
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise TrainingError("training set must contain both classes")
    if n_rounds < 1:
        raise TrainingError(f"n_rounds must be >= 1, got {n_rounds}")

    if initial_weights is None:
        weights = np.where(labels > 0.5, 0.5 / n_pos, 0.5 / n_neg)
    else:
        weights = np.asarray(initial_weights, dtype=np.float64).copy()
        if weights.shape != labels.shape or weights.min() < 0:
            raise TrainingError("initial_weights must be non-negative, aligned")
        weights = weights / weights.sum()

    order = np.argsort(values, axis=0, kind="stable")
    stumps: list[DecisionStump] = []
    for _ in range(n_rounds):
        feature, threshold, polarity, error = _best_stump(values, order, labels, weights)
        error = min(max(error, 1e-10), 1 - 1e-10)
        beta = error / (1.0 - error)
        alpha = float(np.log(1.0 / beta))
        stump = DecisionStump(feature, threshold, polarity, alpha)
        stumps.append(stump)

        predictions = stump.predict(values[:, feature])
        correct = predictions == labels
        # Down-weight samples the stump got right.
        weights = np.where(correct, weights * beta, weights)
        total = weights.sum()
        if total <= 0:
            break  # perfectly separated; later rounds add nothing
        weights = weights / total
    return stumps


def boosted_score(
    stumps: list[DecisionStump], values: np.ndarray
) -> np.ndarray:
    """Weighted vote of a stump ensemble on a feature matrix.

    Returns the score ``sum(alpha_t * h_t(x))``; the conventional decision
    threshold is ``0.5 * sum(alpha_t)``.
    """
    if values.ndim != 2:
        raise TrainingError(f"values must be 2-D, got {values.shape}")
    score = np.zeros(values.shape[0], dtype=np.float64)
    for stump in stumps:
        score += stump.alpha * stump.predict(values[:, stump.feature_index])
    return score
