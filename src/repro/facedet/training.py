"""High-level cascade training recipes shared by tests and benchmarks.

The key practical ingredient (as in the original Viola-Jones pipeline) is
*scene-crop bootstrapping*: negatives are mined from rendered face-free
scenes at random positions and scales, so the cascade learns to reject the
actual background statistics the sliding-window detector will encounter —
not just isolated texture patches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.faces import FaceGenerator
from repro.datasets.rng import make_rng
from repro.errors import TrainingError
from repro.facedet.cascade import CascadeClassifier, train_cascade
from repro.facedet.features import HaarFeature, generate_feature_pool
from repro.imaging.resize import resize_bilinear


@dataclass(frozen=True)
class TrainedDetectorBundle:
    """A trained cascade plus the generator/identities used to train it."""

    cascade: CascadeClassifier
    generator: FaceGenerator
    feature_pool: tuple[HaarFeature, ...]


def scene_crop_negatives(
    generator: FaceGenerator,
    count: int,
    seed: int | np.random.Generator | None = 0,
    scene_shape: tuple[int, int] = (120, 160),
    crop_range: tuple[int, int] = (20, 64),
) -> np.ndarray:
    """Mine ``count`` negative windows from face-free scenes.

    Crops are squares of random side in ``crop_range`` resized to the
    generator's base window — the same geometry the detector scans.
    """
    if count < 1:
        raise TrainingError(f"count must be >= 1, got {count}")
    rng = make_rng(seed)
    height, width = scene_shape
    crops: list[np.ndarray] = []
    crops_per_scene = 24
    while len(crops) < count:
        scene = generator.render_scene(height, width, face_sizes=[])
        for _ in range(crops_per_scene):
            side = int(rng.integers(crop_range[0], min(crop_range[1], height, width) + 1))
            y0 = int(rng.integers(0, height - side + 1))
            x0 = int(rng.integers(0, width - side + 1))
            crop = scene.image[y0 : y0 + side, x0 : x0 + side]
            crops.append(resize_bilinear(crop, generator.window, generator.window))
            if len(crops) >= count:
                break
    return np.stack(crops)


def train_reference_cascade(
    seed: int = 0,
    n_pos: int = 400,
    n_neg: int = 800,
    pool_size: int = 1200,
    stage_sizes: tuple[int, ...] = (3, 6, 12, 25),
    difficulty: float = 1.0,
    min_stage_tpr: float = 0.995,
) -> TrainedDetectorBundle:
    """Train the reproduction's reference detector.

    Negatives mix isolated distractor windows with scene crops, and stage
    bootstrapping mines additional scene crops that fool the cascade so
    far. Deterministic under ``seed``.
    """
    generator = FaceGenerator(seed=seed)
    mining_rng = make_rng(seed + 1)

    identities = generator.sample_identities(max(n_pos // 4, 4))
    pos, _ = generator.detection_dataset(n_pos, 0, difficulty=difficulty,
                                         identities=identities)
    neg_isolated = np.stack([generator.render_nonface() for _ in range(n_neg // 2)])
    neg_scene = scene_crop_negatives(generator, n_neg - len(neg_isolated),
                                     seed=mining_rng)
    negatives = np.vstack([neg_isolated, neg_scene])

    pool = generate_feature_pool(window=generator.window,
                                 max_features=pool_size, seed=seed + 2)

    def neg_factory(n: int) -> np.ndarray:
        return scene_crop_negatives(generator, n, seed=mining_rng)

    cascade = train_cascade(
        pos,
        negatives,
        pool,
        stage_sizes=stage_sizes,
        min_stage_tpr=min_stage_tpr,
        neg_factory=neg_factory,
    )
    return TrainedDetectorBundle(
        cascade=cascade, generator=generator, feature_pool=tuple(pool)
    )
