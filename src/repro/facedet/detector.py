"""Sliding-window face detection with the Figure 4(c) parameter knobs.

The detector scans a trained cascade across the image at a pyramid of
window sizes. Its three knobs are exactly the ones the paper sweeps:

* ``scale_factor`` — multiplicative growth of the window between passes
  (1.25 ... 2.0 in Fig. 4c). Larger = fewer scales = cheaper = less
  accurate.
* ``step_size`` (static) — stride in *pixels*, constant across scales
  (4 ... 16 in Fig. 4c). At large windows a fixed stride is relatively
  finer, so cost concentrates at coarse scales.
* ``adaptive_step`` — stride as a *fraction of the window side*
  (0.0 ... 0.4 in Fig. 4c), so the stride grows with the window and the
  number of visited positions per scale stays roughly constant.

Exactly one stepping mode is active at a time. The detector also reports
how many windows it visited and how many cascade stages each survived —
the statistics that drive the hardware cost model in :mod:`repro.vj_hw`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.facedet.cascade import CascadeClassifier
from repro.imaging.image import ensure_gray
from repro.imaging.integral import integral_image, integral_of_squares


@dataclass(frozen=True)
class Detection:
    """A detected square window with the cascade's confidence score."""

    y0: int
    x0: int
    side: int
    score: float

    @property
    def box(self) -> tuple[int, int, int]:
        return (self.y0, self.x0, self.side)


@dataclass
class ScanStats:
    """Work accounting for one detector invocation."""

    windows_visited: int = 0
    windows_accepted: int = 0
    stage_evaluations: int = 0
    feature_evaluations: int = 0
    scales: int = 0
    per_stage_survivors: list[int] = field(default_factory=list)


def _iou(a: Detection, b: Detection) -> float:
    """Intersection-over-union of two square detections."""
    ay1, ax1 = a.y0 + a.side, a.x0 + a.side
    by1, bx1 = b.y0 + b.side, b.x0 + b.side
    ih = max(0, min(ay1, by1) - max(a.y0, b.y0))
    iw = max(0, min(ax1, bx1) - max(a.x0, b.x0))
    inter = ih * iw
    union = a.side**2 + b.side**2 - inter
    return inter / union if union > 0 else 0.0


def non_max_suppression(
    detections: list[Detection], iou_threshold: float = 0.3
) -> list[Detection]:
    """Greedy NMS: keep highest-scoring boxes, drop overlapping ones."""
    if not 0.0 <= iou_threshold <= 1.0:
        raise ConfigurationError(f"iou_threshold must be in [0,1], got {iou_threshold}")
    kept: list[Detection] = []
    for det in sorted(detections, key=lambda d: -d.score):
        if all(_iou(det, other) < iou_threshold for other in kept):
            kept.append(det)
    return kept


class SlidingWindowDetector:
    """Multi-scale cascade detector.

    Parameters
    ----------
    cascade:
        Trained :class:`CascadeClassifier`.
    scale_factor:
        Window growth per scale pass, must be > 1.
    step_size:
        Static stride in pixels (used when ``adaptive_step`` is None).
    adaptive_step:
        Stride as a fraction of the current window side; overrides
        ``step_size`` when set. 0.0 degenerates to a 1-pixel stride.
    min_window, max_window:
        Window-size limits in pixels (defaults: cascade base .. image side).
    iou_threshold:
        NMS overlap threshold applied to raw hits.
    """

    def __init__(
        self,
        cascade: CascadeClassifier,
        scale_factor: float = 1.25,
        step_size: int = 2,
        adaptive_step: float | None = None,
        min_window: int | None = None,
        max_window: int | None = None,
        iou_threshold: float = 0.3,
    ):
        if scale_factor <= 1.0:
            raise ConfigurationError(f"scale_factor must be > 1, got {scale_factor}")
        if adaptive_step is None and step_size < 1:
            raise ConfigurationError(f"step_size must be >= 1, got {step_size}")
        if adaptive_step is not None and not 0.0 <= adaptive_step < 1.0:
            raise ConfigurationError(
                f"adaptive_step must be in [0, 1), got {adaptive_step}"
            )
        self.cascade = cascade
        self.scale_factor = scale_factor
        self.step_size = step_size
        self.adaptive_step = adaptive_step
        self.min_window = min_window or cascade.window
        self.max_window = max_window
        self.iou_threshold = iou_threshold
        # Cache of per-scale rectangle tables: scale -> list per stage of
        # (stump array metadata, rect arrays).
        self._scale_cache: dict[float, list] = {}

    # ------------------------------------------------------------------
    def _stride_for(self, window: int) -> int:
        if self.adaptive_step is not None:
            return max(1, int(round(self.adaptive_step * window)))
        return self.step_size

    def _stage_tables(self, scale: float) -> list:
        """Precompute scaled rects grouped by stage for one scale."""
        if scale in self._scale_cache:
            return self._scale_cache[scale]
        tables = []
        for stage in self.cascade.stages:
            stage_entries = []
            for stump in stage.stumps:
                feature = self.cascade.features[stump.feature_index]
                rects = feature.scaled_rects(scale)
                stage_entries.append((stump, rects))
            tables.append((stage, stage_entries))
        self._scale_cache[scale] = tables
        return tables

    # ------------------------------------------------------------------
    def detect(
        self, image: np.ndarray, return_stats: bool = False
    ) -> list[Detection] | tuple[list[Detection], ScanStats]:
        """Detect faces; optionally return the work statistics."""
        arr = ensure_gray(image)
        height, width = arr.shape
        ii = integral_image(arr)
        ii_sq = integral_of_squares(arr)
        stats = ScanStats()
        raw: list[Detection] = []

        window = self.min_window
        limit = self.max_window or min(height, width)
        while window <= min(limit, height, width):
            scale = window / self.cascade.window
            stride = self._stride_for(window)
            ys = np.arange(0, height - window + 1, stride, dtype=np.intp)
            xs = np.arange(0, width - window + 1, stride, dtype=np.intp)
            if len(ys) == 0 or len(xs) == 0:
                break
            oy, ox = np.meshgrid(ys, xs, indexing="ij")
            oy = oy.ravel()
            ox = ox.ravel()
            stats.scales += 1
            stats.windows_visited += len(oy)
            self._scan_scale(ii, ii_sq, oy, ox, window, scale, raw, stats)
            next_window = int(round(window * self.scale_factor))
            window = max(next_window, window + 1)

        detections = non_max_suppression(raw, self.iou_threshold)
        stats.windows_accepted = len(detections)
        if return_stats:
            return detections, stats
        return detections

    # ------------------------------------------------------------------
    def _scan_scale(
        self,
        ii: np.ndarray,
        ii_sq: np.ndarray,
        oy: np.ndarray,
        ox: np.ndarray,
        window: int,
        scale: float,
        raw: list[Detection],
        stats: ScanStats,
    ) -> None:
        """Run the cascade over all origins of one scale, batched."""
        area = window * window

        def rect_sum(table: np.ndarray, y0: int, x0: int, y1: int, x1: int) -> np.ndarray:
            return (
                table[oy + y1, ox + x1]
                - table[oy + y0, ox + x1]
                - table[oy + y1, ox + x0]
                + table[oy + y0, ox + x0]
            )

        total = rect_sum(ii, 0, 0, window, window)
        total_sq = rect_sum(ii_sq, 0, 0, window, window)
        mean = total / area
        std = np.sqrt(np.maximum(total_sq / area - mean * mean, 0.0))
        std = np.maximum(std, 1e-3)

        alive = np.ones(len(oy), dtype=bool)
        scores = np.zeros(len(oy), dtype=np.float64)
        for stage, entries in self._stage_tables(scale):
            idx = np.flatnonzero(alive)
            if len(idx) == 0:
                return
            stats.stage_evaluations += len(idx)
            stage_score = np.zeros(len(idx), dtype=np.float64)
            sel_y, sel_x, sel_std = oy[idx], ox[idx], std[idx]
            for stump, rects in entries:
                stats.feature_evaluations += len(idx)
                value = np.zeros(len(idx), dtype=np.float64)
                for (y0, x0, y1, x1, weight) in rects:
                    r_area = (y1 - y0) * (x1 - x0)
                    sums = (
                        ii[sel_y + y1, sel_x + x1]
                        - ii[sel_y + y0, sel_x + x1]
                        - ii[sel_y + y1, sel_x + x0]
                        + ii[sel_y + y0, sel_x + x0]
                    )
                    value += weight * sums / r_area
                value /= sel_std
                vote = (stump.polarity * value < stump.polarity * stump.threshold)
                stage_score += stump.alpha * vote
            passed = stage_score >= stage.threshold
            stats.per_stage_survivors.append(int(passed.sum()))
            scores[idx] = stage_score  # last stage's margin becomes the score
            alive[idx] = passed

        for i in np.flatnonzero(alive):
            raw.append(
                Detection(y0=int(oy[i]), x0=int(ox[i]), side=window, score=float(scores[i]))
            )
