"""Viola-Jones face detection: features, boosting, cascade, detector.

This package implements the paper's optional "face detection" pipeline
block (B2 of the face-authentication case study) from scratch:

* :mod:`.features` — Haar-like rectangular features over integral images,
  defined as weighted sums of rectangle *means* so they are scale-invariant
  by construction.
* :mod:`.adaboost` — decision-stump AdaBoost (the VJ stage learner).
* :mod:`.cascade` — attentional cascade training with negative
  bootstrapping, the structure of Figure 4(b).
* :mod:`.detector` — sliding-window detection with the exact knobs swept in
  Figure 4(c): scale factor, static step size, adaptive step size.
* :mod:`.metrics` — precision/recall/F1 against ground-truth boxes.
"""

from repro.facedet.features import HaarFeature, Rect, generate_feature_pool
from repro.facedet.adaboost import DecisionStump, adaboost_train
from repro.facedet.cascade import CascadeClassifier, CascadeStage, train_cascade
from repro.facedet.detector import Detection, SlidingWindowDetector, non_max_suppression
from repro.facedet.metrics import DetectionScore, match_detections, score_detections

__all__ = [
    "HaarFeature",
    "Rect",
    "generate_feature_pool",
    "DecisionStump",
    "adaboost_train",
    "CascadeClassifier",
    "CascadeStage",
    "train_cascade",
    "Detection",
    "SlidingWindowDetector",
    "non_max_suppression",
    "DetectionScore",
    "match_detections",
    "score_detections",
]
