"""Core image containers and conversions.

The library keeps images as plain numpy arrays rather than a wrapper class;
these helpers centralize the shape/dtype contract so every other module can
validate inputs with one call.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError

# ITU-R BT.601 luma coefficients, the classic "perceived brightness" weights.
_LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


def ensure_gray(image: np.ndarray, name: str = "image") -> np.ndarray:
    """Validate that ``image`` is a 2-D float array and return it as float64.

    Parameters
    ----------
    image:
        Candidate grayscale image.
    name:
        Name used in error messages.

    Raises
    ------
    ImageError
        If the array is not two-dimensional or is empty.
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ImageError(f"{name} must be 2-D grayscale, got shape {arr.shape}")
    if arr.size == 0:
        raise ImageError(f"{name} is empty")
    return arr


def ensure_color(image: np.ndarray, name: str = "image") -> np.ndarray:
    """Validate that ``image`` is an (H, W, 3) float array, return float64."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ImageError(f"{name} must be (H, W, 3) RGB, got shape {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ImageError(f"{name} is empty")
    return arr


def as_gray(image: np.ndarray) -> np.ndarray:
    """Convert a color image to grayscale; pass grayscale through.

    Uses BT.601 luma weights, matching what a camera ISP luma path and the
    classic Viola-Jones pipeline operate on.
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim == 2:
        return arr
    arr = ensure_color(arr)
    return arr @ _LUMA_WEIGHTS


def clip01(image: np.ndarray) -> np.ndarray:
    """Clamp an image to the nominal [0, 1] range."""
    return np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)


def normalize(image: np.ndarray) -> np.ndarray:
    """Linearly rescale an image to span [0, 1].

    A constant image maps to all zeros (there is no contrast to preserve).
    """
    arr = np.asarray(image, dtype=np.float64)
    lo = float(arr.min())
    hi = float(arr.max())
    if hi - lo <= 0:
        return np.zeros_like(arr)
    return (arr - lo) / (hi - lo)


def to_uint8(image: np.ndarray) -> np.ndarray:
    """Quantize a [0, 1] image to uint8, rounding to nearest."""
    return np.round(clip01(image) * 255.0).astype(np.uint8)


def pad_reflect(image: np.ndarray, pad: int) -> np.ndarray:
    """Reflect-pad a grayscale image by ``pad`` pixels on every side."""
    if pad < 0:
        raise ImageError(f"pad must be non-negative, got {pad}")
    arr = ensure_gray(image)
    if pad == 0:
        return arr.copy()
    return np.pad(arr, pad, mode="reflect")


def image_energy(image: np.ndarray) -> float:
    """Mean squared intensity — a cheap activity statistic used by tests."""
    arr = np.asarray(image, dtype=np.float64)
    return float(np.mean(arr * arr))
