"""Image quality metrics: MSE, PSNR, SSIM, and MS-SSIM.

Figure 7 of the paper scores depth maps with MS-SSIM (Wang, Simoncelli &
Bovik, Asilomar 2003); this module implements the metric with the standard
5-level weighting so the reproduction's quality axis is directly comparable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.filters import convolve_separable, gaussian_kernel1d
from repro.imaging.image import ensure_gray
from repro.imaging.resize import downsample2x

# Standard MS-SSIM per-scale exponents from the original paper.
MS_SSIM_WEIGHTS = (0.0448, 0.2856, 0.3001, 0.2363, 0.1333)

_K1 = 0.01
_K2 = 0.03


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = ensure_gray(a, "a")
    b = ensure_gray(b, "b")
    if a.shape != b.shape:
        raise ImageError(f"image shapes differ: {a.shape} vs {b.shape}")
    return a, b


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two grayscale images."""
    a, b = _check_pair(a, b)
    diff = a - b
    return float(np.mean(diff * diff))


def psnr(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical images."""
    err = mse(a, b)
    if err == 0:
        return float("inf")
    return float(10.0 * np.log10(data_range * data_range / err))


def _ssim_components(
    a: np.ndarray, b: np.ndarray, sigma: float, data_range: float
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pixel (luminance*contrast*structure, contrast*structure) maps."""
    kernel = gaussian_kernel1d(sigma)

    def smooth(img: np.ndarray) -> np.ndarray:
        return convolve_separable(img, kernel, kernel)

    c1 = (_K1 * data_range) ** 2
    c2 = (_K2 * data_range) ** 2

    mu_a = smooth(a)
    mu_b = smooth(b)
    mu_aa = mu_a * mu_a
    mu_bb = mu_b * mu_b
    mu_ab = mu_a * mu_b
    sigma_aa = smooth(a * a) - mu_aa
    sigma_bb = smooth(b * b) - mu_bb
    sigma_ab = smooth(a * b) - mu_ab

    luminance = (2 * mu_ab + c1) / (mu_aa + mu_bb + c1)
    cs = (2 * sigma_ab + c2) / (sigma_aa + sigma_bb + c2)
    return luminance * cs, cs


def ssim(
    a: np.ndarray, b: np.ndarray, sigma: float = 1.5, data_range: float = 1.0
) -> float:
    """Mean structural similarity (single scale) between two images."""
    a, b = _check_pair(a, b)
    full, _ = _ssim_components(a, b, sigma, data_range)
    return float(np.mean(full))


def ms_ssim(
    a: np.ndarray,
    b: np.ndarray,
    weights: tuple[float, ...] = MS_SSIM_WEIGHTS,
    sigma: float = 1.5,
    data_range: float = 1.0,
) -> float:
    """Multi-scale SSIM with the standard 5-scale weighting.

    The image must support ``len(weights) - 1`` dyadic downsamples; if it is
    too small, the scale list is truncated and the weights renormalized,
    which keeps the metric defined for the small synthetic scenes used in
    unit tests while remaining the standard metric at full resolution.
    """
    a, b = _check_pair(a, b)
    levels = len(weights)
    max_levels = 1
    side = min(a.shape)
    while side >= 8 and max_levels < levels:
        side //= 2
        max_levels += 1
    weights_arr = np.asarray(weights[:max_levels], dtype=np.float64)
    weights_arr = weights_arr / weights_arr.sum()

    value = 1.0
    cur_a, cur_b = a, b
    for level in range(len(weights_arr)):
        full, cs = _ssim_components(cur_a, cur_b, sigma, data_range)
        if level == len(weights_arr) - 1:
            # Coarsest scale uses the full SSIM (with luminance).
            value *= float(np.mean(full)) ** weights_arr[level]
        else:
            value *= max(float(np.mean(cs)), 1e-12) ** weights_arr[level]
            cur_a = downsample2x(cur_a)
            cur_b = downsample2x(cur_b)
    return float(value)
