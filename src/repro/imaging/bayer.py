"""Bayer color-filter-array simulation: mosaic and bilinear demosaic.

The VR rig's sensors produce raw Bayer frames; the pipeline's pre-processing
block (B1) demosaics them. The paper's data-size accounting hinges on this
step *expanding* the data (1 sample/pixel raw -> 3 samples/pixel RGB), so the
substrate implements both directions faithfully.

Layout: RGGB ::

    R G R G ...
    G B G B ...
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import ensure_color, ensure_gray


def bayer_mosaic(rgb: np.ndarray) -> np.ndarray:
    """Sample an RGB image through an RGGB Bayer mosaic.

    Returns a 2-D array the same height/width as the input where each pixel
    holds the single color sample its filter admits.
    """
    arr = ensure_color(rgb, "rgb")
    height, width = arr.shape[:2]
    raw = np.empty((height, width), dtype=np.float64)
    raw[0::2, 0::2] = arr[0::2, 0::2, 0]  # R
    raw[0::2, 1::2] = arr[0::2, 1::2, 1]  # G on red rows
    raw[1::2, 0::2] = arr[1::2, 0::2, 1]  # G on blue rows
    raw[1::2, 1::2] = arr[1::2, 1::2, 2]  # B
    return raw


def _interpolate_channel(samples: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Fill missing samples of one color plane by normalized box filtering.

    ``samples`` holds valid values where ``mask`` is 1 and zeros elsewhere.
    A 3x3 sum of values divided by a 3x3 sum of the mask interpolates every
    missing location from its available neighbors, which is exactly bilinear
    interpolation for the regular Bayer sampling lattices.
    """
    kernel = np.ones((3, 3), dtype=np.float64)
    # Manual same-size correlation via padding keeps this dependency-free.
    padded_vals = np.pad(samples, 1, mode="reflect")
    padded_mask = np.pad(mask, 1, mode="reflect")
    num = np.zeros_like(samples)
    den = np.zeros_like(samples)
    for dy in range(3):
        for dx in range(3):
            weight = kernel[dy, dx]
            num += weight * padded_vals[dy : dy + samples.shape[0], dx : dx + samples.shape[1]]
            den += weight * padded_mask[dy : dy + samples.shape[0], dx : dx + samples.shape[1]]
    den = np.where(den == 0, 1.0, den)
    filled = num / den
    # Keep exact sensor samples where we have them.
    return np.where(mask > 0, samples, filled)


def demosaic_bilinear(raw: np.ndarray) -> np.ndarray:
    """Reconstruct an (H, W, 3) RGB image from an RGGB Bayer frame.

    Bilinear demosaicing: each missing color sample is the average of its
    nearest same-color neighbors. This is what lightweight in-camera ISPs
    (and the paper's B1 block) implement.
    """
    arr = ensure_gray(raw, "raw")
    height, width = arr.shape
    if height < 2 or width < 2:
        raise ImageError(f"Bayer frame must be at least 2x2, got {arr.shape}")

    red_mask = np.zeros((height, width), dtype=np.float64)
    green_mask = np.zeros((height, width), dtype=np.float64)
    blue_mask = np.zeros((height, width), dtype=np.float64)
    red_mask[0::2, 0::2] = 1.0
    green_mask[0::2, 1::2] = 1.0
    green_mask[1::2, 0::2] = 1.0
    blue_mask[1::2, 1::2] = 1.0

    rgb = np.empty((height, width, 3), dtype=np.float64)
    rgb[:, :, 0] = _interpolate_channel(arr * red_mask, red_mask)
    rgb[:, :, 1] = _interpolate_channel(arr * green_mask, green_mask)
    rgb[:, :, 2] = _interpolate_channel(arr * blue_mask, blue_mask)
    return rgb
