"""Integral images (summed-area tables).

The Viola-Jones detector evaluates thousands of rectangular-sum features per
window; the integral image reduces each rectangle sum to four lookups. The
convention here matches the original paper: ``ii`` has one extra row and
column of zeros, so that the sum over rows ``[y0, y1)`` and columns
``[x0, x1)`` is::

    ii[y1, x1] - ii[y0, x1] - ii[y1, x0] + ii[y0, x0]
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import ensure_gray


def integral_image(image: np.ndarray) -> np.ndarray:
    """Compute the (H+1, W+1) summed-area table of a grayscale image."""
    arr = ensure_gray(image)
    ii = np.zeros((arr.shape[0] + 1, arr.shape[1] + 1), dtype=np.float64)
    ii[1:, 1:] = arr.cumsum(axis=0).cumsum(axis=1)
    return ii


def integral_of_squares(image: np.ndarray) -> np.ndarray:
    """Summed-area table of squared intensities (for window variance)."""
    arr = ensure_gray(image)
    return integral_image(arr * arr)


def window_sum(ii: np.ndarray, y0: int, x0: int, y1: int, x1: int) -> float:
    """Sum over the half-open window ``[y0, y1) x [x0, x1)``.

    Parameters
    ----------
    ii:
        An integral image produced by :func:`integral_image`.
    y0, x0, y1, x1:
        Window bounds; must satisfy ``0 <= y0 <= y1 < ii.shape[0]`` and the
        analogous constraint for x.
    """
    if not (0 <= y0 <= y1 < ii.shape[0] and 0 <= x0 <= x1 < ii.shape[1]):
        raise ImageError(
            f"window ({y0},{x0})-({y1},{x1}) outside integral image {ii.shape}"
        )
    return float(ii[y1, x1] - ii[y0, x1] - ii[y1, x0] + ii[y0, x0])


def window_sums_batch(
    ii: np.ndarray,
    ys: np.ndarray,
    xs: np.ndarray,
    height: int,
    width: int,
) -> np.ndarray:
    """Vectorized rectangle sums for many window origins at once.

    ``ys``/``xs`` are arrays of top-left corners; every window has the same
    ``height`` x ``width``. Returns an array of sums aligned with the inputs.
    This is the hot path of the sliding-window detector.
    """
    ys = np.asarray(ys, dtype=np.intp)
    xs = np.asarray(xs, dtype=np.intp)
    return (
        ii[ys + height, xs + width]
        - ii[ys, xs + width]
        - ii[ys + height, xs]
        + ii[ys, xs]
    )


def window_mean_and_std(
    ii: np.ndarray, ii_sq: np.ndarray, y0: int, x0: int, y1: int, x1: int
) -> tuple[float, float]:
    """Mean and standard deviation of a window from the two integral images.

    Variance is clamped at zero to absorb floating-point cancellation on
    near-constant windows. Used by the detector for lighting normalization
    (the same trick the original Viola-Jones implementation uses).
    """
    area = (y1 - y0) * (x1 - x0)
    if area <= 0:
        raise ImageError("window must have positive area")
    total = window_sum(ii, y0, x0, y1, x1)
    total_sq = window_sum(ii_sq, y0, x0, y1, x1)
    mean = total / area
    variance = max(total_sq / area - mean * mean, 0.0)
    return mean, float(np.sqrt(variance))
