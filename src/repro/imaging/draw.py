"""Rasterization primitives for the synthetic data generators.

All drawing is in-place on float64 canvases in [0, 1], with optional soft
(anti-aliased) edges so downstream gradient-based code sees realistic edge
profiles rather than single-pixel staircases.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError


def canvas(height: int, width: int, fill: float = 0.0) -> np.ndarray:
    """Allocate a grayscale canvas filled with a constant."""
    if height < 1 or width < 1:
        raise ImageError(f"canvas size must be positive, got {height}x{width}")
    return np.full((height, width), float(fill), dtype=np.float64)


def _coordinate_grids(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    ys, xs = np.mgrid[0 : image.shape[0], 0 : image.shape[1]]
    return ys.astype(np.float64), xs.astype(np.float64)


def fill_rect(
    image: np.ndarray, y0: int, x0: int, y1: int, x1: int, value: float
) -> np.ndarray:
    """Fill the half-open rectangle [y0, y1) x [x0, x1); returns the image."""
    y0c = max(int(y0), 0)
    x0c = max(int(x0), 0)
    y1c = min(int(y1), image.shape[0])
    x1c = min(int(x1), image.shape[1])
    if y0c < y1c and x0c < x1c:
        image[y0c:y1c, x0c:x1c] = value
    return image


def blend_ellipse(
    image: np.ndarray,
    center_y: float,
    center_x: float,
    radius_y: float,
    radius_x: float,
    value: float,
    softness: float = 1.0,
    angle: float = 0.0,
) -> np.ndarray:
    """Alpha-blend a (rotated) ellipse onto the canvas.

    ``softness`` is the width in pixels of the smooth falloff band at the
    ellipse boundary; 0 gives a hard edge.
    """
    if radius_y <= 0 or radius_x <= 0:
        raise ImageError("ellipse radii must be positive")
    ys, xs = _coordinate_grids(image)
    dy = ys - center_y
    dx = xs - center_x
    if angle != 0.0:
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        dy, dx = cos_a * dy - sin_a * dx, sin_a * dy + cos_a * dx
    # Normalized radial coordinate: 1.0 exactly on the ellipse boundary.
    rho = np.sqrt((dy / radius_y) ** 2 + (dx / radius_x) ** 2)
    if softness <= 0:
        alpha = (rho <= 1.0).astype(np.float64)
    else:
        # Convert softness from pixels to normalized units via mean radius.
        band = softness / max((radius_y + radius_x) / 2.0, 1e-9)
        alpha = np.clip((1.0 + band - rho) / max(band, 1e-9), 0.0, 1.0)
    image += alpha * (value - image)
    return image


def linear_gradient(
    height: int, width: int, start: float, stop: float, axis: int = 0
) -> np.ndarray:
    """A canvas whose intensity ramps linearly along ``axis``."""
    if axis not in (0, 1):
        raise ImageError(f"axis must be 0 or 1, got {axis}")
    n = height if axis == 0 else width
    ramp = np.linspace(start, stop, n, dtype=np.float64)
    if axis == 0:
        return np.repeat(ramp[:, None], width, axis=1)
    return np.repeat(ramp[None, :], height, axis=0)


def add_noise(
    image: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Additive Gaussian sensor noise, clipped back to [0, 1]."""
    if sigma < 0:
        raise ImageError(f"noise sigma must be non-negative, got {sigma}")
    noisy = image + rng.normal(0.0, sigma, size=image.shape)
    return np.clip(noisy, 0.0, 1.0)


def checkerboard(
    height: int, width: int, tile: int, low: float = 0.2, high: float = 0.8
) -> np.ndarray:
    """Checkerboard texture, a standard high-frequency test pattern."""
    if tile < 1:
        raise ImageError(f"tile must be >= 1, got {tile}")
    ys, xs = np.mgrid[0:height, 0:width]
    cells = (ys // tile + xs // tile) % 2
    return np.where(cells == 0, low, high).astype(np.float64)


def smooth_texture(
    height: int,
    width: int,
    rng: np.random.Generator,
    scale: int = 8,
    low: float = 0.2,
    high: float = 0.8,
) -> np.ndarray:
    """Band-limited random texture (bilinear-upsampled low-res noise).

    Gives natural-looking background clutter whose spatial frequency is
    controlled by ``scale`` (larger = smoother).
    """
    if scale < 1:
        raise ImageError(f"scale must be >= 1, got {scale}")
    coarse_h = max(height // scale, 2)
    coarse_w = max(width // scale, 2)
    coarse = rng.uniform(low, high, size=(coarse_h, coarse_w))
    # Local import avoids a cycle (resize depends on filters only).
    from repro.imaging.resize import resize_bilinear

    return resize_bilinear(coarse, height, width)
