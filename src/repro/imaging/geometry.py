"""Geometric warps: affine transforms and generic bilinear remapping.

The VR alignment block (B2) rectifies neighboring camera views into a common
projection; the stereo generator shifts views by per-pixel disparity. Both
reduce to :func:`remap_bilinear`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import ensure_gray


def remap_bilinear(
    image: np.ndarray,
    map_y: np.ndarray,
    map_x: np.ndarray,
    fill: float = 0.0,
) -> np.ndarray:
    """Sample ``image`` at fractional coordinates ``(map_y, map_x)``.

    Parameters
    ----------
    image:
        Source grayscale image.
    map_y, map_x:
        Arrays of identical shape giving, for every output pixel, the source
        coordinate to sample. Out-of-bounds samples produce ``fill``.
    fill:
        Value used where the source coordinate falls outside the image.

    Returns
    -------
    np.ndarray
        Array shaped like ``map_y`` with bilinearly interpolated samples.
    """
    arr = ensure_gray(image)
    map_y = np.asarray(map_y, dtype=np.float64)
    map_x = np.asarray(map_x, dtype=np.float64)
    if map_y.shape != map_x.shape:
        raise ImageError(f"map shapes differ: {map_y.shape} vs {map_x.shape}")

    height, width = arr.shape
    valid = (
        (map_y >= 0.0)
        & (map_y <= height - 1.0)
        & (map_x >= 0.0)
        & (map_x <= width - 1.0)
    )
    yc = np.clip(map_y, 0.0, height - 1.0)
    xc = np.clip(map_x, 0.0, width - 1.0)

    y0 = np.floor(yc).astype(np.intp)
    x0 = np.floor(xc).astype(np.intp)
    y1 = np.minimum(y0 + 1, height - 1)
    x1 = np.minimum(x0 + 1, width - 1)
    wy = yc - y0
    wx = xc - x0

    top = arr[y0, x0] * (1 - wx) + arr[y0, x1] * wx
    bottom = arr[y1, x0] * (1 - wx) + arr[y1, x1] * wx
    out = top * (1 - wy) + bottom * wy
    return np.where(valid, out, fill)


def warp_affine(
    image: np.ndarray,
    matrix: np.ndarray,
    out_shape: tuple[int, int] | None = None,
    fill: float = 0.0,
) -> np.ndarray:
    """Apply a 2x3 affine transform (output -> source convention).

    ``matrix`` maps output pixel coordinates ``(x, y, 1)`` to source
    coordinates, i.e. it is the *inverse* warp, which avoids holes.
    """
    arr = ensure_gray(image)
    mat = np.asarray(matrix, dtype=np.float64)
    if mat.shape != (2, 3):
        raise ImageError(f"affine matrix must be 2x3, got {mat.shape}")
    if out_shape is None:
        out_shape = arr.shape
    height, width = out_shape
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    src_x = mat[0, 0] * xs + mat[0, 1] * ys + mat[0, 2]
    src_y = mat[1, 0] * xs + mat[1, 1] * ys + mat[1, 2]
    return remap_bilinear(arr, src_y, src_x, fill=fill)


def translate(image: np.ndarray, dy: float, dx: float, fill: float = 0.0) -> np.ndarray:
    """Shift an image by ``(dy, dx)`` pixels with bilinear resampling."""
    matrix = np.array([[1.0, 0.0, -dx], [0.0, 1.0, -dy]])
    return warp_affine(image, matrix, fill=fill)
