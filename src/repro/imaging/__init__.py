"""Imaging substrate: the numpy image-processing layer everything builds on.

Conventions
-----------
* A *grayscale image* is a 2-D ``float64`` array with values nominally in
  ``[0, 1]``.
* A *color image* is an ``(H, W, 3)`` ``float64`` array, RGB order.
* A *raw Bayer frame* is a 2-D array in RGGB layout (see :mod:`.bayer`).
* Functions never modify their inputs; they return new arrays.
"""

from repro.imaging.image import (
    as_gray,
    clip01,
    ensure_color,
    ensure_gray,
    image_energy,
    normalize,
    pad_reflect,
    to_uint8,
)
from repro.imaging.bayer import bayer_mosaic, demosaic_bilinear
from repro.imaging.integral import integral_image, integral_of_squares, window_sum
from repro.imaging.filters import (
    box_filter,
    convolve_separable,
    gaussian_filter,
    gaussian_kernel1d,
    gradient_magnitude,
    sobel,
)
from repro.imaging.resize import downsample2x, gaussian_pyramid, resize_bilinear
from repro.imaging.geometry import remap_bilinear, translate, warp_affine
from repro.imaging.metrics import mse, ms_ssim, psnr, ssim
from repro.imaging import draw

__all__ = [
    "as_gray",
    "clip01",
    "ensure_color",
    "ensure_gray",
    "image_energy",
    "normalize",
    "pad_reflect",
    "to_uint8",
    "bayer_mosaic",
    "demosaic_bilinear",
    "integral_image",
    "integral_of_squares",
    "window_sum",
    "box_filter",
    "convolve_separable",
    "gaussian_filter",
    "gaussian_kernel1d",
    "gradient_magnitude",
    "sobel",
    "downsample2x",
    "gaussian_pyramid",
    "resize_bilinear",
    "remap_bilinear",
    "translate",
    "warp_affine",
    "mse",
    "ms_ssim",
    "psnr",
    "ssim",
    "draw",
]
