"""Resampling: bilinear resize, dyadic downsampling, Gaussian pyramids.

Resolution scaling shows up in three places in the paper: the sliding-window
detector rescales its search window, the NN consumes fixed 20x20 crops, and
the MS-SSIM metric evaluates a dyadic pyramid.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.filters import gaussian_filter
from repro.imaging.image import ensure_gray


def resize_bilinear(image: np.ndarray, out_height: int, out_width: int) -> np.ndarray:
    """Resize a grayscale image with bilinear interpolation.

    Uses half-pixel-centered sampling (the ``align_corners=False``
    convention), which is what camera ISP scalers implement.
    """
    arr = ensure_gray(image)
    if out_height < 1 or out_width < 1:
        raise ImageError(f"output size must be positive, got {out_height}x{out_width}")
    in_height, in_width = arr.shape
    if (out_height, out_width) == (in_height, in_width):
        return arr.copy()

    scale_y = in_height / out_height
    scale_x = in_width / out_width
    ys = (np.arange(out_height) + 0.5) * scale_y - 0.5
    xs = (np.arange(out_width) + 0.5) * scale_x - 0.5
    ys = np.clip(ys, 0.0, in_height - 1.0)
    xs = np.clip(xs, 0.0, in_width - 1.0)

    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, in_height - 1)
    x1 = np.minimum(x0 + 1, in_width - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]

    top = arr[np.ix_(y0, x0)] * (1 - wx) + arr[np.ix_(y0, x1)] * wx
    bottom = arr[np.ix_(y1, x0)] * (1 - wx) + arr[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bottom * wy


def downsample2x(image: np.ndarray, blur_sigma: float = 1.0) -> np.ndarray:
    """Anti-aliased 2x downsample: Gaussian pre-blur then 2:1 decimation."""
    arr = ensure_gray(image)
    if min(arr.shape) < 2:
        raise ImageError(f"image too small to downsample: {arr.shape}")
    blurred = gaussian_filter(arr, blur_sigma)
    return blurred[::2, ::2].copy()


def gaussian_pyramid(image: np.ndarray, levels: int) -> list[np.ndarray]:
    """Dyadic Gaussian pyramid with ``levels`` entries (level 0 = input).

    Raises
    ------
    ImageError
        If the image is too small to produce the requested level count.
    """
    if levels < 1:
        raise ImageError(f"levels must be >= 1, got {levels}")
    arr = ensure_gray(image)
    pyramid = [arr.copy()]
    for _ in range(levels - 1):
        if min(pyramid[-1].shape) < 4:
            raise ImageError(
                f"image {image.shape} too small for a {levels}-level pyramid"
            )
        pyramid.append(downsample2x(pyramid[-1]))
    return pyramid
