"""Linear filters: separable convolution, box, Gaussian, Sobel.

These are the building blocks of the ISP pre-processing stage and the
motion detector. Everything reflects at borders, which keeps filter output
means unbiased near edges.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import ensure_gray


def gaussian_kernel1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """Sampled, normalized 1-D Gaussian kernel.

    Parameters
    ----------
    sigma:
        Standard deviation in pixels; must be positive.
    radius:
        Half-width of the kernel. Defaults to ``ceil(3 * sigma)`` which
        captures 99.7% of the mass.
    """
    if sigma <= 0:
        raise ImageError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = int(np.ceil(3.0 * sigma))
    if radius < 1:
        radius = 1
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (xs / sigma) ** 2)
    return kernel / kernel.sum()


def _convolve_axis(image: np.ndarray, kernel: np.ndarray, axis: int) -> np.ndarray:
    """Reflect-padded 1-D convolution along one axis of a 2-D image."""
    radius = len(kernel) // 2
    pad_spec = [(0, 0), (0, 0)]
    pad_spec[axis] = (radius, radius)
    padded = np.pad(image, pad_spec, mode="reflect")
    out = np.zeros_like(image)
    for offset, weight in enumerate(kernel):
        if axis == 0:
            out += weight * padded[offset : offset + image.shape[0], :]
        else:
            out += weight * padded[:, offset : offset + image.shape[1]]
    return out


def convolve_separable(
    image: np.ndarray, kernel_y: np.ndarray, kernel_x: np.ndarray
) -> np.ndarray:
    """Convolve a grayscale image with an outer-product (separable) kernel."""
    arr = ensure_gray(image)
    kernel_y = np.asarray(kernel_y, dtype=np.float64)
    kernel_x = np.asarray(kernel_x, dtype=np.float64)
    if kernel_y.ndim != 1 or kernel_x.ndim != 1:
        raise ImageError("separable kernels must be 1-D")
    if len(kernel_y) % 2 == 0 or len(kernel_x) % 2 == 0:
        raise ImageError("kernels must have odd length")
    return _convolve_axis(_convolve_axis(arr, kernel_y, axis=0), kernel_x, axis=1)


def gaussian_filter(image: np.ndarray, sigma: float) -> np.ndarray:
    """Isotropic Gaussian blur of a grayscale image."""
    kernel = gaussian_kernel1d(sigma)
    return convolve_separable(image, kernel, kernel)


def box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Normalized box (moving-average) filter with half-width ``radius``."""
    if radius < 1:
        raise ImageError(f"radius must be >= 1, got {radius}")
    size = 2 * radius + 1
    kernel = np.full(size, 1.0 / size)
    return convolve_separable(image, kernel, kernel)


_SOBEL_DERIV = np.array([-1.0, 0.0, 1.0])
_SOBEL_SMOOTH = np.array([1.0, 2.0, 1.0]) / 4.0


def sobel(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sobel gradients ``(gy, gx)`` of a grayscale image."""
    arr = ensure_gray(image)
    gy = convolve_separable(arr, _SOBEL_DERIV, _SOBEL_SMOOTH)
    gx = convolve_separable(arr, _SOBEL_SMOOTH, _SOBEL_DERIV)
    return gy, gx


def gradient_magnitude(image: np.ndarray) -> np.ndarray:
    """Euclidean magnitude of the Sobel gradient field."""
    gy, gx = sobel(image)
    return np.hypot(gy, gx)
