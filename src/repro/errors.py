"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of numpy, etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class ImageError(ReproError):
    """An image does not satisfy the shape/dtype contract of an operation."""


class DatasetError(ReproError):
    """A dataset generator was asked for something it cannot produce."""


class TrainingError(ReproError):
    """Model training failed to run (bad shapes, empty data, ...)."""


class HardwareModelError(ReproError):
    """A hardware model was driven outside its validity envelope."""


class ResourceExceededError(HardwareModelError):
    """A design does not fit the resources of the selected device."""


class PipelineError(ReproError):
    """An in-camera pipeline is malformed or cannot be evaluated."""


class SolverError(ReproError):
    """An iterative solver failed to converge or was misconfigured."""


class SinkError(ReproError):
    """A result sink failed while consuming streamed exploration rows.

    Raised by the engine and the campaign driver with the failing
    scenario and sink named in the message; the original exception is
    chained as ``__cause__``. Other scenarios' sinks are still closed
    (flushed) before this propagates, so one bad sink never corrupts a
    campaign's remaining outputs.
    """
