"""Neural-network substrate for the face-authentication case study.

The paper trains small fully-connected networks with FANN and deploys them
on a SNNAP-style fixed-point accelerator. This package provides the same
ingredients from scratch:

* :mod:`.mlp` — sigmoid MLPs (e.g. the paper's 400-8-1 topology);
* :mod:`.train` — RPROP (FANN's default) and SGD trainers;
* :mod:`.sigmoid` — exact sigmoid and the 256-entry hardware LUT;
* :mod:`.quantize` — fixed-point formats and the bit-exact quantized
  forward pass the accelerator simulator reproduces cycle by cycle.
"""

from repro.nn.mlp import MLP
from repro.nn.sigmoid import SigmoidLUT, sigmoid
from repro.nn.train import TrainResult, train_rprop, train_sgd
from repro.nn.quantize import FixedPointFormat, QuantizedMLP, quantize_array

__all__ = [
    "MLP",
    "SigmoidLUT",
    "sigmoid",
    "TrainResult",
    "train_rprop",
    "train_sgd",
    "FixedPointFormat",
    "QuantizedMLP",
    "quantize_array",
]
