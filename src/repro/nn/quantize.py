"""Fixed-point quantization and the bit-exact quantized MLP forward pass.

This module defines the arithmetic contract of the accelerator datapath
(Figure 3 of the paper): unsigned fixed-point activations on the ``d_in``
bus, signed fixed-point weights in per-PE SRAM, wide integer accumulation,
and a LUT sigmoid whose output is re-quantized onto the activation bus.
:class:`repro.snnap.SnnapAccelerator` replays exactly this arithmetic while
counting cycles — equality of the two is asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.mlp import MLP
from repro.nn.sigmoid import SigmoidLUT


@dataclass(frozen=True)
class FixedPointFormat:
    """A fixed-point number format.

    Parameters
    ----------
    total_bits:
        Word width including the sign bit when ``signed``.
    frac_bits:
        Bits to the right of the binary point (scale = 2**frac_bits).
    signed:
        Two's-complement when true, else unsigned.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ConfigurationError(f"total_bits must be >= 2, got {self.total_bits}")
        if self.frac_bits < 0 or self.frac_bits > self.total_bits:
            raise ConfigurationError(
                f"frac_bits must be in [0, total_bits], got {self.frac_bits}"
            )

    @property
    def scale(self) -> float:
        return float(2**self.frac_bits)

    @property
    def min_int(self) -> int:
        return -(2 ** (self.total_bits - 1)) if self.signed else 0

    @property
    def max_int(self) -> int:
        return (2 ** (self.total_bits - 1)) - 1 if self.signed else (2**self.total_bits) - 1

    @property
    def resolution(self) -> float:
        """Smallest representable increment."""
        return 1.0 / self.scale

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Real values -> saturating integer codes."""
        arr = np.asarray(values, dtype=np.float64)
        codes = np.round(arr * self.scale)
        return np.clip(codes, self.min_int, self.max_int).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> real values."""
        return np.asarray(codes, dtype=np.float64) / self.scale

    def roundtrip(self, values: np.ndarray | float) -> np.ndarray:
        """Quantize-then-dequantize (the representable approximation)."""
        return self.dequantize(self.quantize(values))


def quantize_array(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Convenience wrapper: representable approximation of ``values``."""
    return fmt.roundtrip(values)


def weight_format_for_span(span: float, total_bits: int) -> FixedPointFormat:
    """Pick the signed format with maximal fraction bits covering ``span``.

    This mirrors the standard deployment flow: inspect the trained weight
    span, allocate integer bits to cover it, spend the rest on precision.
    When the word is too narrow to cover the span at all (e.g. 4-bit words
    for weights beyond +/-8), the format saturates outliers — the network
    degrades, exactly the behaviour the precision study measures.
    """
    span = max(float(span), 1e-12)
    int_bits = max(int(np.ceil(np.log2(span))), 0)
    frac_bits = max(total_bits - 1 - int_bits, 0)
    return FixedPointFormat(total_bits=total_bits, frac_bits=frac_bits, signed=True)


def weight_format_for(model: MLP, total_bits: int) -> FixedPointFormat:
    """Single format covering every layer of ``model`` (see span variant)."""
    return weight_format_for_span(model.weight_span(), total_bits)


class QuantizedMLP:
    """Bit-exact fixed-point inference for a trained :class:`MLP`.

    Parameters
    ----------
    model:
        The trained floating-point network.
    data_bits:
        Width of the unsigned activation bus (paper sweeps 4/8/16).
    weight_bits:
        Width of the signed weight words (defaults to ``data_bits``,
        matching the paper's common datapath width).
    lut_entries:
        Sigmoid LUT size; ``None`` uses the exact sigmoid on the
        accumulator (isolating weight/activation quantization effects).

    Notes
    -----
    Activations are unsigned with ``frac = data_bits`` (covering [0, 1)),
    exactly representing what an 8-bit ``d_in``/``d_out`` bus carries.
    Accumulation is exact 64-bit integer arithmetic; real hardware uses
    the width reported by :meth:`required_accumulator_bits` (26 bits for
    the paper's 8-PE, 8-bit configuration).
    """

    def __init__(
        self,
        model: MLP,
        data_bits: int = 8,
        weight_bits: int | None = None,
        lut_entries: int | None = 256,
    ):
        if data_bits < 2:
            raise ConfigurationError(f"data_bits must be >= 2, got {data_bits}")
        weight_bits = weight_bits if weight_bits is not None else data_bits
        self.model = model
        self.data_bits = data_bits
        self.weight_bits = weight_bits
        self.activation_format = FixedPointFormat(
            total_bits=data_bits, frac_bits=data_bits, signed=False
        )
        # Per-layer weight formats: each layer's weight SRAM carries its own
        # implied binary point, sized to that layer's weight span.
        self.weight_formats = [
            weight_format_for_span(float(np.abs(w).max(initial=0.0)), weight_bits)
            for w in model.weights
        ]
        # Bias enters the accumulator, so it is quantized at the product
        # scale (activation_scale * weight_scale) of its layer.
        self._acc_scales = [
            self.activation_format.scale * fmt.scale for fmt in self.weight_formats
        ]
        self.weight_codes = [
            fmt.quantize(w) for fmt, w in zip(self.weight_formats, model.weights)
        ]
        self.bias_codes = [
            np.clip(np.round(b * scale), -(2**62), 2**62).astype(np.int64)
            for b, scale in zip(model.biases, self._acc_scales)
        ]
        if lut_entries is None:
            self.lut: SigmoidLUT | None = None
        else:
            self.lut = SigmoidLUT(
                n_entries=lut_entries, output_levels=2**data_bits
            )

    # ------------------------------------------------------------------
    def quantize_inputs(self, X: np.ndarray) -> np.ndarray:
        """Real-valued inputs in [0, 1] -> activation-bus codes."""
        return self.activation_format.quantize(np.clip(X, 0.0, 1.0))

    def _activate(self, acc_real: np.ndarray) -> np.ndarray:
        if self.lut is not None:
            return np.asarray(self.lut(acc_real))
        from repro.nn.sigmoid import sigmoid

        return np.asarray(sigmoid(acc_real))

    def forward_codes(self, X: np.ndarray) -> list[np.ndarray]:
        """Layer-by-layer integer activations (input codes first)."""
        codes = self.quantize_inputs(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        trace = [codes]
        for W_int, b_int, scale in zip(
            self.weight_codes, self.bias_codes, self._acc_scales
        ):
            acc = codes.astype(np.int64) @ W_int.T.astype(np.int64) + b_int
            acc_real = acc / scale
            act = self._activate(acc_real)
            codes = self.activation_format.quantize(act)
            trace.append(codes)
        return trace

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Output activations as reals (dequantized bus codes)."""
        return self.activation_format.dequantize(self.forward_codes(X)[-1])

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """{0,1} decisions for a single-output network."""
        proba = self.predict_proba(X)
        if proba.shape[1] != 1:
            raise ConfigurationError("predict() requires a single-output network")
        return (proba[:, 0] >= threshold).astype(np.int64)

    def classification_error(self, X: np.ndarray, y: np.ndarray) -> float:
        """Fraction misclassified, comparable to ``MLP.classification_error``."""
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = self.predict(X)
        return float(np.mean(pred != y))

    # ------------------------------------------------------------------
    def required_accumulator_bits(self) -> int:
        """Accumulator width that can never overflow for this network.

        Worst case |acc| <= n_in * max_act_code * max|w_code| + |bias|.
        """
        worst = 0
        for W_int, b_int in zip(self.weight_codes, self.bias_codes):
            n_in = W_int.shape[1]
            bound = (
                n_in * self.activation_format.max_int * int(np.abs(W_int).max(initial=1))
                + int(np.abs(b_int).max(initial=0))
            )
            worst = max(worst, bound)
        return int(np.ceil(np.log2(worst + 1))) + 1  # +1 sign bit

    def accuracy_loss_vs_float(self, X: np.ndarray, y: np.ndarray) -> float:
        """Absolute classification-accuracy loss vs. the float model.

        Positive values mean the fixed-point network is worse — the metric
        reported in the paper's numerical-precision study.
        """
        float_err = self.model.classification_error(X, y)
        fixed_err = self.classification_error(X, y)
        return fixed_err - float_err
