"""Trainers: RPROP (FANN's default algorithm) and plain mini-batch SGD.

Both minimize mean-squared error on sigmoid outputs — the FANN objective —
so a trained network transfers directly onto the fixed-point accelerator
(whose LUT sigmoid approximates the same activation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.rng import make_rng
from repro.errors import TrainingError
from repro.nn.mlp import MLP
from repro.nn.sigmoid import sigmoid


@dataclass
class TrainResult:
    """Training trace and the best model found."""

    model: MLP
    train_losses: list[float] = field(default_factory=list)
    val_errors: list[float] = field(default_factory=list)
    best_epoch: int = 0

    @property
    def final_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")


def _prepare(X: np.ndarray, y: np.ndarray, model: MLP) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2:
        raise TrainingError(f"X must be 2-D, got {X.shape}")
    if X.shape[1] != model.layer_sizes[0]:
        raise TrainingError(
            f"X has {X.shape[1]} features, model expects {model.layer_sizes[0]}"
        )
    if y.ndim == 1:
        y = y[:, None]
    if y.shape[0] != X.shape[0]:
        raise TrainingError("X and y row counts differ")
    if y.shape[1] != model.layer_sizes[-1]:
        raise TrainingError(
            f"y has {y.shape[1]} outputs, model expects {model.layer_sizes[-1]}"
        )
    if X.shape[0] == 0:
        raise TrainingError("empty training set")
    return X, y


def _gradients(
    model: MLP, X: np.ndarray, y: np.ndarray
) -> tuple[list[np.ndarray], list[np.ndarray], float]:
    """Backprop of 0.5 * mean squared error through sigmoid layers."""
    activations = [X]
    current = X
    for W, b in zip(model.weights, model.biases):
        current = sigmoid(current @ W.T + b)
        activations.append(current)
    output = activations[-1]
    n = X.shape[0]
    loss = float(0.5 * np.mean(np.sum((output - y) ** 2, axis=1)))

    grads_w: list[np.ndarray] = [np.zeros_like(w) for w in model.weights]
    grads_b: list[np.ndarray] = [np.zeros_like(b) for b in model.biases]
    # delta: dLoss/d(pre-activation), starting from the output layer.
    delta = (output - y) * output * (1.0 - output) / n
    for layer in range(model.n_layers - 1, -1, -1):
        grads_w[layer] = delta.T @ activations[layer]
        grads_b[layer] = delta.sum(axis=0)
        if layer > 0:
            back = delta @ model.weights[layer]
            prev = activations[layer]
            delta = back * prev * (1.0 - prev)
    return grads_w, grads_b, loss


def train_rprop(
    model: MLP,
    X: np.ndarray,
    y: np.ndarray,
    epochs: int = 200,
    X_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    step_init: float = 0.05,
    step_min: float = 1e-6,
    step_max: float = 5.0,
    eta_plus: float = 1.2,
    eta_minus: float = 0.5,
    patience: int | None = None,
    weight_decay: float = 0.0,
) -> TrainResult:
    """Full-batch resilient backpropagation (iRPROP-).

    RPROP adapts a per-weight step size from gradient *signs* only, which
    is what makes FANN fast on small dense networks. With validation data,
    the best-validation model is returned (early "selection", matching the
    common FANN recipe); ``patience`` optionally stops training early.
    ``weight_decay`` adds an L2 pull toward zero, which keeps the trained
    weight span small — directly improving fixed-point deployability.
    """
    if weight_decay < 0:
        raise TrainingError(f"weight_decay must be >= 0, got {weight_decay}")
    if epochs < 1:
        raise TrainingError(f"epochs must be >= 1, got {epochs}")
    X, y = _prepare(X, y, model)
    has_val = X_val is not None and y_val is not None
    if has_val:
        X_val = np.asarray(X_val, dtype=np.float64)
        y_val = np.asarray(y_val, dtype=np.float64).ravel()

    steps_w = [np.full_like(w, step_init) for w in model.weights]
    steps_b = [np.full_like(b, step_init) for b in model.biases]
    prev_gw = [np.zeros_like(w) for w in model.weights]
    prev_gb = [np.zeros_like(b) for b in model.biases]

    result = TrainResult(model=model)
    best_val = float("inf")
    best_model = model.copy()
    stall = 0

    def rprop_update(
        param: np.ndarray, grad: np.ndarray, prev: np.ndarray, step: np.ndarray
    ) -> np.ndarray:
        sign_change = grad * prev
        step[sign_change > 0] = np.minimum(step[sign_change > 0] * eta_plus, step_max)
        step[sign_change < 0] = np.maximum(step[sign_change < 0] * eta_minus, step_min)
        # iRPROP-: where the sign flipped, skip the update this epoch.
        effective = np.where(sign_change < 0, 0.0, -np.sign(grad) * step)
        param += effective
        return np.where(sign_change < 0, 0.0, grad)

    for epoch in range(epochs):
        grads_w, grads_b, loss = _gradients(model, X, y)
        if weight_decay > 0:
            for layer in range(model.n_layers):
                grads_w[layer] = grads_w[layer] + weight_decay * model.weights[layer]
        result.train_losses.append(loss)
        for layer in range(model.n_layers):
            prev_gw[layer] = rprop_update(
                model.weights[layer], grads_w[layer], prev_gw[layer], steps_w[layer]
            )
            prev_gb[layer] = rprop_update(
                model.biases[layer], grads_b[layer], prev_gb[layer], steps_b[layer]
            )
        if has_val:
            err = model.classification_error(X_val, y_val)
            result.val_errors.append(err)
            if err < best_val:
                best_val = err
                best_model = model.copy()
                result.best_epoch = epoch
                stall = 0
            else:
                stall += 1
                if patience is not None and stall > patience:
                    break

    if has_val:
        result.model = best_model
    return result


def train_sgd(
    model: MLP,
    X: np.ndarray,
    y: np.ndarray,
    epochs: int = 100,
    batch_size: int = 32,
    learning_rate: float = 0.5,
    momentum: float = 0.9,
    seed: int | np.random.Generator | None = 0,
) -> TrainResult:
    """Mini-batch SGD with momentum (baseline trainer for comparisons)."""
    if epochs < 1 or batch_size < 1:
        raise TrainingError("epochs and batch_size must be >= 1")
    if learning_rate <= 0:
        raise TrainingError(f"learning_rate must be positive, got {learning_rate}")
    X, y = _prepare(X, y, model)
    rng = make_rng(seed)
    n = X.shape[0]
    vel_w = [np.zeros_like(w) for w in model.weights]
    vel_b = [np.zeros_like(b) for b in model.biases]
    result = TrainResult(model=model)

    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            grads_w, grads_b, loss = _gradients(model, X[idx], y[idx])
            epoch_loss += loss
            batches += 1
            for layer in range(model.n_layers):
                vel_w[layer] = momentum * vel_w[layer] - learning_rate * grads_w[layer]
                vel_b[layer] = momentum * vel_b[layer] - learning_rate * grads_b[layer]
                model.weights[layer] += vel_w[layer]
                model.biases[layer] += vel_b[layer]
        result.train_losses.append(epoch_loss / max(batches, 1))
    return result
