"""Sigmoid activation: exact form and the hardware look-up-table version.

The paper approximates the activation with a "simple 256-entry look-up
table (LUT)" in the accelerator's sigmoid unit and finds the accuracy
impact negligible; :class:`SigmoidLUT` is that unit's functional model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic function."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    if out.ndim == 0:
        return float(out)
    return out


class SigmoidLUT:
    """Uniform look-up-table approximation of the sigmoid.

    Parameters
    ----------
    n_entries:
        Table size (paper: 256).
    x_min, x_max:
        Input interval covered by the table; inputs outside clamp to the
        first/last entry (where the sigmoid is within ~3e-4 of 0/1 for the
        default +/-8 range).
    output_levels:
        If given, table entries are additionally quantized to this many
        uniform levels in [0, 1] — modeling a fixed-point output datapath
        (e.g. 256 levels for an 8-bit activation bus).
    """

    def __init__(
        self,
        n_entries: int = 256,
        x_min: float = -8.0,
        x_max: float = 8.0,
        output_levels: int | None = None,
    ):
        if n_entries < 2:
            raise ConfigurationError(f"n_entries must be >= 2, got {n_entries}")
        if not x_min < x_max:
            raise ConfigurationError(f"need x_min < x_max, got [{x_min}, {x_max}]")
        if output_levels is not None and output_levels < 2:
            raise ConfigurationError(f"output_levels must be >= 2, got {output_levels}")
        self.n_entries = n_entries
        self.x_min = float(x_min)
        self.x_max = float(x_max)
        self.output_levels = output_levels
        centers = x_min + (np.arange(n_entries) + 0.5) * (x_max - x_min) / n_entries
        table = np.asarray(sigmoid(centers), dtype=np.float64)
        if output_levels is not None:
            table = np.round(table * (output_levels - 1)) / (output_levels - 1)
        self.table = table

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the LUT approximation element-wise."""
        arr = np.asarray(x, dtype=np.float64)
        scale = self.n_entries / (self.x_max - self.x_min)
        idx = np.floor((arr - self.x_min) * scale).astype(np.int64)
        idx = np.clip(idx, 0, self.n_entries - 1)
        out = self.table[idx]
        if out.ndim == 0:
            return float(out)
        return out

    def indices(self, x: np.ndarray) -> np.ndarray:
        """Table indices addressed for inputs ``x`` (hardware visibility)."""
        arr = np.asarray(x, dtype=np.float64)
        scale = self.n_entries / (self.x_max - self.x_min)
        return np.clip(
            np.floor((arr - self.x_min) * scale).astype(np.int64),
            0,
            self.n_entries - 1,
        )

    def max_abs_error(self, n_probe: int = 100_000) -> float:
        """Worst-case LUT error over the covered interval (diagnostic)."""
        xs = np.linspace(self.x_min, self.x_max - 1e-9, n_probe)
        return float(np.max(np.abs(self(xs) - sigmoid(xs))))
