"""Fully-connected sigmoid networks (the FANN-class model family).

The paper's face-authentication network is a 400-8-1 MLP: 400 inputs
(20x20 pixels), 8 hidden sigmoid neurons, 1 sigmoid output thresholded at
0.5. :class:`MLP` keeps the implementation general (any layer list), since
the topology exploration of Section III-A trains many shapes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datasets.rng import make_rng
from repro.errors import TrainingError
from repro.nn.sigmoid import sigmoid


class MLP:
    """Multi-layer perceptron with sigmoid activations throughout.

    Parameters
    ----------
    layer_sizes:
        Neuron counts per layer including input and output, e.g.
        ``(400, 8, 1)``.
    seed:
        Seed for Nguyen-Widrow-style weight initialization.

    Attributes
    ----------
    weights:
        List of ``(fan_out, fan_in)`` arrays.
    biases:
        List of ``(fan_out,)`` arrays.
    """

    def __init__(
        self,
        layer_sizes: tuple[int, ...] | list[int],
        seed: int | np.random.Generator | None = 0,
    ):
        sizes = tuple(int(s) for s in layer_sizes)
        if len(sizes) < 2:
            raise TrainingError(f"need at least input+output layers, got {sizes}")
        if any(s < 1 for s in sizes):
            raise TrainingError(f"layer sizes must be positive, got {sizes}")
        self.layer_sizes = sizes
        rng = make_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # Scaled uniform init keeps sigmoid pre-activations in the
            # responsive region regardless of fan-in.
            bound = np.sqrt(6.0 / (fan_in + fan_out)) * 4.0
            self.weights.append(rng.uniform(-bound, bound, size=(fan_out, fan_in)))
            self.biases.append(rng.uniform(-0.1, 0.1, size=fan_out))

    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        """Number of weight layers (hidden + output)."""
        return len(self.weights)

    @property
    def n_parameters(self) -> int:
        """Total trainable parameter count."""
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    def n_macs(self) -> int:
        """Multiply-accumulate operations per forward pass of one sample."""
        return sum(w.size for w in self.weights)

    # ------------------------------------------------------------------
    def _check_inputs(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2 or X.shape[1] != self.layer_sizes[0]:
            raise TrainingError(
                f"expected inputs with {self.layer_sizes[0]} features, got {X.shape}"
            )
        return X

    def forward(
        self,
        X: np.ndarray,
        activation: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """All layer activations, input first, output last.

        ``activation`` overrides the sigmoid (used to study LUT
        approximations without retraining).
        """
        act = activation or sigmoid
        current = self._check_inputs(X)
        activations = [current]
        for W, b in zip(self.weights, self.biases):
            current = act(current @ W.T + b)
            activations.append(current)
        return activations

    def predict_proba(
        self,
        X: np.ndarray,
        activation: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Output activations, shape (n, output_size)."""
        return self.forward(X, activation)[-1]

    def predict(
        self,
        X: np.ndarray,
        threshold: float = 0.5,
        activation: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> np.ndarray:
        """{0,1} decisions for a single-output network."""
        proba = self.predict_proba(X, activation)
        if proba.shape[1] != 1:
            raise TrainingError("predict() requires a single-output network")
        return (proba[:, 0] >= threshold).astype(np.int64)

    def classification_error(
        self,
        X: np.ndarray,
        y: np.ndarray,
        activation: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> float:
        """Fraction of misclassified samples (single output)."""
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = self.predict(X, activation=activation)
        if pred.shape != y.shape:
            raise TrainingError(f"label shape {y.shape} misaligned with {pred.shape}")
        return float(np.mean(pred != y))

    # ------------------------------------------------------------------
    def copy(self) -> "MLP":
        """Deep copy (used by trainers for best-model tracking)."""
        clone = MLP(self.layer_sizes, seed=0)
        clone.weights = [w.copy() for w in self.weights]
        clone.biases = [b.copy() for b in self.biases]
        return clone

    def weight_span(self) -> float:
        """Largest absolute weight/bias — sets the fixed-point format."""
        return max(
            max(float(np.abs(w).max()) for w in self.weights),
            max(float(np.abs(b).max()) for b in self.biases),
        )
