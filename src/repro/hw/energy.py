"""Energy accounting: a composable per-component energy report.

Every hardware model returns an :class:`EnergyReport` so that pipeline
aggregation (sum across blocks, compare configurations) is uniform and the
benchmarks can print per-component breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareModelError


@dataclass
class EnergyReport:
    """Energy broken down by named component, in joules."""

    components: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, joules: float) -> "EnergyReport":
        """Accumulate ``joules`` into component ``name`` (in place)."""
        if joules < 0:
            raise HardwareModelError(f"negative energy for {name}: {joules}")
        self.components[name] = self.components.get(name, 0.0) + joules
        return self

    @property
    def total(self) -> float:
        """Total energy in joules."""
        return sum(self.components.values())

    def scaled(self, factor: float) -> "EnergyReport":
        """A new report with every component multiplied by ``factor``."""
        if factor < 0:
            raise HardwareModelError(f"negative scale factor {factor}")
        return EnergyReport({k: v * factor for k, v in self.components.items()})

    def merged(self, other: "EnergyReport") -> "EnergyReport":
        """Component-wise sum of two reports."""
        out = EnergyReport(dict(self.components))
        for name, joules in other.components.items():
            out.add(name, joules)
        return out

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        return self.merged(other)

    def fraction(self, name: str) -> float:
        """Share of the total attributed to ``name`` (0 if absent)."""
        total = self.total
        if total <= 0:
            return 0.0
        return self.components.get(name, 0.0) / total

    def pretty(self, unit: str = "uJ") -> str:
        """Human-readable table used by benchmark printouts."""
        scale = {"J": 1.0, "mJ": 1e3, "uJ": 1e6, "nJ": 1e9, "pJ": 1e12}.get(unit)
        if scale is None:
            raise HardwareModelError(f"unknown unit {unit!r}")
        lines = [
            f"  {name:<24s} {value * scale:12.4f} {unit}"
            for name, value in sorted(self.components.items())
        ]
        lines.append(f"  {'TOTAL':<24s} {self.total * scale:12.4f} {unit}")
        return "\n".join(lines)
