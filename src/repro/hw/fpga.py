"""FPGA device database and compute-unit packing model (Table I).

The paper's BSSA accelerator instantiates streaming compute units (CUs) of
18 DSP slices each at 125 MHz, packs as many as the device allows, and
reports per-resource utilization for a Zynq-7020 (evaluation) and a
Virtex UltraScale+ (16-camera target). :class:`FpgaDesign` reproduces that
packing: per-CU resource vectors plus a fixed shell overhead (DMA, AXI
interconnect, HDMI/Ethernet cores in Figure 8).

Calibration: per-CU and overhead LUT/BRAM vectors are solved from the two
utilization columns of Table I; DSPs use the paper's stated 18/CU. With a
9-DSP shell the UltraScale+ packs exactly the paper's 682 CUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ResourceExceededError


@dataclass(frozen=True)
class FpgaDevice:
    """Resource inventory of an FPGA part."""

    name: str
    luts: int
    bram_blocks: float  # 36 Kb block equivalents
    dsps: int
    max_clock_hz: float

    def __post_init__(self) -> None:
        if min(self.luts, self.dsps) <= 0 or self.bram_blocks <= 0:
            raise ConfigurationError(f"device {self.name} has non-positive resources")


#: Zynq-7020 programmable logic (ZC702 board) — the paper's evaluation part.
ZYNQ_7020 = FpgaDevice(
    name="Zynq-7000 (XC7Z020)",
    luts=53_200,
    bram_blocks=140,
    dsps=220,
    max_clock_hz=250e6,
)

#: VU13P-class UltraScale+ — the paper's 16-camera target part.
VIRTEX_ULTRASCALE_PLUS = FpgaDevice(
    name="Virtex UltraScale+ (VU13P-class)",
    luts=1_728_000,
    bram_blocks=2_688,
    dsps=12_288,
    max_clock_hz=500e6,
)


@dataclass(frozen=True)
class ResourceUsage:
    """Absolute and fractional utilization of one design on one device."""

    luts: float
    bram_blocks: float
    dsps: float
    lut_fraction: float
    bram_fraction: float
    dsp_fraction: float

    def fits(self) -> bool:
        return max(self.lut_fraction, self.bram_fraction, self.dsp_fraction) <= 1.0

    def bottleneck(self) -> str:
        """Which resource binds first."""
        fractions = {
            "logic": self.lut_fraction,
            "ram": self.bram_fraction,
            "dsp": self.dsp_fraction,
        }
        return max(fractions, key=fractions.get)


@dataclass(frozen=True)
class FpgaDesign:
    """A replicated-compute-unit streaming design on a device.

    Parameters
    ----------
    device:
        Target part.
    clock_hz:
        Design clock (paper: 125 MHz).
    cu_luts, cu_bram_blocks, cu_dsps:
        Per-compute-unit resource vector.
    overhead_luts, overhead_bram_blocks, overhead_dsps:
        Fixed shell cost (DMA engine, interconnect, I/O cores).
    items_per_cycle_per_cu:
        Streaming throughput of one CU in processed items (grid vertices)
        per clock cycle.
    """

    device: FpgaDevice
    clock_hz: float = 125e6
    cu_luts: float = 1_692.0
    cu_bram_blocks: float = 0.69
    cu_dsps: float = 18.0
    overhead_luts: float = 5_816.0
    overhead_bram_blocks: float = 1.79
    overhead_dsps: float = 9.0
    items_per_cycle_per_cu: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.clock_hz > self.device.max_clock_hz:
            raise ConfigurationError(
                f"clock {self.clock_hz/1e6:.0f} MHz outside (0, "
                f"{self.device.max_clock_hz/1e6:.0f}] MHz for {self.device.name}"
            )
        if self.cu_dsps <= 0:
            raise ConfigurationError("compute unit must use at least one DSP")

    # ------------------------------------------------------------------
    def max_units(self) -> int:
        """Largest CU count that fits after the shell overhead.

        The binding resource is whichever runs out first (DSPs for this
        design, matching the paper's "DSP 94-100%" rows).
        """
        budgets = [
            (self.device.luts - self.overhead_luts, self.cu_luts),
            (self.device.bram_blocks - self.overhead_bram_blocks, self.cu_bram_blocks),
            (self.device.dsps - self.overhead_dsps, self.cu_dsps),
        ]
        counts = []
        for budget, per_cu in budgets:
            if budget < 0:
                return 0
            counts.append(int(budget // per_cu) if per_cu > 0 else 10**9)
        return max(min(counts), 0)

    def usage(self, n_units: int) -> ResourceUsage:
        """Utilization of ``n_units`` CUs plus the shell.

        Raises
        ------
        ResourceExceededError
            If the configuration does not fit on the device.
        """
        if n_units < 0:
            raise ConfigurationError(f"n_units must be >= 0, got {n_units}")
        luts = self.overhead_luts + n_units * self.cu_luts
        bram = self.overhead_bram_blocks + n_units * self.cu_bram_blocks
        dsps = self.overhead_dsps + n_units * self.cu_dsps
        usage = ResourceUsage(
            luts=luts,
            bram_blocks=bram,
            dsps=dsps,
            lut_fraction=luts / self.device.luts,
            bram_fraction=bram / self.device.bram_blocks,
            dsp_fraction=dsps / self.device.dsps,
        )
        if not usage.fits():
            raise ResourceExceededError(
                f"{n_units} CUs exceed {self.device.name}: "
                f"logic {usage.lut_fraction:.1%}, ram {usage.bram_fraction:.1%}, "
                f"dsp {usage.dsp_fraction:.1%}"
            )
        return usage

    # ------------------------------------------------------------------
    def items_per_second(self, n_units: int | None = None) -> float:
        """Aggregate streaming throughput in items (vertices) per second."""
        units = self.max_units() if n_units is None else n_units
        if units < 1:
            return 0.0
        return units * self.items_per_cycle_per_cu * self.clock_hz

    def seconds_for_items(self, n_items: float, n_units: int | None = None) -> float:
        """Time to stream ``n_items`` through the CU array."""
        if n_items < 0:
            raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
        rate = self.items_per_second(n_units)
        if rate <= 0:
            raise ResourceExceededError("design has no compute units")
        return n_items / rate
