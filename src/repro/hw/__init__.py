"""Hardware platform models.

Everything the paper measures on silicon is *modeled* here (the repro band
notes hardware energy data is the non-reproducible ingredient). The models
are deliberately simple and documented: per-operation energies anchored to
published numbers (Horowitz, ISSCC 2014) with standard scaling laws, FPGA
resource packing from device datasheets, and link models from line rates.

Absolute joules are estimates; every paper-facing experiment depends only
on *relative* behaviour (orderings, ratios, crossover points), which these
models preserve.
"""

from repro.hw.energy import EnergyReport
from repro.hw.technology import TechParams, TECH_28NM
from repro.hw.asic import AsicEnergyModel
from repro.hw.mcu import MicrocontrollerModel, MCU_CORTEX_M0_CLASS
from repro.hw.fpga import (
    FpgaDevice,
    FpgaDesign,
    ResourceUsage,
    ZYNQ_7020,
    VIRTEX_ULTRASCALE_PLUS,
)
from repro.hw.gpu import GpuModel, QUADRO_K2200_CLASS
from repro.hw.network import (
    LinkModel,
    ETHERNET_25G,
    ETHERNET_400G,
    LOW_POWER_RADIO,
    RF_BACKSCATTER,
    WIFI_CLASS,
)

__all__ = [
    "EnergyReport",
    "TechParams",
    "TECH_28NM",
    "AsicEnergyModel",
    "MicrocontrollerModel",
    "MCU_CORTEX_M0_CLASS",
    "FpgaDevice",
    "FpgaDesign",
    "ResourceUsage",
    "ZYNQ_7020",
    "VIRTEX_ULTRASCALE_PLUS",
    "GpuModel",
    "QUADRO_K2200_CLASS",
    "LinkModel",
    "ETHERNET_25G",
    "ETHERNET_400G",
    "LOW_POWER_RADIO",
    "RF_BACKSCATTER",
    "WIFI_CLASS",
]
