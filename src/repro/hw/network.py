"""Communication link models.

The paper's central quantity is the *communication cost* of offloading a
block's output. For the VR rig that cost is a frame rate over Ethernet; for
the harvested-energy camera it is joules per bit over an RF uplink. One
class covers both: a link has a line rate, a protocol efficiency, and a
transmit energy per bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.units import GBPS, KBPS, MBPS, bytes_to_bits


@dataclass(frozen=True)
class LinkModel:
    """A point-to-point uplink.

    Parameters
    ----------
    name:
        Label used in reports.
    raw_bps:
        Line rate in bits/second.
    efficiency:
        Fraction of the line rate usable as goodput (protocol overhead).
    tx_energy_per_bit:
        Transmit-side energy in joules/bit (0 for mains-powered links
        where the paper treats communication as a pure throughput cost).
    """

    name: str
    raw_bps: float
    efficiency: float = 1.0
    tx_energy_per_bit: float = 0.0

    def __post_init__(self) -> None:
        if self.raw_bps <= 0:
            raise HardwareModelError(f"link rate must be positive, got {self.raw_bps}")
        if not 0 < self.efficiency <= 1:
            raise HardwareModelError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )
        if self.tx_energy_per_bit < 0:
            raise HardwareModelError("tx energy per bit must be >= 0")

    @property
    def goodput_bps(self) -> float:
        """Usable bits per second."""
        return self.raw_bps * self.efficiency

    def seconds_for_bytes(self, num_bytes: float) -> float:
        """Transfer time for a payload."""
        if num_bytes < 0:
            raise HardwareModelError(f"payload must be >= 0 bytes, got {num_bytes}")
        return bytes_to_bits(num_bytes) / self.goodput_bps

    def fps_for_bytes(self, bytes_per_frame: float) -> float:
        """Sustainable frame rate for a per-frame payload (inf for zero)."""
        if bytes_per_frame <= 0:
            return float("inf")
        return self.goodput_bps / bytes_to_bits(bytes_per_frame)

    def tx_energy_for_bytes(self, num_bytes: float) -> float:
        """Transmit energy for a payload in joules."""
        if num_bytes < 0:
            raise HardwareModelError(f"payload must be >= 0 bytes, got {num_bytes}")
        return bytes_to_bits(num_bytes) * self.tx_energy_per_bit


#: The paper's evaluation link ("we assumed transfer speeds of 25 Gigabit
#: Ethernet"); efficiency 1.0 keeps the numbers directly comparable.
ETHERNET_25G = LinkModel(name="25GbE", raw_bps=25 * GBPS)

#: The paper's hypothetical future link for the scaling discussion.
ETHERNET_400G = LinkModel(name="400GbE", raw_bps=400 * GBPS)

#: WISPCam-class backscatter uplink: EPC Gen2-style rates. Backscatter
#: modulation itself is nearly free; the per-bit figure covers the
#: modulator, clocking and framing overhead on the tag side.
RF_BACKSCATTER = LinkModel(
    name="rf-backscatter",
    raw_bps=256 * KBPS,
    efficiency=0.8,
    tx_energy_per_bit=60e-12,
)

#: Consumer smart-camera uplink: 802.11g/n-class radio at its realistic
#: ~50% MAC efficiency. Mains- or battery-powered but not free to use:
#: ~5 nJ/bit covers PA plus baseband at typical WiFi energy/bit figures.
WIFI_CLASS = LinkModel(
    name="wifi",
    raw_bps=54 * MBPS,
    efficiency=0.5,
    tx_energy_per_bit=5e-9,
)

#: Battery-node low-power radio (BLE/802.15.4-class): narrowband and
#: expensive per bit relative to backscatter — the regime where
#: in-camera compression pays its energy back many times over.
LOW_POWER_RADIO = LinkModel(
    name="low-power-radio",
    raw_bps=1 * MBPS,
    efficiency=0.6,
    tx_energy_per_bit=50e-9,
)
