"""Technology parameters and scaling laws for the ASIC energy models.

Anchor numbers follow Horowitz's widely-cited ISSCC 2014 energy table
(45 nm, ~0.9 V), scaled to a 28 nm-class process (the paper's accelerators
and the Zynq are TSMC 28 nm). Scaling laws used:

* dynamic energy scales with ``(V / V_nominal)^2``;
* multiplier energy scales roughly quadratically with operand width;
* adder/register/mux energy scales linearly with width;
* SRAM read energy scales with word width and weakly (log) with capacity;
* leakage power is per-gate-equivalent and exponential-ish in voltage —
  modeled linearly around the nominal point, which is adequate for the
  0.6-1.0 V window explored here.

Absolute values are estimates (the repro band flags hardware energy as the
non-reproducible input); all paper-facing conclusions rest on ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareModelError
from repro.units import PJ


@dataclass(frozen=True)
class TechParams:
    """Per-process energy anchors, all at nominal voltage, in joules."""

    name: str
    nominal_voltage: float
    # Anchors at reference widths (8-bit ops, 32-bit SRAM word).
    mac8_energy: float  # 8-bit multiply-accumulate
    add8_energy: float  # 8-bit add
    register8_energy: float  # 8-bit flop bank toggle
    sram_read32_energy_8kb: float  # 32-bit read from an 8 KiB SRAM
    leakage_per_kgate: float  # watts per 1000 gate-equivalents
    gate_cap_speed: float  # relative delay unit (for f-max checks)
    #: Fraction of an SRAM access burned in width-independent periphery
    #: (decoder, wordline, sense-amp enable); the rest scales with width.
    sram_fixed_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.nominal_voltage <= 0:
            raise HardwareModelError("nominal voltage must be positive")

    # ------------------------------------------------------------------
    def voltage_factor(self, voltage: float) -> float:
        """Dynamic-energy multiplier for operation at ``voltage``."""
        if not 0.4 <= voltage <= 1.3:
            raise HardwareModelError(
                f"voltage {voltage} outside the model's [0.4, 1.3] V envelope"
            )
        return (voltage / self.nominal_voltage) ** 2

    def mac_energy(self, bits: int, voltage: float | None = None) -> float:
        """Energy of one ``bits``-wide multiply-accumulate.

        Multiplier area/energy grows ~quadratically with operand width; the
        accumulate term is linear and folded into the anchor.
        """
        if bits < 1:
            raise HardwareModelError(f"bits must be >= 1, got {bits}")
        v = voltage if voltage is not None else self.nominal_voltage
        return self.mac8_energy * (bits / 8.0) ** 2 * self.voltage_factor(v)

    def add_energy(self, bits: int, voltage: float | None = None) -> float:
        """Energy of one ``bits``-wide addition (linear in width)."""
        v = voltage if voltage is not None else self.nominal_voltage
        return self.add8_energy * (bits / 8.0) * self.voltage_factor(v)

    def register_energy(self, bits: int, voltage: float | None = None) -> float:
        """Energy to clock ``bits`` of pipeline registers once."""
        v = voltage if voltage is not None else self.nominal_voltage
        return self.register8_energy * (bits / 8.0) * self.voltage_factor(v)

    def sram_read_energy(
        self, word_bits: int, capacity_bytes: float, voltage: float | None = None
    ) -> float:
        """Energy of one SRAM read.

        Width scaling is affine: a fixed periphery term (decoder, wordline,
        sense-amp enable) plus a per-bit term, anchored at a 32-bit word.
        Capacity grows the access ~15% per doubling beyond the 8 KiB
        anchor (bitline/decoder growth).
        """
        if word_bits < 1 or capacity_bytes <= 0:
            raise HardwareModelError("word_bits and capacity must be positive")
        v = voltage if voltage is not None else self.nominal_voltage
        width_factor = self.sram_fixed_fraction + (1.0 - self.sram_fixed_fraction) * (
            word_bits / 32.0
        )
        base = self.sram_read32_energy_8kb * width_factor
        cap_factor = 1.0 + 0.15 * max(np.log2(capacity_bytes / 8192.0), -2.0)
        return base * max(cap_factor, 0.3) * self.voltage_factor(v)

    def sram_write_energy(
        self, word_bits: int, capacity_bytes: float, voltage: float | None = None
    ) -> float:
        """SRAM write, modeled at ~1.2x the read energy."""
        return 1.2 * self.sram_read_energy(word_bits, capacity_bytes, voltage)

    def leakage_power(self, kilo_gates: float, voltage: float | None = None) -> float:
        """Static power of ``kilo_gates`` thousand gate-equivalents."""
        if kilo_gates < 0:
            raise HardwareModelError(f"kilo_gates must be >= 0, got {kilo_gates}")
        v = voltage if voltage is not None else self.nominal_voltage
        # Leakage drops roughly linearly with voltage in this window.
        return self.leakage_per_kgate * kilo_gates * (v / self.nominal_voltage)

    def max_clock_at(self, voltage: float, clock_at_nominal: float,
                     threshold_voltage: float = 0.35) -> float:
        """Achievable clock at a supply voltage (alpha-power delay law).

        ``f(V) ~ (V - Vth)^1.3 / V``, normalized so the design's nominal
        operating point maps to ``clock_at_nominal``. This is the standard
        above-threshold DVFS scaling used for voltage-frequency sweeps.
        """
        if clock_at_nominal <= 0:
            raise HardwareModelError("nominal clock must be positive")
        if voltage <= threshold_voltage:
            raise HardwareModelError(
                f"voltage {voltage} at or below threshold {threshold_voltage}"
            )
        self.voltage_factor(voltage)  # reuse the envelope check
        alpha = 1.3

        def speed(v: float) -> float:
            return (v - threshold_voltage) ** alpha / v

        return clock_at_nominal * speed(voltage) / speed(self.nominal_voltage)


#: 28 nm-class process: Horowitz 45 nm anchors scaled by ~0.5x capacitance.
TECH_28NM = TechParams(
    name="28nm-class",
    nominal_voltage=0.9,
    mac8_energy=0.15 * PJ,
    add8_energy=0.02 * PJ,
    register8_energy=0.012 * PJ,
    sram_read32_energy_8kb=2.5 * PJ,
    leakage_per_kgate=6.0e-9,  # 6 nW per kGE — low-leakage flavor
    gate_cap_speed=1.0,
)
