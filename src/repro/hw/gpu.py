"""GPU throughput model (the paper's NVIDIA Quadro K2200 baseline).

A roofline-style model: a kernel's execution time is the maximum of its
compute time (at an achievable fraction of peak FLOPS) and its memory time
(at an achievable fraction of peak bandwidth), plus a fixed launch/driver
overhead per kernel. Bilateral-grid filtering is irregular (scattered
grid-vertex access), so the achievable fractions are well below peak — the
defaults encode that, calibrated against the Halide-tuned baseline the
paper measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class GpuModel:
    """Roofline throughput model of a discrete GPU.

    Parameters
    ----------
    name:
        Label for reports.
    peak_flops:
        Single-precision peak, FLOP/s.
    peak_bytes_per_s:
        Memory bandwidth.
    compute_efficiency, bandwidth_efficiency:
        Achievable fractions of the peaks for the modeled kernel class.
    launch_overhead_s:
        Fixed per-kernel overhead (launch + sync).
    idle_power, active_power:
        For energy estimates (board power).
    """

    name: str
    peak_flops: float
    peak_bytes_per_s: float
    compute_efficiency: float = 0.25
    bandwidth_efficiency: float = 0.5
    launch_overhead_s: float = 50e-6
    idle_power: float = 10.0
    active_power: float = 60.0

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.peak_bytes_per_s <= 0:
            raise HardwareModelError("peaks must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise HardwareModelError("compute_efficiency must be in (0, 1]")
        if not 0 < self.bandwidth_efficiency <= 1:
            raise HardwareModelError("bandwidth_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------
    def kernel_seconds(self, flops: float, bytes_moved: float, kernels: int = 1) -> float:
        """Roofline execution time of a kernel (or fused kernel sequence)."""
        if flops < 0 or bytes_moved < 0 or kernels < 0:
            raise HardwareModelError("workload terms must be >= 0")
        compute = flops / (self.peak_flops * self.compute_efficiency)
        memory = bytes_moved / (self.peak_bytes_per_s * self.bandwidth_efficiency)
        return max(compute, memory) + kernels * self.launch_overhead_s

    def kernel_energy(self, seconds: float) -> float:
        """Board energy over an active period."""
        if seconds < 0:
            raise HardwareModelError(f"seconds must be >= 0, got {seconds}")
        return self.active_power * seconds


#: Quadro K2200-class: 640 cores @ ~1.1 GHz => ~1.4 TFLOPS SP, 80 GB/s.
QUADRO_K2200_CLASS = GpuModel(
    name="Quadro K2200-class",
    peak_flops=1.4e12,
    peak_bytes_per_s=80e9,
)
