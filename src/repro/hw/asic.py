"""Shared base for fixed-function ASIC block models.

An :class:`AsicEnergyModel` binds a technology, a clock and a voltage, and
provides the primitive-operation energies every accelerator model in this
repo composes (SNNAP PEs, the Viola-Jones cascade engine, the motion
detector). Cycle counting lives in each block's own simulator; this class
turns (operation counts, cycle counts) into joules and watts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.energy import EnergyReport
from repro.hw.technology import TECH_28NM, TechParams


@dataclass(frozen=True)
class AsicEnergyModel:
    """Operating point of an on-chip fixed-function block.

    Parameters
    ----------
    tech:
        Process parameters.
    clock_hz:
        Block clock (paper's NN accelerator: 30 MHz).
    voltage:
        Supply voltage (paper: 0.9 V).
    kilo_gates:
        Logic size in thousands of gate-equivalents, for leakage.
    """

    tech: TechParams = TECH_28NM
    clock_hz: float = 30e6
    voltage: float = 0.9
    kilo_gates: float = 50.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise HardwareModelError(f"clock must be positive, got {self.clock_hz}")

    # ------------------------------------------------------------------
    def mac_energy(self, bits: int) -> float:
        return self.tech.mac_energy(bits, self.voltage)

    def add_energy(self, bits: int) -> float:
        return self.tech.add_energy(bits, self.voltage)

    def register_energy(self, bits: int) -> float:
        return self.tech.register_energy(bits, self.voltage)

    def sram_read_energy(self, word_bits: int, capacity_bytes: float) -> float:
        return self.tech.sram_read_energy(word_bits, capacity_bytes, self.voltage)

    def sram_write_energy(self, word_bits: int, capacity_bytes: float) -> float:
        return self.tech.sram_write_energy(word_bits, capacity_bytes, self.voltage)

    # ------------------------------------------------------------------
    def leakage_power(self) -> float:
        """Static power of the block in watts."""
        return self.tech.leakage_power(self.kilo_gates, self.voltage)

    def leakage_energy(self, cycles: int) -> float:
        """Static energy over ``cycles`` at this clock."""
        if cycles < 0:
            raise HardwareModelError(f"cycles must be >= 0, got {cycles}")
        return self.leakage_power() * cycles / self.clock_hz

    def seconds(self, cycles: int) -> float:
        """Wall-clock time of ``cycles``."""
        return cycles / self.clock_hz

    def report_with_leakage(self, report: EnergyReport, cycles: int) -> EnergyReport:
        """Attach the leakage term for a run of ``cycles`` to a report."""
        return EnergyReport(dict(report.components)).add(
            "leakage", self.leakage_energy(cycles)
        )

    def average_power(self, report: EnergyReport, cycles: int) -> float:
        """Mean power over a run: total energy / elapsed time."""
        seconds = self.seconds(cycles)
        if seconds <= 0:
            raise HardwareModelError("cannot compute power over zero time")
        return report.total / seconds
