"""General-purpose microcontroller baseline.

The paper's low-power case study claims "performance and energy efficiency
improvements over a general purpose microprocessor"; this model is that
baseline: a Cortex-M0-class MCU executing the pipeline stages in software.

The model is (cycles-per-primitive) x (energy-per-cycle): standard
microbenchmark-style accounting. Energy per cycle (~10-30 pJ at sub-50 MHz
in 28-40 nm flows, i.e. 10-30 uW/MHz) comes from vendor datasheets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareModelError
from repro.hw.energy import EnergyReport

#: Software cycle costs of the primitives the vision stages use.
DEFAULT_CYCLES_PER_OP = {
    "mac8": 6.0,  # load x2, 32x32 multiply (1-cycle HW mult), add, store amortized
    "mac16": 8.0,
    "mac_float": 60.0,  # soft-float on an M0-class core
    "add": 1.0,
    "compare": 1.0,
    "load": 2.0,
    "store": 2.0,
    "branch": 2.0,
    "sigmoid_sw": 40.0,  # polynomial/LUT hybrid in software
    "pixel_diff": 5.0,  # load-load-sub-abs-compare for motion detection
    "haar_rect": 14.0,  # 4 loads + 3 adds + weight multiply (integral image)
}


@dataclass(frozen=True)
class MicrocontrollerModel:
    """Energy/latency model of a small in-order MCU.

    Parameters
    ----------
    name:
        Label used in reports.
    clock_hz:
        Core clock.
    energy_per_cycle:
        Joules per core cycle (includes flash/SRAM fetch overheads).
    sleep_power:
        Deep-sleep floor in watts (retention + RTC).
    cycles_per_op:
        Primitive costs; override entries to model a different core.
    """

    name: str = "cortex-m0-class"
    clock_hz: float = 48e6
    energy_per_cycle: float = 20e-12
    sleep_power: float = 1e-6
    cycles_per_op: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CYCLES_PER_OP)
    )

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.energy_per_cycle <= 0:
            raise HardwareModelError("clock and energy/cycle must be positive")

    # ------------------------------------------------------------------
    def cycles_for(self, op: str, count: float = 1.0) -> float:
        """Cycle cost of ``count`` primitives of type ``op``."""
        if op not in self.cycles_per_op:
            raise HardwareModelError(
                f"unknown primitive {op!r}; known: {sorted(self.cycles_per_op)}"
            )
        if count < 0:
            raise HardwareModelError(f"count must be >= 0, got {count}")
        return self.cycles_per_op[op] * count

    def energy_for(self, op: str, count: float = 1.0) -> float:
        """Energy in joules of ``count`` primitives."""
        return self.cycles_for(op, count) * self.energy_per_cycle

    def seconds_for(self, op: str, count: float = 1.0) -> float:
        """Wall-clock time of ``count`` primitives."""
        return self.cycles_for(op, count) / self.clock_hz

    # ------------------------------------------------------------------
    def run_op_mix(self, op_counts: dict[str, float]) -> tuple[EnergyReport, float]:
        """Execute an operation mix; returns (energy report, seconds)."""
        report = EnergyReport()
        cycles = 0.0
        for op, count in op_counts.items():
            c = self.cycles_for(op, count)
            cycles += c
            report.add(f"mcu:{op}", c * self.energy_per_cycle)
        return report, cycles / self.clock_hz

    def sleep_energy(self, seconds: float) -> float:
        """Energy burned sleeping for ``seconds``."""
        if seconds < 0:
            raise HardwareModelError(f"seconds must be >= 0, got {seconds}")
        return self.sleep_power * seconds


#: Default baseline instance used throughout the benchmarks.
MCU_CORTEX_M0_CLASS = MicrocontrollerModel()
