"""Harvested-budget offload scenarios: the power supply sets the bar.

The energy-domain scenarios in :mod:`repro.faceauth.scenario` take an
explicit joules-per-frame budget; here the budget is *derived from the
RF harvesting front end* — :class:`repro.harvest.harvester.RfHarvester`
turns a reader distance into DC power, and dividing by the target
capture rate gives the per-frame energy a battery-free node can
actually sustain at that range. One factory therefore spans the paper's
whole operating-range axis: the catalog registers a near-reader entry
(generous budget, most configurations feasible) and a far-reader entry
(starved budget, only the deepest accelerated cuts survive), and
campaigns can sweep distance by overriding one parameter.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.explore.catalog import register_scenario, resolve_link
from repro.explore.scenario import Scenario
from repro.harvest.harvester import RfHarvester
from repro.hw.network import RF_BACKSCATTER, LinkModel


def harvested_budget_j(
    distance_m: float,
    capture_fps: float = 1.0,
    harvester: RfHarvester | None = None,
) -> float:
    """Joules per captured frame the harvester sustains at a distance.

    Steady state: average power in must cover average energy out, so
    the budget is harvested DC power divided by the capture rate. Zero
    beyond the rectifier's sensitivity range — a scenario built there
    fails loudly rather than exploring against a vacuous budget.
    """
    if capture_fps <= 0:
        raise ConfigurationError(f"capture_fps must be positive, got {capture_fps}")
    harvester = harvester or RfHarvester()
    budget = harvester.harvested_power(distance_m) / capture_fps
    if budget <= 0.0:
        raise ConfigurationError(
            f"no harvested power at {distance_m} m (beyond rectifier "
            "sensitivity); move the node closer or lower capture_fps"
        )
    return budget


@register_scenario(
    "harvest-near",
    domain="energy",
    summary="Face-auth pipeline on the budget harvested 1.5 m from the reader",
    defaults={"distance_m": 1.5},
)
@register_scenario(
    "harvest-far",
    domain="energy",
    summary="Face-auth pipeline on the starved budget harvested 3 m from the reader",
    defaults={"distance_m": 3.0},
)
def harvested_scenario(
    distance_m: float = 2.0,
    capture_fps: float = 1.0,
    harvester: RfHarvester | None = None,
    link: str | LinkModel = RF_BACKSCATTER,
    name: str | None = None,
) -> Scenario:
    """The face-authentication pipeline against the energy budget the
    RF supply delivers at ``distance_m`` and ``capture_fps``."""
    from repro.faceauth.scenario import TRACE_PASS_RATES, build_offload_pipeline

    link = resolve_link(link)
    return Scenario(
        name=name or f"faceauth-harvested@{distance_m:g}m",
        pipeline=build_offload_pipeline(),
        link=link,
        domain="energy",
        energy_budget_j=harvested_budget_j(distance_m, capture_fps, harvester),
        pass_rates=dict(TRACE_PASS_RATES),
    )
