"""Energy-harvesting substrate for the WISPCam-class camera node.

The paper's first case study runs "solely on energy harvested from RFID
readers": an RF harvester charges a capacitor, and the node duty-cycles —
capture, process, (maybe) transmit — whenever enough charge accumulates.
This package models that loop:

* :mod:`.harvester` — Friis-law RF power delivery + rectifier efficiency;
* :mod:`.capacitor` — storage element with usable-energy window;
* :mod:`.scheduler` — the duty-cycle simulator that turns per-frame task
  energies into an achievable frame rate;
* :mod:`.scenario` — harvested-budget catalog scenarios: the budget a
  reader distance sustains, fed to the exploration engine.
"""

from repro.harvest.harvester import RfHarvester
from repro.harvest.capacitor import Capacitor
from repro.harvest.scheduler import DutyCycleSimulator, FrameTask, HarvestTimeline
from repro.harvest.scenario import harvested_budget_j, harvested_scenario

__all__ = [
    "RfHarvester",
    "Capacitor",
    "DutyCycleSimulator",
    "FrameTask",
    "HarvestTimeline",
    "harvested_budget_j",
    "harvested_scenario",
]
