"""Duty-cycle simulation: harvested power in, achievable frame rate out.

The WISPCam loop: the node sleeps while the capacitor charges; when enough
usable energy is stored for the next frame's tasks, it wakes, captures,
processes (through whatever pipeline configuration is being evaluated) and
possibly transmits, then sleeps again. The achievable frame rate is set by
the charging time — i.e. directly by the per-frame energy, which is what
the in-camera filtering blocks reduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.harvest.capacitor import Capacitor
from repro.harvest.harvester import RfHarvester


@dataclass(frozen=True)
class FrameTask:
    """Energy/latency demand of one frame under some pipeline config."""

    name: str
    energy_j: float
    active_seconds: float

    def __post_init__(self) -> None:
        if self.energy_j < 0 or self.active_seconds < 0:
            raise ConfigurationError("task energy and time must be >= 0")


@dataclass
class HarvestTimeline:
    """Record of a simulated run."""

    frames_completed: int = 0
    elapsed_seconds: float = 0.0
    charge_seconds: float = 0.0
    active_seconds: float = 0.0
    frame_times: list[float] = field(default_factory=list)

    @property
    def achieved_fps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.frames_completed / self.elapsed_seconds


class DutyCycleSimulator:
    """Event-driven simulation of the charge/execute loop.

    Parameters
    ----------
    harvester:
        RF power source model.
    capacitor:
        Storage element (its state mutates during simulation).
    distance_m:
        Reader-to-node distance; fixes the harvested power.
    sleep_power_w:
        Node floor draw while charging (RTC + retention + harvester
        controller) — subtracted from the harvested power.
    """

    def __init__(
        self,
        harvester: RfHarvester,
        capacitor: Capacitor,
        distance_m: float,
        sleep_power_w: float = 0.5e-6,
    ):
        self.harvester = harvester
        self.capacitor = capacitor
        self.distance_m = distance_m
        self.sleep_power = sleep_power_w
        self.net_charge_power = max(
            harvester.harvested_power(distance_m) - sleep_power_w, 0.0
        )

    # ------------------------------------------------------------------
    def sustainable(self, task: FrameTask) -> bool:
        """Whether the task can ever run (fits the capacitor, power > 0)."""
        return (
            self.net_charge_power > 0
            and task.energy_j <= self.capacitor.capacity + 1e-15
        )

    def steady_state_fps(self, task: FrameTask) -> float:
        """Long-run frame rate: energy balance, ignoring capacitor size.

        ``fps = P_net / E_frame`` capped by the active-time limit
        ``1 / t_active``. Returns 0 when the task can never run.
        """
        if not self.sustainable(task):
            return 0.0
        if task.energy_j <= 0:
            return float("inf") if task.active_seconds <= 0 else 1.0 / task.active_seconds
        fps_energy = self.net_charge_power / task.energy_j
        if task.active_seconds > 0:
            return min(fps_energy, 1.0 / task.active_seconds)
        return fps_energy

    # ------------------------------------------------------------------
    def run(
        self,
        task: FrameTask,
        duration_seconds: float,
        max_frames: int | None = None,
    ) -> HarvestTimeline:
        """Simulate the loop for ``duration_seconds`` of wall-clock time."""
        if duration_seconds <= 0:
            raise ConfigurationError("duration must be positive")
        timeline = HarvestTimeline()
        if not self.sustainable(task):
            timeline.elapsed_seconds = duration_seconds
            return timeline

        while timeline.elapsed_seconds < duration_seconds:
            if max_frames is not None and timeline.frames_completed >= max_frames:
                break
            if not self.capacitor.can_supply(task.energy_j):
                deficit = task.energy_j - self.capacitor.usable_energy
                wait = self.capacitor.seconds_to_store(deficit, self.net_charge_power)
                wait = max(wait, 1e-6)
                self.capacitor.charge(self.net_charge_power, wait)
                timeline.charge_seconds += wait
                timeline.elapsed_seconds += wait
                continue
            self.capacitor.discharge(task.energy_j)
            # Harvesting continues during the (short) active phase.
            self.capacitor.charge(self.net_charge_power, task.active_seconds)
            timeline.active_seconds += task.active_seconds
            timeline.elapsed_seconds += task.active_seconds
            timeline.frames_completed += 1
            timeline.frame_times.append(timeline.elapsed_seconds)
        return timeline
