"""Storage capacitor model with a usable-voltage window.

The WISPCam buffers harvested charge in a capacitor and can only operate
while the rail stays above the regulator dropout; the usable energy is
therefore ``0.5 * C * (v_max^2 - v_min^2)``, not the full stored energy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class Capacitor:
    """A capacitor charged by the harvester and drained by tasks.

    Parameters
    ----------
    capacitance_f:
        Capacitance in farads (WISPCam-class: millifarad supercaps).
    v_max:
        Charge target / clamp voltage.
    v_min:
        Minimum operating voltage (regulator dropout); below this the node
        browns out.
    v_initial:
        Starting voltage (defaults to ``v_min``: cold start).
    """

    def __init__(
        self,
        capacitance_f: float = 6.3e-3,
        v_max: float = 2.4,
        v_min: float = 1.8,
        v_initial: float | None = None,
    ):
        if capacitance_f <= 0:
            raise ConfigurationError(f"capacitance must be positive, got {capacitance_f}")
        if not 0 < v_min < v_max:
            raise ConfigurationError(f"need 0 < v_min < v_max, got {v_min}, {v_max}")
        self.capacitance = capacitance_f
        self.v_max = v_max
        self.v_min = v_min
        self.voltage = v_initial if v_initial is not None else v_min
        if not 0 <= self.voltage <= v_max:
            raise ConfigurationError(f"v_initial {self.voltage} outside [0, {v_max}]")

    # ------------------------------------------------------------------
    @property
    def usable_energy(self) -> float:
        """Joules available before brown-out."""
        v_eff = max(self.voltage, self.v_min)
        return 0.5 * self.capacitance * (v_eff**2 - self.v_min**2)

    @property
    def capacity(self) -> float:
        """Usable joules when fully charged."""
        return 0.5 * self.capacitance * (self.v_max**2 - self.v_min**2)

    @property
    def is_full(self) -> bool:
        return self.voltage >= self.v_max - 1e-9

    # ------------------------------------------------------------------
    def charge(self, power_w: float, seconds: float) -> None:
        """Integrate harvested power into stored charge (clamped)."""
        if power_w < 0 or seconds < 0:
            raise ConfigurationError("power and time must be >= 0")
        energy = 0.5 * self.capacitance * self.voltage**2 + power_w * seconds
        self.voltage = min(np.sqrt(2.0 * energy / self.capacitance), self.v_max)

    def can_supply(self, joules: float) -> bool:
        """Whether a task of ``joules`` fits in the usable window."""
        return joules <= self.usable_energy + 1e-15

    def discharge(self, joules: float) -> None:
        """Withdraw task energy.

        Raises
        ------
        ConfigurationError
            If the withdrawal would brown the node out; callers must check
            :meth:`can_supply` first (that is the scheduler's job).
        """
        if joules < 0:
            raise ConfigurationError(f"joules must be >= 0, got {joules}")
        if not self.can_supply(joules):
            raise ConfigurationError(
                f"discharge of {joules:.2e} J exceeds usable {self.usable_energy:.2e} J"
            )
        energy = 0.5 * self.capacitance * self.voltage**2 - joules
        self.voltage = np.sqrt(max(2.0 * energy / self.capacitance, 0.0))

    def seconds_to_store(self, joules: float, power_w: float) -> float:
        """Charging time needed to add ``joules`` of usable energy."""
        if power_w <= 0:
            return float("inf")
        return joules / power_w
