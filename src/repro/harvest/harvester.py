"""RF energy harvesting: Friis-law delivery plus rectifier efficiency.

Models the WISPCam power source: a UHF RFID reader (4 W EIRP is the FCC
limit the WISP literature assumes) illuminating a tag antenna; the
rectifier converts a fraction of the received RF to DC, with efficiency
falling off at low input power (threshold behaviour of the charge pump).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Speed of light, m/s.
_C = 299_792_458.0


@dataclass(frozen=True)
class RfHarvester:
    """RF-to-DC harvesting front end.

    Parameters
    ----------
    eirp_w:
        Reader effective isotropic radiated power (FCC cap: 4 W).
    frequency_hz:
        Carrier (UHF RFID: 915 MHz).
    antenna_gain:
        Tag antenna gain, linear (2 dBi ~= 1.58).
    peak_efficiency:
        Best-case RF-to-DC conversion efficiency of the rectifier.
    sensitivity_w:
        Received power below which the rectifier cannot start (-
        typical WISP-class CMOS rectifiers: ~ -14 dBm ~= 40 uW).
    """

    eirp_w: float = 4.0
    frequency_hz: float = 915e6
    antenna_gain: float = 1.58
    peak_efficiency: float = 0.30
    sensitivity_w: float = 40e-6

    def __post_init__(self) -> None:
        if self.eirp_w <= 0 or self.frequency_hz <= 0:
            raise ConfigurationError("eirp and frequency must be positive")
        if not 0 < self.peak_efficiency <= 1:
            raise ConfigurationError("peak_efficiency must be in (0, 1]")

    @property
    def wavelength(self) -> float:
        return _C / self.frequency_hz

    # ------------------------------------------------------------------
    def received_power(self, distance_m: float) -> float:
        """Friis free-space RF power at the tag antenna, watts."""
        if distance_m <= 0:
            raise ConfigurationError(f"distance must be positive, got {distance_m}")
        path_gain = (self.wavelength / (4.0 * np.pi * distance_m)) ** 2
        return self.eirp_w * self.antenna_gain * path_gain

    def rectifier_efficiency(self, received_w: float) -> float:
        """Conversion efficiency at a given input power.

        Zero below the sensitivity threshold, then rising smoothly to the
        peak — the standard charge-pump efficiency curve shape.
        """
        if received_w <= self.sensitivity_w:
            return 0.0
        # Saturating rise: reaches ~63% of peak one decade above threshold.
        excess = np.log10(received_w / self.sensitivity_w)
        return float(self.peak_efficiency * (1.0 - np.exp(-excess)))

    def harvested_power(self, distance_m: float) -> float:
        """DC power available for storage at a reader distance, watts."""
        received = self.received_power(distance_m)
        return received * self.rectifier_efficiency(received)

    def max_range(self, load_power_w: float, resolution_m: float = 0.01) -> float:
        """Largest distance at which the harvester sustains a load.

        Scans outward at ``resolution_m`` steps; returns 0 if the load
        cannot be sustained even at 10 cm.
        """
        if load_power_w <= 0:
            raise ConfigurationError("load power must be positive")
        distance = 0.1
        best = 0.0
        while distance < 30.0:
            if self.harvested_power(distance) >= load_power_w:
                best = distance
            else:
                if best > 0:
                    break
            distance += resolution_m
        return best
