"""The SNNAP accelerator studies as catalog exploration workloads.

Section III-A sweeps the accelerator's *hardware geometry* (PE count,
datapath width) at a fixed operating point; the DVFS extension sweeps
the operating point at a fixed geometry. Both are design spaces the
exploration engine already speaks — this module prices them as
cost-annotated :class:`~repro.core.pipeline.InCameraPipeline` blocks and
registers them in the shared scenario catalog
(:mod:`repro.explore.catalog`):

* ``snnap-geometry`` — the PE-count x bit-width grid of
  :func:`repro.snnap.geometry.evaluate_design` as the platform axis of
  an on-camera inference block: every (cut point, geometry) assignment
  of a patch-classification camera over a backscatter uplink, on a
  harvested energy budget;
* ``snnap-dvfs`` — the DVFS-aware progressive-filtering pipeline: each
  stage carries one implementation per :class:`~repro.snnap.dvfs.
  OperatingPoint`, so per-block voltage assignment becomes the
  enumerable axis (the fixed-function stages rescale through
  :func:`~repro.snnap.dvfs.scale_implementation`, the NN stage is
  re-priced exactly at every point).

Both entries evaluate under the energy domain: the question is which
silicon configuration keeps expected joules per captured frame within
the harvested budget, the Section III question at fleet scale.
"""

from __future__ import annotations

from repro.core.block import Block, Implementation
from repro.core.pipeline import InCameraPipeline
from repro.explore.catalog import register_scenario, resolve_link
from repro.explore.scenario import Scenario
from repro.hw.network import RF_BACKSCATTER, LinkModel
from repro.nn.mlp import MLP
from repro.snnap.dvfs import OperatingPoint, operating_points, scale_implementation
from repro.snnap.geometry import evaluate_design

#: The geometry grid of Section III-A (paper sweeps 1..32 PEs, picks 8;
#: 8-bit vs 16-bit is the precision study's 41% power headline).
PE_COUNTS = (1, 2, 4, 8, 16, 32)
BIT_WIDTHS = (8, 16)

#: The 400-input reference network's 20x20 8-bit patch.
PATCH_BYTES = 400.0

#: Patch-sensor readout energy: the faceauth QCIF sensor (1.1e-6 J for
#: 112x112) scaled to the 20x20 crop's pixel count.
PATCH_SENSOR_ENERGY_J = 3.5e-8

#: Fraction of patches the classifier reports (event-gated uplink).
DEFAULT_EVENT_RATE = 0.05

#: Harvested budget for the geometry study, in joules per captured
#: patch: sits between the 8-bit designs (~3.9e-8 total) and the
#: narrow 16-bit designs (~4.6e-8), so the bit-width tradeoff shows up
#: as a feasibility split rather than a uniform verdict.
DEFAULT_GEOMETRY_BUDGET_J = 4.5e-8

#: Per-block voltage grid of the DVFS pipeline (nominal 0.9 V inside).
DVFS_VOLTAGES = (0.6, 0.9, 1.1)

#: Harvested budget for the DVFS pipeline, joules per captured frame:
#: deep low-voltage cuts clear it, high-voltage and shallow cuts don't.
DEFAULT_DVFS_BUDGET_J = 2.5e-6


def reference_mlp(seed: int = 0) -> MLP:
    """The 400-8-1 reference network of the geometry study."""
    return MLP((400, 8, 1), seed=seed)


def _inference_implementation(
    model: MLP,
    n_pes: int,
    data_bits: int,
    name: str,
    point: OperatingPoint | None = None,
) -> Implementation:
    """One accelerator configuration priced as an Implementation."""
    design = evaluate_design(
        model,
        n_pes,
        data_bits,
        energy_model=None if point is None else point.energy_model,
    )
    return Implementation(
        platform=name,
        fps=design.throughput,
        energy_per_frame=design.energy_per_inference,
        active_seconds=1.0 / design.throughput,
    )


def build_geometry_pipeline(
    model: MLP | None = None,
    pe_counts: tuple[int, ...] = PE_COUNTS,
    bit_widths: tuple[int, ...] = BIT_WIDTHS,
    event_rate: float = DEFAULT_EVENT_RATE,
) -> InCameraPipeline:
    """The patch classifier with the geometry grid as its platform axis.

    Cut at 0: the raw patch crosses the uplink. Cut at 1: one of the
    PE x bits accelerator configurations classifies on camera and only
    event patches (``event_rate``) ship a 4-byte score.
    """
    model = model or reference_mlp()
    infer = Block(
        name="infer",
        output_bytes=4.0,
        pass_rate=event_rate,
        implementations={
            f"pe{n_pes:02d}x{bits}b": _inference_implementation(
                model, n_pes, bits, f"pe{n_pes:02d}x{bits}b"
            )
            for bits in bit_widths
            for n_pes in pe_counts
        },
    )
    return InCameraPipeline(
        name="snnap-geometry",
        sensor_bytes=PATCH_BYTES,
        blocks=(infer,),
        sensor_energy_per_frame=PATCH_SENSOR_ENERGY_J,
    )


def build_dvfs_pipeline(
    voltages: tuple[float, ...] = DVFS_VOLTAGES,
    model: MLP | None = None,
    n_pes: int = 8,
    data_bits: int = 8,
) -> InCameraPipeline:
    """The progressive-filtering chain with per-block DVFS assignment.

    The faceauth ASIC chain (motion gate -> detect -> NN authenticate)
    with every stage offered at each operating point: the fixed-function
    stages' nominal costs rescale along the voltage-frequency curve, the
    NN stage is re-priced exactly by the accelerator model at each
    point. The enumerator's platform axis is now *voltage*, so the
    explored space is every (cut point, per-block voltage) assignment.
    """
    model = model or reference_mlp()
    points = operating_points(voltages)
    frame = 112.0 * 112.0
    motion_nominal = Implementation(
        "asic", fps=30.0, energy_per_frame=2.3e-7, active_seconds=1e-3
    )
    detect_nominal = Implementation(
        "asic", fps=10.0, energy_per_frame=6.6e-6, active_seconds=0.1
    )
    motion = Block(
        name="motion",
        output_bytes=frame,
        pass_rate=0.24,
        implementations={
            point.name: scale_implementation(motion_nominal, point)
            for point in points
        },
    )
    detect = Block(
        name="detect",
        output_bytes=400.0,
        pass_rate=0.3,
        implementations={
            point.name: scale_implementation(detect_nominal, point)
            for point in points
        },
    )
    auth = Block(
        name="auth",
        output_bytes=4.0,
        pass_rate=0.5,
        implementations={
            point.name: _inference_implementation(
                model, n_pes, data_bits, point.name, point
            )
            for point in points
        },
    )
    return InCameraPipeline(
        name="snnap-dvfs",
        sensor_bytes=frame,
        blocks=(motion, detect, auth),
        sensor_energy_per_frame=1.1e-6,
    )


@register_scenario(
    "snnap-geometry",
    domain="energy",
    summary="Sec III-A: the PE-count x bit-width accelerator grid on a harvested patch budget",
)
def snnap_geometry_scenario(
    link: str | LinkModel = RF_BACKSCATTER,
    energy_budget_j: float | None = DEFAULT_GEOMETRY_BUDGET_J,
    pe_counts: tuple[int, ...] = PE_COUNTS,
    bit_widths: tuple[int, ...] = BIT_WIDTHS,
    event_rate: float = DEFAULT_EVENT_RATE,
    seed: int = 0,
    name: str | None = None,
) -> Scenario:
    """The geometry study as a design space: which accelerator
    configurations keep the patch camera within its harvested budget."""
    link = resolve_link(link)
    return Scenario(
        name=name or "snnap-geometry",
        pipeline=build_geometry_pipeline(
            model=reference_mlp(seed),
            pe_counts=pe_counts,
            bit_widths=bit_widths,
            event_rate=event_rate,
        ),
        link=link,
        domain="energy",
        energy_budget_j=energy_budget_j,
    )


@register_scenario(
    "snnap-dvfs",
    domain="energy",
    summary="DVFS-aware filtering chain: per-block voltage assignment on a harvested budget",
)
def snnap_dvfs_scenario(
    link: str | LinkModel = RF_BACKSCATTER,
    energy_budget_j: float | None = DEFAULT_DVFS_BUDGET_J,
    voltages: tuple[float, ...] = DVFS_VOLTAGES,
    seed: int = 0,
    name: str | None = None,
) -> Scenario:
    """The DVFS pipeline as a design space: which cut point and which
    per-stage operating points keep the chain within budget."""
    link = resolve_link(link)
    return Scenario(
        name=name or "snnap-dvfs",
        pipeline=build_dvfs_pipeline(voltages=voltages, model=reference_mlp(seed)),
        link=link,
        domain="energy",
        energy_budget_j=energy_budget_j,
    )
