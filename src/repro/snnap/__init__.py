"""SNNAP-style systolic neural-network accelerator model.

Figure 3 of the paper: one processing unit (PU) containing a chain of
fixed-point processing elements (PEs) with private weight SRAMs, a shared
input bus, a LUT-based sigmoid unit, and a vertically micro-coded sequencer.
The paper explores its design space along two axes — PE count (energy
optimum at 8) and datapath width (8-bit chosen, 41% power saving vs 16-bit).

Three layers of model live here:

* :mod:`.schedule` — closed-form cycle counts of the systolic schedule;
* :mod:`.accelerator` — functional simulation (bit-exact with
  :class:`repro.nn.QuantizedMLP`) plus per-component energy accounting;
* :mod:`.geometry` — the design-space sweep utilities behind the paper's
  geometry and bit-width studies.
"""

from repro.snnap.schedule import LayerSchedule, NetworkSchedule, schedule_network
from repro.snnap.accelerator import AcceleratorRun, SnnapAccelerator
from repro.snnap.geometry import DesignPoint, sweep_design_space

__all__ = [
    "LayerSchedule",
    "NetworkSchedule",
    "schedule_network",
    "AcceleratorRun",
    "SnnapAccelerator",
    "DesignPoint",
    "sweep_design_space",
]
