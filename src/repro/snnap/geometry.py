"""Design-space exploration for the PU geometry and datapath width.

Reproduces the two hardware studies of Section III-A:

* *geometry*: sweep PE count at fixed frequency/voltage, measure energy per
  inference — the paper finds a U-shape with the optimum at 8 PEs for the
  400-8-1 network;
* *precision*: sweep datapath width, measure power and accuracy — the
  paper picks 8-bit for a 41% power reduction over 16-bit at ~0.4%
  accuracy cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.asic import AsicEnergyModel
from repro.nn.mlp import MLP
from repro.snnap.accelerator import SnnapAccelerator


@dataclass(frozen=True)
class DesignPoint:
    """One accelerator configuration and its measured costs."""

    n_pes: int
    data_bits: int
    cycles_per_inference: int
    energy_per_inference: float  # joules
    power: float  # watts, while actively inferring
    throughput: float  # inferences per second
    accuracy_error: float | None = None  # classification error, if evaluated

    @property
    def energy_delay_product(self) -> float:
        return self.energy_per_inference * (1.0 / self.throughput)


def evaluate_design(
    model: MLP,
    n_pes: int,
    data_bits: int,
    energy_model: AsicEnergyModel | None = None,
    X_eval: np.ndarray | None = None,
    y_eval: np.ndarray | None = None,
) -> DesignPoint:
    """Instantiate one configuration and measure its costs."""
    accelerator = SnnapAccelerator(
        model, n_pes=n_pes, data_bits=data_bits, energy_model=energy_model
    )
    energy = accelerator._energy_per_sample().total
    cycles = accelerator.schedule.total_cycles
    clock = accelerator.energy_model.clock_hz
    error = None
    if X_eval is not None and y_eval is not None:
        error = accelerator.quantized.classification_error(X_eval, y_eval)
    return DesignPoint(
        n_pes=n_pes,
        data_bits=data_bits,
        cycles_per_inference=cycles,
        energy_per_inference=energy,
        power=energy / (cycles / clock),
        throughput=clock / cycles,
        accuracy_error=error,
    )


def sweep_design_space(
    model: MLP,
    pe_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    bit_widths: tuple[int, ...] = (8,),
    energy_model: AsicEnergyModel | None = None,
    X_eval: np.ndarray | None = None,
    y_eval: np.ndarray | None = None,
) -> list[DesignPoint]:
    """Cartesian sweep over geometry x precision."""
    if not pe_counts or not bit_widths:
        raise ConfigurationError("sweep axes must be non-empty")
    points = []
    for bits in bit_widths:
        for n_pes in pe_counts:
            points.append(
                evaluate_design(
                    model, n_pes, bits, energy_model, X_eval, y_eval
                )
            )
    return points


def energy_optimal(points: list[DesignPoint]) -> DesignPoint:
    """The sweep point minimizing energy per inference."""
    if not points:
        raise ConfigurationError("no design points given")
    return min(points, key=lambda p: p.energy_per_inference)


# The DVFS sweep moved to repro.snnap.dvfs (operating points are now a
# first-class object shared with the scenario catalog); re-exported here
# for the original import path.
from repro.snnap.dvfs import sweep_voltage  # noqa: E402,F401
