"""Closed-form cycle model of the systolic PU schedule.

Execution of one fully-connected layer with ``n_in`` inputs, ``n_out``
neurons and ``P`` PEs:

1. Neurons are assigned to PEs round-robin in *groups* of ``P`` (PE ``p``
   computes neurons ``p, p+P, ...``); a layer needs ``ceil(n_out / P)``
   groups.
2. Within a group, inputs stream over the shared bus one per cycle; every
   PE MACs the broadcast input against its private weight — ``n_in``
   cycles per group, plus a small pipeline fill.
3. Accumulators drain through the sigmoid unit (one value per cycle after
   a fixed latency).

Two structural inefficiencies fall straight out of this schedule, and they
are exactly the ones the paper reports:

* **Too few PEs** — more groups, so the input vector is re-streamed (and
  re-read from the input buffer) once per group, and control/leakage
  energy scales with the longer runtime ("scheduling inefficiencies").
* **Too many PEs** — the final group has idle PEs that still burn clock
  and leakage energy ("underutilized resources"): a 400-8-1 network can
  never use more than 8 PEs in its hidden layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Pipeline fill cycles per group (bus + PE + accumulator latches).
GROUP_FILL_CYCLES = 4
#: Sigmoid unit latency before its 1-value-per-cycle drain.
SIGMOID_LATENCY = 2
#: Fixed sequencer cycles to launch a layer (microcode dispatch, DMA setup).
LAYER_OVERHEAD_CYCLES = 8


@dataclass(frozen=True)
class LayerSchedule:
    """Cycle/work accounting for one layer on a given PE count."""

    n_in: int
    n_out: int
    n_pes: int
    groups: int
    mac_cycles: int
    sigmoid_cycles: int
    total_cycles: int
    macs: int
    idle_pe_cycles: int
    input_streams: int  # how many times the input vector crosses the bus

    @property
    def pe_utilization(self) -> float:
        """Fraction of PE-cycles during the MAC phase doing useful MACs."""
        busy = self.mac_cycles * self.n_pes
        return self.macs / busy if busy > 0 else 0.0


def schedule_layer(n_in: int, n_out: int, n_pes: int) -> LayerSchedule:
    """Schedule one fully-connected layer."""
    if n_in < 1 or n_out < 1:
        raise ConfigurationError(f"layer dims must be >= 1, got {n_in}x{n_out}")
    if n_pes < 1:
        raise ConfigurationError(f"n_pes must be >= 1, got {n_pes}")
    groups = -(-n_out // n_pes)  # ceil division
    mac_cycles = groups * n_in
    sigmoid_cycles = SIGMOID_LATENCY + n_out
    total = LAYER_OVERHEAD_CYCLES + groups * (n_in + GROUP_FILL_CYCLES) + sigmoid_cycles
    macs = n_in * n_out
    idle = mac_cycles * n_pes - macs
    return LayerSchedule(
        n_in=n_in,
        n_out=n_out,
        n_pes=n_pes,
        groups=groups,
        mac_cycles=mac_cycles,
        sigmoid_cycles=sigmoid_cycles,
        total_cycles=total,
        macs=macs,
        idle_pe_cycles=idle,
        input_streams=groups,
    )


@dataclass(frozen=True)
class NetworkSchedule:
    """Schedule of a whole MLP: per-layer schedules plus totals."""

    layers: tuple[LayerSchedule, ...]

    @property
    def total_cycles(self) -> int:
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_idle_pe_cycles(self) -> int:
        return sum(layer.idle_pe_cycles for layer in self.layers)

    @property
    def mac_utilization(self) -> float:
        """Useful MACs over PE-cycles across the whole network's MAC phases."""
        busy = sum(layer.mac_cycles * layer.n_pes for layer in self.layers)
        return self.total_macs / busy if busy > 0 else 0.0


def schedule_network(layer_sizes: tuple[int, ...], n_pes: int) -> NetworkSchedule:
    """Schedule every layer of an MLP given as neuron counts per layer."""
    if len(layer_sizes) < 2:
        raise ConfigurationError(f"need >= 2 layers, got {layer_sizes}")
    layers = tuple(
        schedule_layer(n_in, n_out, n_pes)
        for n_in, n_out in zip(layer_sizes[:-1], layer_sizes[1:])
    )
    return NetworkSchedule(layers=layers)
