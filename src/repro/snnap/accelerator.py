"""Functional + energy simulation of the SNNAP-style PU.

:class:`SnnapAccelerator` executes a quantized MLP exactly as the hardware
would (the arithmetic contract lives in :class:`repro.nn.QuantizedMLP`;
equality is asserted in tests) and charges every micro-architectural event
to an energy component:

========================  ====================================================
component                 events charged
========================  ====================================================
``pe_mac``                one fixed-point MAC per (input, neuron) pair
``weight_sram``           one weight read per MAC from the PE's private SRAM
``input_buffer``          one input read + bus broadcast per streamed input
                          (re-streamed once per neuron group — the few-PE
                          penalty)
``pe_idle``               clock energy of idle PEs in partially-filled
                          groups (the many-PE penalty)
``sigmoid``               one LUT read per neuron
``control``               sequencer + microcode energy per cycle
``leakage``               static power x runtime, area grows with PE count
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.asic import AsicEnergyModel
from repro.hw.energy import EnergyReport
from repro.nn.mlp import MLP
from repro.nn.quantize import QuantizedMLP
from repro.snnap.schedule import NetworkSchedule, schedule_network

#: Control-path energy per cycle, expressed in 8-bit register-equivalents.
_CONTROL_REG_EQUIV = 6.0
#: Logic size of the PU shell (sequencer, bus, sigmoid unit) in kGE.
_BASE_KILO_GATES = 12.0
#: Logic size per PE (multiplier, adder, latches) in kGE per 8-bit slice.
_PE_KILO_GATES_8BIT = 3.0


@dataclass(frozen=True)
class AcceleratorRun:
    """Result of running a batch through the accelerator."""

    outputs: np.ndarray  # dequantized output activations, (n, n_out)
    cycles_per_sample: int
    energy_per_sample: EnergyReport
    schedule: NetworkSchedule

    def seconds_per_sample(self, clock_hz: float) -> float:
        return self.cycles_per_sample / clock_hz

    def average_power(self, clock_hz: float) -> float:
        """Mean power while actively processing one sample."""
        return self.energy_per_sample.total / self.seconds_per_sample(clock_hz)


class SnnapAccelerator:
    """A configured PU: quantized network + geometry + operating point.

    Parameters
    ----------
    model:
        Trained float MLP to deploy.
    n_pes:
        Number of processing elements (paper sweeps 1..32, picks 8).
    data_bits:
        Datapath width for activations and weights (paper picks 8).
    energy_model:
        Operating point; defaults to the paper's 30 MHz / 0.9 V point.
    lut_entries:
        Sigmoid LUT size (256 in the paper).
    """

    def __init__(
        self,
        model: MLP,
        n_pes: int = 8,
        data_bits: int = 8,
        energy_model: AsicEnergyModel | None = None,
        lut_entries: int = 256,
    ):
        if n_pes < 1:
            raise ConfigurationError(f"n_pes must be >= 1, got {n_pes}")
        self.model = model
        self.n_pes = n_pes
        self.data_bits = data_bits
        self.quantized = QuantizedMLP(model, data_bits=data_bits, lut_entries=lut_entries)
        kilo_gates = _BASE_KILO_GATES + _PE_KILO_GATES_8BIT * n_pes * (data_bits / 8.0)
        base = energy_model or AsicEnergyModel()
        self.energy_model = AsicEnergyModel(
            tech=base.tech,
            clock_hz=base.clock_hz,
            voltage=base.voltage,
            kilo_gates=kilo_gates,
        )
        self.schedule = schedule_network(model.layer_sizes, n_pes)
        # Per-PE weight SRAM sized for this network's largest residency.
        weights_per_pe = max(
            -(-layer.n_out // n_pes) * layer.n_in for layer in self.schedule.layers
        )
        self.weight_sram_bytes = max(weights_per_pe * data_bits / 8.0, 64.0)
        self.input_buffer_bytes = max(
            max(model.layer_sizes) * data_bits / 8.0, 64.0
        )

    # ------------------------------------------------------------------
    def _energy_per_sample(self) -> EnergyReport:
        em = self.energy_model
        bits = self.data_bits
        report = EnergyReport()
        for layer in self.schedule.layers:
            report.add("pe_mac", layer.macs * em.mac_energy(bits))
            report.add(
                "weight_sram",
                layer.macs * em.sram_read_energy(bits, self.weight_sram_bytes),
            )
            streamed = layer.input_streams * layer.n_in
            report.add(
                "input_buffer",
                streamed
                * (
                    em.sram_read_energy(bits, self.input_buffer_bytes)
                    + em.register_energy(bits)  # bus broadcast latch
                ),
            )
            # Idle PEs burn ~30% of an active PE's register energy
            # (clock tree + enables; datapath is gated).
            report.add(
                "pe_idle",
                layer.idle_pe_cycles * 0.3 * em.register_energy(bits),
            )
            report.add(
                "sigmoid",
                layer.n_out * em.sram_read_energy(bits, 256 * bits / 8.0),
            )
        cycles = self.schedule.total_cycles
        report.add(
            "control", cycles * _CONTROL_REG_EQUIV * em.register_energy(8)
        )
        report.add("leakage", em.leakage_energy(cycles))
        return report

    # ------------------------------------------------------------------
    def run(self, X: np.ndarray) -> AcceleratorRun:
        """Process a batch; outputs are bit-exact with the quantized model."""
        outputs = self.quantized.predict_proba(X)
        return AcceleratorRun(
            outputs=outputs,
            cycles_per_sample=self.schedule.total_cycles,
            energy_per_sample=self._energy_per_sample(),
            schedule=self.schedule,
        )

    def run_systolic_trace(self, x: np.ndarray) -> np.ndarray:
        """Explicit cycle-by-cycle systolic execution of one sample.

        Slow by construction; exists to validate that the vectorized path
        and the schedule's group/broadcast structure compute the same
        thing a PE-by-PE walk does.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        q = self.quantized
        codes = q.quantize_inputs(x[None, :])[0]
        for layer_idx, (W_int, b_int, scale) in enumerate(
            zip(q.weight_codes, q.bias_codes, q._acc_scales)
        ):
            n_out, n_in = W_int.shape
            out_codes = np.zeros(n_out, dtype=np.int64)
            groups = -(-n_out // self.n_pes)
            for group in range(groups):
                neuron_ids = [
                    group * self.n_pes + pe
                    for pe in range(self.n_pes)
                    if group * self.n_pes + pe < n_out
                ]
                accumulators = {n: int(b_int[n]) for n in neuron_ids}
                # Stream inputs one per cycle; every PE MACs in lockstep.
                for i in range(n_in):
                    broadcast = int(codes[i])
                    for neuron in neuron_ids:
                        accumulators[neuron] += broadcast * int(W_int[neuron, i])
                for neuron in neuron_ids:
                    acc_real = accumulators[neuron] / scale
                    act = q._activate(np.asarray(acc_real))
                    out_codes[neuron] = q.activation_format.quantize(act)
            codes = out_codes
        return q.activation_format.dequantize(codes)

    # ------------------------------------------------------------------
    def inference_power(self) -> float:
        """Average power while continuously running inferences, watts."""
        run_energy = self._energy_per_sample().total
        seconds = self.schedule.total_cycles / self.energy_model.clock_hz
        return run_energy / seconds

    def duty_cycled_power(self, frames_per_second: float) -> float:
        """Average power at a capture rate, idle leakage between frames."""
        if frames_per_second <= 0:
            raise ConfigurationError("frames_per_second must be positive")
        active_energy = self._energy_per_sample().total
        period = 1.0 / frames_per_second
        active_time = self.schedule.total_cycles / self.energy_model.clock_hz
        if active_time > period:
            raise ConfigurationError(
                f"cannot sustain {frames_per_second} FPS: frame takes {active_time}s"
            )
        idle_energy = self.energy_model.leakage_power() * (period - active_time)
        return (active_energy + idle_energy) / period
