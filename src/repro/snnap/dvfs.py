"""DVFS operating points for on-camera fixed-function accelerators.

The paper fixes the NN accelerator at one operating point (30 MHz /
0.9 V); this module makes the *voltage-frequency curve* around that
point a first-class object. An :class:`OperatingPoint` bundles a supply
voltage with the clock the alpha-power delay law sustains there and the
corresponding :class:`~repro.hw.asic.AsicEnergyModel`; a block priced at
the nominal point rescales to any other point with
:func:`scale_implementation` (runtime stretches as the clock drops,
dynamic energy tracks ~V^2 through
:meth:`~repro.hw.technology.TechParams.voltage_factor`).

:mod:`repro.snnap.geometry`'s ``sweep_voltage`` runs its sweep over
these points, and :mod:`repro.snnap.scenario` uses them to register the
DVFS-aware pipeline in the scenario catalog — per-block voltage
assignment becomes an enumerable design space next to the paper's
(cut point, platform) axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.block import Implementation
from repro.errors import ConfigurationError
from repro.hw.asic import AsicEnergyModel
from repro.hw.technology import TechParams

#: The voltage grid ``sweep_voltage`` and the catalog's DVFS pipeline
#: explore (the paper's nominal 0.9 V sits inside it).
DEFAULT_VOLTAGES = (0.6, 0.7, 0.8, 0.9, 1.0, 1.1)


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS point: supply voltage, achievable clock, energy model."""

    voltage: float
    clock_hz: float
    energy_model: AsicEnergyModel

    @property
    def name(self) -> str:
        """Stable implementation/platform key (``"v0.90"``)."""
        return f"v{self.voltage:.2f}"


def operating_points(
    voltages: tuple[float, ...] = DEFAULT_VOLTAGES,
    nominal_clock_hz: float = 30e6,
    base: AsicEnergyModel | None = None,
) -> tuple[OperatingPoint, ...]:
    """The DVFS curve through ``base``'s process parameters.

    Each voltage maps to the clock the alpha-power delay law sustains
    (normalized so the base model's nominal voltage runs at
    ``nominal_clock_hz``) and an :class:`AsicEnergyModel` at that
    (clock, voltage) point — the object every accelerator model in
    :mod:`repro.snnap` prices energy through.
    """
    if not voltages:
        raise ConfigurationError("voltages must be non-empty")
    base = base or AsicEnergyModel()
    points = []
    for voltage in voltages:
        clock = base.tech.max_clock_at(voltage, nominal_clock_hz)
        points.append(
            OperatingPoint(
                voltage=voltage,
                clock_hz=clock,
                energy_model=AsicEnergyModel(
                    tech=base.tech,
                    clock_hz=clock,
                    voltage=voltage,
                    kilo_gates=base.kilo_gates,
                ),
            )
        )
    return tuple(points)


def scale_implementation(
    nominal: Implementation,
    point: OperatingPoint,
    nominal_voltage: float = 0.9,
    nominal_clock_hz: float = 30e6,
    tech: TechParams | None = None,
) -> Implementation:
    """A fixed-function block's nominal-point costs rescaled to a DVFS
    point.

    Throughput and active time track the clock ratio (the block's cycle
    count is voltage-independent); energy per frame tracks the dynamic
    ~V^2 law (:meth:`TechParams.voltage_factor`), the standard
    dynamic-dominated scaling the ``sweep_voltage`` study applies to the
    NN accelerator. The returned implementation is named after the
    point (``"v0.90"``), so a block carrying one implementation per
    point turns per-block DVFS assignment into the enumerator's
    platform axis.
    """
    tech = tech or point.energy_model.tech
    speed = point.clock_hz / nominal_clock_hz
    energy = tech.voltage_factor(point.voltage) / tech.voltage_factor(nominal_voltage)
    return Implementation(
        platform=point.name,
        fps=nominal.fps * speed,
        energy_per_frame=nominal.energy_per_frame * energy,
        active_seconds=nominal.active_seconds / speed,
    )


def sweep_voltage(
    model,
    voltages: tuple[float, ...] = DEFAULT_VOLTAGES,
    n_pes: int = 8,
    data_bits: int = 8,
    nominal_clock_hz: float = 30e6,
) -> list[dict]:
    """DVFS sweep at fixed geometry — an extension beyond the paper.

    The paper fixes 30 MHz / 0.9 V; this sweep explores the
    voltage-frequency curve around that point: the clock tracks the
    alpha-power delay law, dynamic energy scales ~V^2, and leakage energy
    grows as the runtime stretches at low voltage.
    """
    # Imported here: geometry imports this module for the shared curve.
    from repro.snnap.geometry import evaluate_design

    rows = []
    for point in operating_points(voltages, nominal_clock_hz):
        design = evaluate_design(
            model, n_pes, data_bits, energy_model=point.energy_model
        )
        rows.append(
            {
                "voltage": point.voltage,
                "clock_mhz": point.clock_hz / 1e6,
                "energy_nj": design.energy_per_inference * 1e9,
                "power_uw": design.power * 1e6,
                "throughput_inf_s": design.throughput,
            }
        )
    return rows
