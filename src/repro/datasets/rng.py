"""Deterministic random-number plumbing.

Every generator takes an explicit seed (or :class:`numpy.random.Generator`);
experiments are reproducible run-to-run. ``spawn_rngs`` derives independent
child streams so that, e.g., changing how many negative windows are drawn
does not perturb the positive windows.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed (or an existing generator) into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = make_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
