"""Parametric synthetic face corpus — the reproduction's stand-in for LFW.

Why this works as a substitute
------------------------------
Both algorithms the paper evaluates consume small grayscale windows:

* Viola-Jones learns *contrast structure*: a dark eye band over bright
  cheeks, a dark mouth below a brighter nose ridge, rough vertical symmetry.
* The 400-8-1 authentication NN learns a *specific* face from 20x20 crops,
  so the generator must give each identity persistent geometry (eye spacing,
  face aspect, brow weight, ...) with nuisance variation (pose, lighting,
  expression, noise) layered on top.

The renderer below produces exactly those statistics, with fully labeled
ground truth, and the non-face sampler produces textures, gradients, clutter
and *face-like confusers* (partial faces, wrong-layout "faces") so detector
training is not trivially separable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.rng import make_rng
from repro.errors import DatasetError
from repro.imaging import draw
from repro.imaging.image import clip01
from repro.imaging.resize import resize_bilinear

#: Canonical window side used across the face-authentication case study.
WINDOW = 20


@dataclass(frozen=True)
class FaceIdentity:
    """Persistent facial-geometry parameters for one synthetic person.

    All lengths are fractions of the rendered window side, so an identity
    renders consistently at any resolution.
    """

    face_width: float  # half-width of the face ellipse
    face_height: float  # half-height of the face ellipse
    eye_spacing: float  # horizontal offset of each eye from center
    eye_height: float  # vertical position of the eye line (from top)
    eye_radius: float
    eye_darkness: float  # intensity of the iris/eye region (lower = darker)
    brow_offset: float  # gap between brow and eye
    brow_darkness: float
    nose_length: float
    mouth_height: float  # vertical position of the mouth (from top)
    mouth_width: float
    mouth_darkness: float
    skin_tone: float
    hair_darkness: float
    hairline: float  # fraction of face height covered by hair

    def perturbed(self, rng: np.random.Generator, scale: float = 0.01) -> "FaceIdentity":
        """A slightly different identity (used to build hard imposters)."""
        fields = {
            name: getattr(self, name) + float(rng.normal(0.0, scale))
            for name in self.__dataclass_fields__
        }
        return FaceIdentity(**fields)


@dataclass(frozen=True)
class RenderConditions:
    """Per-image nuisance parameters (sampled fresh for every render)."""

    dx: float = 0.0  # center offset, fraction of window
    dy: float = 0.0
    scale: float = 1.0  # face scale multiplier
    roll: float = 0.0  # in-plane rotation, radians
    yaw: float = 0.0  # out-of-plane turn in [-1, 1]; shifts features sideways
    light_angle: float = 0.0  # direction of the lighting gradient
    light_strength: float = 0.0  # gradient amplitude
    brightness: float = 0.0  # global offset
    expression: float = 0.0  # mouth openness in [0, 1]
    noise_sigma: float = 0.02
    background: float = 0.35


@dataclass(frozen=True)
class FaceSceneSample:
    """A rendered scene with ground-truth face boxes.

    ``boxes`` holds ``(y0, x0, side)`` square boxes (the detector's native
    hypothesis space); ``identities`` aligns with ``boxes``.
    """

    image: np.ndarray
    boxes: tuple[tuple[int, int, int], ...]
    identities: tuple[int, ...] = field(default=())


class FaceGenerator:
    """Factory for synthetic face windows, non-face windows and scenes.

    Parameters
    ----------
    seed:
        Seed or generator for all sampling in this instance.
    window:
        Side of the square face window (default 20, matching the paper's
        largest NN input).
    """

    def __init__(self, seed: int | np.random.Generator | None = 0, window: int = WINDOW):
        if window < 12:
            raise DatasetError(f"window must be >= 12 px to fit a face, got {window}")
        self._rng = make_rng(seed)
        self.window = window

    # ------------------------------------------------------------------
    # Identities
    # ------------------------------------------------------------------
    def sample_identity(self) -> FaceIdentity:
        """Draw a new identity from the population distribution."""
        rng = self._rng
        return FaceIdentity(
            face_width=float(rng.uniform(0.30, 0.38)),
            face_height=float(rng.uniform(0.40, 0.48)),
            eye_spacing=float(rng.uniform(0.13, 0.19)),
            eye_height=float(rng.uniform(0.38, 0.46)),
            eye_radius=float(rng.uniform(0.035, 0.06)),
            eye_darkness=float(rng.uniform(0.05, 0.25)),
            brow_offset=float(rng.uniform(0.06, 0.10)),
            brow_darkness=float(rng.uniform(0.10, 0.35)),
            nose_length=float(rng.uniform(0.10, 0.16)),
            mouth_height=float(rng.uniform(0.72, 0.80)),
            mouth_width=float(rng.uniform(0.10, 0.17)),
            mouth_darkness=float(rng.uniform(0.15, 0.35)),
            skin_tone=float(rng.uniform(0.55, 0.80)),
            hair_darkness=float(rng.uniform(0.05, 0.30)),
            hairline=float(rng.uniform(0.18, 0.30)),
        )

    def sample_identities(self, count: int) -> list[FaceIdentity]:
        """Draw ``count`` independent identities."""
        return [self.sample_identity() for _ in range(count)]

    # ------------------------------------------------------------------
    # Nuisance conditions
    # ------------------------------------------------------------------
    def sample_conditions(self, difficulty: float = 1.0) -> RenderConditions:
        """Sample nuisance parameters.

        ``difficulty`` scales every nuisance range; 0 gives canonical
        mugshots (the "security workload presents many less-challenging
        lighting and orientation scenarios" regime from the paper), 1 gives
        LFW-like in-the-wild variation.
        """
        rng = self._rng
        d = float(np.clip(difficulty, 0.0, 2.0))
        return RenderConditions(
            dx=float(rng.normal(0.0, 0.02 * d)),
            dy=float(rng.normal(0.0, 0.02 * d)),
            scale=float(rng.uniform(1.0 - 0.08 * d, 1.0 + 0.08 * d)),
            roll=float(rng.normal(0.0, 0.06 * d)),
            yaw=float(rng.uniform(-0.5 * d, 0.5 * d)),
            light_angle=float(rng.uniform(0.0, 2 * np.pi)),
            light_strength=float(rng.uniform(0.0, 0.25 * d)),
            brightness=float(rng.normal(0.0, 0.05 * d)),
            expression=float(rng.uniform(0.0, 0.8 * d)),
            noise_sigma=float(rng.uniform(0.01, 0.015 + 0.02 * d)),
            background=float(rng.uniform(0.2, 0.5)),
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_face(
        self,
        identity: FaceIdentity,
        conditions: RenderConditions | None = None,
        size: int | None = None,
    ) -> np.ndarray:
        """Render one face window for ``identity`` under ``conditions``.

        Rendering happens at 3x resolution and is downsampled, which gives
        smooth sub-pixel feature placement even in a 20x20 output.
        """
        if conditions is None:
            conditions = self.sample_conditions()
        size = size or self.window
        hi = size * 3  # supersampling factor
        img = draw.canvas(hi, hi, conditions.background)

        cx = hi * (0.5 + conditions.dx)
        cy = hi * (0.5 + conditions.dy)
        s = hi * conditions.scale
        yaw_shift = conditions.yaw * identity.eye_spacing * 0.5 * s
        soft = hi / 24.0

        # Face ellipse over the background.
        draw.blend_ellipse(
            img, cy, cx, identity.face_height * s, identity.face_width * s,
            identity.skin_tone, softness=soft, angle=conditions.roll,
        )
        # Hair cap: darker region hugging the top of the face ellipse.
        hair_cy = cy - identity.face_height * s * (1.0 - identity.hairline)
        draw.blend_ellipse(
            img, hair_cy, cx, identity.face_height * s * identity.hairline * 1.4,
            identity.face_width * s * 1.02, identity.hair_darkness,
            softness=soft, angle=conditions.roll,
        )

        cos_r, sin_r = np.cos(conditions.roll), np.sin(conditions.roll)

        def place(fy: float, fx: float) -> tuple[float, float]:
            """Map face-frame offsets (fractions of window) to canvas px."""
            oy, ox = fy * s, fx * s + yaw_shift
            ry = cos_r * oy + sin_r * ox
            rx = -sin_r * oy + cos_r * ox
            return cy + ry, cx + rx

        eye_fy = identity.eye_height - 0.5
        for side in (-1.0, 1.0):
            ey, ex = place(eye_fy, side * identity.eye_spacing)
            # Sclera, slightly brighter than skin, then the dark iris.
            draw.blend_ellipse(img, ey, ex, identity.eye_radius * s * 1.25,
                               identity.eye_radius * s * 1.9,
                               min(identity.skin_tone + 0.15, 1.0), softness=soft)
            draw.blend_ellipse(img, ey, ex, identity.eye_radius * s,
                               identity.eye_radius * s * 1.15,
                               identity.eye_darkness, softness=soft)
            # Brow: short dark bar above the eye.
            by, bx = place(eye_fy - identity.brow_offset, side * identity.eye_spacing)
            draw.blend_ellipse(img, by, bx, identity.eye_radius * s * 0.55,
                               identity.eye_radius * s * 2.3,
                               identity.brow_darkness, softness=soft,
                               angle=conditions.roll)

        # Nose: bright ridge down the midline plus a darker base.
        nose_top_fy = eye_fy + 0.04
        ny, nx = place(nose_top_fy + identity.nose_length / 2.0, 0.0)
        draw.blend_ellipse(img, ny, nx, identity.nose_length * s / 2.0,
                           0.025 * s, min(identity.skin_tone + 0.10, 1.0),
                           softness=soft, angle=conditions.roll)
        base_y, base_x = place(nose_top_fy + identity.nose_length, 0.0)
        draw.blend_ellipse(img, base_y, base_x, 0.018 * s, 0.035 * s,
                           identity.skin_tone - 0.2, softness=soft)

        # Mouth: dark bar whose height grows with expression (open mouth).
        mouth_fy = identity.mouth_height - 0.5
        my, mx = place(mouth_fy, 0.0)
        mouth_ry = 0.02 * s * (1.0 + 1.5 * conditions.expression)
        draw.blend_ellipse(img, my, mx, mouth_ry, identity.mouth_width * s,
                           identity.mouth_darkness, softness=soft,
                           angle=conditions.roll)

        # Lighting gradient + global brightness.
        if conditions.light_strength > 0:
            gy = draw.linear_gradient(hi, hi, -0.5, 0.5, axis=0)
            gx = draw.linear_gradient(hi, hi, -0.5, 0.5, axis=1)
            gradient = np.cos(conditions.light_angle) * gy + np.sin(conditions.light_angle) * gx
            img = img + conditions.light_strength * gradient
        img = img + conditions.brightness

        out = resize_bilinear(clip01(img), size, size)
        return draw.add_noise(out, conditions.noise_sigma, self._rng)

    def render_nonface(self, size: int | None = None) -> np.ndarray:
        """Render one non-face window.

        Mixes easy negatives (textures, gradients) with hard ones (random
        blob layouts and *scrambled faces*: face parts in the wrong places),
        which forces cascade stages beyond the first to earn their keep.
        """
        size = size or self.window
        rng = self._rng
        kind = rng.integers(0, 5)
        if kind == 0:  # smooth texture
            img = draw.smooth_texture(size, size, rng,
                                      scale=int(rng.integers(2, 8)))
        elif kind == 1:  # oriented gradient
            img = draw.linear_gradient(size, size,
                                       float(rng.uniform(0.1, 0.5)),
                                       float(rng.uniform(0.5, 0.9)),
                                       axis=int(rng.integers(0, 2)))
        elif kind == 2:  # checkerboard-ish structure
            img = draw.checkerboard(size, size, int(rng.integers(2, 6)),
                                    float(rng.uniform(0.1, 0.4)),
                                    float(rng.uniform(0.6, 0.9)))
        elif kind == 3:  # random blob clutter
            img = draw.canvas(size, size, float(rng.uniform(0.2, 0.7)))
            for _ in range(int(rng.integers(2, 6))):
                draw.blend_ellipse(
                    img,
                    float(rng.uniform(0, size)), float(rng.uniform(0, size)),
                    float(rng.uniform(size * 0.05, size * 0.4)),
                    float(rng.uniform(size * 0.05, size * 0.4)),
                    float(rng.uniform(0.0, 1.0)), softness=1.0,
                )
        else:  # scrambled face: real identity, features shuffled vertically
            identity = self.sample_identity()
            flipped = FaceIdentity(
                **{
                    **{f: getattr(identity, f) for f in identity.__dataclass_fields__},
                    "eye_height": identity.mouth_height - 0.25,
                    "mouth_height": identity.eye_height + 0.25,
                }
            )
            img = self.render_face(flipped, self.sample_conditions(1.5), size)
        return draw.add_noise(img, float(rng.uniform(0.005, 0.03)), rng)

    # ------------------------------------------------------------------
    # Labeled window datasets
    # ------------------------------------------------------------------
    def detection_dataset(
        self,
        n_pos: int,
        n_neg: int,
        difficulty: float = 1.0,
        identities: list[FaceIdentity] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Windows + {1, 0} labels for face/non-face training.

        Returns ``(X, y)`` with ``X`` shaped ``(n, window, window)``.
        """
        if n_pos < 0 or n_neg < 0:
            raise DatasetError("window counts must be non-negative")
        if identities is None:
            identities = self.sample_identities(max(n_pos // 4, 1))
        windows = []
        for i in range(n_pos):
            identity = identities[i % len(identities)]
            windows.append(self.render_face(identity, self.sample_conditions(difficulty)))
        for _ in range(n_neg):
            windows.append(self.render_nonface())
        labels = np.concatenate([np.ones(n_pos), np.zeros(n_neg)])
        return np.stack(windows) if windows else np.zeros((0, self.window, self.window)), labels

    def authentication_dataset(
        self,
        target: FaceIdentity,
        imposters: list[FaceIdentity],
        n_target: int,
        n_imposter: int,
        difficulty: float = 1.0,
        size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Windows + {1, 0} labels for "is this the reference face?".

        Positives are renders of ``target``; negatives are renders of the
        imposter identities (i.e., *other people's faces*, matching the
        paper's LFW protocol of recognizing a single person).
        """
        if not imposters:
            raise DatasetError("need at least one imposter identity")
        size = size or self.window
        windows = []
        for _ in range(n_target):
            windows.append(self.render_face(target, self.sample_conditions(difficulty), size))
        for i in range(n_imposter):
            identity = imposters[i % len(imposters)]
            windows.append(self.render_face(identity, self.sample_conditions(difficulty), size))
        labels = np.concatenate([np.ones(n_target), np.zeros(n_imposter)])
        return np.stack(windows), labels

    # ------------------------------------------------------------------
    # Scenes for the sliding-window detector
    # ------------------------------------------------------------------
    def render_scene(
        self,
        height: int,
        width: int,
        face_sizes: list[int],
        identities: list[FaceIdentity] | None = None,
        difficulty: float = 1.0,
    ) -> FaceSceneSample:
        """Embed faces into a cluttered scene; returns image + true boxes.

        Faces are placed without overlap (rejection sampling); placement
        failures raise so tests never silently evaluate empty scenes.
        """
        rng = self._rng
        img = draw.smooth_texture(height, width, rng, scale=12)
        # Structured clutter: a few rectangles (furniture, windows, ...).
        for _ in range(int(rng.integers(2, 6))):
            y0 = int(rng.integers(0, max(height - 8, 1)))
            x0 = int(rng.integers(0, max(width - 8, 1)))
            draw.fill_rect(img, y0, x0,
                           y0 + int(rng.integers(6, height // 2 + 7)),
                           x0 + int(rng.integers(6, width // 2 + 7)),
                           float(rng.uniform(0.1, 0.9)))

        if identities is None:
            identities = self.sample_identities(len(face_sizes))
        boxes: list[tuple[int, int, int]] = []
        ids: list[int] = []
        for idx, side in enumerate(face_sizes):
            if side > min(height, width):
                raise DatasetError(f"face size {side} exceeds scene {height}x{width}")
            placed = False
            for _ in range(200):
                y0 = int(rng.integers(0, height - side + 1))
                x0 = int(rng.integers(0, width - side + 1))
                if all(
                    y0 + side <= by or by + bs <= y0 or x0 + side <= bx or bx + bs <= x0
                    for by, bx, bs in boxes
                ):
                    placed = True
                    break
            if not placed:
                raise DatasetError("could not place all faces without overlap")
            identity = identities[idx % len(identities)]
            conditions = self.sample_conditions(difficulty)
            face = self.render_face(identity, conditions, size=side)
            img[y0 : y0 + side, x0 : x0 + side] = face
            boxes.append((y0, x0, side))
            ids.append(idx % len(identities))
        return FaceSceneSample(image=clip01(img), boxes=tuple(boxes), identities=tuple(ids))
