"""Ring-of-N camera rig rendering a shared panoramic scene.

This is the reproduction's stand-in for the Google-Jump-style 16x4K rig of
the paper's VR case study. Cameras sit on a ring of radius ``radius`` facing
outward; the scene is a distant textured cylinder plus billboard objects at
finite distances, so adjacent cameras observe *real parallax* — exactly the
signal the depth-estimation block (B3) extracts.

Two scales coexist deliberately:

* the **logical** sensor geometry (3840x2160, 12-bit Bayer) drives all
  data-size and bandwidth accounting (see :mod:`repro.vr.blocks`);
* the **simulation** geometry (a configurable fraction of 4K) is what gets
  rendered and pushed through the algorithmic pipeline, keeping experiments
  laptop-fast while exercising identical code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.rng import make_rng
from repro.errors import DatasetError
from repro.imaging import draw
from repro.imaging.bayer import bayer_mosaic

#: Logical sensor geometry for the data-size model (per camera).
LOGICAL_WIDTH = 3840
LOGICAL_HEIGHT = 2160


@dataclass(frozen=True)
class PanoObject:
    """A billboard object in the panoramic scene.

    Angles are radians; ``distance`` is meters from the rig center;
    ``radius`` is the physical half-size in meters; ``height`` the vertical
    offset of its center in meters.
    """

    azimuth: float
    distance: float
    radius: float
    height: float
    tint: tuple[float, float, float]
    texture: np.ndarray

    def __post_init__(self) -> None:
        if self.distance <= 0 or self.radius <= 0:
            raise DatasetError("object distance and radius must be positive")


@dataclass(frozen=True)
class PanoramicScene:
    """Cylindrical background texture plus finite-distance objects."""

    background: np.ndarray  # (Hpan, Wpan) texture indexed by (height, azimuth)
    background_distance: float
    background_half_height: float  # meters covered by the texture vertically
    objects: tuple[PanoObject, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.background.ndim != 2:
            raise DatasetError("panorama background must be 2-D")
        if self.background_distance <= 0 or self.background_half_height <= 0:
            raise DatasetError("background geometry must be positive")

    @staticmethod
    def random(
        seed: int | np.random.Generator | None = 0,
        n_objects: int = 6,
        background_distance: float = 20.0,
        object_distances: tuple[float, float] = (2.0, 10.0),
        pano_height: int = 128,
        pano_width: int = 1024,
    ) -> "PanoramicScene":
        """Sample a busy scene: textured backdrop + objects at mixed depths."""
        rng = make_rng(seed)
        background = draw.smooth_texture(pano_height, pano_width, rng, scale=4,
                                         low=0.2, high=0.9)
        objects = []
        for _ in range(n_objects):
            objects.append(
                PanoObject(
                    azimuth=float(rng.uniform(0.0, 2 * np.pi)),
                    distance=float(rng.uniform(*object_distances)),
                    radius=float(rng.uniform(0.25, 0.9)),
                    height=float(rng.uniform(-0.8, 0.8)),
                    tint=(
                        float(rng.uniform(0.6, 1.0)),
                        float(rng.uniform(0.6, 1.0)),
                        float(rng.uniform(0.6, 1.0)),
                    ),
                    texture=draw.smooth_texture(48, 48, rng, scale=3,
                                                low=0.15, high=0.95),
                )
            )
        return PanoramicScene(
            background=background,
            background_distance=background_distance,
            background_half_height=6.0,
            objects=tuple(objects),
        )


@dataclass(frozen=True)
class RigFrameSet:
    """One synchronized capture from every camera on the rig.

    ``raw`` are Bayer frames (what the sensor emits), ``rgb`` the rendered
    ground-truth color frames, ``depth`` per-pixel range in meters.
    """

    raw: tuple[np.ndarray, ...]
    rgb: tuple[np.ndarray, ...]
    depth: tuple[np.ndarray, ...]
    rig: "CameraRig"

    def __len__(self) -> int:
        return len(self.raw)


class CameraRig:
    """Outward-facing ring of cameras with pinhole optics.

    Parameters
    ----------
    n_cameras:
        Number of cameras on the ring (paper: 16).
    radius:
        Ring radius in meters (Jump-class rigs: ~0.14 m).
    hfov_deg:
        Horizontal field of view per camera. With 16 cameras every point is
        seen by several cameras when hfov > 22.5 deg.
    sim_height, sim_width:
        Simulation resolution actually rendered.
    """

    def __init__(
        self,
        n_cameras: int = 16,
        radius: float = 0.14,
        hfov_deg: float = 90.0,
        sim_height: int = 96,
        sim_width: int = 160,
    ):
        if n_cameras < 2:
            raise DatasetError(f"rig needs >= 2 cameras, got {n_cameras}")
        if not 10.0 <= hfov_deg < 180.0:
            raise DatasetError(f"hfov must be in [10, 180) deg, got {hfov_deg}")
        if radius <= 0:
            raise DatasetError(f"radius must be positive, got {radius}")
        self.n_cameras = n_cameras
        self.radius = radius
        self.hfov = np.deg2rad(hfov_deg)
        self.sim_height = sim_height
        self.sim_width = sim_width
        # Pinhole focal length in pixels from the horizontal FOV.
        self.focal = (sim_width / 2.0) / np.tan(self.hfov / 2.0)

    # ------------------------------------------------------------------
    def camera_yaw(self, index: int) -> float:
        """Outward facing direction of camera ``index`` (radians)."""
        return 2.0 * np.pi * (index % self.n_cameras) / self.n_cameras

    def camera_position(self, index: int) -> np.ndarray:
        """Camera center in rig coordinates (meters, XY plane)."""
        yaw = self.camera_yaw(index)
        return self.radius * np.array([np.cos(yaw), np.sin(yaw)])

    def pair_baseline(self) -> float:
        """Distance between adjacent cameras (the stereo baseline)."""
        return float(2.0 * self.radius * np.sin(np.pi / self.n_cameras))

    def stereo_pairs(self) -> list[tuple[int, int]]:
        """Adjacent-camera pairs around the ring (paper: 8 pairs for 16)."""
        return [(i, (i + 1) % self.n_cameras) for i in range(0, self.n_cameras, 2)]

    # ------------------------------------------------------------------
    def _ray_grid(self, yaw: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-pixel ray azimuth and tangent-of-elevation for one camera."""
        xs = np.arange(self.sim_width, dtype=np.float64) - (self.sim_width - 1) / 2.0
        ys = (self.sim_height - 1) / 2.0 - np.arange(self.sim_height, dtype=np.float64)
        azimuths = yaw + np.arctan(xs / self.focal)  # (W,)
        tan_elevation = ys / self.focal  # (H,)
        azimuth_grid = np.broadcast_to(azimuths[None, :], (self.sim_height, self.sim_width))
        elev_grid = np.broadcast_to(tan_elevation[:, None], (self.sim_height, self.sim_width))
        return azimuth_grid, elev_grid

    def _background_hit(
        self, position: np.ndarray, azimuth: np.ndarray, scene: PanoramicScene
    ) -> tuple[np.ndarray, np.ndarray]:
        """Range and world azimuth where rays meet the background cylinder."""
        ux = np.cos(azimuth)
        uy = np.sin(azimuth)
        # Solve |p + t u| = D for t > 0.
        p_dot_u = position[0] * ux + position[1] * uy
        radicand = p_dot_u**2 + scene.background_distance**2 - float(position @ position)
        t = -p_dot_u + np.sqrt(np.maximum(radicand, 0.0))
        hit_x = position[0] + t * ux
        hit_y = position[1] + t * uy
        world_azimuth = np.arctan2(hit_y, hit_x) % (2.0 * np.pi)
        return t, world_azimuth

    def render_camera(
        self, scene: PanoramicScene, index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Render camera ``index``: returns ``(rgb, depth)``.

        Depth is the horizontal range to the visible surface in meters
        (background cylinder or nearest occluding object).
        """
        yaw = self.camera_yaw(index)
        position = self.camera_position(index)
        azimuth, tan_elev = self._ray_grid(yaw)

        # --- background ---------------------------------------------------
        t_bg, world_azimuth = self._background_hit(position, azimuth, scene)
        pano_h, pano_w = scene.background.shape
        u = world_azimuth / (2.0 * np.pi) * (pano_w - 1)
        world_height = tan_elev * t_bg
        v = (1.0 - (world_height / scene.background_half_height + 1.0) / 2.0) * (pano_h - 1)
        v = np.clip(v, 0.0, pano_h - 1)
        u0 = np.floor(u).astype(np.intp)
        v0 = np.floor(v).astype(np.intp)
        u1 = (u0 + 1) % pano_w
        v1 = np.minimum(v0 + 1, pano_h - 1)
        wu = u - u0
        wv = v - v0
        bg = (
            scene.background[v0, u0] * (1 - wu) * (1 - wv)
            + scene.background[v0, u1] * wu * (1 - wv)
            + scene.background[v1, u0] * (1 - wu) * wv
            + scene.background[v1, u1] * wu * wv
        )
        intensity = bg.copy()
        tint_r = np.full_like(bg, 0.95)
        tint_g = np.full_like(bg, 1.0)
        tint_b = np.full_like(bg, 0.9)
        depth = t_bg.copy()

        # --- objects, far to near (painter's algorithm) -------------------
        for obj in sorted(scene.objects, key=lambda o: -o.distance):
            center = obj.distance * np.array([np.cos(obj.azimuth), np.sin(obj.azimuth)])
            rel = center - position
            rng_to_obj = float(np.hypot(rel[0], rel[1]))
            bearing = np.arctan2(rel[1], rel[0])
            delta = (bearing - yaw + np.pi) % (2.0 * np.pi) - np.pi
            if abs(delta) > self.hfov / 2.0 + 0.3:
                continue  # entirely outside this camera's view
            px = (self.sim_width - 1) / 2.0 + self.focal * np.tan(delta)
            py = (self.sim_height - 1) / 2.0 - self.focal * (obj.height / rng_to_obj)
            pr = self.focal * (obj.radius / rng_to_obj)
            ys, xs = np.mgrid[0 : self.sim_height, 0 : self.sim_width]
            rho = np.sqrt(((ys - py) / max(pr, 1e-9)) ** 2 + ((xs - px) / max(pr, 1e-9)) ** 2)
            mask = rho <= 1.0
            if not mask.any():
                continue
            # Sample the object's own texture in its local frame.
            tex_h, tex_w = obj.texture.shape
            tu = np.clip(((xs - px) / max(pr, 1e-9) + 1.0) / 2.0 * (tex_w - 1), 0, tex_w - 1)
            tv = np.clip(((ys - py) / max(pr, 1e-9) + 1.0) / 2.0 * (tex_h - 1), 0, tex_h - 1)
            tex = obj.texture[tv.astype(np.intp), tu.astype(np.intp)]
            intensity = np.where(mask, tex, intensity)
            tint_r = np.where(mask, obj.tint[0], tint_r)
            tint_g = np.where(mask, obj.tint[1], tint_g)
            tint_b = np.where(mask, obj.tint[2], tint_b)
            depth = np.where(mask, rng_to_obj, depth)

        rgb = np.stack(
            [
                np.clip(intensity * tint_r, 0.0, 1.0),
                np.clip(intensity * tint_g, 0.0, 1.0),
                np.clip(intensity * tint_b, 0.0, 1.0),
            ],
            axis=-1,
        )
        return rgb, depth

    # ------------------------------------------------------------------
    def capture(
        self, scene: PanoramicScene, noise_sigma: float = 0.005,
        seed: int | np.random.Generator | None = 0,
    ) -> RigFrameSet:
        """Capture one synchronized frame set (Bayer raw per camera)."""
        rng = make_rng(seed)
        raw, rgbs, depths = [], [], []
        for index in range(self.n_cameras):
            rgb, depth = self.render_camera(scene, index)
            if noise_sigma > 0:
                rgb = np.clip(rgb + rng.normal(0.0, noise_sigma, rgb.shape), 0.0, 1.0)
            raw.append(bayer_mosaic(rgb))
            rgbs.append(rgb)
            depths.append(depth)
        return RigFrameSet(raw=tuple(raw), rgb=tuple(rgbs), depth=tuple(depths), rig=self)
