"""Sparse-event surveillance video for the energy-harvesting workload.

The paper's real-world evaluation runs the face-authentication pipeline on
self-collected video where most frames are empty and people (the target user
or others) appear occasionally. The economic argument of the whole case
study — progressive filtering saves energy — depends on that sparsity, so
the generator's first-class knobs are event rate and event composition.

Frames are QCIF-like (144x176 by default), matching the WISPCam-class
sensor resolution the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.datasets.faces import FaceGenerator, FaceIdentity
from repro.datasets.rng import make_rng
from repro.errors import DatasetError
from repro.imaging import draw
from repro.imaging.image import clip01

#: WISPCam-class sensor resolution (QCIF).
DEFAULT_HEIGHT = 144
DEFAULT_WIDTH = 176


@dataclass(frozen=True)
class VideoEvent:
    """One person-visit event in the sequence.

    ``start``/``stop`` are frame indices (half-open). ``is_target`` marks
    visits by the enrolled user; other visits are imposters/passers-by.
    """

    start: int
    stop: int
    is_target: bool
    face_size: int

    @property
    def duration(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class VideoFrame:
    """A rendered frame with its ground truth."""

    index: int
    image: np.ndarray
    has_person: bool
    has_target: bool
    face_box: tuple[int, int, int] | None  # (y0, x0, side) if a face is visible


class SurveillanceVideo:
    """Generator of day-in-the-life frames at a fixed capture rate.

    Parameters
    ----------
    n_frames:
        Total frames in the sequence (e.g. 3600 for an hour at 1 FPS).
    event_rate:
        Expected number of person-visits per 100 frames.
    target_fraction:
        Fraction of visits that are the enrolled user.
    seed:
        Seed for scene layout, events and rendering.
    height, width:
        Frame geometry.

    Notes
    -----
    Ground truth per frame: person visibility, target identity, face box.
    The background includes slow illumination drift plus per-frame sensor
    noise, so a naive "any pixel changed" motion detector would fire on
    every frame — thresholds matter, as they do on real hardware.
    """

    def __init__(
        self,
        n_frames: int,
        event_rate: float = 2.0,
        target_fraction: float = 0.5,
        seed: int | np.random.Generator | None = 0,
        height: int = DEFAULT_HEIGHT,
        width: int = DEFAULT_WIDTH,
        noise_sigma: float = 0.01,
        drift_amplitude: float = 0.03,
    ):
        if n_frames < 1:
            raise DatasetError(f"n_frames must be >= 1, got {n_frames}")
        if not 0 <= target_fraction <= 1:
            raise DatasetError(f"target_fraction must be in [0,1], got {target_fraction}")
        self.n_frames = n_frames
        self.height = height
        self.width = width
        self.noise_sigma = noise_sigma
        self.drift_amplitude = drift_amplitude
        self._rng = make_rng(seed)
        # Per-frame rendering must be deterministic and order-independent
        # (pipeline variants are compared on the *same* frames), so frames
        # derive their noise from this base seed + the frame index rather
        # than from the shared stream.
        self._frame_seed = int(self._rng.integers(0, 2**31 - 1))
        # Public: workload builders train recognizers for these identities.
        self.face_generator = FaceGenerator(self._rng)
        self.target_identity: FaceIdentity = self.face_generator.sample_identity()
        self.imposters = self.face_generator.sample_identities(8)
        self._background = self._make_background()
        self.events = self._schedule_events(event_rate, target_fraction)

    # ------------------------------------------------------------------
    def _make_background(self) -> np.ndarray:
        rng = self._rng
        img = draw.smooth_texture(self.height, self.width, rng, scale=16)
        # Door frame and a piece of furniture: static high-contrast edges.
        draw.fill_rect(img, 0, self.width // 8, self.height,
                       self.width // 8 + 3, 0.15)
        draw.fill_rect(img, self.height * 2 // 3, self.width // 2,
                       self.height, self.width - self.width // 6, 0.55)
        return img

    def _schedule_events(self, event_rate: float, target_fraction: float) -> tuple[VideoEvent, ...]:
        rng = self._rng
        expected = event_rate * self.n_frames / 100.0
        n_events = int(rng.poisson(expected)) if expected > 0 else 0
        if expected > 0 and n_events == 0:
            # A workload trace with zero events exercises nothing; force one.
            n_events = 1
        events: list[VideoEvent] = []
        cursor = 0
        for _ in range(n_events):
            gap = int(rng.integers(3, max(8, int(2 * self.n_frames / max(n_events, 1)))))
            start = cursor + gap
            duration = int(rng.integers(4, 12))
            stop = min(start + duration, self.n_frames)
            if start >= self.n_frames:
                break
            events.append(
                VideoEvent(
                    start=start,
                    stop=stop,
                    is_target=bool(rng.random() < target_fraction),
                    face_size=int(rng.integers(28, 48)),
                )
            )
            cursor = stop
        return tuple(events)

    # ------------------------------------------------------------------
    def _event_at(self, index: int) -> VideoEvent | None:
        for event in self.events:
            if event.start <= index < event.stop:
                return event
        return None

    def render_frame(self, index: int) -> VideoFrame:
        """Render frame ``index`` with ground truth attached."""
        if not 0 <= index < self.n_frames:
            raise DatasetError(f"frame index {index} outside [0, {self.n_frames})")
        rng = np.random.default_rng((self._frame_seed, index))
        img = self._background.copy()
        # Slow illumination drift (clouds, lamps) — sinusoidal, deterministic.
        drift = self.drift_amplitude * np.sin(2 * np.pi * index / max(self.n_frames, 600))
        img = img + drift

        event = self._event_at(index)
        face_box = None
        has_target = False
        if event is not None:
            progress = (index - event.start) / max(event.duration - 1, 1)
            # Person walks in from the left, pauses mid-frame, walks out.
            body_cx = int((0.15 + 0.7 * progress) * self.width)
            side = event.face_size
            face_y0 = self.height // 6
            face_x0 = int(np.clip(body_cx - side // 2, 0, self.width - side))
            # Torso below the face.
            draw.blend_ellipse(
                img,
                face_y0 + side + self.height // 5,
                body_cx,
                self.height / 3.2,
                side * 0.9,
                0.3,
                softness=2.0,
            )
            identity = self.target_identity if event.is_target else (
                self.imposters[index % len(self.imposters)]
            )
            # Per-frame generator: rendering draws (pose, lighting, noise)
            # come from the frame's own deterministic stream.
            frame_faces = FaceGenerator(rng)
            conditions = frame_faces.sample_conditions(difficulty=0.5)
            face = frame_faces.render_face(identity, conditions, size=side)
            img[face_y0 : face_y0 + side, face_x0 : face_x0 + side] = face
            face_box = (face_y0, face_x0, side)
            has_target = event.is_target

        noisy = draw.add_noise(clip01(img), self.noise_sigma, rng)
        return VideoFrame(
            index=index,
            image=noisy,
            has_person=event is not None,
            has_target=has_target,
            face_box=face_box,
        )

    def frames(self) -> Iterator[VideoFrame]:
        """Iterate over all frames in order."""
        for index in range(self.n_frames):
            yield self.render_frame(index)

    # ------------------------------------------------------------------
    def ground_truth_summary(self) -> dict[str, float]:
        """Aggregate statistics used by the workload benchmarks."""
        person_frames = sum(e.duration for e in self.events)
        target_frames = sum(e.duration for e in self.events if e.is_target)
        return {
            "n_frames": float(self.n_frames),
            "n_events": float(len(self.events)),
            "person_frames": float(person_frames),
            "target_frames": float(target_frames),
            "occupancy": person_frames / self.n_frames,
        }
