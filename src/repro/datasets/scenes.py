"""Layered 2.5-D scenes with exact per-pixel depth.

A :class:`LayeredScene` is an ordered stack of fronto-parallel textured
layers. Rendering from a horizontally shifted viewpoint moves each layer by
its stereo disparity (``baseline * focal / depth``), with nearer layers
correctly occluding farther ones — giving stereo pairs with *exact* ground
truth, which the bilateral-space-stereo experiments need for scoring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.rng import make_rng
from repro.errors import DatasetError
from repro.imaging import draw
from repro.imaging.geometry import translate


@dataclass(frozen=True)
class Layer:
    """One fronto-parallel textured layer.

    ``texture`` is a full-scene-size grayscale array; ``mask`` (same shape,
    values in [0,1]) selects where the layer is opaque. ``depth`` is in
    meters; larger = farther.
    """

    texture: np.ndarray
    mask: np.ndarray
    depth: float

    def __post_init__(self) -> None:
        if self.texture.shape != self.mask.shape:
            raise DatasetError(
                f"texture {self.texture.shape} and mask {self.mask.shape} differ"
            )
        if self.depth <= 0:
            raise DatasetError(f"depth must be positive, got {self.depth}")


@dataclass(frozen=True)
class LayeredScene:
    """Back-to-front ordered stack of layers plus camera intrinsics.

    ``focal_baseline`` is the product ``focal_px * baseline_m``; disparity
    for a layer is ``focal_baseline / depth`` (pixels).
    """

    layers: tuple[Layer, ...]
    focal_baseline: float

    def __post_init__(self) -> None:
        if not self.layers:
            raise DatasetError("scene needs at least one layer")
        if self.focal_baseline <= 0:
            raise DatasetError("focal_baseline must be positive")
        depths = [layer.depth for layer in self.layers]
        if any(d1 < d2 for d1, d2 in zip(depths, depths[1:])):
            raise DatasetError("layers must be ordered back (far) to front (near)")
        # The background layer must be fully opaque.
        if float(self.layers[0].mask.min()) < 1.0:
            raise DatasetError("background layer mask must be all ones")

    @property
    def shape(self) -> tuple[int, int]:
        return self.layers[0].texture.shape

    def disparity_of(self, layer: Layer) -> float:
        """Stereo disparity (pixels) of a layer for the unit baseline."""
        return self.focal_baseline / layer.depth

    def render(self, view_shift: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Render (image, disparity_map) from a camera shifted by
        ``view_shift`` baselines to the right.

        A layer at disparity ``d`` appears shifted left by ``view_shift*d``
        pixels in the shifted view. Composition is back-to-front, so the
        returned disparity map is the true disparity of the *visible*
        surface at every pixel.
        """
        height, width = self.shape
        image = np.zeros((height, width), dtype=np.float64)
        disparity = np.zeros((height, width), dtype=np.float64)
        for layer in self.layers:
            d = self.disparity_of(layer)
            shift = -view_shift * d
            if shift != 0.0:
                tex = translate(layer.texture, 0.0, shift, fill=0.0)
                mask = translate(layer.mask, 0.0, shift, fill=0.0)
            else:
                tex, mask = layer.texture, layer.mask
            image = mask * tex + (1.0 - mask) * image
            disparity = np.where(mask > 0.5, d, disparity)
        return np.clip(image, 0.0, 1.0), disparity


def random_scene(
    height: int,
    width: int,
    n_objects: int = 4,
    seed: int | np.random.Generator | None = 0,
    depth_range: tuple[float, float] = (1.5, 8.0),
    background_depth: float = 12.0,
    focal_baseline: float = 30.0,
) -> LayeredScene:
    """Sample a textured scene with ``n_objects`` foreground layers.

    Foreground objects are textured ellipses at random depths; the
    background is a band-limited texture at ``background_depth``. Textures
    are deliberately busy — stereo matching needs local contrast.
    """
    if n_objects < 0:
        raise DatasetError(f"n_objects must be >= 0, got {n_objects}")
    rng = make_rng(seed)
    bg_texture = draw.smooth_texture(height, width, rng, scale=6, low=0.15, high=0.85)
    layers = [Layer(texture=bg_texture, mask=np.ones((height, width)), depth=background_depth)]

    depths = np.sort(rng.uniform(depth_range[0], depth_range[1], size=n_objects))[::-1]
    for depth in depths:
        texture = draw.smooth_texture(height, width, rng,
                                      scale=int(rng.integers(2, 6)),
                                      low=0.1, high=0.95)
        mask = np.zeros((height, width), dtype=np.float64)
        draw.blend_ellipse(
            mask,
            float(rng.uniform(height * 0.25, height * 0.75)),
            float(rng.uniform(width * 0.25, width * 0.75)),
            float(rng.uniform(height * 0.12, height * 0.3)),
            float(rng.uniform(width * 0.08, width * 0.25)),
            1.0,
            softness=0.0,
        )
        layers.append(Layer(texture=texture, mask=mask, depth=float(depth)))
    return LayeredScene(layers=tuple(layers), focal_baseline=focal_baseline)
