"""Stereo pair rendering on top of :mod:`repro.datasets.scenes`.

The left camera is the reference view; the right camera is shifted one
baseline. Ground-truth disparity is attached per pixel (left-view
disparity), which the Figure 7 experiment scores refined depth maps
against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.scenes import LayeredScene, random_scene
from repro.errors import DatasetError


@dataclass(frozen=True)
class StereoPair:
    """A rectified stereo pair with ground truth.

    Attributes
    ----------
    left, right:
        Grayscale views; the right view is shifted by one baseline.
    disparity:
        True disparity of the visible surface in the *left* view (pixels).
    max_disparity:
        Upper bound on disparity present in the pair (search range hint).
    """

    left: np.ndarray
    right: np.ndarray
    disparity: np.ndarray
    max_disparity: float

    @property
    def shape(self) -> tuple[int, int]:
        return self.left.shape

    def normalized_disparity(self) -> np.ndarray:
        """Disparity scaled to [0, 1] by ``max_disparity`` (for metrics)."""
        if self.max_disparity <= 0:
            raise DatasetError("max_disparity must be positive")
        return np.clip(self.disparity / self.max_disparity, 0.0, 1.0)


def render_stereo_pair(scene: LayeredScene) -> StereoPair:
    """Render the canonical (left, right) pair for a layered scene."""
    left, disparity = scene.render(view_shift=0.0)
    right, _ = scene.render(view_shift=1.0)
    max_disparity = max(scene.disparity_of(layer) for layer in scene.layers)
    return StereoPair(
        left=left, right=right, disparity=disparity, max_disparity=max_disparity
    )


def random_stereo_pair(
    height: int,
    width: int,
    n_objects: int = 4,
    seed: int | None = 0,
    focal_baseline: float = 30.0,
) -> StereoPair:
    """Convenience wrapper: sample a random scene and render its pair."""
    scene = random_scene(
        height, width, n_objects=n_objects, seed=seed, focal_baseline=focal_baseline
    )
    return render_stereo_pair(scene)
