"""Synthetic dataset generators.

The paper evaluates on assets we cannot ship (LFW, self-collected videos,
Google-Jump-style rig footage). Each generator here produces a synthetic
equivalent that exercises the same code paths, with ground truth attached:

* :mod:`.faces` — parametric face windows with persistent identities plus
  structured non-face distractors (stands in for LFW).
* :mod:`.video` — sparse-event surveillance sequences for the
  energy-harvesting workload.
* :mod:`.scenes` / :mod:`.stereo` — layered scenes with exact per-pixel
  disparity for the bilateral-space stereo experiments.
* :mod:`.rig` — ring-of-16 camera rig rendering a shared panoramic scene
  with real inter-camera parallax.
"""

from repro.datasets.rng import make_rng, spawn_rngs
from repro.datasets.faces import FaceGenerator, FaceIdentity, FaceSceneSample
from repro.datasets.video import SurveillanceVideo, VideoEvent, VideoFrame
from repro.datasets.scenes import Layer, LayeredScene, random_scene
from repro.datasets.stereo import StereoPair, render_stereo_pair
from repro.datasets.rig import CameraRig, PanoramicScene, RigFrameSet

__all__ = [
    "make_rng",
    "spawn_rngs",
    "FaceGenerator",
    "FaceIdentity",
    "FaceSceneSample",
    "SurveillanceVideo",
    "VideoEvent",
    "VideoFrame",
    "Layer",
    "LayeredScene",
    "random_scene",
    "StereoPair",
    "render_stereo_pair",
    "CameraRig",
    "PanoramicScene",
    "RigFrameSet",
]
