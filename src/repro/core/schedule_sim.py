"""Discrete-event simulation of a pipelined block chain.

The paper's Figure 10 methodology *assumes* the min-rule: "because this
processing flow can be pipelined across frames ... the 'total cost' of the
system can be considered to be dominated by the lowest-throughput block".
This simulator executes the pipeline frame by frame — each stage holds one
frame and hands off when its successor is free — so the assumption becomes
a checkable property: steady-state throughput must converge to
``1 / max(stage_time)``, and end-to-end latency to the sum of stage times
plus any queueing behind the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import PipelineConfig
from repro.errors import PipelineError
from repro.hw.network import LinkModel


@dataclass(frozen=True)
class Stage:
    """One pipeline stage with a fixed per-frame service time."""

    name: str
    seconds_per_frame: float

    def __post_init__(self) -> None:
        if self.seconds_per_frame < 0:
            raise PipelineError(f"stage {self.name!r} has negative time")


@dataclass(frozen=True)
class SimulationResult:
    """Per-frame completion times and derived steady-state metrics."""

    stages: tuple[Stage, ...]
    completion_times: np.ndarray  # (n_frames,) pipeline-exit times
    first_frame_latency: float

    @property
    def n_frames(self) -> int:
        return len(self.completion_times)

    @property
    def steady_state_fps(self) -> float:
        """Throughput measured over the second half of the run (past the
        pipeline fill transient)."""
        if self.n_frames < 4:
            raise PipelineError("need >= 4 frames for a steady-state estimate")
        half = self.n_frames // 2
        span = self.completion_times[-1] - self.completion_times[half - 1]
        frames = self.n_frames - half
        if span <= 0:
            return float("inf")
        return frames / span

    @property
    def bottleneck(self) -> Stage:
        return max(self.stages, key=lambda s: s.seconds_per_frame)

    def predicted_fps(self) -> float:
        """The min-rule prediction this simulation validates."""
        slowest = self.bottleneck.seconds_per_frame
        return float("inf") if slowest <= 0 else 1.0 / slowest


def simulate_pipeline(
    stages: list[Stage] | tuple[Stage, ...],
    n_frames: int = 64,
    capture_interval: float = 0.0,
) -> SimulationResult:
    """Run ``n_frames`` through the stage chain.

    Each stage processes one frame at a time; frame ``f`` enters stage
    ``i`` once stage ``i`` finished frame ``f-1`` AND stage ``i-1``
    finished frame ``f`` (single buffering — the streaming-hardware
    discipline). ``capture_interval`` optionally rate-limits the source.
    """
    if not stages:
        raise PipelineError("need at least one stage")
    if n_frames < 1:
        raise PipelineError(f"n_frames must be >= 1, got {n_frames}")
    stages = tuple(stages)
    n_stages = len(stages)
    finish = np.zeros((n_stages, n_frames), dtype=np.float64)
    for frame in range(n_frames):
        arrival = frame * capture_interval
        for i, stage in enumerate(stages):
            ready_input = finish[i - 1, frame] if i > 0 else arrival
            ready_self = finish[i, frame - 1] if frame > 0 else 0.0
            finish[i, frame] = max(ready_input, ready_self) + stage.seconds_per_frame
    return SimulationResult(
        stages=stages,
        completion_times=finish[-1].copy(),
        first_frame_latency=float(finish[-1, 0]),
    )


def stages_from_config(
    config: PipelineConfig, link: LinkModel
) -> list[Stage]:
    """Turn a pipeline configuration into simulator stages.

    In-camera blocks contribute ``1 / fps`` service times; the uplink
    contributes the transfer time of the cut-point payload.
    """
    stages = [
        Stage(name=f"{block.name}({impl.platform})",
              seconds_per_frame=0.0 if impl.fps == float("inf") else 1.0 / impl.fps)
        for block, impl in config.in_camera_blocks()
    ]
    stages.append(
        Stage(
            name=f"uplink({link.name})",
            seconds_per_frame=link.seconds_for_bytes(config.offload_bytes),
        )
    )
    return stages
