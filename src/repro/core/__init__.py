"""The paper's organizing contribution: in-camera processing pipelines.

A camera application decomposes into an ordered chain of functional blocks
(Figure 1). Some prefix of the chain runs *in camera* — each block on some
platform (ASIC, FPGA, CPU...) with a computation cost — and the output of
the last in-camera block is *offloaded*, with a communication cost set by
its size and the uplink. Cloud compute is free; getting data there is not.

This package turns that framing into code:

* :mod:`.block` — blocks, implementations and their costs;
* :mod:`.pipeline` — the block chain and its cut-point configurations;
* :mod:`.cost` — the two cost domains the paper uses: throughput
  (frames/s, VR case study) and energy (joules/frame, FA case study);
* :mod:`.offload` — configuration enumeration and feasibility analysis
  (the machinery behind Figure 10), now a throughput-domain facade over
  the unified exploration engine in :mod:`repro.explore`;
* :mod:`.sweep` — parameter-sweep utility used by all benchmarks,
  parallelizable via :class:`repro.explore.SweepExecutor`;
* :mod:`.report` — fixed-width tables for benchmark output.
"""

from repro.core.block import Block, Implementation
from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.core.cost import (
    ConfigCost,
    EnergyCostModel,
    EnergyCost,
    ThroughputCostModel,
    implementation_fingerprint,
    platform_axis_fingerprint,
)
from repro.core.offload import OffloadAnalyzer, enumerate_configs
from repro.core.schedule_sim import (
    SimulationResult,
    Stage,
    simulate_pipeline,
    stages_from_config,
)
from repro.core.sweep import SweepResult, parameter_sweep
from repro.core.report import TextTable

__all__ = [
    "Block",
    "Implementation",
    "InCameraPipeline",
    "PipelineConfig",
    "ConfigCost",
    "EnergyCost",
    "EnergyCostModel",
    "ThroughputCostModel",
    "OffloadAnalyzer",
    "enumerate_configs",
    "SimulationResult",
    "Stage",
    "simulate_pipeline",
    "stages_from_config",
    "SweepResult",
    "implementation_fingerprint",
    "parameter_sweep",
    "platform_axis_fingerprint",
    "TextTable",
]
