"""Pipelines and their configurations (cut point x platform choices).

An :class:`InCameraPipeline` is the sensor plus an ordered block chain. A
:class:`PipelineConfig` selects how many leading blocks run in camera and
on which platform each runs; everything after the cut is offloaded. The
notation mirrors the paper's Figure 10 labels: ``S~`` (offload raw),
``S B1 B2 B3(fpga)~`` and so on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.block import Block, Implementation
from repro.errors import PipelineError


def _digest(payload: tuple) -> str:
    """Short stable hex digest of a repr-able payload tuple.

    ``repr`` round-trips Python floats exactly, so two payloads digest
    equal iff their values are bit-equal — the property the fingerprint
    consumers (campaign-level evaluation dedup) rely on.
    """
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class InCameraPipeline:
    """The sensor and its downstream block chain.

    Parameters
    ----------
    name:
        Pipeline label for reports.
    sensor_bytes:
        Per-frame size of the raw sensor output (the cut-point payload
        when nothing runs in camera).
    blocks:
        Ordered stages; each consumes its predecessor's output.
    sensor_energy_per_frame:
        Energy-domain cost of capturing one frame (image sensor + ADC).
    """

    name: str
    sensor_bytes: float
    blocks: tuple[Block, ...]
    sensor_energy_per_frame: float = 0.0

    def __post_init__(self) -> None:
        if self.sensor_bytes < 0:
            raise PipelineError("sensor_bytes must be >= 0")
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate block names: {names}")

    def block(self, name: str) -> Block:
        for b in self.blocks:
            if b.name == name:
                return b
        raise PipelineError(f"no block named {name!r} in pipeline {self.name!r}")

    def fingerprint(self) -> str:
        """Structural digest of the pipeline *chain*.

        Covers everything the chain itself contributes to a cost
        evaluation: the sensor payload and capture energy, and each
        block's name, output payload and pass rate. Deliberately
        excluded are the pipeline ``name`` (a report label — two
        identically-structured pipelines under different labels evaluate
        identically) and the per-block implementation tables (the
        *platform axis*, fingerprinted separately by
        :func:`repro.core.cost.platform_axis_fingerprint` so that
        structurally identical pipelines with different implementation
        costs can never share cached evaluations).
        """
        return _digest(
            (
                self.sensor_bytes,
                self.sensor_energy_per_frame,
                tuple(
                    (block.name, block.output_bytes, block.pass_rate)
                    for block in self.blocks
                ),
            )
        )

    def output_bytes_after(self, n_in_camera: int) -> float:
        """Payload crossing the uplink with ``n_in_camera`` leading blocks
        executed at the camera (0 = raw sensor offload)."""
        if not 0 <= n_in_camera <= len(self.blocks):
            raise PipelineError(
                f"n_in_camera must be in [0, {len(self.blocks)}], got {n_in_camera}"
            )
        if n_in_camera == 0:
            return self.sensor_bytes
        return self.blocks[n_in_camera - 1].output_bytes


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """One point in the offload design space.

    Slotted: design spaces hold millions of these, and dropping the
    per-instance ``__dict__`` roughly halves both their memory and the
    cyclic GC's scan cost.

    Parameters
    ----------
    pipeline:
        The pipeline being configured.
    platforms:
        Platform name per in-camera block, aligned with the leading
        blocks of the pipeline; its length *is* the cut point.
    """

    pipeline: InCameraPipeline
    platforms: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.platforms) > len(self.pipeline.blocks):
            raise PipelineError("more platform choices than blocks")
        # Validate every choice eagerly: misconfigurations should fail at
        # construction, not mid-evaluation.
        for block, platform in zip(self.pipeline.blocks, self.platforms):
            block.implementation(platform)

    @classmethod
    def trusted(
        cls, pipeline: InCameraPipeline, platforms: tuple[str, ...]
    ) -> "PipelineConfig":
        """Construct without per-choice validation.

        The enumeration hot path builds millions of configurations whose
        platform choices come straight from ``block.implementations``
        keys and are therefore valid by construction; re-validating each
        one costs more than the evaluation itself. Callers must
        guarantee ``platforms`` aligns with the pipeline's leading
        blocks and that every choice names a real implementation —
        anything else surfaces later as a ``PipelineError`` from
        evaluation instead of at construction.
        """
        config = object.__new__(cls)
        object.__setattr__(config, "pipeline", pipeline)
        object.__setattr__(config, "platforms", platforms)
        return config

    @property
    def n_in_camera(self) -> int:
        return len(self.platforms)

    @property
    def offload_bytes(self) -> float:
        return self.pipeline.output_bytes_after(self.n_in_camera)

    def in_camera_blocks(self) -> list[tuple[Block, Implementation]]:
        """The (block, chosen implementation) pairs running at the camera."""
        return [
            (block, block.implementation(platform))
            for block, platform in zip(self.pipeline.blocks, self.platforms)
        ]

    @property
    def label(self) -> str:
        """Figure 10-style label, e.g. ``S B1 B2 B3(fpga)~``."""
        parts = ["S"]
        for block, platform in zip(self.pipeline.blocks, self.platforms):
            impls = block.implementations
            if len(impls) > 1:
                parts.append(f"{block.name}({platform})")
            else:
                parts.append(block.name)
        return " ".join(parts) + "~"
