"""Parameter sweeps: the scaffolding every benchmark reuses.

A sweep runs a callable over the cartesian product of named parameter
lists and records one row per point. Rows are plain dicts so benchmarks
can feed them straight into :class:`repro.core.report.TextTable`.

Evaluation runs through a :class:`repro.explore.SweepExecutor`, so any
sweep can go thread- or process-parallel by passing ``executor=``;
row order is the grid order regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from itertools import product
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.explore.executor import (
    STREAM_CHUNK_SIZE,
    SweepExecutor,
    auto_chunk_size,
    resolve_executor,
)
from repro.explore.result import pareto_filter, require_key
from repro.explore.sink import resolve_sink, sink_stream


@dataclass
class SweepResult:
    """Collected rows of a sweep, with small query helpers."""

    rows: list[dict[str, Any]] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        """Extract one column across all rows."""
        require_key(self.rows, name, kind="column")
        return [r[name] for r in self.rows]

    def best(self, metric: str, minimize: bool = True) -> dict[str, Any]:
        """Row optimizing a metric; ties break to the earliest row."""
        if not self.rows:
            raise ConfigurationError("sweep produced no rows")
        require_key(self.rows, metric)
        key = lambda r: r[metric]  # noqa: E731
        # min()/max() return the first optimal element, so ties break to
        # the earliest row.
        return min(self.rows, key=key) if minimize else max(self.rows, key=key)

    def where(self, **conditions: Any) -> "SweepResult":
        """Rows matching all equality conditions."""
        rows = [
            r for r in self.rows if all(r.get(k) == v for k, v in conditions.items())
        ]
        return SweepResult(rows=rows)

    def pareto(
        self, axes: Sequence[str], maximize: bool | Sequence[bool] = True
    ) -> "SweepResult":
        """The non-dominated rows under the given axes (see
        :func:`repro.explore.pareto_filter`)."""
        return SweepResult(rows=pareto_filter(self.rows, axes, maximize))


def _measure_point(
    fn: Callable[..., dict[str, Any]], point: dict[str, Any]
) -> dict[str, Any]:
    """Evaluate one grid point into its merged row (module-level for
    picklability). Measured keys win on collision with swept ones."""
    measured = fn(**point)
    if not isinstance(measured, dict):
        raise ConfigurationError("sweep function must return a dict")
    return {**point, **measured}


def parameter_sweep(
    fn: Callable[..., dict[str, Any]],
    *,
    executor: SweepExecutor | None = None,
    sink: Any = None,
    **param_lists: list[Any],
) -> SweepResult:
    """Run ``fn(**point)`` over the grid of ``param_lists``.

    ``fn`` must return a dict of measured values; the swept parameters are
    merged into each row (measured keys win on collision, which lets a
    function refine a requested parameter, e.g. snapping to a legal
    value).

    ``executor`` is reserved (keyword-only) for the evaluation backend
    and cannot be the name of a swept parameter; the default is serial.
    Parallel executors return rows in the same grid order as serial.
    The grid streams lazily through the executor — intermediate memory
    is bounded by the executor's chunk window, not the grid size (the
    collected rows are the output, as always).

    ``sink`` (keyword-only, also reserved) streams rows to a
    :class:`repro.explore.sink.ResultSink` as they are measured, in grid
    order — the same pass-through the exploration engine offers, so a
    long sweep's rows hit disk before the sweep finishes. The sink is
    opened with ``scenario=None`` (sweeps have no scenario) and closed
    on exit, also on error.
    """
    if not param_lists:
        raise ConfigurationError("no parameters to sweep")
    sink = resolve_sink(sink)
    names = sorted(param_lists)
    total = 1
    for name in names:
        if not param_lists[name]:
            raise ConfigurationError(f"parameter {name!r} has no values")
        total *= len(param_lists[name])
    points = (
        dict(zip(names, values))
        for values in product(*(param_lists[name] for name in names))
    )
    executor = resolve_executor(executor)
    chunk_size = executor.chunk_size
    if chunk_size is None and not executor.is_serial:
        chunk_size = auto_chunk_size(total, executor.workers)
    stream = executor.imap(partial(_measure_point, fn), points, chunk_size=chunk_size)
    if sink is None:
        return SweepResult(rows=list(stream))
    # Sink writes happen at chunk granularity, matching the engine's
    # write_rows-per-chunk contract (batching consumers rely on it).
    batch_size = chunk_size if chunk_size is not None else STREAM_CHUNK_SIZE
    rows: list[dict[str, Any]] = []
    with sink_stream(sink, None, "parameter sweep") as write:
        start = 0
        for row in stream:
            rows.append(row)
            if len(rows) - start >= batch_size:
                write(rows[start:])
                start = len(rows)
        if start < len(rows):
            write(rows[start:])
    return SweepResult(rows=rows)
