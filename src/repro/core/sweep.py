"""Parameter sweeps: the scaffolding every benchmark reuses.

A sweep runs a callable over the cartesian product of named parameter
lists and records one row per point. Rows are plain dicts so benchmarks
can feed them straight into :class:`repro.core.report.TextTable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable

from repro.errors import ConfigurationError


@dataclass
class SweepResult:
    """Collected rows of a sweep, with small query helpers."""

    rows: list[dict[str, Any]] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        """Extract one column across all rows."""
        missing = [i for i, r in enumerate(self.rows) if name not in r]
        if missing:
            raise ConfigurationError(f"column {name!r} missing in rows {missing[:5]}")
        return [r[name] for r in self.rows]

    def best(self, metric: str, minimize: bool = True) -> dict[str, Any]:
        """Row optimizing a metric."""
        if not self.rows:
            raise ConfigurationError("sweep produced no rows")
        key = lambda r: r[metric]  # noqa: E731
        return min(self.rows, key=key) if minimize else max(self.rows, key=key)

    def where(self, **conditions: Any) -> "SweepResult":
        """Rows matching all equality conditions."""
        rows = [
            r for r in self.rows if all(r.get(k) == v for k, v in conditions.items())
        ]
        return SweepResult(rows=rows)


def parameter_sweep(
    fn: Callable[..., dict[str, Any]],
    **param_lists: list[Any],
) -> SweepResult:
    """Run ``fn(**point)`` over the grid of ``param_lists``.

    ``fn`` must return a dict of measured values; the swept parameters are
    merged into each row (measured keys win on collision, which lets a
    function refine a requested parameter, e.g. snapping to a legal
    value).
    """
    if not param_lists:
        raise ConfigurationError("no parameters to sweep")
    names = sorted(param_lists)
    for name in names:
        if not param_lists[name]:
            raise ConfigurationError(f"parameter {name!r} has no values")
    result = SweepResult()
    for values in product(*(param_lists[name] for name in names)):
        point = dict(zip(names, values))
        measured = fn(**point)
        if not isinstance(measured, dict):
            raise ConfigurationError("sweep function must return a dict")
        result.rows.append({**point, **measured})
    return result
