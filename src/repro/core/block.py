"""Blocks and implementations — the unit of pipeline decomposition.

A :class:`Block` is a functional stage (motion detection, demosaic, depth
estimation, ...) with a defined output size per frame and one or more
:class:`Implementation` options (the same block might run on an ASIC, the
host CPU, an FPGA...). Costs live on implementations because that is what
the paper varies: Figure 10's nine configurations differ only in *where*
B3/B4 run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PipelineError


@dataclass(frozen=True)
class Implementation:
    """One way to execute a block.

    Exactly the two cost axes the paper evaluates:

    Parameters
    ----------
    platform:
        Name ('asic', 'cpu', 'gpu', 'fpga', 'isp', ...).
    fps:
        Sustainable throughput in frames/second (throughput domain);
        ``inf`` for negligible stages.
    energy_per_frame:
        Joules per processed frame (energy domain).
    active_seconds:
        Wall-clock active time per frame (used by the duty-cycle
        simulator on harvested-energy nodes).
    """

    platform: str
    fps: float = float("inf")
    energy_per_frame: float = 0.0
    active_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise PipelineError(f"fps must be positive, got {self.fps}")
        if self.energy_per_frame < 0 or self.active_seconds < 0:
            raise PipelineError("energy and active time must be >= 0")


@dataclass(frozen=True)
class Block:
    """A pipeline stage.

    Parameters
    ----------
    name:
        Stage label ('B1', 'motion', ...).
    output_bytes:
        Size of this block's per-frame output (what crosses the uplink if
        the pipeline is cut after this block).
    implementations:
        Available platforms, keyed by platform name.
    optional:
        Whether the block may be dropped from the pipeline (the paper's
        "optional blocks" — filters that don't change the result but can
        reduce downstream cost).
    pass_rate:
        For gating/filter blocks in the energy domain: the expected
        fraction of frames this block lets through to the next stage
        (1.0 for non-filtering blocks).
    """

    name: str
    output_bytes: float
    implementations: dict[str, Implementation] = field(default_factory=dict)
    optional: bool = False
    pass_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.output_bytes < 0:
            raise PipelineError(f"output_bytes must be >= 0, got {self.output_bytes}")
        if not 0.0 <= self.pass_rate <= 1.0:
            raise PipelineError(f"pass_rate must be in [0, 1], got {self.pass_rate}")
        for key, impl in self.implementations.items():
            if key != impl.platform:
                raise PipelineError(
                    f"implementation key {key!r} != platform {impl.platform!r}"
                )

    def implementation(self, platform: str) -> Implementation:
        """Look up an implementation, with a helpful error."""
        if platform not in self.implementations:
            raise PipelineError(
                f"block {self.name!r} has no {platform!r} implementation; "
                f"available: {sorted(self.implementations)}"
            )
        return self.implementations[platform]

    def with_implementation(self, impl: Implementation) -> "Block":
        """A copy of this block with one more implementation registered."""
        impls = dict(self.implementations)
        impls[impl.platform] = impl
        return Block(
            name=self.name,
            output_bytes=self.output_bytes,
            implementations=impls,
            optional=self.optional,
            pass_rate=self.pass_rate,
        )
