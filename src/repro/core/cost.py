"""Cost models: the paper's two evaluation domains.

*Throughput domain* (VR case study): every block and the uplink are
pipeline stages across frames, so the system rate is the minimum of the
per-stage rates — "the slowest step will dominate overall throughput".

*Energy domain* (harvested-power case study): the system cost is joules
per captured frame — sensor + expected block energies + transmit energy —
where *expected* reflects filter blocks gating their successors (a frame
rejected by motion detection never pays for face detection).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineConfig
from repro.errors import PipelineError
from repro.hw.network import LinkModel


@dataclass(frozen=True)
class ConfigCost:
    """Throughput-domain evaluation of one configuration."""

    config: PipelineConfig
    compute_fps: float
    communication_fps: float
    slowest_block: str

    @property
    def total_fps(self) -> float:
        """Pipelined system throughput."""
        return min(self.compute_fps, self.communication_fps)

    @property
    def bottleneck(self) -> str:
        """'compute' or 'communication', whichever binds."""
        return "compute" if self.compute_fps < self.communication_fps else "communication"

    def meets(self, target_fps: float) -> bool:
        """Whether *both* axes clear the target (the paper's criterion:
        "we seek to uncover scenarios in which both computation and
        communication surpass our minimum frame rate")."""
        return self.compute_fps >= target_fps and self.communication_fps >= target_fps


class ThroughputCostModel:
    """Evaluate configurations as frame rates over a given uplink."""

    def __init__(self, link: LinkModel):
        self.link = link

    def evaluate(self, config: PipelineConfig) -> ConfigCost:
        compute_fps = float("inf")
        slowest = "none"
        for block, impl in config.in_camera_blocks():
            if impl.fps < compute_fps:
                compute_fps = impl.fps
                slowest = f"{block.name}({impl.platform})"
        comm_fps = self.link.fps_for_bytes(config.offload_bytes)
        return ConfigCost(
            config=config,
            compute_fps=compute_fps,
            communication_fps=comm_fps,
            slowest_block=slowest,
        )


@dataclass(frozen=True)
class EnergyCost:
    """Energy-domain evaluation of one configuration."""

    config: PipelineConfig
    sensor_energy: float
    block_energies: dict[str, float]  # expected joules per captured frame
    transmit_energy: float  # expected joules per captured frame
    transmit_rate: float  # fraction of frames whose output is transmitted
    active_seconds: float  # expected active time per captured frame

    @property
    def total_energy(self) -> float:
        """Expected joules per captured frame."""
        return self.sensor_energy + sum(self.block_energies.values()) + self.transmit_energy

    def average_power(self, frames_per_second: float) -> float:
        """Mean power at a steady capture rate."""
        if frames_per_second <= 0:
            raise PipelineError("frames_per_second must be positive")
        return self.total_energy * frames_per_second


class EnergyCostModel:
    """Evaluate configurations as expected joules per captured frame.

    Filter blocks gate their successors: block *i* runs only on the
    fraction of frames every earlier filter passed, and the uplink
    transmits only what survives the whole in-camera chain. This is the
    quantitative form of the paper's "progressive filtering" argument.
    """

    def __init__(self, link: LinkModel):
        self.link = link

    def evaluate(
        self,
        config: PipelineConfig,
        pass_rates: dict[str, float] | None = None,
    ) -> EnergyCost:
        """Compute expected energy.

        Parameters
        ----------
        config:
            The configuration to evaluate.
        pass_rates:
            Optional measured pass rates per block name, overriding the
            blocks' static ``pass_rate`` (benchmarks feed rates measured
            on actual workload traces here).
        """
        rate = 1.0  # fraction of captured frames reaching the current stage
        block_energies: dict[str, float] = {}
        active = 0.0
        for block, impl in config.in_camera_blocks():
            block_energies[block.name] = rate * impl.energy_per_frame
            active += rate * impl.active_seconds
            block_rate = (
                pass_rates.get(block.name, block.pass_rate)
                if pass_rates is not None
                else block.pass_rate
            )
            if not 0.0 <= block_rate <= 1.0:
                raise PipelineError(
                    f"pass rate for {block.name!r} must be in [0,1], got {block_rate}"
                )
            rate *= block_rate
        tx_energy = rate * self.link.tx_energy_for_bytes(config.offload_bytes)
        active += rate * self.link.seconds_for_bytes(config.offload_bytes)
        return EnergyCost(
            config=config,
            sensor_energy=config.pipeline.sensor_energy_per_frame,
            block_energies=block_energies,
            transmit_energy=tx_energy,
            transmit_rate=rate,
            active_seconds=active,
        )
