"""Cost models: the paper's two evaluation domains.

*Throughput domain* (VR case study): every block and the uplink are
pipeline stages across frames, so the system rate is the minimum of the
per-stage rates — "the slowest step will dominate overall throughput".

*Energy domain* (harvested-power case study): the system cost is joules
per captured frame — sensor + expected block energies + transmit energy —
where *expected* reflects filter blocks gating their successors (a frame
rejected by motion detection never pays for face detection).

Both models are *prefix-decomposable*: a depth-``d`` configuration's
cost is its depth-``d-1`` prefix cost extended by exactly one block
(running min-fps for throughput; running pass rate, accumulated block
energies, and active seconds for energy), plus a final link term that
depends only on the cut depth. The models therefore expose that
structure directly — :meth:`initial_state` / :meth:`extend_state` /
:meth:`finalize` — and ``evaluate()`` is defined as the full left fold
over a configuration's in-camera blocks. Incremental evaluation
(:mod:`repro.explore.incremental`) replays the *same* float operations
in the *same* order, so prefix-memoized results are bit-identical to
from-scratch ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

try:  # numpy backs the optional columnar batch path; scalar folds never need it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from repro.core.block import Block, Implementation
from repro.core.pipeline import InCameraPipeline, PipelineConfig, _digest
from repro.errors import PipelineError
from repro.hw.network import LinkModel


def _require_numpy() -> Any:
    if _np is None:  # pragma: no cover - guarded by supports_batch_evaluation
        raise PipelineError("batch cost evaluation requires numpy")
    return _np


def implementation_fingerprint(impl: Implementation) -> tuple:
    """The cost-defining identity of one implementation: every field
    either cost model reads (platform name, frame rate, energy per
    frame, active seconds). Two implementations with equal fingerprints
    are interchangeable under both stock cost models."""
    return (impl.platform, impl.fps, impl.energy_per_frame, impl.active_seconds)


def platform_axis_fingerprint(pipeline: InCameraPipeline) -> str:
    """Digest of the pipeline's *platform axis*: every block's
    implementation cost table, platforms in sorted (enumeration) order.

    The complement of :meth:`InCameraPipeline.fingerprint`: the chain
    fingerprint covers what the blocks *are*, this covers what running
    them *costs* on each available platform. Campaign-level evaluation
    dedup (:class:`repro.explore.campaign.PipelineCostCache`) keys on
    the pair — two scenarios share compute-side prefix states only when
    both digests (and the enumeration bounds) match, so structurally
    identical pipelines with different implementation prices can never
    poison each other's cache entries.
    """
    return _digest(
        tuple(
            tuple(
                implementation_fingerprint(block.implementations[name])
                for name in sorted(block.implementations)
            )
            for block in pipeline.blocks
        )
    )

def option_fps_column(impls: Sequence[Implementation]) -> Any:
    """The frame rate of each implementation as one float column.

    ``impls`` must be in enumeration (sorted platform) order. Shared
    batch bound kernel: both the columnar throughput fold and the
    vectorized throughput pruner index this column with a choice array,
    so bound and cost read the exact same floats.
    """
    np = _require_numpy()
    return np.array([impl.fps for impl in impls])


def option_energy_columns(impls: Sequence[Implementation]) -> tuple[Any, Any]:
    """Per-implementation (energy per frame, active seconds) columns.

    ``impls`` must be in enumeration (sorted platform) order. Shared
    batch bound kernel: the columnar energy fold and the vectorized
    energy pruner both index the energy column, so bound and cost read
    the exact same floats.
    """
    np = _require_numpy()
    return (
        np.array([impl.energy_per_frame for impl in impls]),
        np.array([impl.active_seconds for impl in impls]),
    )


#: Throughput prefix state: (running min fps, slowest block label).
ThroughputState = tuple[float, str]

#: Energy prefix state: (fraction of frames reaching the next stage,
#: accumulated (block name, expected joules) pairs, expected active
#: seconds). The energies are a tuple so states are immutable and safe
#: to share between sibling prefixes in a memoized walk.
EnergyState = tuple[float, tuple[tuple[str, float], ...], float]


@dataclass(frozen=True, slots=True)
class ConfigCost:
    """Throughput-domain evaluation of one configuration.

    Slotted, like :class:`~repro.core.pipeline.PipelineConfig`: one
    instance exists per explored configuration."""

    config: PipelineConfig
    compute_fps: float
    communication_fps: float
    slowest_block: str

    @property
    def total_fps(self) -> float:
        """Pipelined system throughput."""
        return min(self.compute_fps, self.communication_fps)

    @property
    def bottleneck(self) -> str:
        """'compute' or 'communication', whichever binds."""
        return "compute" if self.compute_fps < self.communication_fps else "communication"

    def meets(self, target_fps: float) -> bool:
        """Whether *both* axes clear the target (the paper's criterion:
        "we seek to uncover scenarios in which both computation and
        communication surpass our minimum frame rate")."""
        return self.compute_fps >= target_fps and self.communication_fps >= target_fps


class ThroughputCostModel:
    """Evaluate configurations as frame rates over a given uplink."""

    def __init__(self, link: LinkModel):
        self.link = link

    def initial_state(self) -> ThroughputState:
        """The cost state of the empty (raw-offload) prefix."""
        return (float("inf"), "none")

    def extend_state(
        self, state: ThroughputState, block: Block, impl: Implementation
    ) -> ThroughputState:
        """The state after running one more block in camera."""
        if impl.fps < state[0]:
            return (impl.fps, f"{block.name}({impl.platform})")
        return state

    def finalize(
        self,
        state: ThroughputState,
        config: PipelineConfig,
        communication_fps: float | None = None,
    ) -> ConfigCost:
        """Close a prefix state into a :class:`ConfigCost`.

        ``communication_fps`` lets a memoized walk pass the per-depth
        link rate it already computed (the payload depends only on the
        cut depth, not the platform choices); when None it is derived
        from the configuration.
        """
        if communication_fps is None:
            communication_fps = self.link.fps_for_bytes(config.offload_bytes)
        cost = object.__new__(ConfigCost)
        set_field = object.__setattr__
        set_field(cost, "config", config)
        set_field(cost, "compute_fps", state[0])
        set_field(cost, "communication_fps", communication_fps)
        set_field(cost, "slowest_block", state[1])
        return cost

    def evaluate(self, config: PipelineConfig) -> ConfigCost:
        state = self.initial_state()
        for block, impl in config.in_camera_blocks():
            state = self.extend_state(state, block, impl)
        return self.finalize(state, config)

    # -- columnar batch counterparts -----------------------------------
    # Row i of every array is the scalar fold of configuration i: the
    # batch kernels perform the same float operations in the same order
    # (elementwise), so results are bit-identical to the scalar path.

    def initial_state_batch(self, n: int) -> tuple[Any, Any]:
        """Array-shaped :meth:`initial_state` for ``n`` configurations."""
        np = _require_numpy()
        return (np.full(n, float("inf")), np.full(n, "none", dtype=object))

    def extend_state_batch(
        self,
        state: tuple[Any, Any],
        block: Block,
        impls: Sequence[Implementation],
        choices: Any,
    ) -> tuple[Any, Any]:
        """Array-shaped :meth:`extend_state`.

        ``impls`` is the block's implementations in enumeration (sorted
        platform) order and ``choices`` an integer array selecting each
        row's implementation. The running-min update mirrors the scalar
        branch ``if impl.fps < state[0]`` exactly.
        """
        np = _require_numpy()
        fps_cur, labels_cur = state
        option_fps = option_fps_column(impls)
        option_labels = np.array(
            [f"{block.name}({impl.platform})" for impl in impls], dtype=object
        )
        fps_new = option_fps[choices]
        slower = fps_new < fps_cur
        return (
            np.where(slower, fps_new, fps_cur),
            np.where(slower, option_labels[choices], labels_cur),
        )

    def finalize_batch(
        self, state: tuple[Any, Any], communication_fps: float
    ) -> dict[str, Any]:
        """Close a batch state into columnar cost fields.

        ``communication_fps`` is the per-depth link rate shared by every
        row (the payload depends only on the cut depth). Returns the
        column mapping consumed by
        :class:`repro.explore.vectorized.BatchRows`.
        """
        return {
            "compute_fps": state[0],
            "slowest_block": state[1],
            "communication_fps": communication_fps,
        }

    def finalize_batch_multi(
        self, state: tuple[Any, Any], communication_fps_stack: Sequence[float]
    ) -> list[dict[str, Any]]:
        """Close ONE batch state under ``n_members`` link terms at once.

        The compute-side columns (``compute_fps``, ``slowest_block``)
        are link-independent, so every member's column dict shares them
        by reference — a dedup group of N links closes a depth cohort
        with zero per-row work beyond the shared fold. Member ``m``'s
        columns are exactly ``finalize_batch(state, stack[m])``.
        """
        return [
            {
                "compute_fps": state[0],
                "slowest_block": state[1],
                "communication_fps": communication_fps,
            }
            for communication_fps in communication_fps_stack
        ]


@dataclass(frozen=True, slots=True)
class EnergyCost:
    """Energy-domain evaluation of one configuration.

    Slotted, like :class:`~repro.core.pipeline.PipelineConfig`: one
    instance exists per explored configuration."""

    config: PipelineConfig
    sensor_energy: float
    block_energies: dict[str, float]  # expected joules per captured frame
    transmit_energy: float  # expected joules per captured frame
    transmit_rate: float  # fraction of frames whose output is transmitted
    active_seconds: float  # expected active time per captured frame

    @property
    def total_energy(self) -> float:
        """Expected joules per captured frame."""
        return self.sensor_energy + sum(self.block_energies.values()) + self.transmit_energy

    def average_power(self, frames_per_second: float) -> float:
        """Mean power at a steady capture rate."""
        if frames_per_second <= 0:
            raise PipelineError("frames_per_second must be positive")
        return self.total_energy * frames_per_second


class EnergyCostModel:
    """Evaluate configurations as expected joules per captured frame.

    Filter blocks gate their successors: block *i* runs only on the
    fraction of frames every earlier filter passed, and the uplink
    transmits only what survives the whole in-camera chain. This is the
    quantitative form of the paper's "progressive filtering" argument.
    """

    def __init__(self, link: LinkModel):
        self.link = link

    def initial_state(self) -> EnergyState:
        """The cost state of the empty (raw-offload) prefix."""
        return (1.0, (), 0.0)

    def extend_state(
        self,
        state: EnergyState,
        block: Block,
        impl: Implementation,
        pass_rates: dict[str, float] | None = None,
    ) -> EnergyState:
        """The state after running one more block in camera."""
        rate, energies, active = state
        energy = rate * impl.energy_per_frame
        active = active + rate * impl.active_seconds
        block_rate = (
            pass_rates.get(block.name, block.pass_rate)
            if pass_rates is not None
            else block.pass_rate
        )
        if not 0.0 <= block_rate <= 1.0:
            raise PipelineError(
                f"pass rate for {block.name!r} must be in [0,1], got {block_rate}"
            )
        return (rate * block_rate, energies + ((block.name, energy),), active)

    def finalize(
        self,
        state: EnergyState,
        config: PipelineConfig,
        link_costs: tuple[float, float] | None = None,
    ) -> EnergyCost:
        """Close a prefix state into an :class:`EnergyCost`.

        ``link_costs`` is the per-payload (transmit joules, transmit
        seconds) pair; a memoized walk passes the per-depth values it
        already computed, and when None they are derived from the
        configuration.
        """
        rate, energies, active = state
        if link_costs is None:
            offload_bytes = config.offload_bytes
            link_costs = (
                self.link.tx_energy_for_bytes(offload_bytes),
                self.link.seconds_for_bytes(offload_bytes),
            )
        cost = object.__new__(EnergyCost)
        set_field = object.__setattr__
        set_field(cost, "config", config)
        set_field(cost, "sensor_energy", config.pipeline.sensor_energy_per_frame)
        set_field(cost, "block_energies", dict(energies))
        set_field(cost, "transmit_energy", rate * link_costs[0])
        set_field(cost, "transmit_rate", rate)
        set_field(cost, "active_seconds", active + rate * link_costs[1])
        return cost

    def evaluate(
        self,
        config: PipelineConfig,
        pass_rates: dict[str, float] | None = None,
    ) -> EnergyCost:
        """Compute expected energy.

        Parameters
        ----------
        config:
            The configuration to evaluate.
        pass_rates:
            Optional measured pass rates per block name, overriding the
            blocks' static ``pass_rate`` (benchmarks feed rates measured
            on actual workload traces here).
        """
        state = self.initial_state()
        for block, impl in config.in_camera_blocks():
            state = self.extend_state(state, block, impl, pass_rates)
        return self.finalize(state, config)

    # -- columnar batch counterparts -----------------------------------
    # Row i of every array is the scalar fold of configuration i: the
    # batch kernels perform the same float operations in the same order
    # (elementwise), so results are bit-identical to the scalar path.

    def initial_state_batch(self, n: int) -> tuple[Any, tuple, Any]:
        """Array-shaped :meth:`initial_state` for ``n`` configurations."""
        np = _require_numpy()
        return (np.ones(n), (), np.zeros(n))

    def extend_state_batch(
        self,
        state: tuple[Any, tuple, Any],
        block: Block,
        impls: Sequence[Implementation],
        choices: Any,
        pass_rates: dict[str, float] | None = None,
    ) -> tuple[Any, tuple, Any]:
        """Array-shaped :meth:`extend_state`.

        ``impls`` is the block's implementations in enumeration (sorted
        platform) order and ``choices`` an integer array selecting each
        row's implementation. Per-block energies stay one array per
        level (struct-of-arrays), mirroring the scalar state's tuple of
        ``(name, energy)`` pairs.
        """
        rate, energies, active = state
        option_energy, option_active = option_energy_columns(impls)
        energy = rate * option_energy[choices]
        active = active + rate * option_active[choices]
        block_rate = (
            pass_rates.get(block.name, block.pass_rate)
            if pass_rates is not None
            else block.pass_rate
        )
        if not 0.0 <= block_rate <= 1.0:
            raise PipelineError(
                f"pass rate for {block.name!r} must be in [0,1], got {block_rate}"
            )
        return (rate * block_rate, energies + ((block.name, energy),), active)

    def finalize_batch(
        self, state: tuple[Any, tuple, Any], link_costs: tuple[float, float]
    ) -> dict[str, Any]:
        """Close a batch state into columnar cost fields.

        ``link_costs`` is the per-depth (transmit joules, transmit
        seconds) pair shared by every row. Returns the column mapping
        consumed by :class:`repro.explore.vectorized.BatchRows`.
        """
        rate, energies, active = state
        return {
            "transmit_rate": rate,
            "block_energies": energies,
            "transmit_energy": rate * link_costs[0],
            "active_seconds": active + rate * link_costs[1],
        }

    def finalize_batch_multi(
        self,
        state: tuple[Any, tuple, Any],
        link_costs_stack: Sequence[tuple[float, float]],
    ) -> list[dict[str, Any]]:
        """Close ONE batch state under ``n_members`` link terms at once.

        ``link_costs_stack`` holds each member's per-depth (transmit
        joules, transmit seconds) pair. The two link-dependent columns
        fold as a single ``(n_members, n_rows)`` broadcast each:
        ``rate[None, :] * tx[:, None]`` computes ``rate_i * tx_m`` per
        cell — the identical IEEE-754 double multiply the scalar
        ``finalize`` performs — and ``active[None, :] + rate[None, :] *
        sec[:, None]`` multiplies before adding, matching the scalar
        ``active + rate * link_costs[1]`` operation order, so member
        ``m``'s row slice is bit-identical to
        ``finalize_batch(state, stack[m])``. The link-independent
        columns (``transmit_rate``, ``block_energies``) are shared by
        reference across members.
        """
        np = _require_numpy()
        rate, energies, active = state
        tx = np.array([pair[0] for pair in link_costs_stack])
        sec = np.array([pair[1] for pair in link_costs_stack])
        transmit = rate[None, :] * tx[:, None]
        active_all = active[None, :] + rate[None, :] * sec[:, None]
        return [
            {
                "transmit_rate": rate,
                "block_energies": energies,
                "transmit_energy": transmit[member],
                "active_seconds": active_all[member],
            }
            for member in range(len(link_costs_stack))
        ]
