"""Fixed-width text tables for benchmark output.

Every experiment harness prints its paper-correspondence table through
this class, so EXPERIMENTS.md and the benchmark logs share a format.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Any

from repro.errors import ConfigurationError


class TextTable:
    """A simple aligned table.

    >>> t = TextTable(["config", "fps"])
    >>> t.add_row({"config": "S~", "fps": 15.7})
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: list[str], title: str | None = None):
        if not columns:
            raise ConfigurationError("table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ConfigurationError(f"duplicate columns: {columns}")
        self.columns = list(columns)
        self.title = title
        self._rows: list[list[str]] = []

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            if math.isnan(value):
                return "nan"
            if value == float("inf"):
                return "inf"
            if value == float("-inf"):
                return "-inf"
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1000 or magnitude < 0.001:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def add_row(self, row: dict[str, Any]) -> None:
        """Append one row; missing columns render as '-'."""
        self._rows.append([self._format(row.get(c, "-")) for c in self.columns])

    def add_rows(self, rows: list[dict[str, Any]]) -> None:
        for row in rows:
            self.add_row(row)

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """The formatted table as a string."""
        widths = [
            max(len(col), *(len(r[i]) for r in self._rows)) if self._rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self._rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The table as CSV, cells formatted exactly as :meth:`render`
        formats them (exploration results export through this)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self._rows)
        return buffer.getvalue()

    def print(self) -> None:
        """Print the table (captured by pytest -s / tee in bench logs)."""
        print("\n" + self.render())


#: Canonical column order of a campaign summary row (see
#: :meth:`repro.explore.campaign.ScenarioRun.summary_row`).
CAMPAIGN_SUMMARY_COLUMNS = (
    "scenario",
    "domain",
    "configs",
    "feasible",
    "best_config",
    "best_metric",
    "pareto",
    "seconds",
    "dedup",
    "materialized",
)


def campaign_summary_table(
    rows: list[dict[str, Any]], title: str | None = None
) -> TextTable:
    """The fleet-level report of a batch exploration campaign.

    One row per scenario — evaluated configuration count, feasible
    count, best configuration and its domain metric (total FPS or total
    joules/frame), Pareto-frontier size (always an integer: export-only
    campaigns maintain the frontier online, see
    :class:`repro.explore.result.ParetoFrontier`), and completion
    wall-time — rendered in the same fixed-width format every benchmark
    table uses, so campaign summaries archive alongside the paper
    tables. Rows are plain dicts (built by
    ``CampaignResult.summary_rows()``); extra keys beyond the canonical
    columns are appended in first-appearance order, and the default
    table title names the scheduling policy that drove the fleet.
    """
    columns = list(CAMPAIGN_SUMMARY_COLUMNS)
    known = set(columns)
    for row in rows:
        for key in row:
            if key not in known:
                known.add(key)
                columns.append(key)
    table = TextTable(columns, title=title or "campaign summary")
    table.add_rows(rows)
    return table


#: Canonical column order of a joint-fleet summary row (see
#: :meth:`repro.explore.joint.JointFleetResult.summary_rows`): each
#: member's solo-best throughput next to the split the *joint* optimum
#: assigned it, its committed uplink demand, and the share of the shared
#: capacity that demand claims.
JOINT_SUMMARY_COLUMNS = (
    "member",
    "configs",
    "feasible",
    "solo_best_fps",
    "joint_config",
    "joint_fps",
    "demand_bps",
    "capacity_share",
)


def joint_fleet_summary_table(
    rows: list[dict[str, Any]], title: str | None = None
) -> TextTable:
    """The per-member report of a joint-fleet (shared uplink) search.

    Same extension contract as :func:`campaign_summary_table`: rows are
    plain dicts, extra keys beyond the canonical columns are appended in
    first-appearance order.
    """
    columns = list(JOINT_SUMMARY_COLUMNS)
    known = set(columns)
    for row in rows:
        for key in row:
            if key not in known:
                known.add(key)
                columns.append(key)
    table = TextTable(columns, title=title or "joint fleet summary")
    table.add_rows(rows)
    return table
