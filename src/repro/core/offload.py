"""Configuration enumeration and offload analysis (Figure 10's machinery).

Given a pipeline whose blocks each offer one or more implementations,
enumerate every (cut point, platform assignment) configuration, evaluate
them under a cost model, and answer the paper's questions: which
configurations meet the real-time target on *both* axes, and which block
placement is optimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core.cost import ConfigCost, ThroughputCostModel
from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.errors import PipelineError


def enumerate_configs(
    pipeline: InCameraPipeline,
    max_blocks: int | None = None,
    include_empty: bool = True,
) -> list[PipelineConfig]:
    """All (cut point, platform) configurations of a pipeline.

    Parameters
    ----------
    pipeline:
        The pipeline to enumerate.
    max_blocks:
        Cap on the number of in-camera blocks (default: all).
    include_empty:
        Include the raw-offload configuration (``S~``).
    """
    limit = len(pipeline.blocks) if max_blocks is None else max_blocks
    if not 0 <= limit <= len(pipeline.blocks):
        raise PipelineError(f"max_blocks must be in [0, {len(pipeline.blocks)}]")
    configs: list[PipelineConfig] = []
    if include_empty:
        configs.append(PipelineConfig(pipeline=pipeline, platforms=()))
    for depth in range(1, limit + 1):
        option_lists = [
            sorted(block.implementations) for block in pipeline.blocks[:depth]
        ]
        if any(not opts for opts in option_lists):
            break  # a block with no implementation cannot run in camera
        for choice in product(*option_lists):
            configs.append(PipelineConfig(pipeline=pipeline, platforms=tuple(choice)))
    return configs


@dataclass(frozen=True)
class OffloadReport:
    """Evaluation of every configuration plus the verdicts."""

    costs: list[ConfigCost]
    target_fps: float

    @property
    def feasible(self) -> list[ConfigCost]:
        """Configurations clearing the target on both axes."""
        return [c for c in self.costs if c.meets(self.target_fps)]

    @property
    def best(self) -> ConfigCost:
        """Highest total-throughput configuration."""
        if not self.costs:
            raise PipelineError("no configurations evaluated")
        return max(self.costs, key=lambda c: c.total_fps)


class OffloadAnalyzer:
    """Sweep a pipeline's configuration space under a throughput model."""

    def __init__(self, model: ThroughputCostModel, target_fps: float = 30.0):
        if target_fps <= 0:
            raise PipelineError(f"target_fps must be positive, got {target_fps}")
        self.model = model
        self.target_fps = target_fps

    def analyze(
        self,
        pipeline: InCameraPipeline,
        configs: list[PipelineConfig] | None = None,
    ) -> OffloadReport:
        """Evaluate the given (or all) configurations."""
        if configs is None:
            configs = enumerate_configs(pipeline)
        costs = [self.model.evaluate(config) for config in configs]
        return OffloadReport(costs=costs, target_fps=self.target_fps)
