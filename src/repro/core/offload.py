"""Configuration enumeration and offload analysis (Figure 10's machinery).

Given a pipeline whose blocks each offer one or more implementations,
enumerate every (cut point, platform assignment) configuration, evaluate
them under a cost model, and answer the paper's questions: which
configurations meet the real-time target on *both* axes, and which block
placement is optimal.

This module is the throughput-domain facade over the general engine in
:mod:`repro.explore`: enumeration is a thin eager wrapper around the
lazy :func:`repro.explore.iter_configs`, and :class:`OffloadAnalyzer`
drives :func:`repro.explore.explore` (optionally in parallel) while
returning the same :class:`OffloadReport` it always has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.cost import ConfigCost, ThroughputCostModel
from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.errors import PipelineError
from repro.explore.engine import explore, iter_evaluation_chunks
from repro.explore.enumerate import iter_configs
from repro.explore.executor import SweepExecutor, resolve_executor
from repro.explore.result import cost_row
from repro.explore.scenario import Scenario
from repro.explore.sink import resolve_sink, sink_stream


def enumerate_configs(
    pipeline: InCameraPipeline,
    max_blocks: int | None = None,
    include_empty: bool = True,
) -> list[PipelineConfig]:
    """All (cut point, platform) configurations of a pipeline.

    Eager wrapper over the lazy :func:`repro.explore.iter_configs`
    (same order, no pruning); prefer the generator for large spaces.

    Parameters
    ----------
    pipeline:
        The pipeline to enumerate.
    max_blocks:
        Cap on the number of in-camera blocks (default: all).
    include_empty:
        Include the raw-offload configuration (``S~``).
    """
    return list(
        iter_configs(pipeline, max_blocks=max_blocks, include_empty=include_empty)
    )


@dataclass(frozen=True)
class OffloadReport:
    """Evaluation of every configuration plus the verdicts."""

    costs: list[ConfigCost]
    target_fps: float

    @property
    def feasible(self) -> list[ConfigCost]:
        """Configurations clearing the target on both axes."""
        return [c for c in self.costs if c.meets(self.target_fps)]

    @property
    def best(self) -> ConfigCost:
        """Highest total-throughput configuration."""
        if not self.costs:
            raise PipelineError("no configurations evaluated")
        return max(self.costs, key=lambda c: c.total_fps)


class OffloadAnalyzer:
    """Sweep a pipeline's configuration space under a throughput model.

    Parameters
    ----------
    model:
        The throughput cost model (carries the uplink).
    target_fps:
        Feasibility bar on both axes.
    executor:
        How to run the evaluations (default: serial). Parallel
        executors produce identical report ordering.
    """

    def __init__(
        self,
        model: ThroughputCostModel,
        target_fps: float = 30.0,
        executor: SweepExecutor | None = None,
    ):
        if target_fps <= 0:
            raise PipelineError(f"target_fps must be positive, got {target_fps}")
        self.model = model
        self.target_fps = target_fps
        self.executor = resolve_executor(executor)

    def analyze(
        self,
        pipeline: InCameraPipeline,
        configs: list[PipelineConfig] | None = None,
        sink: Any = None,
    ) -> OffloadReport:
        """Evaluate the given (or all) configurations.

        ``sink`` (a :class:`repro.explore.sink.ResultSink`) receives the
        engine's report rows streamed as evaluation completes — the same
        pass-through ``explore()`` offers, so legacy callers gain
        streaming export without switching APIs.
        """
        scenario = Scenario(
            name=pipeline.name,
            pipeline=pipeline,
            link=self.model.link,
            domain="throughput",
            target_fps=self.target_fps,
            model=self.model,  # keep any customized model, not a rebuild
        )
        if configs is None:
            return explore(
                scenario, executor=self.executor, sink=sink
            ).as_offload_report()
        # Explicit config sequences (lists or generators, as before)
        # stream through the same prefix-memoized chunk evaluation as
        # the scenario path (models that override evaluate() fall back
        # to per-config calls automatically); sink rows are written
        # chunk by chunk as evaluation completes, exactly like explore().
        sink = resolve_sink(sink)
        configs = list(configs)
        chunks = iter_evaluation_chunks(
            self.model,
            iter(configs),
            executor=self.executor,
            approx_total=len(configs),
        )
        costs: list[ConfigCost] = []
        with sink_stream(sink, scenario, f"pipeline {pipeline.name!r}") as write:
            for chunk in chunks:
                costs.extend(chunk)
                if write is not None:
                    write([cost_row(scenario, cost) for cost in chunk])
        return OffloadReport(costs=costs, target_fps=self.target_fps)
