"""Grid-domain smoothing optimization for disparity refinement.

BSSA refines a noisy disparity map by minimizing, *in bilateral space*, a
weighted data term plus a smoothness term:

    E(z) = sum_v c_v (z_v - t_v)^2 + lambda * sum_v (z_v - blur(z)_v)^2

where ``t`` is the splatted initial disparity, ``c`` the splatted
confidence, and ``blur`` the grid's [1,2,1] kernel. Because neighbors in
the grid are close in space *and* intensity, smoothing in this domain is
edge-aware in pixel space.

The fixed-point iteration

    z  <-  (c * t + lambda * blur(z)) / (c + lambda)

is a damped Jacobi sweep on the normal equations; it is also exactly the
computation the paper's streaming FPGA compute units implement (a blur
plus a fused multiply-add per vertex per iteration), which is why the
iteration count x vertex count is the hardware work unit used by the
throughput model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bilateral.grid import BilateralGrid
from repro.errors import SolverError


@dataclass(frozen=True)
class SolverResult:
    """Converged grid field plus iteration diagnostics."""

    z: np.ndarray
    iterations: int
    residuals: tuple[float, ...]
    converged: bool

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")


def solve_grid(
    target: np.ndarray,
    confidence: np.ndarray,
    smoothness: float = 4.0,
    n_iters: int = 30,
    tol: float = 1e-5,
    blur_passes: int = 1,
) -> SolverResult:
    """Run the damped-Jacobi smoothing iteration on a grid field.

    Parameters
    ----------
    target:
        Splatted data values per vertex (weighted sums already normalized).
    confidence:
        Non-negative per-vertex data weights (splatted confidence mass).
        Vertices with zero confidence are filled purely from neighbors.
    smoothness:
        The lambda weight of the smoothness term.
    n_iters:
        Maximum iterations.
    tol:
        Early-exit threshold on the mean absolute update.
    blur_passes:
        Blur width per iteration (1 matches the hardware's single pass).

    Raises
    ------
    SolverError
        On invalid inputs or numerical divergence.
    """
    t = np.asarray(target, dtype=np.float64)
    c = np.asarray(confidence, dtype=np.float64)
    if t.shape != c.shape or t.ndim != 3:
        raise SolverError(f"target/confidence must be matching 3-D, got {t.shape}, {c.shape}")
    if c.min() < 0:
        raise SolverError("confidence must be non-negative")
    if smoothness <= 0:
        raise SolverError(f"smoothness must be positive, got {smoothness}")
    if n_iters < 1:
        raise SolverError(f"n_iters must be >= 1, got {n_iters}")

    z = t.copy()
    # Initialize empty vertices from the blurred data field so the first
    # iterations do not drag occupied vertices toward zero.
    occupied = c > 0
    if occupied.any():
        init = BilateralGrid.blur(t * occupied, passes=2)
        norm = BilateralGrid.blur(occupied.astype(np.float64), passes=2)
        fill = np.where(norm > 1e-12, init / np.maximum(norm, 1e-12), 0.0)
        z = np.where(occupied, t, fill)

    residuals: list[float] = []
    scale = max(float(np.abs(t).max()), 1e-12)
    converged = False
    for iteration in range(n_iters):
        neighbor = BilateralGrid.blur(z, passes=blur_passes)
        z_new = (c * t + smoothness * neighbor) / (c + smoothness)
        residual = float(np.mean(np.abs(z_new - z))) / scale
        residuals.append(residual)
        z = z_new
        if not np.isfinite(residual) or residual > 1e6:
            raise SolverError(f"solver diverged at iteration {iteration}")
        if residual < tol:
            converged = True
            break
    return SolverResult(
        z=z,
        iterations=len(residuals),
        residuals=tuple(residuals),
        converged=converged,
    )
