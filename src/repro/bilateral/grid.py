"""The bilateral grid data structure.

A bilateral grid over a grayscale *guide* image is a 3-D array indexed by
(y / s_spatial, x / s_spatial, intensity / s_range). Pixels that are close
in space but different in intensity land in different cells, so a plain
local blur inside the grid never mixes values across image edges — the
mechanism illustrated by the paper's Figure 6.

This implementation uses hard (nearest-vertex) assignment, the "pixels are
mapped to a grid vertex, or bin" formulation the paper describes, which is
also what Barron's simplified bilateral solver uses. Splatting and slicing
are O(pixels) with ``np.bincount``; blurring is a separable [1, 2, 1]
pass per axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ImageError
from repro.imaging.image import ensure_gray


@dataclass(frozen=True)
class GridGeometry:
    """Shape/occupancy summary of a grid (drives Fig. 7's size axis)."""

    shape: tuple[int, int, int]
    sigma_spatial: float
    sigma_range: float
    n_pixels: int
    occupied_vertices: int

    @property
    def n_vertices(self) -> int:
        return int(np.prod(self.shape))

    def storage_bytes(self, bytes_per_vertex: float = 8.0) -> float:
        """Grid memory footprint.

        ``bytes_per_vertex`` defaults to two float32 channels (value sum +
        weight), the minimum a streaming filter pipeline carries.
        """
        return float(self.n_vertices * bytes_per_vertex)

    @property
    def pixels_per_vertex(self) -> float:
        """Compression ratio of the resampling."""
        return self.n_pixels / max(self.occupied_vertices, 1)


class BilateralGrid:
    """A bilateral grid built over a guide image.

    Parameters
    ----------
    guide:
        Grayscale image in [0, 1] whose edges the grid respects.
    sigma_spatial:
        Pixels per grid cell along y and x (paper sweeps 4..64).
    sigma_range:
        Intensity units per grid cell (e.g. 1/16 = 16 range bins).
    """

    def __init__(self, guide: np.ndarray, sigma_spatial: float, sigma_range: float):
        if sigma_spatial <= 0 or sigma_range <= 0:
            raise ConfigurationError("grid sigmas must be positive")
        self.guide = ensure_gray(guide, "guide")
        self.sigma_spatial = float(sigma_spatial)
        self.sigma_range = float(sigma_range)
        height, width = self.guide.shape

        ny = int(np.floor((height - 1) / sigma_spatial)) + 1
        nx = int(np.floor((width - 1) / sigma_spatial)) + 1
        nz = int(np.floor(1.0 / sigma_range)) + 1
        self.shape = (ny, nx, nz)

        ys, xs = np.mgrid[0:height, 0:width]
        gy = np.floor(ys / sigma_spatial).astype(np.intp)
        gx = np.floor(xs / sigma_spatial).astype(np.intp)
        gz = np.floor(np.clip(self.guide, 0.0, 1.0 - 1e-9) / sigma_range).astype(np.intp)
        gz = np.minimum(gz, nz - 1)
        self._flat_index = (gy * nx + gx) * nz + gz

        counts = np.bincount(self._flat_index.ravel(), minlength=self.n_vertices)
        self._counts = counts.astype(np.float64)
        self._occupied = int(np.count_nonzero(counts))

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return int(np.prod(self.shape))

    def geometry(self) -> GridGeometry:
        """Shape/occupancy summary."""
        return GridGeometry(
            shape=self.shape,
            sigma_spatial=self.sigma_spatial,
            sigma_range=self.sigma_range,
            n_pixels=self.guide.size,
            occupied_vertices=self._occupied,
        )

    # ------------------------------------------------------------------
    def splat(self, values: np.ndarray, weights: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Accumulate per-pixel values (and weights) into grid vertices.

        Returns ``(value_sum, weight_sum)`` as 3-D arrays; dividing them
        gives the weighted mean per vertex.
        """
        vals = np.asarray(values, dtype=np.float64)
        if vals.shape != self.guide.shape:
            raise ImageError(f"values {vals.shape} must match guide {self.guide.shape}")
        if weights is None:
            w = np.ones_like(vals)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != vals.shape:
                raise ImageError("weights must match values shape")
            if w.min() < 0:
                raise ImageError("weights must be non-negative")
        flat = self._flat_index.ravel()
        value_sum = np.bincount(flat, weights=(vals * w).ravel(), minlength=self.n_vertices)
        weight_sum = np.bincount(flat, weights=w.ravel(), minlength=self.n_vertices)
        return value_sum.reshape(self.shape), weight_sum.reshape(self.shape)

    def slice(self, grid_values: np.ndarray) -> np.ndarray:
        """Read a grid-domain field back to pixel space (nearest vertex)."""
        grid_values = np.asarray(grid_values, dtype=np.float64)
        if grid_values.shape != self.shape:
            raise ImageError(f"grid {grid_values.shape} must have shape {self.shape}")
        return grid_values.reshape(-1)[self._flat_index]

    # ------------------------------------------------------------------
    @staticmethod
    def blur(grid_values: np.ndarray, passes: int = 1) -> np.ndarray:
        """Separable [1, 2, 1]/4 blur along all three grid axes.

        This is the canonical bilateral-grid smoothing kernel; ``passes``
        stacks it for a wider effective support.
        """
        if passes < 0:
            raise ConfigurationError(f"passes must be >= 0, got {passes}")
        out = np.asarray(grid_values, dtype=np.float64).copy()
        for _ in range(passes):
            for axis in range(3):
                if out.shape[axis] == 1:
                    continue
                shifted_fwd = np.roll(out, 1, axis=axis)
                shifted_bwd = np.roll(out, -1, axis=axis)
                # Neumann boundaries: clamp instead of wrapping.
                sl_first = [slice(None)] * 3
                sl_first[axis] = slice(0, 1)
                sl_last = [slice(None)] * 3
                sl_last[axis] = slice(-1, None)
                shifted_fwd[tuple(sl_first)] = out[tuple(sl_first)]
                shifted_bwd[tuple(sl_last)] = out[tuple(sl_last)]
                out = 0.25 * shifted_fwd + 0.5 * out + 0.25 * shifted_bwd
        return out

    def filter(self, values: np.ndarray, weights: np.ndarray | None = None,
               blur_passes: int = 2) -> np.ndarray:
        """Full splat -> blur -> slice -> normalize pipeline.

        The classic grid-accelerated bilateral filter of ``values`` with
        respect to the guide's edges.
        """
        value_sum, weight_sum = self.splat(values, weights)
        value_blur = self.blur(value_sum, blur_passes)
        weight_blur = self.blur(weight_sum, blur_passes)
        sliced_vals = self.slice(value_blur)
        sliced_wts = self.slice(weight_blur)
        safe = np.maximum(sliced_wts, 1e-12)
        out = sliced_vals / safe
        # Pixels whose whole neighborhood is empty fall back to the input.
        vals = np.asarray(values, dtype=np.float64)
        return np.where(sliced_wts > 1e-12, out, vals)
