"""Bilateral-space stereo (BSSA) — the VR pipeline's depth engine.

Implements the approach of Barron et al. (CVPR 2015) the paper builds B3
on: resample the stereo-refinement problem into a *bilateral grid* (space x
space x range), where cheap local smoothing is equivalent to costly global
edge-aware filtering in pixel space.

* :mod:`.grid` — the bilateral grid: hard-assignment splat, [1,2,1] blur,
  slice;
* :mod:`.filter` — 1-D and image bilateral filtering (Figure 6's demo);
* :mod:`.solver` — the grid-domain smoothing optimization;
* :mod:`.stereo` — block-matching initialization + grid refinement, with
  the grid-size accounting behind Figure 7 and the FPGA throughput model.
"""

from repro.bilateral.grid import BilateralGrid, GridGeometry
from repro.bilateral.filter import bilateral_filter_1d, bilateral_filter_image, moving_average_1d
from repro.bilateral.solver import SolverResult, solve_grid
from repro.bilateral.stereo import BssaStereo, StereoResult

__all__ = [
    "BilateralGrid",
    "GridGeometry",
    "bilateral_filter_1d",
    "bilateral_filter_image",
    "moving_average_1d",
    "SolverResult",
    "solve_grid",
    "BssaStereo",
    "StereoResult",
]
