"""Bilateral-space stereo: block-matching init + grid-domain refinement.

The pipeline mirrors Barron et al.'s BSSA as the paper deploys it:

1. a cheap local matcher produces a noisy disparity map and a per-pixel
   confidence;
2. disparity and confidence are splatted into a bilateral grid built over
   the left image;
3. the grid-domain solver smooths disparity with edge-aware support;
4. the result is sliced back to pixel space.

The class also reports the *work accounting* the hardware models consume:
grid vertex count, solver iterations, and the resulting stream length —
one vertex per CU per cycle on the FPGA (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bilateral.grid import BilateralGrid, GridGeometry
from repro.bilateral.solver import SolverResult, solve_grid
from repro.errors import ConfigurationError, ImageError
from repro.imaging.filters import box_filter
from repro.imaging.image import ensure_gray


@dataclass(frozen=True)
class StereoWork:
    """Hardware-facing work units of one stereo solve."""

    grid_vertices: int
    solver_iterations: int
    pixels: int

    @property
    def vertex_stream_length(self) -> int:
        """Total vertices streamed through the filter units."""
        return self.grid_vertices * self.solver_iterations


@dataclass(frozen=True)
class StereoResult:
    """Everything one stereo solve produces."""

    disparity_initial: np.ndarray
    confidence: np.ndarray
    disparity_refined: np.ndarray
    grid: GridGeometry
    solver: SolverResult
    work: StereoWork
    max_disparity: int

    def normalized_refined(self) -> np.ndarray:
        """Refined disparity scaled to [0, 1] for quality metrics."""
        return np.clip(self.disparity_refined / max(self.max_disparity, 1), 0.0, 1.0)


class BssaStereo:
    """Configured bilateral-space stereo engine.

    Parameters
    ----------
    max_disparity:
        Search range in pixels (inclusive upper bound).
    block_radius:
        Half-size of the SAD matching window.
    sigma_spatial:
        Bilateral-grid cell size in pixels — the paper's
        "pixels-per-grid-vertex" knob (Figure 7 sweeps 4..64).
    range_bins:
        Number of intensity bins in the grid. ``None`` couples the range
        axis to the spatial one as the paper does ("4 ... to 64 in each of
        three dimensions"): bins = 256 / sigma_spatial, clamped to >= 2.
    smoothness:
        Solver smoothness weight.
    solver_iters:
        Damped-Jacobi iterations.
    """

    def __init__(
        self,
        max_disparity: int,
        block_radius: int = 2,
        sigma_spatial: float = 8.0,
        range_bins: int | None = None,
        smoothness: float = 0.5,
        solver_iters: int = 15,
    ):
        if max_disparity < 1:
            raise ConfigurationError(f"max_disparity must be >= 1, got {max_disparity}")
        if block_radius < 1:
            raise ConfigurationError(f"block_radius must be >= 1, got {block_radius}")
        self.max_disparity = int(max_disparity)
        self.block_radius = int(block_radius)
        self.sigma_spatial = float(sigma_spatial)
        if range_bins is None:
            range_bins = max(int(round(256.0 / sigma_spatial)), 2)
        if range_bins < 2:
            raise ConfigurationError(f"range_bins must be >= 2, got {range_bins}")
        self.sigma_range = 1.0 / range_bins
        self.smoothness = float(smoothness)
        self.solver_iters = int(solver_iters)

    # ------------------------------------------------------------------
    def initial_disparity(
        self, left: np.ndarray, right: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """SAD block matching; returns (disparity, confidence).

        Disparity convention: the surface visible at left-image pixel
        ``x`` appears at ``x - d`` in the right image.
        """
        L = ensure_gray(left, "left")
        R = ensure_gray(right, "right")
        if L.shape != R.shape:
            raise ImageError(f"stereo shapes differ: {L.shape} vs {R.shape}")
        height, width = L.shape
        if self.max_disparity >= width:
            raise ConfigurationError(
                f"max_disparity {self.max_disparity} >= image width {width}"
            )

        n_d = self.max_disparity + 1
        costs = np.full((n_d, height, width), np.inf, dtype=np.float64)
        for d in range(n_d):
            shifted = np.empty_like(R)
            if d == 0:
                shifted[:] = R
            else:
                shifted[:, d:] = R[:, :-d]
                shifted[:, :d] = R[:, :1]  # clamp border
            sad = np.abs(L - shifted)
            costs[d] = box_filter(sad, self.block_radius)

        best = np.argmin(costs, axis=0)
        best_cost = np.take_along_axis(costs, best[None], axis=0)[0]
        # Margin confidence: how much worse the runner-up is.
        masked = costs.copy()
        np.put_along_axis(masked, best[None], np.inf, axis=0)
        second = masked.min(axis=0)
        margin = (second - best_cost) / (best_cost + 1e-3)
        confidence = np.clip(margin, 0.0, 1.0)
        # Left-border columns cannot see the full search range.
        confidence[:, : self.max_disparity] *= 0.25
        return best.astype(np.float64), confidence

    # ------------------------------------------------------------------
    def refine(
        self,
        guide: np.ndarray,
        disparity: np.ndarray,
        confidence: np.ndarray,
    ) -> tuple[np.ndarray, BilateralGrid, SolverResult]:
        """Grid-domain refinement of an initial disparity field."""
        grid = BilateralGrid(guide, self.sigma_spatial, self.sigma_range)
        value_sum, weight_sum = grid.splat(disparity, confidence)
        target = np.where(weight_sum > 0, value_sum / np.maximum(weight_sum, 1e-12), 0.0)
        solver = solve_grid(
            target,
            weight_sum,
            smoothness=self.smoothness,
            n_iters=self.solver_iters,
        )
        refined = grid.slice(solver.z)
        return refined, grid, solver

    def compute(self, left: np.ndarray, right: np.ndarray) -> StereoResult:
        """Full pipeline on one rectified pair."""
        disparity, confidence = self.initial_disparity(left, right)
        refined, grid, solver = self.refine(left, disparity, confidence)
        geometry = grid.geometry()
        work = StereoWork(
            grid_vertices=geometry.n_vertices,
            solver_iterations=solver.iterations,
            pixels=left.size,
        )
        return StereoResult(
            disparity_initial=disparity,
            confidence=confidence,
            disparity_refined=np.clip(refined, 0.0, self.max_disparity),
            grid=geometry,
            solver=solver,
            work=work,
            max_disparity=self.max_disparity,
        )


def depth_quality(
    result: StereoResult, true_disparity: np.ndarray, metric: str = "ms_ssim"
) -> float:
    """Score a refined disparity against ground truth.

    ``ms_ssim`` (Fig. 7's metric) on disparity maps normalized by the
    search range; ``mae`` returns mean absolute error in pixels (lower is
    better); ``bad2`` the fraction of pixels off by more than 2 px.
    """
    gt = np.asarray(true_disparity, dtype=np.float64)
    if gt.shape != result.disparity_refined.shape:
        raise ImageError("ground truth shape mismatch")
    if metric == "ms_ssim":
        from repro.imaging.metrics import ms_ssim

        gt_norm = np.clip(gt / max(result.max_disparity, 1), 0.0, 1.0)
        return ms_ssim(result.normalized_refined(), gt_norm)
    if metric == "mae":
        return float(np.mean(np.abs(result.disparity_refined - gt)))
    if metric == "bad2":
        return float(np.mean(np.abs(result.disparity_refined - gt) > 2.0))
    raise ConfigurationError(f"unknown metric {metric!r}")
