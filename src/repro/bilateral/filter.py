"""Bilateral filtering demos: the paper's Figure 6 in code.

Figure 6 contrasts a moving average (smooths the noise *and* the edge)
with a bilateral filter (smooths the noise, keeps the edge) on a noisy 1-D
step signal. :func:`bilateral_filter_1d` maps the signal into a 2-D
(position x intensity) grid — the 1-D specialization of the bilateral
grid — blurs there, and slices back.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.imaging.image import ensure_gray


def moving_average_1d(signal: np.ndarray, radius: int) -> np.ndarray:
    """Plain boxcar smoothing with clamped boundaries (Fig. 6b)."""
    if radius < 1:
        raise ConfigurationError(f"radius must be >= 1, got {radius}")
    sig = np.asarray(signal, dtype=np.float64).ravel()
    padded = np.pad(sig, radius, mode="edge")
    kernel = np.ones(2 * radius + 1) / (2 * radius + 1)
    return np.convolve(padded, kernel, mode="valid")


def bilateral_filter_1d(
    signal: np.ndarray,
    sigma_spatial: float = 4.0,
    sigma_range: float = 0.1,
    blur_passes: int = 2,
) -> np.ndarray:
    """Edge-preserving smoothing of a 1-D signal via a 2-D grid (Fig. 6c/d).

    Samples are binned by (position / sigma_spatial, value / sigma_range);
    a [1,2,1] blur over the 2-D grid then averages only bins that are close
    in *both* axes, so samples across a large step never mix.
    """
    if sigma_spatial <= 0 or sigma_range <= 0:
        raise ConfigurationError("sigmas must be positive")
    sig = np.asarray(signal, dtype=np.float64).ravel()
    if sig.size == 0:
        raise ConfigurationError("signal is empty")
    lo, hi = float(sig.min()), float(sig.max())
    span = max(hi - lo, 1e-12)
    normalized = (sig - lo) / span

    n_pos = int(np.floor((sig.size - 1) / sigma_spatial)) + 1
    n_val = int(np.floor(1.0 / sigma_range)) + 1
    pos_idx = np.floor(np.arange(sig.size) / sigma_spatial).astype(np.intp)
    val_idx = np.minimum(
        np.floor(normalized / sigma_range).astype(np.intp), n_val - 1
    )
    flat = pos_idx * n_val + val_idx

    value_sum = np.bincount(flat, weights=normalized, minlength=n_pos * n_val)
    weight_sum = np.bincount(flat, minlength=n_pos * n_val).astype(np.float64)
    grid_v = value_sum.reshape(n_pos, n_val)
    grid_w = weight_sum.reshape(n_pos, n_val)

    def blur2d(grid: np.ndarray) -> np.ndarray:
        out = grid.copy()
        for _ in range(blur_passes):
            for axis in range(2):
                if out.shape[axis] == 1:
                    continue
                fwd = np.roll(out, 1, axis=axis)
                bwd = np.roll(out, -1, axis=axis)
                sl0 = [slice(None)] * 2
                sl0[axis] = slice(0, 1)
                sl1 = [slice(None)] * 2
                sl1[axis] = slice(-1, None)
                fwd[tuple(sl0)] = out[tuple(sl0)]
                bwd[tuple(sl1)] = out[tuple(sl1)]
                out = 0.25 * fwd + 0.5 * out + 0.25 * bwd
        return out

    num = blur2d(grid_v).reshape(-1)[flat]
    den = blur2d(grid_w).reshape(-1)[flat]
    smoothed = np.where(den > 1e-12, num / np.maximum(den, 1e-12), normalized)
    return smoothed * span + lo


def bilateral_filter_image(
    image: np.ndarray,
    sigma_spatial: float = 8.0,
    sigma_range: float = 0.1,
    guide: np.ndarray | None = None,
    blur_passes: int = 2,
) -> np.ndarray:
    """Grid-accelerated bilateral filter of an image (self- or cross-guided)."""
    from repro.bilateral.grid import BilateralGrid

    arr = ensure_gray(image)
    guide_arr = arr if guide is None else ensure_gray(guide, "guide")
    if guide_arr.shape != arr.shape:
        raise ConfigurationError("guide must match image shape")
    grid = BilateralGrid(guide_arr, sigma_spatial, sigma_range)
    return grid.filter(arr, blur_passes=blur_passes)
