"""JPEG-style transform codec with rate-distortion measurement.

Encode: 8x8 DCT -> quality-scaled quantization (the standard JPEG
luminance table) -> entropy-coded size estimate. Decode: dequantize ->
inverse DCT. The entropy stage is *modeled* rather than bit-exact: coded
size is the zeroth-order entropy of the quantized symbols plus a
run-length credit for zero runs, which tracks real JPEG sizes closely
enough for bandwidth analysis while keeping the codec dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.dct import blockify, dct2_8x8, deblockify, idct2_8x8
from repro.errors import ConfigurationError, ImageError
from repro.imaging.image import ensure_gray
from repro.imaging.metrics import psnr, ssim

#: The ITU-T T.81 luminance quantization table.
JPEG_LUMA_Q = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


@dataclass(frozen=True)
class CodecResult:
    """Round-trip outcome: reconstruction plus rate/quality accounting."""

    reconstructed: np.ndarray
    coded_bytes: float
    raw_bytes: float
    psnr_db: float
    ssim: float

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(self.coded_bytes, 1e-12)

    @property
    def bits_per_pixel(self) -> float:
        return 8.0 * self.coded_bytes / (self.reconstructed.size)


class JpegLikeCodec:
    """A quality-parameterized DCT codec.

    Parameters
    ----------
    quality:
        1..100, JPEG semantics (50 = the standard table, higher = finer).
    bits_per_sample:
        Source sample depth for the raw-size baseline (camera raw: 8).
    """

    def __init__(self, quality: int = 75, bits_per_sample: float = 8.0):
        if not 1 <= quality <= 100:
            raise ConfigurationError(f"quality must be in [1, 100], got {quality}")
        self.quality = int(quality)
        self.bits_per_sample = float(bits_per_sample)
        # Standard JPEG quality scaling of the base table.
        if quality < 50:
            scale = 5000.0 / quality
        else:
            scale = 200.0 - 2.0 * quality
        table = np.floor((JPEG_LUMA_Q * scale + 50.0) / 100.0)
        self.q_table = np.clip(table, 1.0, 255.0)

    # ------------------------------------------------------------------
    def encode(self, image: np.ndarray) -> tuple[np.ndarray, tuple[int, int], tuple[int, int]]:
        """Quantized coefficient blocks + geometry needed to decode."""
        arr = ensure_gray(image)
        blocks, padded = blockify(arr * 255.0 - 128.0)
        coeffs = dct2_8x8(blocks)
        quantized = np.round(coeffs / self.q_table)
        return quantized.astype(np.int32), padded, arr.shape

    def decode(
        self,
        quantized: np.ndarray,
        padded_shape: tuple[int, int],
        out_shape: tuple[int, int],
    ) -> np.ndarray:
        """Reconstruct an image in [0, 1] from quantized blocks."""
        coeffs = quantized.astype(np.float64) * self.q_table
        blocks = idct2_8x8(coeffs)
        image = deblockify(blocks, padded_shape, out_shape)
        return np.clip((image + 128.0) / 255.0, 0.0, 1.0)

    # ------------------------------------------------------------------
    @staticmethod
    def coded_size_bytes(quantized: np.ndarray) -> float:
        """Entropy-model estimate of the coded bitstream size.

        Zeroth-order entropy of the symbol distribution over all non-zero
        coefficients plus ~1.6 bits per zero-run (the EOB/run tokens);
        DC coefficients are charged separately as first differences.
        """
        if quantized.size == 0:
            raise ImageError("no blocks to size")
        ac = quantized.reshape(quantized.shape[0], -1)[:, 1:]
        nonzero = ac[ac != 0]
        if nonzero.size:
            _, counts = np.unique(nonzero, return_counts=True)
            probs = counts / counts.sum()
            entropy = -np.sum(probs * np.log2(probs))
            ac_bits = nonzero.size * (entropy + 1.0)  # +1: sign/position cost
        else:
            ac_bits = 0.0
        # Zero-run tokens: roughly one per block plus one per nonzero.
        run_bits = 1.6 * (quantized.shape[0] + nonzero.size)
        dc = quantized.reshape(quantized.shape[0], -1)[:, 0]
        dc_diff = np.diff(dc, prepend=dc[:1])
        dc_bits = np.sum(np.log2(np.abs(dc_diff) + 1.0) + 2.0)
        return float((ac_bits + run_bits + dc_bits) / 8.0)

    def roundtrip(self, image: np.ndarray) -> CodecResult:
        """Encode + decode + measure rate and quality."""
        arr = ensure_gray(image)
        quantized, padded, shape = self.encode(arr)
        reconstructed = self.decode(quantized, padded, shape)
        return CodecResult(
            reconstructed=reconstructed,
            coded_bytes=self.coded_size_bytes(quantized),
            raw_bytes=arr.size * self.bits_per_sample / 8.0,
            psnr_db=psnr(arr, reconstructed),
            ssim=ssim(arr, reconstructed),
        )

    def estimated_ops_per_pixel(self) -> float:
        """Codec arithmetic for throughput models: 2 8-point DCT passes
        (~4 MACs/sample each after factorization) + quantize/entropy."""
        return 12.0


def rate_distortion_sweep(
    image: np.ndarray, qualities: tuple[int, ...] = (10, 25, 50, 75, 90, 95)
) -> list[dict]:
    """Rate-distortion curve of an image across codec qualities."""
    if not qualities:
        raise ConfigurationError("qualities must be non-empty")
    rows = []
    for quality in qualities:
        result = JpegLikeCodec(quality=quality).roundtrip(image)
        rows.append(
            {
                "quality": quality,
                "bits_per_pixel": result.bits_per_pixel,
                "compression_ratio": result.compression_ratio,
                "psnr_db": result.psnr_db,
                "ssim": result.ssim,
            }
        )
    return rows
