"""8x8 block DCT — the transform core of the JPEG-style codec.

The type-II DCT is applied per 8x8 block via two matrix multiplies with
the orthonormal DCT basis (``C @ B @ C.T``), which numpy batches across
all blocks of a frame at once; the type-III (inverse) transform is the
transpose sandwich. ``dct2_8x8(idct2_8x8(X)) == X`` to float precision.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError

BLOCK = 8


def _dct_matrix(n: int = BLOCK) -> np.ndarray:
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    mat = np.cos((2 * i + 1) * k * np.pi / (2 * n))
    mat[0, :] *= 1.0 / np.sqrt(2.0)
    return mat * np.sqrt(2.0 / n)


_C = _dct_matrix()


def blockify(image: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
    """Split an image into 8x8 blocks (edge-padded to a multiple of 8).

    Returns ``(blocks, padded_shape)`` with blocks shaped
    ``(n_blocks, 8, 8)`` in row-major block order.
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ImageError(f"expected 2-D image, got {arr.shape}")
    height, width = arr.shape
    pad_y = (-height) % BLOCK
    pad_x = (-width) % BLOCK
    if pad_y or pad_x:
        arr = np.pad(arr, ((0, pad_y), (0, pad_x)), mode="edge")
    ph, pw = arr.shape
    blocks = (
        arr.reshape(ph // BLOCK, BLOCK, pw // BLOCK, BLOCK)
        .swapaxes(1, 2)
        .reshape(-1, BLOCK, BLOCK)
    )
    return blocks, (ph, pw)


def deblockify(
    blocks: np.ndarray, padded_shape: tuple[int, int], out_shape: tuple[int, int]
) -> np.ndarray:
    """Reassemble 8x8 blocks into an image and crop the padding."""
    ph, pw = padded_shape
    if blocks.shape != (ph // BLOCK * (pw // BLOCK), BLOCK, BLOCK):
        raise ImageError(
            f"block count {blocks.shape} inconsistent with padded {padded_shape}"
        )
    image = (
        blocks.reshape(ph // BLOCK, pw // BLOCK, BLOCK, BLOCK)
        .swapaxes(1, 2)
        .reshape(ph, pw)
    )
    return image[: out_shape[0], : out_shape[1]].copy()


def dct2_8x8(blocks: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of a stack of 8x8 blocks."""
    if blocks.ndim != 3 or blocks.shape[1:] != (BLOCK, BLOCK):
        raise ImageError(f"expected (n, 8, 8) blocks, got {blocks.shape}")
    return _C @ blocks @ _C.T


def idct2_8x8(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of a stack of 8x8 coefficient blocks."""
    if coeffs.ndim != 3 or coeffs.shape[1:] != (BLOCK, BLOCK):
        raise ImageError(f"expected (n, 8, 8) blocks, got {coeffs.shape}")
    return _C.T @ coeffs @ _C
