"""In-camera compression — the optional block the paper points at.

Section II: "compression can be treated as an optional block in in-camera
processing pipelines", trading computation (the codec) for communication
(smaller offload payloads), with lossy early-stage compression risking
quality. This package provides a JPEG-style transform codec and the glue
to drop it into :mod:`repro.core` pipelines, enabling the tradeoff
analysis the paper leaves open:

* :mod:`.dct` — 8x8 type-II/III DCT, fully vectorized;
* :mod:`.codec` — quantization, entropy-size estimation, encode/decode,
  rate-distortion measurement;
* :mod:`.block` — wrap a codec setting as a pipeline :class:`Block`;
* :mod:`.scenario` — the encode chain as catalog scenarios: where the
  codec stages should run, in both cost domains.
"""

from repro.compression.dct import blockify, dct2_8x8, deblockify, idct2_8x8
from repro.compression.codec import (
    CodecResult,
    JpegLikeCodec,
    rate_distortion_sweep,
)
from repro.compression.block import compression_block
from repro.compression.scenario import (
    build_codec_pipeline,
    compression_energy_scenario,
    compression_throughput_scenario,
)

__all__ = [
    "build_codec_pipeline",
    "compression_energy_scenario",
    "compression_throughput_scenario",
    "blockify",
    "dct2_8x8",
    "deblockify",
    "idct2_8x8",
    "CodecResult",
    "JpegLikeCodec",
    "rate_distortion_sweep",
    "compression_block",
]
