"""In-camera compression as an offload design space.

The codec stack (:mod:`repro.compression.codec`) answers *how well* a
JPEG-style transform codec compresses; these scenarios answer the
paper's question about it: *where should the codec stages run*? The
encode chain — 8x8 DCT, quality-scaled quantization, entropy coding —
is priced as a three-block :class:`~repro.core.pipeline.InCameraPipeline`
whose cut point decides what crosses the uplink: the raw frame, the
(same-size) transform plan, the half-size quantized symbols, or the
fully coded payload at ``raw / ratio(quality)``.

Per-stage rates and energies model a VGA smart camera with a
fixed-function ISP codec path next to a software fallback on the host
CPU; the quality -> compression-ratio points track the dependency-free
codec's measured rate curve (see
``benchmarks/test_bench_ext_compression.py``). Registered catalog
entries put the same pipeline in both cost domains: a WiFi-class
throughput study (raw VGA video does not fit the radio; the ISP chain
clears it) and a battery-node energy study over the low-power radio
(transmit energy dwarfs compute energy, so deeper in-camera compression
wins despite costing joules).
"""

from __future__ import annotations

from repro.core.block import Block, Implementation
from repro.core.pipeline import InCameraPipeline
from repro.errors import ConfigurationError
from repro.explore.catalog import register_scenario, resolve_link
from repro.explore.scenario import Scenario
from repro.hw.network import LOW_POWER_RADIO, WIFI_CLASS, LinkModel

#: Raw 8-bit VGA frame.
RAW_FRAME_BYTES = 640.0 * 480.0

#: Quality -> end-to-end compression ratio of the JPEG-like codec on the
#: reference natural-scene set (entropy-model estimate; the codec
#: benchmark regenerates the full rate-distortion curve these anchor).
QUALITY_RATIOS = {50: 12.0, 80: 7.0, 95: 3.5}


def build_codec_pipeline(quality: int = 80) -> InCameraPipeline:
    """The encode chain as a cost-annotated pipeline at one quality.

    Cutting after ``dct`` offloads the same byte count as the raw frame
    (the transform alone buys nothing on the wire — exactly the kind of
    dominated region the explorer should discover); after ``quantize``
    the symbol planes are about half size; after ``entropy`` the coded
    payload is ``raw / ratio(quality)``.
    """
    if quality not in QUALITY_RATIOS:
        raise ConfigurationError(
            f"quality must be one of {sorted(QUALITY_RATIOS)}, got {quality!r}"
        )
    ratio = QUALITY_RATIOS[quality]
    dct = Block(
        name="dct",
        output_bytes=RAW_FRAME_BYTES,
        implementations={
            "isp": Implementation(
                "isp", fps=120.0, energy_per_frame=4.0e-5, active_seconds=1 / 120.0
            ),
            "cpu": Implementation(
                "cpu", fps=24.0, energy_per_frame=9.0e-4, active_seconds=1 / 24.0
            ),
        },
    )
    quantize = Block(
        name="quantize",
        output_bytes=RAW_FRAME_BYTES / 2.0,
        implementations={
            "isp": Implementation(
                "isp", fps=240.0, energy_per_frame=8.0e-6, active_seconds=1 / 240.0
            ),
            "cpu": Implementation(
                "cpu", fps=60.0, energy_per_frame=2.0e-4, active_seconds=1 / 60.0
            ),
        },
    )
    entropy = Block(
        name="entropy",
        output_bytes=RAW_FRAME_BYTES / ratio,
        implementations={
            "isp": Implementation(
                "isp", fps=180.0, energy_per_frame=1.5e-5, active_seconds=1 / 180.0
            ),
            "cpu": Implementation(
                "cpu", fps=45.0, energy_per_frame=3.5e-4, active_seconds=1 / 45.0
            ),
        },
    )
    return InCameraPipeline(
        name=f"codec-vga-q{quality}",
        sensor_bytes=RAW_FRAME_BYTES,
        blocks=(dct, quantize, entropy),
        sensor_energy_per_frame=3.0e-5,
    )


@register_scenario(
    "compression-throughput",
    domain="throughput",
    summary="VGA codec chain over a WiFi-class radio: raw video misses 30 FPS, ISP encode clears it",
)
def compression_throughput_scenario(
    quality: int = 80,
    link: str | LinkModel = WIFI_CLASS,
    target_fps: float = 30.0,
    name: str | None = None,
) -> Scenario:
    """Where to cut the encode chain so VGA video sustains ``target_fps``
    over a bandwidth-limited radio."""
    link = resolve_link(link)
    return Scenario(
        name=name or f"codec-q{quality}@{link.name}",
        pipeline=build_codec_pipeline(quality),
        link=link,
        domain="throughput",
        target_fps=target_fps,
    )


@register_scenario(
    "compression-energy",
    domain="energy",
    summary="VGA codec chain on a battery node: 50 nJ/bit transmit makes deep compression pay",
)
def compression_energy_scenario(
    quality: int = 80,
    link: str | LinkModel = LOW_POWER_RADIO,
    energy_budget_j: float | None = 2e-2,
    name: str | None = None,
) -> Scenario:
    """Expected joules per frame of every cut of the encode chain over
    an energy-priced radio, against a battery duty-cycle budget."""
    link = resolve_link(link)
    return Scenario(
        name=name or f"codec-q{quality}@{link.name}-energy",
        pipeline=build_codec_pipeline(quality),
        link=link,
        domain="energy",
        energy_budget_j=energy_budget_j,
    )
