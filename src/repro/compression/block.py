"""Compression as an in-camera pipeline block.

Builds a :class:`repro.core.Block` whose output size is the *measured*
compressed payload at a codec setting, and whose compute cost comes from
the codec's per-pixel arithmetic on the chosen platform — letting the
offload analyzer weigh "spend cycles compressing" against "ship more
bytes", the exact tradeoff the paper describes for this optional block.
"""

from __future__ import annotations

from repro.compression.codec import JpegLikeCodec
from repro.core.block import Block, Implementation
from repro.errors import ConfigurationError


def compression_block(
    name: str,
    input_bytes: float,
    measured_ratio: float,
    pixels_per_frame: float,
    parallel_engines: int = 1,
    isp_px_per_s: float = 1.0e9,
    asic_energy_per_px: float = 2.0e-12,
) -> Block:
    """A compression stage sized from a measured compression ratio.

    Parameters
    ----------
    name:
        Block label (e.g. ``"C(q75)"``).
    input_bytes:
        Per-frame payload entering the codec.
    measured_ratio:
        Compression ratio achieved on representative content (from
        :meth:`JpegLikeCodec.roundtrip`); must be >= 1.
    pixels_per_frame:
        Total pixels the codec touches per frame (sets compute cost).
    parallel_engines:
        Independent codec instances working the frame in parallel — a
        16-camera rig carries one engine per camera, exactly like its
        per-camera ISPs.
    isp_px_per_s:
        Codec throughput of one engine (hardware JPEG engines run at ISP
        line rates).
    asic_energy_per_px:
        Energy per pixel of a fixed-function codec (energy domain).
    """
    if measured_ratio < 1.0:
        raise ConfigurationError(
            f"compression ratio must be >= 1, got {measured_ratio}"
        )
    if input_bytes <= 0 or pixels_per_frame <= 0:
        raise ConfigurationError("input size and pixel count must be positive")
    if parallel_engines < 1:
        raise ConfigurationError(
            f"parallel_engines must be >= 1, got {parallel_engines}"
        )
    ops = JpegLikeCodec().estimated_ops_per_pixel()
    pixels_per_engine = pixels_per_frame / parallel_engines
    fps = isp_px_per_s / (pixels_per_engine * ops / 12.0)
    return Block(
        name=name,
        output_bytes=input_bytes / measured_ratio,
        implementations={
            "isp": Implementation(
                "isp",
                fps=fps,
                energy_per_frame=pixels_per_frame * asic_energy_per_px,
                active_seconds=pixels_per_engine / isp_px_per_s,
            )
        },
        optional=True,
    )
