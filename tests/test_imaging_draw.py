"""Drawing primitives used by the synthetic generators."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging import draw


def test_canvas_fill_and_shape():
    c = draw.canvas(4, 6, 0.3)
    assert c.shape == (4, 6)
    assert np.all(c == 0.3)


def test_canvas_rejects_empty():
    with pytest.raises(ImageError):
        draw.canvas(0, 5)


def test_fill_rect_clips_to_canvas():
    c = draw.canvas(4, 4)
    draw.fill_rect(c, -2, -2, 10, 2, 1.0)
    assert np.all(c[:, :2] == 1.0)
    assert np.all(c[:, 2:] == 0.0)


def test_blend_ellipse_center_value_and_outside():
    c = draw.canvas(21, 21, 0.0)
    draw.blend_ellipse(c, 10, 10, 5, 5, 1.0, softness=0.0)
    assert c[10, 10] == 1.0
    assert c[0, 0] == 0.0


def test_blend_ellipse_soft_edges_are_intermediate():
    c = draw.canvas(31, 31, 0.0)
    draw.blend_ellipse(c, 15, 15, 8, 8, 1.0, softness=3.0)
    ring_values = c[15, 5:10]
    assert np.any((ring_values > 0.05) & (ring_values < 0.95))


def test_blend_ellipse_rotation_changes_footprint():
    a = draw.canvas(21, 21)
    b = draw.canvas(21, 21)
    draw.blend_ellipse(a, 10, 10, 8, 2, 1.0, softness=0.0, angle=0.0)
    draw.blend_ellipse(b, 10, 10, 8, 2, 1.0, softness=0.0, angle=np.pi / 2)
    assert a[2, 10] == 1.0 and b[2, 10] == 0.0
    assert b[10, 2] == 1.0 and a[10, 2] == 0.0


def test_blend_ellipse_rejects_bad_radii():
    with pytest.raises(ImageError):
        draw.blend_ellipse(draw.canvas(5, 5), 2, 2, 0.0, 1.0, 1.0)


def test_linear_gradient_axes():
    g0 = draw.linear_gradient(4, 3, 0.0, 1.0, axis=0)
    assert g0[0, 0] == 0.0 and g0[-1, 0] == 1.0
    assert np.all(g0[:, 0] == g0[:, 2])
    g1 = draw.linear_gradient(4, 3, 0.0, 1.0, axis=1)
    assert g1[0, 0] == 0.0 and g1[0, -1] == 1.0


def test_linear_gradient_rejects_bad_axis():
    with pytest.raises(ImageError):
        draw.linear_gradient(4, 4, 0, 1, axis=2)


def test_add_noise_statistics_and_clipping():
    rng = np.random.default_rng(0)
    img = np.full((50, 50), 0.5)
    noisy = draw.add_noise(img, 0.1, rng)
    assert noisy.std() == pytest.approx(0.1, rel=0.2)
    assert noisy.min() >= 0.0 and noisy.max() <= 1.0


def test_add_noise_zero_sigma_identity():
    rng = np.random.default_rng(1)
    img = np.full((5, 5), 0.5)
    assert np.array_equal(draw.add_noise(img, 0.0, rng), img)


def test_add_noise_rejects_negative_sigma():
    with pytest.raises(ImageError):
        draw.add_noise(np.ones((3, 3)), -0.1, np.random.default_rng(0))


def test_checkerboard_alternation():
    board = draw.checkerboard(4, 4, 1, low=0.0, high=1.0)
    assert board[0, 0] == 0.0 and board[0, 1] == 1.0 and board[1, 0] == 1.0


def test_smooth_texture_range_and_determinism():
    a = draw.smooth_texture(20, 20, np.random.default_rng(7), scale=4)
    b = draw.smooth_texture(20, 20, np.random.default_rng(7), scale=4)
    assert np.array_equal(a, b)
    assert a.min() >= 0.0 and a.max() <= 1.0
