"""MLP structure and forward semantics."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.mlp import MLP
from repro.nn.sigmoid import sigmoid


def test_layer_validation():
    with pytest.raises(TrainingError):
        MLP((400,))
    with pytest.raises(TrainingError):
        MLP((400, 0, 1))


def test_paper_topology_counts():
    model = MLP((400, 8, 1))
    assert model.n_layers == 2
    assert model.n_macs() == 400 * 8 + 8 * 1
    assert model.n_parameters == 400 * 8 + 8 + 8 * 1 + 1


def test_forward_records_all_activations():
    model = MLP((4, 3, 2), seed=0)
    X = np.random.default_rng(0).uniform(size=(5, 4))
    acts = model.forward(X)
    assert [a.shape for a in acts] == [(5, 4), (5, 3), (5, 2)]


def test_forward_matches_manual_computation():
    model = MLP((3, 2, 1), seed=1)
    x = np.array([[0.1, 0.5, 0.9]])
    hidden = sigmoid(x @ model.weights[0].T + model.biases[0])
    out = sigmoid(hidden @ model.weights[1].T + model.biases[1])
    assert np.allclose(model.predict_proba(x), out)


def test_forward_1d_input_promoted():
    model = MLP((3, 2, 1), seed=2)
    out = model.predict_proba(np.array([0.1, 0.2, 0.3]))
    assert out.shape == (1, 1)


def test_forward_rejects_wrong_width():
    model = MLP((3, 2, 1))
    with pytest.raises(TrainingError):
        model.predict_proba(np.ones((4, 5)))


def test_custom_activation_is_used():
    model = MLP((3, 2, 1), seed=3)
    relu_like = lambda x: np.maximum(x, 0.0)  # noqa: E731
    default = model.predict_proba(np.ones((1, 3)))
    custom = model.predict_proba(np.ones((1, 3)), activation=relu_like)
    assert not np.allclose(default, custom)


def test_predict_threshold():
    model = MLP((2, 1), seed=4)
    X = np.random.default_rng(0).uniform(size=(10, 2))
    proba = model.predict_proba(X)[:, 0]
    pred = model.predict(X, threshold=0.5)
    assert np.array_equal(pred, (proba >= 0.5).astype(np.int64))


def test_predict_requires_single_output():
    model = MLP((2, 3), seed=5)
    with pytest.raises(TrainingError):
        model.predict(np.ones((1, 2)))


def test_classification_error_alignment():
    model = MLP((2, 1), seed=6)
    X = np.ones((4, 2))
    with pytest.raises(TrainingError):
        model.classification_error(X, np.ones(3))


def test_copy_is_deep():
    model = MLP((3, 2, 1), seed=7)
    clone = model.copy()
    clone.weights[0][0, 0] += 1.0
    assert model.weights[0][0, 0] != clone.weights[0][0, 0]
    assert clone.layer_sizes == model.layer_sizes


def test_weight_span_positive():
    model = MLP((5, 3, 1), seed=8)
    assert model.weight_span() > 0.0


def test_init_deterministic_under_seed():
    a = MLP((10, 4, 1), seed=42)
    b = MLP((10, 4, 1), seed=42)
    assert np.array_equal(a.weights[0], b.weights[0])
