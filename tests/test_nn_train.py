"""Trainers: RPROP and SGD learn; validation selection works."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.mlp import MLP
from repro.nn.train import train_rprop, train_sgd


def _xor_data():
    X = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
    y = np.array([0.0, 1.0, 1.0, 0.0])
    return X, y


def _blob_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    labels = (rng.uniform(size=n) > 0.5).astype(float)
    X = rng.normal(0, 0.15, size=(n, 4))
    X[:, 0] += labels * 0.8
    X[:, 2] -= labels * 0.4
    return np.clip(X + 0.5, 0, 1), labels


def test_rprop_solves_xor():
    X, y = _xor_data()
    model = MLP((2, 4, 1), seed=3)
    result = train_rprop(model, X, y, epochs=400)
    assert result.model.classification_error(X, y) == 0.0


def test_rprop_loss_decreases():
    X, y = _blob_data()
    model = MLP((4, 6, 1), seed=1)
    result = train_rprop(model, X, y, epochs=100)
    assert result.train_losses[-1] < result.train_losses[0]


def test_rprop_validation_selects_best_model():
    X, y = _blob_data(200, seed=2)
    model = MLP((4, 6, 1), seed=2)
    result = train_rprop(
        model, X[:150], y[:150], epochs=120, X_val=X[150:], y_val=y[150:]
    )
    assert result.val_errors
    best = min(result.val_errors)
    final = result.model.classification_error(X[150:], y[150:])
    assert final == pytest.approx(best)


def test_rprop_patience_stops_early():
    X, y = _blob_data(100, seed=3)
    model = MLP((4, 4, 1), seed=3)
    result = train_rprop(
        model, X, y, epochs=500, X_val=X, y_val=y, patience=5
    )
    assert len(result.train_losses) < 500


def test_rprop_weight_decay_shrinks_span():
    X, y = _blob_data(150, seed=4)
    plain = train_rprop(MLP((4, 6, 1), seed=4), X, y, epochs=150)
    decayed = train_rprop(
        MLP((4, 6, 1), seed=4), X, y, epochs=150, weight_decay=1e-2
    )
    assert decayed.model.weight_span() < plain.model.weight_span()


def test_rprop_input_validation():
    X, y = _blob_data()
    model = MLP((4, 2, 1))
    with pytest.raises(TrainingError):
        train_rprop(model, X, y, epochs=0)
    with pytest.raises(TrainingError):
        train_rprop(model, X, y[:5])
    with pytest.raises(TrainingError):
        train_rprop(model, X, y, weight_decay=-1.0)
    with pytest.raises(TrainingError):
        train_rprop(model, X[:, :3], y)


def test_sgd_learns_blobs():
    X, y = _blob_data(200, seed=5)
    model = MLP((4, 6, 1), seed=5)
    result = train_sgd(model, X, y, epochs=60, seed=0)
    assert result.model.classification_error(X, y) < 0.15


def test_sgd_validation_of_params():
    X, y = _blob_data()
    with pytest.raises(TrainingError):
        train_sgd(MLP((4, 2, 1)), X, y, epochs=0)
    with pytest.raises(TrainingError):
        train_sgd(MLP((4, 2, 1)), X, y, learning_rate=0.0)


def test_trainers_deterministic():
    X, y = _blob_data(80, seed=6)
    a = train_rprop(MLP((4, 4, 1), seed=6), X, y, epochs=50)
    b = train_rprop(MLP((4, 4, 1), seed=6), X, y, epochs=50)
    assert np.array_equal(a.model.weights[0], b.model.weights[0])
    assert a.train_losses == b.train_losses
