"""Streaming result sinks and export-only (bounded-memory) exploration.

The contracts under test: file sinks reproduce the eager exports byte
for byte, rows stream in enumeration order chunk by chunk, sinks are
closed exactly once (also on error, wrapped in SinkError), and an
export-only run (``collect=False``) never materializes the row cache —
peak live cost objects stay proportional to the chunk size, not the
design-space size.
"""

from __future__ import annotations

import gc
import io
import json

import pytest

from repro.core.block import Block, Implementation
from repro.core.cost import ConfigCost, EnergyCost, ThroughputCostModel
from repro.core.offload import OffloadAnalyzer
from repro.core.pipeline import InCameraPipeline
from repro.core.sweep import parameter_sweep
from repro.errors import ConfigurationError, SinkError
from repro.explore import (
    CallbackSink,
    CsvSink,
    JsonlSink,
    MemorySink,
    ResultSink,
    Scenario,
    SweepExecutor,
    explore,
)
from repro.explore.sink import csv_text, resolve_sink
from repro.hw.network import RF_BACKSCATTER, LinkModel


def small_pipeline(n_blocks: int = 3, platforms: tuple[str, ...] = ("asic", "cpu")):
    blocks = tuple(
        Block(
            name=f"B{i}",
            output_bytes=float(1000 - 100 * i),
            pass_rate=0.5,
            implementations={
                p: Implementation(
                    p,
                    fps=50.0 - 5 * i + 3 * j,
                    energy_per_frame=1e-6 * (i + j + 1),
                    active_seconds=1e-3 * (j + 1),
                )
                for j, p in enumerate(platforms)
            },
        )
        for i in range(n_blocks)
    )
    return InCameraPipeline(
        name="sink-test", sensor_bytes=2000.0, blocks=blocks,
        sensor_energy_per_frame=1e-6,
    )


def throughput_scenario(**overrides) -> Scenario:
    kwargs = dict(
        name="sink-throughput",
        pipeline=small_pipeline(),
        link=LinkModel(name="l", raw_bps=250_000.0),
        target_fps=20.0,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def energy_scenario(**overrides) -> Scenario:
    kwargs = dict(
        name="sink-energy",
        pipeline=small_pipeline(),
        link=RF_BACKSCATTER,
        domain="energy",
        energy_budget_j=1e-4,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


# -- byte-identity with the eager exports --------------------------------


@pytest.mark.parametrize("scenario", [throughput_scenario(), energy_scenario()])
def test_csv_sink_matches_to_csv_byte_for_byte(scenario):
    buffer = io.StringIO()
    result = explore(scenario, sink=CsvSink(buffer))
    assert buffer.getvalue() == result.to_csv()


@pytest.mark.parametrize("scenario", [throughput_scenario(), energy_scenario()])
def test_jsonl_sink_matches_to_json_rows_byte_for_byte(scenario):
    buffer = io.StringIO()
    result = explore(scenario, sink=JsonlSink(buffer))
    lines = buffer.getvalue().splitlines()
    document = json.loads(result.to_json())
    assert [json.loads(line) for line in lines] == document["rows"]
    # Byte-level: each line is exactly the compact dump of the document
    # row (same key order, same non-finite mapping).
    for line, row in zip(lines, document["rows"]):
        assert line == json.dumps(row, allow_nan=False)


def test_jsonl_sink_handles_non_finite_floats():
    # The raw-offload config of an unconstrained throughput scenario has
    # inf compute_fps; every JSONL line must stay strictly valid JSON.
    scenario = throughput_scenario(target_fps=None)
    buffer = io.StringIO()
    explore(scenario, sink=JsonlSink(buffer))
    first = json.loads(buffer.getvalue().splitlines()[0])
    assert first["compute_fps"] == "inf"


def test_memory_sink_collects_all_rows_in_order():
    scenario = throughput_scenario()
    sink = MemorySink()
    result = explore(scenario, sink=sink, chunk_size=3)
    assert sink.rows == result.rows
    assert sink.chunks >= 2  # multiple chunks actually streamed


def test_callback_sink_sees_chunk_batches_in_order():
    scenario = energy_scenario()
    batches: list[list[dict]] = []
    result = explore(
        scenario, sink=CallbackSink(lambda rows: batches.append(list(rows))),
        chunk_size=4,
    )
    flat = [row for batch in batches for row in batch]
    assert flat == result.rows
    assert all(len(batch) <= 4 for batch in batches)


def test_csv_sink_rejects_keys_outside_locked_columns():
    """Streamed CSV cannot widen its header after the fact: a row with
    unseen keys must fail loudly, never silently drop values (the
    parameter_sweep pass-through feeds user fn rows that may vary)."""

    def fn(x):
        row = {"x": x}
        if x > 1:
            row["extra"] = x * 10
        return row

    with pytest.raises(SinkError, match="failed writing rows") as info:
        parameter_sweep(fn, sink=CsvSink(io.StringIO()), x=[1, 2, 3])
    assert "outside the CSV columns" in str(info.value.__cause__)
    assert "extra" in str(info.value.__cause__)
    # Escape hatch 1: declare the union up front (missing keys -> '-').
    buffer = io.StringIO()
    parameter_sweep(fn, sink=CsvSink(buffer, columns=["x", "extra"]), x=[1, 2, 3])
    assert buffer.getvalue().splitlines() == ["x,extra", "1,-", "2,20", "3,30"]
    # Escape hatch 2: JSONL keeps per-row keys.
    buffer = io.StringIO()
    parameter_sweep(fn, sink=JsonlSink(buffer), x=[1, 2])
    assert [json.loads(line) for line in buffer.getvalue().splitlines()] == [
        {"x": 1},
        {"x": 2, "extra": 20},
    ]


def test_csv_sink_with_explicit_columns_writes_header_even_for_empty_stream():
    buffer = io.StringIO()
    sink = CsvSink(buffer, columns=["config", "total_fps"])
    sink.open(None)
    sink.close()
    assert buffer.getvalue() == "config,total_fps\n"


def test_explore_with_sink_keeps_rows_lazy():
    """Collect + sink: sink rows are dropped after each write, never
    cached on the result — a million-config run must not double-hold a
    row list next to its evaluation list (rows re-derive lazily)."""
    scenario = throughput_scenario()
    result = explore(scenario, sink=MemorySink())
    assert result._rows is None
    assert result.rows == explore(scenario).rows


def test_csv_text_helper_round_trip():
    scenario = energy_scenario()
    result = explore(scenario)
    assert csv_text(result.iter_rows()) == result.to_csv()


# -- parallel determinism ------------------------------------------------


def test_sink_rows_identical_under_parallel_executor():
    scenario = throughput_scenario()
    serial, parallel = MemorySink(), MemorySink()
    explore(scenario, sink=serial, chunk_size=2)
    explore(
        scenario,
        executor=SweepExecutor(workers=4, backend="thread"),
        chunk_size=2,
        sink=parallel,
    )
    assert json.dumps(serial.rows) == json.dumps(parallel.rows)


# -- export-only runs ----------------------------------------------------


def test_collect_false_requires_sink():
    with pytest.raises(ConfigurationError, match="collect=False"):
        explore(throughput_scenario(), collect=False)


def test_collect_false_returns_none_but_streams_everything():
    scenario = energy_scenario()
    sink = MemorySink()
    outcome = explore(scenario, sink=sink, collect=False)
    assert outcome is None
    assert sink.rows == explore(scenario).rows


def _live_instances(*types) -> int:
    return sum(1 for obj in gc.get_objects() if isinstance(obj, types))


def test_export_only_never_materializes_the_cache():
    """Acceptance: peak intermediate memory is bounded by the chunk
    size — live cost objects observed at every sink write stay a small
    multiple of the chunk size even though the space is much larger."""
    pipeline = small_pipeline(n_blocks=7, platforms=("asic", "cpu", "fpga"))
    scenario = Scenario(
        name="bounded", pipeline=pipeline,
        link=LinkModel(name="l", raw_bps=1e6), target_fps=1.0,
    )
    n_configs = scenario.count_configs()
    chunk = 64
    assert n_configs > 20 * chunk  # the space dwarfs the chunk window
    peaks: list[int] = []

    def observe(rows):
        peaks.append(_live_instances(ConfigCost, EnergyCost))

    outcome = explore(
        scenario, chunk_size=chunk, sink=CallbackSink(observe), collect=False
    )
    assert outcome is None
    assert len(peaks) == -(-n_configs // chunk)  # one write per chunk
    # Live cost objects never exceed a few chunks' worth; a collected
    # run would end holding all n_configs of them.
    assert max(peaks) <= 4 * chunk
    collected = explore(scenario, chunk_size=chunk)
    assert _live_instances(ConfigCost, EnergyCost) >= n_configs
    assert len(collected.evaluations) == n_configs


# -- lifecycle and error handling ----------------------------------------


def test_file_sinks_are_single_use():
    buffer = io.StringIO()
    sink = CsvSink(buffer)
    explore(throughput_scenario(), sink=sink)
    with pytest.raises(SinkError, match="failed to open") as info:
        explore(throughput_scenario(), sink=sink)
    assert "single-use" in str(info.value.__cause__)


def test_write_before_open_raises():
    with pytest.raises(ConfigurationError, match="before open"):
        CsvSink(io.StringIO()).write_rows([{"a": 1}])


def test_csv_sink_writes_file_and_closes(tmp_path):
    path = tmp_path / "rows.csv"
    scenario = energy_scenario()
    result = explore(scenario, sink=CsvSink(str(path)))
    assert path.read_text(encoding="utf-8") == result.to_csv()


def test_failing_sink_surfaces_sink_error_with_scenario_name():
    class Boom(ResultSink):
        def write_rows(self, rows):
            raise OSError("disk full")

    with pytest.raises(SinkError, match="sink-throughput") as info:
        explore(throughput_scenario(), sink=Boom())
    assert isinstance(info.value.__cause__, OSError)


def test_sink_closed_even_when_write_fails():
    closed = []

    class Boom(ResultSink):
        def write_rows(self, rows):
            raise ValueError("nope")

        def close(self):
            closed.append(True)

    with pytest.raises(SinkError):
        explore(throughput_scenario(), sink=Boom())
    assert closed == [True]


def test_duck_typed_sink_without_open_close_works():
    class Minimal:
        def __init__(self):
            self.rows = []

        def write_rows(self, rows):
            self.rows.extend(rows)

    sink = Minimal()
    result = explore(throughput_scenario(), sink=sink)
    assert sink.rows == result.rows


def test_caller_owned_handle_is_flushed_on_close(tmp_path):
    path = tmp_path / "owned.csv"
    scenario = energy_scenario()
    with open(path, "w", encoding="utf-8", newline="") as handle:
        result = explore(scenario, sink=CsvSink(handle))
        # The sink reported closed: the file must already be complete,
        # even though the caller still owns the (open) handle.
        assert path.read_text(encoding="utf-8") == result.to_csv()
        assert not handle.closed


def test_sweep_sink_close_error_does_not_mask_fn_error():
    class BadClose(ResultSink):
        def write_rows(self, rows):
            pass

        def close(self):
            raise RuntimeError("flush failed")

    def fn(a):
        if a == 2:
            raise ValueError("the real bug")
        return {"out": a}

    with pytest.raises(ValueError, match="the real bug"):
        parameter_sweep(fn, sink=BadClose(), a=[1, 2, 3])
    # Without an in-flight error the close failure itself surfaces.
    with pytest.raises(SinkError, match="failed to close"):
        parameter_sweep(lambda a: {"out": a}, sink=BadClose(), a=[1])


def test_resolve_sink_rejects_non_sinks():
    with pytest.raises(ConfigurationError, match="write_rows"):
        resolve_sink(object())
    with pytest.raises(ConfigurationError, match="write_rows"):
        explore(throughput_scenario(), sink=42)


# -- collect_on_exit knob ------------------------------------------------


def test_collect_on_exit_runs_the_deferred_gc_pass(monkeypatch):
    calls = []
    real_collect = gc.collect
    monkeypatch.setattr(gc, "collect", lambda *a: calls.append(True) or real_collect(*a))
    result = explore(throughput_scenario(), collect_on_exit=True)
    assert calls  # the pass ran before explore returned
    assert len(result.rows) == throughput_scenario().count_configs()
    calls.clear()
    explore(throughput_scenario())
    assert not calls  # default: deferred as before


# -- facade pass-through -------------------------------------------------


def test_offload_analyzer_sink_pass_through():
    scenario = throughput_scenario()
    analyzer = OffloadAnalyzer(
        ThroughputCostModel(scenario.link), target_fps=scenario.target_fps
    )
    sink = MemorySink()
    report = analyzer.analyze(scenario.pipeline, sink=sink)
    assert [row["config"] for row in sink.rows] == [
        cost.config.label for cost in report.costs
    ]

    # Explicit-config path streams the same rows — chunk by chunk as
    # evaluation completes, not one post-hoc batch.
    explicit = MemorySink()
    configs = list(scenario.iter_configs())
    chunked = OffloadAnalyzer(
        ThroughputCostModel(scenario.link),
        target_fps=scenario.target_fps,
        executor=SweepExecutor(chunk_size=4),
    )
    chunked.analyze(scenario.pipeline, configs=configs, sink=explicit)
    assert json.dumps(explicit.rows) == json.dumps(sink.rows)
    assert explicit.chunks == -(-len(configs) // 4)


def test_parameter_sweep_sink_pass_through():
    sink = MemorySink()
    sweep = parameter_sweep(
        lambda a, b: {"sum": a + b}, sink=sink, a=[1, 2], b=[10, 20]
    )
    assert sink.rows == sweep.rows
    assert len(sink.rows) == 4


def test_parameter_sweep_sink_writes_per_chunk_not_per_row():
    sink = MemorySink()
    sweep = parameter_sweep(
        lambda a: {"out": a},
        executor=SweepExecutor(chunk_size=10),
        sink=sink,
        a=list(range(25)),
    )
    assert sink.rows == sweep.rows
    assert sink.chunks == 3  # 10 + 10 + 5, not 25 single-row writes
