"""Cross-cutting property tests: invariants spanning multiple packages.

These pin down the *framework-level* guarantees the case studies rely on,
with hypothesis searching for counterexamples.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import Block, Implementation
from repro.core.cost import EnergyCostModel, ThroughputCostModel
from repro.core.offload import enumerate_configs
from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.hw.network import LinkModel


def _pipeline_from(sizes: list[float], fpss: list[float],
                   pass_rates: list[float]) -> InCameraPipeline:
    blocks = tuple(
        Block(
            name=f"B{i}",
            output_bytes=size,
            implementations={
                "p": Implementation("p", fps=fps, energy_per_frame=1e-6)
            },
            pass_rate=rate,
        )
        for i, (size, fps, rate) in enumerate(zip(sizes, fpss, pass_rates))
    )
    return InCameraPipeline(name="prop", sensor_bytes=1000.0, blocks=blocks)


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=4),
    fpss=st.lists(st.floats(0.01, 1e4), min_size=4, max_size=4),
    link_bps=st.floats(1e3, 1e10),
)
def test_property_total_fps_never_exceeds_either_axis(sizes, fpss, link_bps):
    n = len(sizes)
    pipeline = _pipeline_from(sizes, fpss[:n], [1.0] * n)
    model = ThroughputCostModel(LinkModel(name="l", raw_bps=link_bps))
    for config in enumerate_configs(pipeline):
        cost = model.evaluate(config)
        assert cost.total_fps <= cost.compute_fps + 1e-12
        assert cost.total_fps <= cost.communication_fps + 1e-12
        assert cost.total_fps == min(cost.compute_fps, cost.communication_fps)


@settings(max_examples=50, deadline=None)
@given(
    rates=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=4),
    tx_bit_energy=st.floats(1e-12, 1e-8),
)
def test_property_gating_never_increases_downstream_energy(rates, tx_bit_energy):
    """Expected transmit energy is monotone non-increasing in every
    upstream pass rate."""
    n = len(rates)
    pipeline = _pipeline_from([100.0] * n, [10.0] * n, rates)
    link = LinkModel(name="l", raw_bps=1e6, tx_energy_per_bit=tx_bit_energy)
    model = EnergyCostModel(link)
    config = PipelineConfig(pipeline, tuple("p" for _ in range(n)))
    base = model.evaluate(config)

    for i in range(n):
        tightened = dict(zip((b.name for b in pipeline.blocks), rates))
        tightened[f"B{i}"] = rates[i] / 2.0
        tighter = model.evaluate(config, pass_rates=tightened)
        assert tighter.transmit_energy <= base.transmit_energy + 1e-18
        assert tighter.total_energy <= base.total_energy + 1e-18


@settings(max_examples=30, deadline=None)
@given(
    n_blocks=st.integers(1, 4),
    n_platforms=st.integers(1, 3),
)
def test_property_enumeration_count(n_blocks, n_platforms):
    """enumerate_configs yields 1 + sum_k platforms^k configurations when
    every block offers the same platform set."""
    platforms = {
        f"p{j}": Implementation(f"p{j}", fps=1.0) for j in range(n_platforms)
    }
    blocks = tuple(
        Block(name=f"B{i}", output_bytes=1.0, implementations=dict(platforms))
        for i in range(n_blocks)
    )
    pipeline = InCameraPipeline(name="e", sensor_bytes=1.0, blocks=blocks)
    configs = enumerate_configs(pipeline)
    expected = 1 + sum(n_platforms**k for k in range(1, n_blocks + 1))
    assert len(configs) == expected
    labels = [c.label for c in configs]
    assert len(set(labels)) == len(labels)  # all distinct


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_snnap_output_matches_reference_for_any_pe_count(seed):
    """Bit-exactness of the accelerator holds for arbitrary geometry."""
    from repro.nn.mlp import MLP
    from repro.nn.quantize import QuantizedMLP
    from repro.snnap.accelerator import SnnapAccelerator

    rng = np.random.default_rng(seed)
    layers = (int(rng.integers(4, 40)), int(rng.integers(2, 12)), 1)
    n_pes = int(rng.integers(1, 20))
    model = MLP(layers, seed=seed)
    X = rng.uniform(0, 1, size=(3, layers[0]))
    acc = SnnapAccelerator(model, n_pes=n_pes, data_bits=8)
    ref = QuantizedMLP(model, data_bits=8)
    assert np.array_equal(acc.run(X).outputs, ref.predict_proba(X))


@settings(max_examples=25, deadline=None)
@given(
    quality_lo=st.integers(5, 45),
    quality_hi=st.integers(55, 95),
    seed=st.integers(0, 200),
)
def test_property_codec_rate_monotone_in_quality(quality_lo, quality_hi, seed):
    """Higher quality never produces a smaller coded size on the same
    content (up to the entropy model's resolution)."""
    from repro.compression.codec import JpegLikeCodec
    from repro.imaging import draw

    rng = np.random.default_rng(seed)
    img = draw.add_noise(draw.smooth_texture(48, 48, rng, scale=4), 0.03, rng)
    lo = JpegLikeCodec(quality=quality_lo).roundtrip(img)
    hi = JpegLikeCodec(quality=quality_hi).roundtrip(img)
    assert hi.coded_bytes >= lo.coded_bytes * 0.95
    assert hi.psnr_db >= lo.psnr_db - 0.5


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 300))
def test_property_bilateral_grid_slice_of_splat_mean_bounded(seed):
    """slice(blur(splat(v))) stays within [min(v), max(v)] — the grid
    pipeline is an averaging operator end to end."""
    from repro.bilateral.grid import BilateralGrid

    rng = np.random.default_rng(seed)
    guide = rng.uniform(size=(20, 20))
    values = rng.uniform(-2.0, 3.0, size=(20, 20))
    grid = BilateralGrid(guide, sigma_spatial=float(rng.uniform(2, 8)),
                         sigma_range=float(rng.uniform(0.05, 0.5)))
    out = grid.filter(values)
    assert out.min() >= values.min() - 1e-9
    assert out.max() <= values.max() + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    distance=st.floats(0.2, 10.0),
    energy_uj=st.floats(1.0, 1000.0),
)
def test_property_harvest_fps_monotone(distance, energy_uj):
    """Steady-state FPS decreases with task energy and with distance."""
    from repro.harvest import Capacitor, DutyCycleSimulator, FrameTask, RfHarvester

    harvester = RfHarvester()
    task = FrameTask("t", energy_uj * 1e-6, 0.0)
    double = FrameTask("t2", 2 * energy_uj * 1e-6, 0.0)
    sim = DutyCycleSimulator(harvester, Capacitor(), distance)
    sim_far = DutyCycleSimulator(harvester, Capacitor(), distance * 1.5)
    assert sim.steady_state_fps(double) <= sim.steady_state_fps(task) + 1e-12
    assert sim_far.steady_state_fps(task) <= sim.steady_state_fps(task) + 1e-12
