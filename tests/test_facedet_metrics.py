"""Detection scoring and Fig. 4c's relative normalization."""

import pytest

from repro.errors import ConfigurationError
from repro.facedet.detector import Detection
from repro.facedet.metrics import (
    DetectionScore,
    match_detections,
    relative_scores,
    score_detections,
)


def test_score_derived_metrics():
    score = DetectionScore(true_positives=8, false_positives=2, false_negatives=2)
    assert score.precision == pytest.approx(0.8)
    assert score.recall == pytest.approx(0.8)
    assert score.f1 == pytest.approx(0.8)


def test_score_zero_denominators():
    empty = DetectionScore(0, 0, 0)
    assert empty.precision == 0.0
    assert empty.recall == 0.0
    assert empty.f1 == 0.0


def test_score_addition():
    a = DetectionScore(1, 2, 3)
    b = DetectionScore(4, 5, 6)
    c = a + b
    assert (c.true_positives, c.false_positives, c.false_negatives) == (5, 7, 9)


def test_match_exact_hit():
    dets = [Detection(10, 10, 20, 1.0)]
    score = match_detections(dets, [(10, 10, 20)])
    assert score.true_positives == 1
    assert score.false_positives == 0
    assert score.false_negatives == 0


def test_match_near_hit_counts_with_iou():
    dets = [Detection(12, 12, 20, 1.0)]
    score = match_detections(dets, [(10, 10, 20)], iou_threshold=0.4)
    assert score.true_positives == 1


def test_match_miss_and_false_positive():
    dets = [Detection(50, 50, 20, 1.0)]
    score = match_detections(dets, [(0, 0, 20)])
    assert score.true_positives == 0
    assert score.false_positives == 1
    assert score.false_negatives == 1


def test_one_truth_matches_at_most_once():
    dets = [Detection(10, 10, 20, 1.0), Detection(11, 11, 20, 0.9)]
    score = match_detections(dets, [(10, 10, 20)])
    assert score.true_positives == 1
    assert score.false_positives == 1


def test_higher_score_matches_first():
    dets = [Detection(10, 10, 20, 0.5), Detection(10, 10, 20, 2.0)]
    score = match_detections(dets, [(10, 10, 20)])
    assert score.true_positives == 1


def test_iou_threshold_validated():
    with pytest.raises(ConfigurationError):
        match_detections([], [], iou_threshold=0.0)


def test_score_detections_aggregates():
    per_scene = [
        ([Detection(0, 0, 20, 1.0)], [(0, 0, 20)]),
        ([], [(5, 5, 20)]),
    ]
    total = score_detections(per_scene)
    assert total.true_positives == 1
    assert total.false_negatives == 1


def test_relative_scores_normalizes_to_peak():
    scores = [
        DetectionScore(10, 0, 0),  # perfect
        DetectionScore(5, 5, 5),
    ]
    rel = relative_scores(scores)
    assert rel["f1"][0] == pytest.approx(1.0)
    assert 0.0 < rel["f1"][1] < 1.0
    assert rel["precision"][0] == pytest.approx(1.0)


def test_relative_scores_all_zero_sweep():
    rel = relative_scores([DetectionScore(0, 1, 1), DetectionScore(0, 2, 2)])
    assert list(rel["f1"]) == [0.0, 0.0]
