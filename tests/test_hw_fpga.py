"""FPGA packing model and Table I reproduction."""

import pytest

from repro.errors import ConfigurationError, ResourceExceededError
from repro.hw.fpga import (
    FpgaDesign,
    FpgaDevice,
    VIRTEX_ULTRASCALE_PLUS,
    ZYNQ_7020,
)


def test_device_validation():
    with pytest.raises(ConfigurationError):
        FpgaDevice(name="bad", luts=0, bram_blocks=10, dsps=10, max_clock_hz=1e8)


def test_design_clock_validated():
    with pytest.raises(ConfigurationError):
        FpgaDesign(ZYNQ_7020, clock_hz=1e9)  # above device max
    with pytest.raises(ConfigurationError):
        FpgaDesign(ZYNQ_7020, clock_hz=0)


def test_zynq_packs_11_cus_dsp_limited():
    design = FpgaDesign(ZYNQ_7020)
    assert design.max_units() == 11
    usage = design.usage(11)
    assert usage.bottleneck() == "dsp"


def test_ultrascale_packs_682_cus():
    """The paper: 'we can parallelize up to 682 compute units'."""
    design = FpgaDesign(VIRTEX_ULTRASCALE_PLUS)
    assert design.max_units() == 682


def test_table1_utilization_zynq():
    """Table I evaluation column: logic 45.91%, RAM 6.70%, DSP 94.09%."""
    design = FpgaDesign(ZYNQ_7020)
    usage = design.usage(design.max_units())
    assert usage.lut_fraction == pytest.approx(0.4591, abs=0.01)
    assert usage.bram_fraction == pytest.approx(0.0670, abs=0.005)
    assert usage.dsp_fraction == pytest.approx(0.9409, abs=0.005)


def test_table1_utilization_ultrascale():
    """Table I target column: logic 67.10%, RAM 17.60%, DSP 99.98%."""
    design = FpgaDesign(VIRTEX_ULTRASCALE_PLUS)
    usage = design.usage(design.max_units())
    assert usage.lut_fraction == pytest.approx(0.6710, abs=0.01)
    assert usage.bram_fraction == pytest.approx(0.1760, abs=0.01)
    assert usage.dsp_fraction == pytest.approx(0.9998, abs=0.001)


def test_usage_overflow_raises():
    design = FpgaDesign(ZYNQ_7020)
    with pytest.raises(ResourceExceededError):
        design.usage(100)
    with pytest.raises(ConfigurationError):
        design.usage(-1)


def test_throughput_scales_with_units():
    design = FpgaDesign(ZYNQ_7020)
    assert design.items_per_second(10) == pytest.approx(10 * 125e6)
    assert design.items_per_second(5) == pytest.approx(design.items_per_second(10) / 2)


def test_seconds_for_items():
    design = FpgaDesign(ZYNQ_7020)
    assert design.seconds_for_items(125e6, n_units=1) == pytest.approx(1.0)
    with pytest.raises(ConfigurationError):
        design.seconds_for_items(-1)


def test_zero_units_design_cannot_stream():
    tiny = FpgaDevice(name="tiny", luts=100, bram_blocks=1, dsps=4, max_clock_hz=2e8)
    design = FpgaDesign(tiny)
    assert design.max_units() == 0
    with pytest.raises(ResourceExceededError):
        design.seconds_for_items(100)


def test_cu_dsps_validated():
    with pytest.raises(ConfigurationError):
        FpgaDesign(ZYNQ_7020, cu_dsps=0)
