"""Integral images: exactness against brute force, including properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ImageError
from repro.imaging.integral import (
    integral_image,
    integral_of_squares,
    window_mean_and_std,
    window_sum,
    window_sums_batch,
)


def test_integral_shape_has_zero_border():
    ii = integral_image(np.ones((3, 4)))
    assert ii.shape == (4, 5)
    assert np.all(ii[0, :] == 0) and np.all(ii[:, 0] == 0)


def test_full_window_sum_equals_total():
    rng = np.random.default_rng(0)
    arr = rng.uniform(size=(7, 9))
    ii = integral_image(arr)
    assert window_sum(ii, 0, 0, 7, 9) == pytest.approx(arr.sum())


def test_window_sum_matches_slice():
    rng = np.random.default_rng(1)
    arr = rng.uniform(size=(10, 12))
    ii = integral_image(arr)
    assert window_sum(ii, 2, 3, 7, 9) == pytest.approx(arr[2:7, 3:9].sum())


def test_window_sum_bounds_checked():
    ii = integral_image(np.ones((4, 4)))
    with pytest.raises(ImageError):
        window_sum(ii, 0, 0, 6, 2)
    with pytest.raises(ImageError):
        window_sum(ii, 3, 0, 2, 2)  # y0 > y1


def test_window_sums_batch_matches_scalar():
    rng = np.random.default_rng(2)
    arr = rng.uniform(size=(12, 14))
    ii = integral_image(arr)
    ys = np.array([0, 3, 5])
    xs = np.array([1, 2, 7])
    batch = window_sums_batch(ii, ys, xs, height=4, width=5)
    for k in range(3):
        expected = window_sum(ii, ys[k], xs[k], ys[k] + 4, xs[k] + 5)
        assert batch[k] == pytest.approx(expected)


def test_window_mean_and_std_match_numpy():
    rng = np.random.default_rng(3)
    arr = rng.uniform(size=(9, 9))
    ii = integral_image(arr)
    ii_sq = integral_of_squares(arr)
    mean, std = window_mean_and_std(ii, ii_sq, 1, 2, 6, 8)
    patch = arr[1:6, 2:8]
    assert mean == pytest.approx(patch.mean())
    assert std == pytest.approx(patch.std(), abs=1e-9)


def test_window_mean_and_std_rejects_empty_window():
    arr = np.ones((4, 4))
    ii = integral_image(arr)
    ii_sq = integral_of_squares(arr)
    with pytest.raises(ImageError):
        window_mean_and_std(ii, ii_sq, 1, 1, 1, 3)


def test_constant_window_std_is_zero():
    arr = np.full((6, 6), 0.37)
    ii = integral_image(arr)
    ii_sq = integral_of_squares(arr)
    _, std = window_mean_and_std(ii, ii_sq, 0, 0, 6, 6)
    assert std == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    h=st.integers(2, 12),
    w=st.integers(2, 12),
    seed=st.integers(0, 1000),
)
def test_property_any_window_matches_brute_force(h, w, seed):
    """Every possible window sum equals the numpy slice sum."""
    rng = np.random.default_rng(seed)
    arr = rng.uniform(size=(h, w))
    ii = integral_image(arr)
    y0 = int(rng.integers(0, h))
    y1 = int(rng.integers(y0, h)) + 1
    x0 = int(rng.integers(0, w))
    x1 = int(rng.integers(x0, w)) + 1
    assert window_sum(ii, y0, x0, y1, x1) == pytest.approx(
        arr[y0:y1, x0:x1].sum(), abs=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_integral_is_monotone_for_nonnegative(seed):
    """For non-negative images the integral image is monotone along axes."""
    rng = np.random.default_rng(seed)
    arr = rng.uniform(0.0, 1.0, size=(8, 8))
    ii = integral_image(arr)
    assert np.all(np.diff(ii, axis=0) >= -1e-12)
    assert np.all(np.diff(ii, axis=1) >= -1e-12)
