"""Campaign-level cross-scenario evaluation dedup.

The acceptance gates of the :class:`PipelineCostCache`: a fleet running
the same pipeline at several links evaluates its compute-side states
once (cache stats prove the skipped evaluations), every member's rows
stay byte-identical to solo ``explore()`` and to a ``dedup=False`` run,
the cache key separates the pipeline-chain fingerprint from the
platform-axis fingerprint so structurally identical pipelines with
different implementation prices can never poison each other's entries,
and the stress paths hold: zero-config scenarios inside a dedup fleet,
export-only dedup campaigns, and the process backend.
"""

from __future__ import annotations

import io
import json
from dataclasses import replace

import pytest

from repro.core.block import Block, Implementation
from repro.core.cost import (
    EnergyCostModel,
    implementation_fingerprint,
    platform_axis_fingerprint,
)
from repro.core.pipeline import InCameraPipeline
from repro.errors import ConfigurationError
from repro.explore import (
    Campaign,
    CsvSink,
    Scenario,
    SweepExecutor,
    explore,
    scenario_compute_key,
)
from repro.hw.network import ETHERNET_25G, RF_BACKSCATTER, WIFI_CLASS, LinkModel


def _pipeline(impl_fps: float = 30.0, name: str = "p") -> InCameraPipeline:
    blocks = tuple(
        Block(
            name=f"B{i}",
            output_bytes=float(400 - 100 * i),
            pass_rate=0.8,
            implementations={
                "asic": Implementation(
                    "asic", fps=impl_fps + i, energy_per_frame=1e-6, active_seconds=1e-3
                ),
                "cpu": Implementation(
                    "cpu", fps=impl_fps + 2 * i, energy_per_frame=3e-6,
                    active_seconds=2e-3,
                ),
            },
        )
        for i in range(3)
    )
    return InCameraPipeline(
        name=name, sensor_bytes=1000.0, blocks=blocks, sensor_energy_per_frame=1e-6
    )


# -- fingerprints --------------------------------------------------------


def test_pipeline_fingerprint_covers_chain_not_label_or_axis():
    base = _pipeline()
    assert base.fingerprint() == _pipeline().fingerprint()
    # The report label is excluded: identical chains dedup across names.
    assert base.fingerprint() == _pipeline(name="other").fingerprint()
    # The platform axis is excluded (fingerprinted separately).
    assert base.fingerprint() == _pipeline(impl_fps=99.0).fingerprint()
    # Chain structure is covered: payloads, pass rates, sensor terms.
    changed = replace(base, sensor_bytes=999.0)
    assert base.fingerprint() != changed.fingerprint()
    changed = replace(base, sensor_energy_per_frame=2e-6)
    assert base.fingerprint() != changed.fingerprint()
    reblocked = replace(
        base, blocks=(replace(base.blocks[0], pass_rate=0.5),) + base.blocks[1:]
    )
    assert base.fingerprint() != reblocked.fingerprint()


def test_platform_axis_fingerprint_covers_implementation_costs():
    base = _pipeline()
    assert platform_axis_fingerprint(base) == platform_axis_fingerprint(_pipeline())
    # Any cost field of any implementation changes the axis.
    assert platform_axis_fingerprint(base) != platform_axis_fingerprint(
        _pipeline(impl_fps=31.0)
    )
    impl = base.blocks[0].implementations["asic"]
    assert implementation_fingerprint(impl) == (
        "asic", impl.fps, impl.energy_per_frame, impl.active_seconds
    )
    richer = replace(
        base,
        blocks=(
            base.blocks[0].with_implementation(Implementation("fpga", fps=50.0)),
        )
        + base.blocks[1:],
    )
    assert platform_axis_fingerprint(base) != platform_axis_fingerprint(richer)


# -- the compute key -----------------------------------------------------


def test_compute_key_shares_across_links_only():
    pipeline = _pipeline()
    at_25g = Scenario(name="a", pipeline=pipeline, link=ETHERNET_25G, target_fps=30.0)
    at_wifi = Scenario(name="b", pipeline=pipeline, link=WIFI_CLASS, target_fps=30.0)
    assert scenario_compute_key(at_25g) == scenario_compute_key(at_wifi)
    # Different targets share too (feasibility is a row verdict, not a
    # cost): the key is about what gets *evaluated*.
    retargeted = replace(at_25g, target_fps=60.0)
    assert scenario_compute_key(at_25g) == scenario_compute_key(retargeted)
    # Domain, enumeration bounds and pass rates all split the key.
    energy = Scenario(name="c", pipeline=pipeline, link=ETHERNET_25G, domain="energy")
    assert scenario_compute_key(at_25g) != scenario_compute_key(energy)
    assert scenario_compute_key(at_25g) != scenario_compute_key(
        replace(at_25g, max_blocks=1)
    )
    assert scenario_compute_key(at_25g) != scenario_compute_key(
        replace(at_25g, include_empty=False)
    )
    assert scenario_compute_key(energy) != scenario_compute_key(
        replace(energy, pass_rates={"B0": 0.5})
    )


def test_compute_key_ineligible_scenarios():
    pipeline = _pipeline()
    base = Scenario(name="a", pipeline=pipeline, link=ETHERNET_25G, target_fps=30.0)
    assert scenario_compute_key(base) is not None
    # Pruned streams depend on constraint and link: never shared.
    assert scenario_compute_key(replace(base, auto_prune=True)) is None
    assert scenario_compute_key(replace(base, auto_prune_configs=True)) is None
    assert scenario_compute_key(replace(base, prune=lambda c: False)) is None
    assert scenario_compute_key(replace(base, prune_depth=lambda d: False)) is None
    # Pre-built models own their semantics (and their link).
    from repro.core.cost import ThroughputCostModel

    modeled = replace(base, model=ThroughputCostModel(ETHERNET_25G))
    assert scenario_compute_key(modeled) is None


def test_cache_poisoning_guard_same_chain_different_axis():
    """Two scenarios whose pipelines share a *chain* fingerprint but
    differ in platform axis must not share cache entries — and their
    campaign results must prove it by matching their own solo runs."""
    cheap = _pipeline(impl_fps=30.0)
    fast = _pipeline(impl_fps=90.0)
    assert cheap.fingerprint() == fast.fingerprint()
    assert platform_axis_fingerprint(cheap) != platform_axis_fingerprint(fast)
    fleet = [
        Scenario(name="cheap", pipeline=cheap, link=ETHERNET_25G, target_fps=30.0),
        Scenario(name="fast", pipeline=fast, link=ETHERNET_25G, target_fps=30.0),
    ]
    assert scenario_compute_key(fleet[0]) != scenario_compute_key(fleet[1])
    result = Campaign(fleet).run(dedup=True)
    assert result.cache_stats["scenarios_shared"] == 0
    assert result.cache_stats["evaluations_skipped"] == 0
    for run in result:
        assert run.dedup_source is None
        assert json.dumps(run.result.rows) == json.dumps(explore(run.scenario).rows)


# -- dedup campaigns -----------------------------------------------------


def _link_fleet(domain: str = "throughput") -> list[Scenario]:
    pipeline = _pipeline()
    links = [ETHERNET_25G, WIFI_CLASS, RF_BACKSCATTER, LinkModel("slow", raw_bps=1e5)]
    if domain == "throughput":
        return [
            Scenario(
                name=f"s@{link.name}", pipeline=pipeline, link=link, target_fps=25.0
            )
            for link in links
        ]
    return [
        Scenario(
            name=f"s@{link.name}",
            pipeline=pipeline,
            link=link,
            domain="energy",
            energy_budget_j=1e-3,
            pass_rates={"B1": 0.6},
        )
        for link in links
    ]


@pytest.mark.parametrize("domain", ["throughput", "energy"])
def test_dedup_campaign_byte_identical_and_skips_evaluations(domain):
    """Acceptance: the same pipeline at 4 links evaluates once — 3/4 of
    the cost-model evaluations are skipped — with per-scenario rows
    byte-identical to dedup=False and to solo explore()."""
    fleet = _link_fleet(domain)
    with_dedup = Campaign(fleet).run(
        SweepExecutor(workers=3, backend="thread"), chunk_size=3, dedup=True
    )
    without = Campaign(fleet).run(dedup=False)
    for lean, full in zip(with_dedup, without):
        assert json.dumps(lean.result.rows) == json.dumps(full.result.rows)
        assert json.dumps(lean.result.rows) == json.dumps(
            explore(lean.scenario).rows
        ), lean.name
        assert lean.n_feasible == full.n_feasible
        assert lean.pareto_size == full.pareto_size
    stats = with_dedup.cache_stats
    assert stats["dedup"] is True
    assert stats["scenarios_shared"] == 3
    assert stats["evaluations_computed"] == fleet[0].count_configs()
    assert stats["evaluations_skipped"] == 3 * fleet[0].count_configs()
    assert without.cache_stats["evaluations_skipped"] == 0
    # Provenance: followers name their leader; the leader names no one.
    assert with_dedup.runs[0].dedup_source is None
    for run in with_dedup.runs[1:]:
        assert run.dedup_source == fleet[0].name
    # The summary table surfaces the dedup column.
    rendered = with_dedup.to_table().render()
    assert "dedup" in rendered and fleet[0].name in rendered


def test_dedup_campaign_process_backend_round_trips():
    fleet = _link_fleet("energy")[:2]
    result = Campaign(fleet).run(
        SweepExecutor(workers=2, backend="process"), dedup=True
    )
    assert result.cache_stats["evaluations_skipped"] == fleet[0].count_configs()
    for run in result:
        assert json.dumps(run.result.rows) == json.dumps(explore(run.scenario).rows)


def test_campaign_surfaces_prefix_cache_stats():
    """``cache_stats["prefix_cache"]`` carries the fleet-shared
    PrefixStateCache counters where one is actually shared (dedup on a
    serial/thread executor), the ``{"shared": False}`` sentinel on
    process pools (workers would pickle private trie copies), and None
    without dedup."""
    fleet = _link_fleet("throughput")
    serial = Campaign(fleet).run(dedup=True)
    stats = serial.cache_stats["prefix_cache"]
    assert stats is not None
    assert set(stats) == {"hits", "misses", "entries", "width_capped"}
    assert stats["misses"] > 0  # the fold primed prefix cohorts
    assert stats == serial.prefix_cache_stats
    # Without dedup there is no fleet-shared cache to report.
    assert Campaign(fleet).run().cache_stats["prefix_cache"] is None
    # Process pools would pickle private copies: nothing shared, and the
    # sentinel says so explicitly instead of masquerading as "dedup off".
    process = Campaign(fleet).run(
        SweepExecutor(workers=2, backend="process"), dedup=True
    )
    assert process.cache_stats["prefix_cache"] == {"shared": False}


def test_dedup_campaign_streams_sinks_and_export_only():
    """Followers' sinks receive exactly the solo CSV bytes, also under
    collect=False (export-only dedup), and the streamed frontier/stats
    match the collected run."""
    fleet = _link_fleet("throughput")
    buffers = {scenario.name: io.StringIO() for scenario in fleet}
    lean = Campaign(fleet).run(
        chunk_size=3,
        sinks={name: CsvSink(buffer) for name, buffer in buffers.items()},
        collect=False,
        dedup=True,
    )
    collected = Campaign(fleet).run(chunk_size=3)
    for scenario in fleet:
        assert buffers[scenario.name].getvalue() == explore(scenario).to_csv(), (
            scenario.name
        )
    for thin, full in zip(lean, collected):
        assert thin.result is None
        assert thin.n_evaluated == full.n_evaluated
        assert thin.best == full.best
        assert json.dumps(thin.pareto()) == json.dumps(full.pareto())


def test_dedup_with_iter_runs_streams_followers_with_leader():
    """Followers complete the moment their leader does: iter_runs hands
    out the whole group together, results identical to solo."""
    fleet = _link_fleet("throughput")
    runs = list(Campaign(fleet).iter_runs(chunk_size=4, dedup=True))
    assert {run.name for run in runs} == {scenario.name for scenario in fleet}
    for run in runs:
        assert json.dumps(run.result.rows) == json.dumps(explore(run.scenario).rows)


def test_zero_config_scenario_inside_dedup_fleet():
    """A zero-configuration scenario (no empty config, no blocks) rides
    a fleet — dedup on and off — without wedging completion detection."""
    empty_pipeline = InCameraPipeline(name="none", sensor_bytes=1.0, blocks=())
    empty = Scenario(
        name="empty",
        pipeline=empty_pipeline,
        link=ETHERNET_25G,
        include_empty=False,
    )
    fleet = [empty, *_link_fleet("throughput")[:2]]
    for dedup in (False, True):
        result = Campaign(fleet).run(chunk_size=2, dedup=dedup)
        assert result["empty"].n_evaluated == 0
        assert result["empty"].best is None
        assert result["empty"].pareto_size == 0
        for run in result:
            if run.name != "empty":
                assert json.dumps(run.result.rows) == json.dumps(
                    explore(run.scenario).rows
                )


def test_two_zero_config_scenarios_can_share_a_key():
    """Degenerate dedup group: leader and follower both enumerate zero
    chunks; both complete with empty results."""
    pipeline = InCameraPipeline(name="none", sensor_bytes=1.0, blocks=())
    fleet = [
        Scenario(name="a", pipeline=pipeline, link=ETHERNET_25G, include_empty=False),
        Scenario(name="b", pipeline=pipeline, link=WIFI_CLASS, include_empty=False),
    ]
    assert scenario_compute_key(fleet[0]) == scenario_compute_key(fleet[1])
    result = Campaign(fleet).run(dedup=True)
    assert [run.n_evaluated for run in result] == [0, 0]


def test_dedup_group_with_identical_links_reuses_too():
    """Same pipeline, same link, different names/targets: a legitimate
    group (the degenerate same-link case) — still byte-identical."""
    pipeline = _pipeline()
    fleet = [
        Scenario(name="a", pipeline=pipeline, link=ETHERNET_25G, target_fps=25.0),
        Scenario(name="b", pipeline=pipeline, link=ETHERNET_25G, target_fps=32.0),
    ]
    result = Campaign(fleet).run(dedup=True)
    assert result.cache_stats["evaluations_skipped"] == fleet[0].count_configs()
    for run in result:
        assert json.dumps(run.result.rows) == json.dumps(explore(run.scenario).rows)


def test_states_many_requires_prefix_eligible_model():
    from repro.explore.incremental import PrefixEvaluator

    class Custom(EnergyCostModel):
        def evaluate(self, config, pass_rates=None):  # pragma: no cover
            return super().evaluate(config, pass_rates)

    evaluator = PrefixEvaluator(Custom(RF_BACKSCATTER))
    with pytest.raises(ConfigurationError, match="states_many"):
        evaluator.states_many([])
