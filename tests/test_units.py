"""Unit-conversion helpers."""

import pytest

from repro import units


def test_bytes_to_bits_roundtrip():
    assert units.bytes_to_bits(10) == 80
    assert units.bits_to_bytes(units.bytes_to_bits(123.5)) == pytest.approx(123.5)


def test_transfer_seconds_basic():
    # 1 MB over 8 Mb/s = 1 second.
    assert units.transfer_seconds(1e6, 8e6) == pytest.approx(1.0)


def test_transfer_seconds_rejects_bad_rate():
    with pytest.raises(ValueError):
        units.transfer_seconds(100, 0.0)
    with pytest.raises(ValueError):
        units.transfer_seconds(100, -5.0)


def test_frames_per_second_inverts_latency():
    assert units.frames_per_second(0.5) == pytest.approx(2.0)


def test_frames_per_second_free_is_infinite():
    assert units.frames_per_second(0.0) == float("inf")
    assert units.frames_per_second(-1.0) == float("inf")


def test_constants_are_consistent():
    assert units.GB == 1000 * units.MB == 1e6 * units.KB
    assert units.GBPS == 1e9
    assert units.MIB == 1024 * units.KIB
    assert units.HOUR == 60 * units.MINUTE
