"""Camera rig: geometry, rendering, parallax."""

import numpy as np
import pytest

from repro.datasets.rig import CameraRig, PanoramicScene
from repro.errors import DatasetError


def test_rig_validation():
    with pytest.raises(DatasetError):
        CameraRig(n_cameras=1)
    with pytest.raises(DatasetError):
        CameraRig(hfov_deg=200)
    with pytest.raises(DatasetError):
        CameraRig(radius=0.0)


def test_camera_yaws_cover_the_circle(small_rig):
    yaws = [small_rig.camera_yaw(i) for i in range(small_rig.n_cameras)]
    diffs = np.diff(yaws)
    assert np.allclose(diffs, 2 * np.pi / small_rig.n_cameras)


def test_camera_positions_on_ring(small_rig):
    for i in range(small_rig.n_cameras):
        pos = small_rig.camera_position(i)
        assert np.hypot(*pos) == pytest.approx(small_rig.radius)


def test_pair_baseline_chord_length(small_rig):
    expected = 2 * small_rig.radius * np.sin(np.pi / small_rig.n_cameras)
    assert small_rig.pair_baseline() == pytest.approx(expected)


def test_stereo_pairs_cover_all_cameras(small_rig):
    pairs = small_rig.stereo_pairs()
    assert len(pairs) == small_rig.n_cameras // 2
    seen = {c for pair in pairs for c in pair}
    assert seen == set(range(small_rig.n_cameras))


def test_scene_validation():
    with pytest.raises(DatasetError):
        PanoramicScene(
            background=np.ones((4, 8, 2)),
            background_distance=10.0,
            background_half_height=2.0,
        )
    with pytest.raises(DatasetError):
        PanoramicScene(
            background=np.ones((4, 8)),
            background_distance=-1.0,
            background_half_height=2.0,
        )


def test_render_camera_shapes_and_depth(small_rig, rig_scene):
    rgb, depth = small_rig.render_camera(rig_scene, 0)
    assert rgb.shape == (small_rig.sim_height, small_rig.sim_width, 3)
    assert depth.shape == (small_rig.sim_height, small_rig.sim_width)
    assert depth.min() > 0.0
    assert depth.max() <= rig_scene.background_distance + 1e-6


def test_objects_appear_closer_than_background(small_rig, rig_scene):
    saw_object = False
    for i in range(small_rig.n_cameras):
        _, depth = small_rig.render_camera(rig_scene, i)
        if depth.min() < rig_scene.background_distance - 1.0:
            saw_object = True
            break
    assert saw_object, "no camera saw any foreground object"


def test_adjacent_cameras_observe_parallax(small_rig, rig_scene):
    """Where a camera sees a foreground object, its ring neighbor sees it
    at a shifted position: the images must differ noticeably."""
    diffs = []
    for i in range(small_rig.n_cameras):
        a, da = small_rig.render_camera(rig_scene, i)
        b, _ = small_rig.render_camera(rig_scene, (i + 1) % small_rig.n_cameras)
        if da.min() < rig_scene.background_distance - 1.0:
            diffs.append(np.abs(a - b).mean())
    assert diffs and max(diffs) > 0.01


def test_capture_determinism(small_rig, rig_scene):
    a = small_rig.capture(rig_scene, seed=3)
    b = small_rig.capture(rig_scene, seed=3)
    assert np.array_equal(a.raw[0], b.raw[0])
    assert len(a) == small_rig.n_cameras


def test_capture_raw_is_bayer_of_rgb(small_rig, rig_scene):
    frames = small_rig.capture(rig_scene, noise_sigma=0.0, seed=0)
    from repro.imaging.bayer import bayer_mosaic

    expected = bayer_mosaic(frames.rgb[0])
    assert np.allclose(frames.raw[0], expected)


def test_scene_random_determinism():
    a = PanoramicScene.random(seed=5)
    b = PanoramicScene.random(seed=5)
    assert np.array_equal(a.background, b.background)
    assert a.objects[0].azimuth == b.objects[0].azimuth
