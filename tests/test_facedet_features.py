"""Haar features: construction, evaluation, scale invariance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.facedet.features import (
    HaarFeature,
    Rect,
    evaluate_features,
    generate_feature_pool,
    window_stds,
    windows_to_integrals,
)


def test_rect_validation():
    with pytest.raises(ConfigurationError):
        Rect(0, 0, 0, 4, 1.0)  # zero height
    rect = Rect(0, 0, 4, 5, -1.0)
    assert rect.area == 20


def test_feature_rect_bounds_checked():
    with pytest.raises(ConfigurationError):
        HaarFeature(rects=(Rect(0, 0, 25, 4, 1.0),), window=20, kind="edge_h")


def test_pool_generation_size_and_determinism():
    a = generate_feature_pool(window=20, max_features=200, seed=1)
    b = generate_feature_pool(window=20, max_features=200, seed=1)
    assert len(a) == 200
    assert all(fa == fb for fa, fb in zip(a, b))


def test_pool_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        generate_feature_pool(kinds=("edge_h", "spiral"))


def test_pool_contains_all_kinds():
    pool = generate_feature_pool(window=20, max_features=500, seed=2)
    kinds = {f.kind for f in pool}
    assert kinds == {"edge_h", "edge_v", "line_h", "line_v", "quad"}


def test_feature_weights_balance_on_constant_window():
    """Every feature kind gives ~0 on a constant image (weighted rect
    means cancel)."""
    pool = generate_feature_pool(window=20, max_features=100, seed=3)
    windows = np.full((1, 20, 20), 0.5)
    integrals = windows_to_integrals(windows)
    values = evaluate_features(pool, integrals)
    assert np.allclose(values, 0.0, atol=1e-9)


def test_edge_feature_detects_edge():
    feature = HaarFeature(
        rects=(Rect(0, 0, 20, 10, 1.0), Rect(0, 10, 20, 20, -1.0)),
        window=20,
        kind="edge_h",
    )
    window = np.zeros((1, 20, 20))
    window[0, :, :10] = 1.0  # bright left half
    integrals = windows_to_integrals(window)
    value = evaluate_features([feature], integrals)[0, 0]
    assert value == pytest.approx(1.0)


def test_evaluate_features_std_normalization():
    feature = HaarFeature(
        rects=(Rect(0, 0, 20, 10, 1.0), Rect(0, 10, 20, 20, -1.0)),
        window=20,
        kind="edge_h",
    )
    window = np.zeros((1, 20, 20))
    window[0, :, :10] = 0.5
    integrals = windows_to_integrals(window)
    stds = window_stds(window)
    raw = evaluate_features([feature], integrals)[0, 0]
    normed = evaluate_features([feature], integrals, stds)[0, 0]
    assert normed == pytest.approx(raw / stds[0])


def test_scaled_rects_round_and_stay_positive():
    feature = HaarFeature(
        rects=(Rect(2, 3, 8, 9, 1.0),), window=20, kind="edge_h"
    )
    scaled = feature.scaled_rects(1.6)
    (y0, x0, y1, x1, w) = scaled[0]
    assert y1 > y0 and x1 > x0
    assert w == 1.0


@settings(max_examples=25, deadline=None)
@given(scale=st.integers(1, 4), seed=st.integers(0, 500))
def test_property_feature_value_scale_invariant(scale, seed):
    """Mean-based features are exactly invariant to integer upscaling:
    replicating every pixel s x s leaves all rectangle means unchanged."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(size=(20, 20))
    pool = generate_feature_pool(window=20, max_features=5, seed=seed)
    feature = pool[0]

    big = np.repeat(np.repeat(base, scale, axis=0), scale, axis=1)

    base_ii = windows_to_integrals(base[None])
    value_base = evaluate_features([feature], base_ii)[0, 0]

    big_ii = windows_to_integrals(big[None])[0]
    acc = 0.0
    for (y0, x0, y1, x1, w) in feature.scaled_rects(float(scale)):
        s = big_ii[y1, x1] - big_ii[y0, x1] - big_ii[y1, x0] + big_ii[y0, x0]
        acc += w * s / ((y1 - y0) * (x1 - x0))
    assert acc == pytest.approx(value_base, abs=1e-9)


def test_windows_to_integrals_shape_contract():
    with pytest.raises(ConfigurationError):
        windows_to_integrals(np.ones((20, 20)))
