"""Energy harvesting: Friis power, capacitor dynamics, duty cycling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.harvest.capacitor import Capacitor
from repro.harvest.harvester import RfHarvester
from repro.harvest.scheduler import DutyCycleSimulator, FrameTask


# ---------------------------------------------------------------------------
# Harvester
# ---------------------------------------------------------------------------
def test_harvester_validation():
    with pytest.raises(ConfigurationError):
        RfHarvester(eirp_w=0)
    with pytest.raises(ConfigurationError):
        RfHarvester(peak_efficiency=0)


def test_received_power_inverse_square():
    h = RfHarvester()
    assert h.received_power(1.0) == pytest.approx(4 * h.received_power(2.0))
    with pytest.raises(ConfigurationError):
        h.received_power(0.0)


def test_rectifier_threshold_behaviour():
    h = RfHarvester()
    assert h.rectifier_efficiency(h.sensitivity_w / 2) == 0.0
    assert 0 < h.rectifier_efficiency(h.sensitivity_w * 10) <= h.peak_efficiency


def test_harvested_power_realistic_regime():
    """WISP-class nodes harvest tens to hundreds of uW at 1-3 m."""
    h = RfHarvester()
    at_1m = h.harvested_power(1.0)
    at_3m = h.harvested_power(3.0)
    assert 100e-6 < at_1m < 5e-3
    assert 10e-6 < at_3m < at_1m


def test_max_range_consistent_with_power():
    h = RfHarvester()
    rng = h.max_range(50e-6)
    assert rng > 0
    assert h.harvested_power(rng) >= 50e-6
    with pytest.raises(ConfigurationError):
        h.max_range(0.0)


# ---------------------------------------------------------------------------
# Capacitor
# ---------------------------------------------------------------------------
def test_capacitor_validation():
    with pytest.raises(ConfigurationError):
        Capacitor(capacitance_f=0)
    with pytest.raises(ConfigurationError):
        Capacitor(v_max=1.0, v_min=2.0)
    with pytest.raises(ConfigurationError):
        Capacitor(v_initial=10.0)


def test_capacity_formula():
    cap = Capacitor(capacitance_f=1e-3, v_max=2.0, v_min=1.0)
    assert cap.capacity == pytest.approx(0.5 * 1e-3 * (4.0 - 1.0))


def test_cold_start_has_no_usable_energy():
    cap = Capacitor()
    assert cap.usable_energy == pytest.approx(0.0)
    assert not cap.can_supply(1e-6)


def test_charge_then_discharge_roundtrip():
    cap = Capacitor(capacitance_f=1e-3, v_max=3.0, v_min=1.0)
    cap.charge(power_w=1e-3, seconds=1.0)  # add 1 mJ
    assert cap.usable_energy == pytest.approx(1e-3, rel=1e-6)
    cap.discharge(0.5e-3)
    assert cap.usable_energy == pytest.approx(0.5e-3, rel=1e-6)


def test_charge_clamps_at_vmax():
    cap = Capacitor(capacitance_f=1e-6, v_max=2.0, v_min=1.0)
    cap.charge(1.0, 100.0)  # absurd energy
    assert cap.voltage == pytest.approx(2.0)


def test_discharge_overdraw_rejected():
    cap = Capacitor()
    with pytest.raises(ConfigurationError):
        cap.discharge(1.0)
    with pytest.raises(ConfigurationError):
        cap.discharge(-1.0)


@settings(max_examples=30, deadline=None)
@given(
    power=st.floats(1e-6, 1e-2),
    seconds=st.floats(0.01, 100.0),
)
def test_property_charge_conserves_energy(power, seconds):
    """Below the clamp, stored energy increases exactly by P*t."""
    cap = Capacitor(capacitance_f=10.0, v_max=5.0, v_min=1.0)  # huge cap
    before = 0.5 * cap.capacitance * cap.voltage**2
    cap.charge(power, seconds)
    after = 0.5 * cap.capacitance * cap.voltage**2
    assert after - before == pytest.approx(power * seconds, rel=1e-9)


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------
def test_frame_task_validation():
    with pytest.raises(ConfigurationError):
        FrameTask("bad", energy_j=-1.0, active_seconds=0.0)


def test_steady_state_fps_energy_balance():
    h = RfHarvester()
    sim = DutyCycleSimulator(h, Capacitor(), distance_m=2.0, sleep_power_w=0.0)
    task = FrameTask("t", energy_j=100e-6, active_seconds=0.0)
    expected = h.harvested_power(2.0) / 100e-6
    assert sim.steady_state_fps(task) == pytest.approx(expected, rel=1e-6)


def test_steady_state_capped_by_active_time():
    h = RfHarvester()
    sim = DutyCycleSimulator(h, Capacitor(), distance_m=0.3)
    task = FrameTask("t", energy_j=1e-9, active_seconds=0.5)
    assert sim.steady_state_fps(task) == pytest.approx(2.0)


def test_unsustainable_task_gives_zero_fps():
    h = RfHarvester()
    cap = Capacitor()
    sim = DutyCycleSimulator(h, cap, distance_m=2.0)
    too_big = FrameTask("t", energy_j=cap.capacity * 10, active_seconds=0.1)
    assert sim.steady_state_fps(too_big) == 0.0
    timeline = sim.run(too_big, duration_seconds=10.0)
    assert timeline.frames_completed == 0


def test_simulated_fps_approaches_steady_state():
    h = RfHarvester()
    sim = DutyCycleSimulator(h, Capacitor(), distance_m=2.0)
    task = FrameTask("t", energy_j=200e-6, active_seconds=0.05)
    timeline = sim.run(task, duration_seconds=300.0)
    assert timeline.frames_completed > 10
    assert timeline.achieved_fps == pytest.approx(
        sim.steady_state_fps(task), rel=0.15
    )


def test_run_respects_max_frames():
    h = RfHarvester()
    sim = DutyCycleSimulator(h, Capacitor(), distance_m=1.0)
    task = FrameTask("t", energy_j=50e-6, active_seconds=0.01)
    timeline = sim.run(task, duration_seconds=1000.0, max_frames=5)
    assert timeline.frames_completed == 5


def test_run_duration_validated():
    h = RfHarvester()
    sim = DutyCycleSimulator(h, Capacitor(), distance_m=1.0)
    with pytest.raises(ConfigurationError):
        sim.run(FrameTask("t", 1e-6, 0.0), duration_seconds=0.0)


def test_closer_reader_higher_fps():
    h = RfHarvester()
    task = FrameTask("t", energy_j=300e-6, active_seconds=0.05)
    near = DutyCycleSimulator(h, Capacitor(), 1.0).steady_state_fps(task)
    far = DutyCycleSimulator(h, Capacitor(), 3.0).steady_state_fps(task)
    assert near > far > 0
