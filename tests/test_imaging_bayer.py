"""Bayer mosaic/demosaic round trips."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.bayer import bayer_mosaic, demosaic_bilinear


def _smooth_rgb(h, w, seed=0):
    from repro.imaging.draw import smooth_texture

    rng = np.random.default_rng(seed)
    return np.stack(
        [smooth_texture(h, w, rng, scale=8) for _ in range(3)], axis=-1
    )


def test_mosaic_samples_correct_channels():
    rgb = np.zeros((4, 4, 3))
    rgb[..., 0] = 0.9  # R
    rgb[..., 1] = 0.5  # G
    rgb[..., 2] = 0.1  # B
    raw = bayer_mosaic(rgb)
    assert raw[0, 0] == 0.9  # R site
    assert raw[0, 1] == 0.5  # G site
    assert raw[1, 0] == 0.5  # G site
    assert raw[1, 1] == 0.1  # B site


def test_mosaic_shape_matches_input():
    rgb = _smooth_rgb(6, 8)
    assert bayer_mosaic(rgb).shape == (6, 8)


def test_demosaic_recovers_smooth_images():
    rgb = _smooth_rgb(32, 40, seed=1)
    recovered = demosaic_bilinear(bayer_mosaic(rgb))
    assert recovered.shape == rgb.shape
    assert np.abs(recovered - rgb).mean() < 0.01


def test_demosaic_preserves_sampled_pixels():
    rgb = _smooth_rgb(16, 16, seed=2)
    raw = bayer_mosaic(rgb)
    out = demosaic_bilinear(raw)
    # Where the sensor actually sampled a channel, the value is exact.
    assert out[0, 0, 0] == pytest.approx(raw[0, 0])
    assert out[1, 1, 2] == pytest.approx(raw[1, 1])
    assert out[0, 1, 1] == pytest.approx(raw[0, 1])


def test_demosaic_constant_image_is_exact():
    rgb = np.full((8, 8, 3), 0.4)
    out = demosaic_bilinear(bayer_mosaic(rgb))
    assert np.allclose(out, 0.4)


def test_demosaic_rejects_tiny_frames():
    with pytest.raises(ImageError):
        demosaic_bilinear(np.ones((1, 4)))


def test_mosaic_rejects_gray_input():
    with pytest.raises(ImageError):
        bayer_mosaic(np.ones((4, 4)))
