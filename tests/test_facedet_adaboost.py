"""AdaBoost stump training."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.facedet.adaboost import DecisionStump, adaboost_train, boosted_score


def _separable_data(n=100, seed=0):
    rng = np.random.default_rng(seed)
    labels = (rng.uniform(size=n) > 0.5).astype(float)
    # Feature 0: informative; features 1-2: noise.
    values = rng.uniform(size=(n, 3))
    values[:, 0] = labels + rng.normal(0, 0.1, size=n)
    return values, labels


def test_stump_predict_polarity():
    stump = DecisionStump(feature_index=0, threshold=0.5, polarity=1, alpha=1.0)
    values = np.array([0.2, 0.8])
    assert list(stump.predict(values)) == [1.0, 0.0]
    flipped = DecisionStump(feature_index=0, threshold=0.5, polarity=-1, alpha=1.0)
    assert list(flipped.predict(values)) == [0.0, 1.0]


def test_adaboost_picks_informative_feature():
    values, labels = _separable_data()
    stumps = adaboost_train(values, labels, n_rounds=1)
    assert stumps[0].feature_index == 0
    assert stumps[0].alpha > 0


def test_adaboost_training_error_decreases():
    rng = np.random.default_rng(1)
    n = 200
    labels = (rng.uniform(size=n) > 0.5).astype(float)
    values = rng.uniform(size=(n, 10))
    # Two weakly informative features: boosting should combine them.
    values[:, 0] += 0.3 * labels
    values[:, 1] -= 0.3 * labels

    def error(stumps):
        score = boosted_score(stumps, values)
        threshold = 0.5 * sum(s.alpha for s in stumps)
        pred = (score >= threshold).astype(float)
        return np.mean(pred != labels)

    few = adaboost_train(values, labels, n_rounds=1)
    many = adaboost_train(values, labels, n_rounds=15)
    assert error(many) <= error(few)


def test_adaboost_validates_inputs():
    values, labels = _separable_data()
    with pytest.raises(TrainingError):
        adaboost_train(values, labels[:10], n_rounds=1)
    with pytest.raises(TrainingError):
        adaboost_train(values, np.ones_like(labels), n_rounds=1)  # one class
    with pytest.raises(TrainingError):
        adaboost_train(values, labels, n_rounds=0)


def test_adaboost_custom_weights():
    values, labels = _separable_data()
    weights = np.ones_like(labels)
    stumps = adaboost_train(values, labels, n_rounds=2, initial_weights=weights)
    assert len(stumps) == 2
    with pytest.raises(TrainingError):
        adaboost_train(values, labels, 1, initial_weights=-weights)


def test_boosted_score_shape_contract():
    stumps = [DecisionStump(0, 0.5, 1, 1.0)]
    with pytest.raises(TrainingError):
        boosted_score(stumps, np.ones(5))


def test_alphas_weight_confident_stumps_higher():
    """A stump with lower weighted error receives a larger alpha."""
    rng = np.random.default_rng(2)
    n = 300
    labels = (rng.uniform(size=n) > 0.5).astype(float)
    strong = (labels + rng.normal(0, 0.25, n))[:, None]  # good, not perfect
    weak = (labels + rng.normal(0, 1.2, n))[:, None]
    alpha_strong = adaboost_train(strong, labels, n_rounds=1)[0].alpha
    alpha_weak = adaboost_train(weak, labels, n_rounds=1)[0].alpha
    assert alpha_strong > alpha_weak > 0
