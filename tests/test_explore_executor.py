"""Parallel sweep execution: determinism, fallbacks, error paths."""

import json

import pytest

from repro.core.sweep import parameter_sweep
from repro.errors import ConfigurationError
from repro.explore import SweepExecutor


def _square_row(x):
    """Module-level so the process backend can pickle it."""
    return {"x": x, "y": x * x, "parity": "even" if x % 2 == 0 else "odd"}


def _boom(x):
    raise ValueError(f"boom at {x}")


def _measure(a, b):
    return {"product": a * b}


def test_serial_is_default():
    executor = SweepExecutor()
    assert executor.is_serial
    assert executor.map(_square_row, range(5)) == [_square_row(x) for x in range(5)]


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("chunk_size", [None, 1, 7, 100])
def test_parallel_matches_serial_byte_for_byte(backend, chunk_size):
    """Acceptance: identical row ordering (and content) for any worker
    count, backend, and chunking."""
    items = list(range(50))
    serial = SweepExecutor().map(_square_row, items)
    parallel = SweepExecutor(
        workers=4, backend=backend, chunk_size=chunk_size
    ).map(_square_row, items)
    assert json.dumps(parallel) == json.dumps(serial)


def test_process_backend_falls_back_on_unpicklable_fn():
    executor = SweepExecutor(workers=2, backend="process")
    captured = []
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        result = executor.map(lambda x: captured.append(x) or x + 1, [1, 2, 3])
    assert result == [2, 3, 4]


class _LockHolder:
    """Unpicklable the TypeError way: holds a live resource."""

    def __init__(self):
        import threading

        self.lock = threading.Lock()

    def __call__(self, x):
        with self.lock:
            return {"x": x}


def test_process_backend_falls_back_on_live_resource():
    executor = SweepExecutor(workers=2, backend="process")
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        result = executor.map(_LockHolder(), [1, 2, 3])
    assert result == [{"x": 1}, {"x": 2}, {"x": 3}]


def test_worker_exceptions_propagate():
    with pytest.raises(ValueError, match="boom"):
        SweepExecutor().map(_boom, [1])
    with pytest.raises(ValueError, match="boom"):
        SweepExecutor(workers=2, backend="thread").map(_boom, [1, 2, 3])


CALL_LOG = []


def _log_then_attribute_error(x):
    CALL_LOG.append(x)
    if x == 2:
        raise AttributeError("fn bug, not a pool failure")
    return x


def test_fn_fallback_type_exceptions_are_not_misclassified(recwarn):
    """An fn raising AttributeError/OSError must propagate unchanged —
    no fallback warning, no serial re-execution of the whole sweep."""
    CALL_LOG.clear()
    executor = SweepExecutor(workers=2, backend="thread", chunk_size=1)
    with pytest.raises(AttributeError, match="fn bug"):
        executor.map(_log_then_attribute_error, [1, 2, 3, 4])
    assert not any(w.category is RuntimeWarning for w in recwarn.list)
    # Every item ran at most once (no doubled side effects).
    assert len(CALL_LOG) == len(set(CALL_LOG))
    with pytest.raises(OSError):
        SweepExecutor(workers=2, backend="process").map(_raise_oserror, [1, 2])


def _raise_oserror(x):
    raise OSError(f"fn io failure at {x}")


def test_executor_validation():
    with pytest.raises(ConfigurationError):
        SweepExecutor(backend="gpu")
    with pytest.raises(ConfigurationError):
        SweepExecutor(workers=-1)
    with pytest.raises(ConfigurationError):
        SweepExecutor(chunk_size=0)


def test_map_empty_and_single_item():
    executor = SweepExecutor(workers=8, backend="thread")
    assert executor.map(_square_row, []) == []
    assert executor.map(_square_row, [3]) == [_square_row(3)]


def test_parameter_sweep_parallel_identical_rows():
    serial = parameter_sweep(_measure, a=[1, 2, 3, 4], b=[10, 20, 30])
    threaded = parameter_sweep(
        _measure,
        executor=SweepExecutor(workers=3, backend="thread", chunk_size=2),
        a=[1, 2, 3, 4],
        b=[10, 20, 30],
    )
    multiproc = parameter_sweep(
        _measure,
        executor=SweepExecutor(workers=2, backend="process"),
        a=[1, 2, 3, 4],
        b=[10, 20, 30],
    )
    assert json.dumps(threaded.rows) == json.dumps(serial.rows)
    assert json.dumps(multiproc.rows) == json.dumps(serial.rows)


def test_parameter_sweep_parallel_validation_still_raises():
    with pytest.raises(ConfigurationError):
        parameter_sweep(
            lambda x: x,  # not a dict
            executor=SweepExecutor(workers=2, backend="thread"),
            x=[1, 2],
        )
