"""Image container contracts."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging import image as img


def test_ensure_gray_accepts_2d():
    arr = img.ensure_gray(np.zeros((4, 5)))
    assert arr.shape == (4, 5)
    assert arr.dtype == np.float64


def test_ensure_gray_rejects_color_and_empty():
    with pytest.raises(ImageError):
        img.ensure_gray(np.zeros((4, 5, 3)))
    with pytest.raises(ImageError):
        img.ensure_gray(np.zeros((0, 5)))


def test_ensure_color_shape_contract():
    arr = img.ensure_color(np.zeros((3, 4, 3)))
    assert arr.shape == (3, 4, 3)
    with pytest.raises(ImageError):
        img.ensure_color(np.zeros((3, 4)))
    with pytest.raises(ImageError):
        img.ensure_color(np.zeros((3, 4, 4)))


def test_as_gray_uses_luma_weights():
    rgb = np.zeros((2, 2, 3))
    rgb[..., 1] = 1.0  # pure green
    gray = img.as_gray(rgb)
    assert gray == pytest.approx(np.full((2, 2), 0.587))


def test_as_gray_passthrough_for_gray():
    arr = np.random.default_rng(0).uniform(size=(5, 5))
    assert np.array_equal(img.as_gray(arr), arr)


def test_clip01_bounds():
    out = img.clip01(np.array([[-1.0, 0.5], [2.0, 1.0]]))
    assert out.min() >= 0.0 and out.max() <= 1.0
    assert out[0, 1] == 0.5


def test_normalize_spans_unit_interval():
    arr = np.array([[2.0, 4.0], [6.0, 10.0]])
    out = img.normalize(arr)
    assert out.min() == 0.0 and out.max() == 1.0


def test_normalize_constant_image_is_zero():
    out = img.normalize(np.full((3, 3), 7.0))
    assert np.all(out == 0.0)


def test_to_uint8_rounding():
    out = img.to_uint8(np.array([[0.0, 0.5, 1.0]]).reshape(1, 3))
    assert out.dtype == np.uint8
    assert list(out[0]) == [0, 128, 255]


def test_pad_reflect_geometry_and_values():
    arr = np.arange(6, dtype=float).reshape(2, 3)
    out = img.pad_reflect(arr, 1)
    assert out.shape == (4, 5)
    assert out[0, 1] == arr[1, 0]  # reflected row


def test_pad_reflect_zero_is_copy():
    arr = np.ones((2, 2))
    out = img.pad_reflect(arr, 0)
    assert np.array_equal(out, arr)
    out[0, 0] = 5.0
    assert arr[0, 0] == 1.0  # not aliased


def test_pad_reflect_rejects_negative():
    with pytest.raises(ImageError):
        img.pad_reflect(np.ones((2, 2)), -1)


def test_image_energy_mean_square():
    assert img.image_energy(np.full((2, 2), 0.5)) == pytest.approx(0.25)
