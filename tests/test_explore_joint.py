"""Unit coverage for the joint-fleet layer (``repro.explore.joint``):
fleet validation, candidate compression, the capacity-bounded search,
the catalog spec expansion, and the per-member report."""

from __future__ import annotations

import json

import pytest

from repro.core.block import Block, Implementation
from repro.core.pipeline import InCameraPipeline
from repro.core.report import JOINT_SUMMARY_COLUMNS, joint_fleet_summary_table
from repro.errors import ConfigurationError, PipelineError
from repro.explore import (
    JointCandidate,
    JointCandidateSink,
    JointFleetScenario,
    JointFleetSpec,
    Scenario,
    ShortestScenarioFirst,
    WeightedCompletionTime,
    best_row,
    explore,
    explore_joint,
    joint_candidates,
    load_builtin,
    member_demand_bps,
    run_campaign,
    search_joint_assignment,
    shared_capacity_prefix_pruner,
    shared_capacity_suffix_bounds,
)
from repro.explore.enumerate import PRUNED_SUBTREE
from repro.hw.network import LinkModel
from repro.units import bytes_to_bits


def build_pipeline(n_blocks: int = 3, fps_offset: float = 0.0) -> InCameraPipeline:
    blocks = []
    for i in range(n_blocks):
        implementations = {
            platform: Implementation(
                platform,
                fps=50.0 - 4.0 * i + j + fps_offset,
                energy_per_frame=1e-6 * (j + 1),
                active_seconds=1e-3,
            )
            for j, platform in enumerate(("asic", "cpu", "fpga"))
        }
        blocks.append(
            Block(
                name=f"b{i}",
                output_bytes=900.0 - 250.0 * i,
                implementations=implementations,
            )
        )
    return InCameraPipeline(name="jp", sensor_bytes=1200.0, blocks=tuple(blocks))


LINK = LinkModel(name="shared", raw_bps=400_000.0)


def build_member(name: str, target_fps: float = 30.0, **overrides) -> Scenario:
    params = {
        "name": name,
        "pipeline": build_pipeline(),
        "link": LINK,
        "target_fps": target_fps,
    }
    params.update(overrides)
    return Scenario(**params)


def build_fleet(capacity_bps: float, n: int = 2, **fleet_overrides):
    members = tuple(build_member(f"cam{i}") for i in range(n))
    return JointFleetScenario(
        name="fleet", members=members, capacity_bps=capacity_bps, **fleet_overrides
    )


# -- JointFleetScenario validation ----------------------------------------


def test_fleet_requires_members_and_positive_capacity():
    with pytest.raises(ConfigurationError, match="at least one member"):
        JointFleetScenario(name="f", members=(), capacity_bps=1.0)
    with pytest.raises(ConfigurationError, match="capacity_bps"):
        build_fleet(0.0)
    with pytest.raises(ConfigurationError, match="capacity_bps"):
        build_fleet(float("inf"))
    with pytest.raises(ConfigurationError, match="Scenario instances"):
        JointFleetScenario(name="f", members=("nope",), capacity_bps=1.0)


def test_fleet_requires_unique_targeted_throughput_members():
    member = build_member("cam0")
    with pytest.raises(ConfigurationError, match="unique"):
        JointFleetScenario(name="f", members=(member, member), capacity_bps=1.0)
    untargeted = build_member("cam1", target_fps=None)
    with pytest.raises(ConfigurationError, match="target_fps"):
        JointFleetScenario(name="f", members=(untargeted,), capacity_bps=1.0)
    energy = Scenario(
        name="cam2",
        pipeline=build_pipeline(),
        link=LINK,
        domain="energy",
        energy_budget_j=1e-3,
    )
    with pytest.raises(ConfigurationError, match="throughput-domain"):
        JointFleetScenario(name="f", members=(energy,), capacity_bps=1.0)


def test_fleet_weights_validated_and_mapped():
    with pytest.raises(ConfigurationError, match="align with members"):
        build_fleet(1e6, weights=(1.0,))
    with pytest.raises(ConfigurationError, match="positive"):
        build_fleet(1e6, weights=(1.0, 0.0))
    fleet = build_fleet(1e6, weights=(2.0, 3.0))
    assert fleet.weight_map() == {"cam0": 2.0, "cam1": 3.0}
    assert build_fleet(1e6).weight_map() is None


def test_solo_demand_and_uncontended():
    fleet = build_fleet(1.0)
    # Worst case per member is the raw-offload depth: sensor payload at
    # the target rate; two identical members double it.
    per_member = bytes_to_bits(1200.0) * 30.0
    assert fleet.solo_demand_bps() == pytest.approx(2 * per_member)
    assert not fleet.is_uncontended()
    assert build_fleet(2 * per_member).is_uncontended()


# -- candidate compression -------------------------------------------------


def test_joint_candidates_one_per_depth_first_max_tie_rule():
    member = build_member("cam0")
    rows = explore(member).rows
    candidates = joint_candidates(member, rows)
    depths = [candidate.depth for candidate in candidates]
    assert depths == sorted(set(depths))  # depth-major enumeration order
    for candidate in candidates:
        depth_rows = [
            row
            for row in rows
            if row["feasible"] and row["n_in_camera"] == candidate.depth
        ]
        assert candidate.row is best_row(depth_rows, "total_fps")
        assert candidate.fps == candidate.row["total_fps"]
        assert candidate.demand_bps == member_demand_bps(member, candidate.row)


def test_joint_candidates_drop_infeasible_rows():
    member = build_member("cam0", target_fps=1e9)
    rows = explore(member).rows
    assert joint_candidates(member, rows) == []


# -- shared-capacity bounds and pruner ------------------------------------


def test_suffix_bounds_are_suffix_sums_of_minima():
    demands = [[5.0, 3.0], [10.0], [2.0, 7.0, 1.0]]
    assert shared_capacity_suffix_bounds(demands) == [14.0, 11.0, 1.0, 0.0]
    with pytest.raises(ValueError, match="no candidate splits"):
        shared_capacity_suffix_bounds([[1.0], []])


def test_capacity_pruner_cuts_exactly_the_overflowing_prefixes():
    demands = [[5.0, 3.0], [10.0, 4.0]]
    pruner = shared_capacity_prefix_pruner(demands, capacity_bps=8.0)
    # Member 0 at 5.0: even the cheapest completion (4.0) overflows.
    assert pruner.extend(0, 0, pruner.initial) is PRUNED_SUBTREE
    state = pruner.extend(0, 1, pruner.initial)
    assert state == 3.0
    assert pruner.extend(1, 0, state) is PRUNED_SUBTREE
    assert pruner.extend(1, 1, state) == 7.0


# -- the joint search ------------------------------------------------------


def candidate(fps: float, demand: float, depth: int = 0) -> JointCandidate:
    return JointCandidate(
        row={"config": f"c{depth}", "total_fps": fps},
        depth=depth,
        fps=fps,
        demand_bps=demand,
    )


def test_search_maximizes_the_minimum_member_fps():
    candidates = [
        [candidate(50.0, 6.0), candidate(40.0, 2.0)],
        [candidate(45.0, 5.0), candidate(30.0, 1.0)],
    ]
    choice, value, demand, counters = search_joint_assignment(candidates, 11.0)
    assert choice == (0, 0)
    assert value == 45.0
    assert demand == 11.0
    # Tighter capacity forces the cheaper splits.
    choice, value, demand, _ = search_joint_assignment(candidates, 7.0)
    assert choice == (1, 0)
    assert (value, demand) == (40.0, 7.0)
    choice, value, demand, _ = search_joint_assignment(candidates, 3.0)
    assert choice == (1, 1)
    assert (value, demand) == (30.0, 3.0)


def test_search_reports_infeasibility_and_counters():
    candidates = [[candidate(50.0, 6.0)], [candidate(45.0, 5.0)]]
    choice, value, demand, counters = search_joint_assignment(candidates, 10.0)
    assert choice is None and value == float("-inf") and demand == 0.0
    assert counters["n_capacity_pruned"] == 1
    assert counters["n_searched"] == 0
    empty_choice, _, _, empty_counters = search_joint_assignment(
        [[candidate(50.0, 6.0)], []], 100.0
    )
    assert empty_choice is None
    assert empty_counters["n_candidate_space"] == 0


def test_search_ties_break_to_the_first_attaining_assignment():
    # Both of member 0's candidates leave the min at member 1's 20.0;
    # the first (DFS order) must win.
    candidates = [
        [candidate(50.0, 1.0, depth=0), candidate(60.0, 1.0, depth=1)],
        [candidate(20.0, 1.0)],
    ]
    choice, value, _, _ = search_joint_assignment(candidates, 100.0)
    assert choice == (0, 0)
    assert value == 20.0


# -- explore_joint ---------------------------------------------------------


def test_explore_joint_rejects_non_fleets():
    with pytest.raises(ConfigurationError, match="JointFleetScenario"):
        explore_joint(build_member("cam0"))


def test_explore_joint_summary_and_utilization():
    fleet = build_fleet(build_fleet(1.0).solo_demand_bps())
    result = explore_joint(fleet)
    assert result.feasible
    assert 0.0 < result.utilization <= 1.0
    rows = result.summary_rows()
    assert [row["member"] for row in rows] == ["cam0", "cam1"]
    for row in rows:
        assert row["joint_config"] != "-"
        assert row["capacity_share"] == row["demand_bps"] / fleet.capacity_bps
    table = result.to_table()
    assert table.columns == list(JOINT_SUMMARY_COLUMNS)
    assert "joint fleet" in table.title


def test_explore_joint_infeasible_summary_renders_dashes():
    fleet = build_fleet(1.0)
    result = explore_joint(fleet)
    assert not result.feasible
    assert result.best_assignment is None
    assert result.utilization is None
    for row in result.summary_rows():
        assert row["joint_config"] == "-"
    assert "infeasible" in result.to_table().title


def test_explore_joint_dedup_shares_member_evaluations():
    # Members share a pipeline object -> one dedup group under the
    # default dedup=True: the campaign computes one member's states and
    # finalizes the other from them.
    pipeline = build_pipeline()
    members = tuple(
        build_member(f"cam{i}", pipeline=pipeline) for i in range(3)
    )
    fleet = JointFleetScenario(
        name="trio", members=members, capacity_bps=3 * bytes_to_bits(1200.0) * 30.0
    )
    result = explore_joint(fleet)
    stats = result.campaign.cache_stats
    assert stats["evaluations_skipped"] > 0
    assert result.feasible
    solo = explore(members[0])
    assert json.dumps(result.campaign["cam0"].result.rows) == json.dumps(solo.rows)


def test_explore_joint_collect_false_is_byte_identical():
    """The export-only path (streaming JointCandidateSink, frontier
    tracking off) must produce byte-identical candidates, optimum and
    counters — only the collected member results are absent."""
    pipeline = build_pipeline()
    members = tuple(
        build_member(f"cam{i}", pipeline=pipeline, target_fps=20.0 + 5.0 * i)
        for i in range(3)
    )
    base = JointFleetScenario(name="trio", members=members, capacity_bps=1.0)
    from dataclasses import replace

    for scale in (0.4, 0.7, 1.0):
        fleet = replace(
            base, capacity_bps=max(1.0, scale * base.solo_demand_bps())
        )
        collected = explore_joint(fleet)
        streamed = explore_joint(fleet, collect=False)
        assert streamed.best_choice == collected.best_choice
        assert streamed.best_fleet_fps == collected.best_fleet_fps
        assert streamed.best_demand_bps == collected.best_demand_bps
        assert streamed.counters == collected.counters
        assert json.dumps(
            [[c.row for c in member] for member in streamed.candidates]
        ) == json.dumps(
            [[c.row for c in member] for member in collected.candidates]
        )
        assert streamed.campaign[members[0].name].result is None
        assert collected.campaign[members[0].name].result is not None


def test_joint_candidate_sink_matches_batch_compression():
    member = build_member("cam0")
    rows = explore(member).rows
    sink = JointCandidateSink(member)
    # Feed in uneven chunks to exercise cross-chunk first-max merging.
    for start in range(0, len(rows), 7):
        sink.write_rows(rows[start : start + 7])
    assert json.dumps(
        [candidate.row for candidate in sink.candidates()]
    ) == json.dumps(
        [candidate.row for candidate in joint_candidates(member, rows)]
    )


def test_campaign_frontier_opt_out_skips_pareto():
    from repro.explore import Campaign, MemorySink

    members = [build_member("cam0"), build_member("cam1")]
    sinks = {m.name: MemorySink() for m in members}
    campaign = Campaign(members).run(
        sinks=sinks, collect=False, frontier=False
    )
    run = campaign["cam0"]
    assert run.n_evaluated == members[0].count_configs()
    assert run.frontier is None
    with pytest.raises(PipelineError, match="frontier tracking disabled"):
        run.pareto()
    with pytest.raises(PipelineError, match="frontier tracking disabled"):
        run.pareto_size
    # Tracked export-only and collected runs still answer.
    tracked = Campaign(members).run(
        sinks={m.name: MemorySink() for m in members}, collect=False
    )
    collected = Campaign(members).run()
    assert tracked["cam0"].pareto_size == collected["cam0"].pareto_size
    assert json.dumps(tracked["cam0"].pareto()) == json.dumps(
        collected["cam0"].pareto()
    )


def test_joint_result_weighted_completion_defaults_to_fleet_weights():
    fleet = build_fleet(1e9, weights=(3.0, 1.0))
    result = explore_joint(fleet)
    assert result.weighted_completion_seconds() == pytest.approx(
        result.campaign.weighted_completion_seconds({"cam0": 3.0, "cam1": 1.0})
    )
    assert result.weighted_completion_seconds({"cam0": 1.0}) >= 0.0


# -- CampaignResult.weighted_completion_seconds ---------------------------


def test_weighted_completion_seconds_validates_and_averages():
    campaign = run_campaign([build_member("cam0"), build_member("cam1")])
    uniform = campaign.weighted_completion_seconds()
    by_hand = sum(run.wall_seconds for run in campaign) / len(campaign)
    assert uniform == pytest.approx(by_hand)
    with pytest.raises(ConfigurationError, match="unknown scenarios"):
        campaign.weighted_completion_seconds({"ghost": 1.0})
    with pytest.raises(ConfigurationError, match="positive"):
        campaign.weighted_completion_seconds({"cam0": -1.0})
    weighted = campaign.weighted_completion_seconds({"cam0": 100.0})
    assert weighted >= 0.0


# -- WeightedCompletionTime policy ----------------------------------------


def test_weighted_completion_policy_orders_by_weight_per_config():
    small = build_member("small", pipeline=build_pipeline(2))
    large = build_member("large", pipeline=build_pipeline(4))
    policy = WeightedCompletionTime()
    policy.start([large, small])
    # Equal weights degrade to shortest-first order.
    shortest = ShortestScenarioFirst()
    shortest.start([large, small])
    live = [0, 1]
    assert policy.select(live) == shortest.select(live) == 1
    # A heavy-enough weight pulls the large scenario ahead.
    heavy = WeightedCompletionTime({"large": 1e6})
    heavy.start([large, small])
    assert heavy.select(live) == 0
    # Run-to-completion: the selection repeats while the pick is live.
    assert heavy.select(live) == 0
    assert heavy.select([1]) == 1


def test_weighted_completion_policy_validates_weights():
    with pytest.raises(ConfigurationError, match="positive"):
        WeightedCompletionTime({"x": 0.0})
    with pytest.raises(ConfigurationError, match="default_weight"):
        WeightedCompletionTime(default_weight=-1.0)
    policy = WeightedCompletionTime({"ghost": 2.0})
    with pytest.raises(ConfigurationError, match="unknown scenarios"):
        policy.start([build_member("cam0")])


def test_weighted_completion_policy_runs_a_campaign():
    members = [build_member("cam0"), build_member("cam1")]
    solo = [explore(member) for member in members]
    campaign = run_campaign(
        members, chunk_size=3, policy="weighted_completion"
    )
    for member, result in zip(members, solo):
        assert json.dumps(campaign[member.name].result.rows) == json.dumps(
            result.rows
        )


# -- catalog JointFleetSpec ------------------------------------------------


def test_build_joint_fleets_expands_per_shared_link():
    catalog = load_builtin()
    entries = tuple(catalog.names("throughput")[:2])
    spec = JointFleetSpec(entries=entries, shared_links=("25g", "wifi"))
    fleets = catalog.build_joint_fleets(spec)
    assert [fleet.name for fleet in fleets] == ["joint@25GbE", "joint@wifi"]
    for fleet, link_key in zip(fleets, ("25g", "wifi")):
        assert len(fleet.members) == len(entries)
        from repro.explore.catalog import LINKS

        link = LINKS[link_key]
        assert fleet.capacity_bps == link.goodput_bps
        for member in fleet.members:
            assert member.link == link
            assert member.name.endswith(f"@{link.name}")


def test_build_joint_fleets_validates_spec():
    catalog = load_builtin()
    throughput = catalog.names("throughput")[0]
    energy = catalog.names("energy")[0]
    with pytest.raises(ConfigurationError, match="at least one entry"):
        catalog.build_joint_fleets(
            JointFleetSpec(entries=(), shared_links=("25g",))
        )
    with pytest.raises(ConfigurationError, match="shared link"):
        catalog.build_joint_fleets(
            JointFleetSpec(entries=(throughput,), shared_links=())
        )
    with pytest.raises(ConfigurationError, match="throughput"):
        catalog.build_joint_fleets(
            JointFleetSpec(entries=(energy,), shared_links=("25g",))
        )


def test_build_joint_fleets_capacity_and_weights_forwarded():
    catalog = load_builtin()
    entry = catalog.names("throughput")[0]
    spec = JointFleetSpec(
        entries=(entry,),
        shared_links=("25g",),
        capacity_bps=123.0,
        weights=(2.0,),
    )
    (fleet,) = catalog.build_joint_fleets(spec)
    assert fleet.capacity_bps == 123.0
    assert fleet.weights == (2.0,)


# -- report ----------------------------------------------------------------


def test_joint_summary_table_appends_extra_columns_in_order():
    rows = [
        {key: 1 for key in JOINT_SUMMARY_COLUMNS} | {"extra": "x"},
        {key: 2 for key in JOINT_SUMMARY_COLUMNS} | {"other": "y"},
    ]
    table = joint_fleet_summary_table(rows)
    assert table.columns == list(JOINT_SUMMARY_COLUMNS) + ["extra", "other"]
    assert table.title == "joint fleet summary"


def test_best_row_first_max_and_empty():
    rows = [{"m": 1.0}, {"m": 3.0}, {"m": 3.0}]
    assert best_row(rows, "m") is rows[1]
    assert best_row(rows, "m", maximize=False) is rows[0]
    with pytest.raises(PipelineError, match="no rows"):
        best_row([], "m")
