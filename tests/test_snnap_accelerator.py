"""Accelerator simulation: functional equality and energy accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.mlp import MLP
from repro.nn.quantize import QuantizedMLP
from repro.snnap.accelerator import SnnapAccelerator


@pytest.fixture(scope="module")
def model():
    return MLP((64, 8, 1), seed=9)


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(10).uniform(0, 1, size=(6, 64))


def test_pe_count_validated(model):
    with pytest.raises(ConfigurationError):
        SnnapAccelerator(model, n_pes=0)


def test_outputs_bit_exact_with_quantized_model(model, batch):
    acc = SnnapAccelerator(model, n_pes=8, data_bits=8)
    q = QuantizedMLP(model, data_bits=8)
    run = acc.run(batch)
    assert np.array_equal(run.outputs, q.predict_proba(batch))


def test_systolic_trace_matches_vectorized(model, batch):
    """The explicit PE-by-PE walk and the vectorized path agree exactly,
    for PE counts that divide, exceed and straddle the layer widths."""
    for n_pes in (1, 3, 8, 16):
        acc = SnnapAccelerator(model, n_pes=n_pes, data_bits=8)
        run = acc.run(batch)
        trace = acc.run_systolic_trace(batch[0])
        assert np.allclose(run.outputs[0], trace)


def test_energy_report_has_all_components(model):
    acc = SnnapAccelerator(model, n_pes=8)
    report = acc.run(np.zeros((1, 64))).energy_per_sample
    expected = {
        "pe_mac",
        "weight_sram",
        "input_buffer",
        "pe_idle",
        "sigmoid",
        "control",
        "leakage",
    }
    assert expected <= set(report.components)
    assert report.total > 0


def test_energy_independent_of_batch_content(model, batch):
    """The model is data-independent (fixed schedule): same energy for
    any input."""
    acc = SnnapAccelerator(model, n_pes=8)
    a = acc.run(batch).energy_per_sample.total
    b = acc.run(np.zeros((2, 64))).energy_per_sample.total
    assert a == pytest.approx(b)


def test_idle_energy_appears_only_with_excess_pes(model):
    fit = SnnapAccelerator(model, n_pes=8)
    excess = SnnapAccelerator(model, n_pes=32)
    fit_idle = fit.run(np.zeros((1, 64))).energy_per_sample.components["pe_idle"]
    excess_idle = excess.run(np.zeros((1, 64))).energy_per_sample.components["pe_idle"]
    assert excess_idle > fit_idle


def test_input_buffer_energy_grows_with_fewer_pes(model):
    """Fewer PEs re-stream the input vector once per group."""
    few = SnnapAccelerator(model, n_pes=2)
    fit = SnnapAccelerator(model, n_pes=8)
    few_in = few.run(np.zeros((1, 64))).energy_per_sample.components["input_buffer"]
    fit_in = fit.run(np.zeros((1, 64))).energy_per_sample.components["input_buffer"]
    assert few_in > fit_in


def test_16bit_costs_more_power_than_8bit(model):
    p8 = SnnapAccelerator(model, n_pes=8, data_bits=8).inference_power()
    p16 = SnnapAccelerator(model, n_pes=8, data_bits=16).inference_power()
    assert p16 > p8


def test_sub_milliwatt_at_capture_rate():
    """The paper's headline: the NN accelerator fits a sub-mW budget at
    the WISPCam's 1 FPS capture rate."""
    model = MLP((400, 8, 1), seed=0)
    acc = SnnapAccelerator(model, n_pes=8, data_bits=8)
    assert acc.duty_cycled_power(1.0) < 1e-3


def test_duty_cycle_rejects_unsustainable_rate(model):
    acc = SnnapAccelerator(model, n_pes=1)
    with pytest.raises(ConfigurationError):
        acc.duty_cycled_power(1e9)


def test_cycles_per_sample_match_schedule(model, batch):
    acc = SnnapAccelerator(model, n_pes=4)
    run = acc.run(batch)
    assert run.cycles_per_sample == acc.schedule.total_cycles
    assert run.seconds_per_sample(30e6) == pytest.approx(
        acc.schedule.total_cycles / 30e6
    )
