"""VR data-size model (Fig. 9) and platform throughputs (Fig. 10 bars)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.fpga import FpgaDesign, VIRTEX_ULTRASCALE_PLUS
from repro.hw.network import ETHERNET_25G
from repro.vr.blocks import RigDataModel
from repro.vr.platforms import (
    B3Workload,
    arm_block_fps,
    b3_cpu_fps,
    b3_fpga_fps,
    b3_gpu_fps,
    b4_fps,
)


@pytest.fixture(scope="module")
def model():
    return RigDataModel()


def test_model_validation():
    with pytest.raises(ConfigurationError):
        RigDataModel(n_cameras=3)
    with pytest.raises(ConfigurationError):
        RigDataModel(width=0)


def test_output_chain_shape(model):
    """The Figure 9 shape: B1 expands, B2 is the largest, B4 the smallest."""
    sizes = {o.block: o.bytes_per_frame for o in model.outputs()}
    assert sizes["B1"] > sizes["sensor"]
    assert sizes["B2"] == max(sizes.values())
    assert sizes["B4"] == min(sizes.values())
    assert sizes["B3"] < sizes["B2"]


def test_sensor_rate_exceeds_32gbps(model):
    """Abstract: 'processing over 32 Gb/s of data'."""
    assert model.sensor_bit_rate(30.0) > 32e9


def test_comm_fps_ladder_matches_paper(model):
    """The recovered Figure 10 communication bars at 25 GbE."""
    fps = {
        o.block: ETHERNET_25G.fps_for_bytes(o.bytes_per_frame)
        for o in model.outputs()
    }
    assert fps["sensor"] == pytest.approx(15.8, abs=0.3)
    assert fps["B1"] == pytest.approx(5.27, abs=0.15)
    assert fps["B2"] == pytest.approx(3.95, abs=0.15)
    assert fps["B3"] == pytest.approx(11.2, abs=0.4)
    assert fps["B4"] == pytest.approx(31.6, abs=0.8)


def test_only_b4_supports_realtime_upload(model):
    for output in model.outputs():
        fps = ETHERNET_25G.fps_for_bytes(output.bytes_per_frame)
        if output.block == "B4":
            assert fps >= 30.0
        else:
            assert fps < 30.0


def test_output_after_validation(model):
    assert model.output_after("sensor") == model.sensor_bytes()
    assert model.output_after("B3") == model.b3_bytes()
    with pytest.raises(ConfigurationError):
        model.output_after("B9")


def test_workload_geometry(model):
    w = B3Workload.from_data_model(model, sigma_spatial=8)
    assert w.n_pairs == 8
    # 2160/8 x 3840/8 x 32 range bins.
    assert w.grid_vertices_per_pair == 270 * 480 * 32
    assert w.vertex_iters_total == w.vertex_iters_per_pair * 8


def test_workload_sigma_validated(model):
    with pytest.raises(ConfigurationError):
        B3Workload.from_data_model(model, sigma_spatial=0)


def test_platform_bars_match_paper(model):
    """Compute bars of Figure 10 (within modeling tolerance)."""
    w = B3Workload.from_data_model(model)
    assert arm_block_fps("B1", model).fps == pytest.approx(174, rel=0.05)
    assert arm_block_fps("B2", model).fps == pytest.approx(100, rel=0.05)
    assert b3_cpu_fps(w).fps == pytest.approx(0.09, abs=0.02)
    assert b3_gpu_fps(w).fps == pytest.approx(3.95, rel=0.15)
    assert b3_fpga_fps(w).fps == pytest.approx(31.6, rel=0.10)


def test_platform_ordering_cpu_gpu_fpga(model):
    w = B3Workload.from_data_model(model)
    cpu = b3_cpu_fps(w).fps
    gpu = b3_gpu_fps(w).fps
    fpga = b3_fpga_fps(w).fps
    assert cpu < gpu < fpga
    assert fpga > 30.0 > gpu


def test_fpga_scaling_with_bigger_device(model):
    w = B3Workload.from_data_model(model)
    zynq = b3_fpga_fps(w).fps
    big = b3_fpga_fps(w, design=FpgaDesign(VIRTEX_ULTRASCALE_PLUS)).fps
    assert big > zynq * 30  # 682 vs 11 CUs


def test_b4_marginal_on_accelerated_platforms(model):
    assert b4_fps("gpu", model).fps > 60.0
    assert b4_fps("fpga", model).fps > 30.0
    with pytest.raises(ConfigurationError):
        b4_fps("tpu", model)


def test_arm_block_unknown_rejected(model):
    with pytest.raises(ConfigurationError):
        arm_block_fps("B3", model)


def test_fpga_pair_count_validated(model):
    w = B3Workload.from_data_model(model)
    with pytest.raises(ConfigurationError):
        b3_fpga_fps(w, fpgas_per_pair=0)
