"""Layered scenes: structure validation and rendering semantics."""

import numpy as np
import pytest

from repro.datasets.scenes import Layer, LayeredScene, random_scene
from repro.errors import DatasetError


def _flat_layer(h, w, value, depth, mask=None):
    texture = np.full((h, w), value)
    mask = np.ones((h, w)) if mask is None else mask
    return Layer(texture=texture, mask=mask, depth=depth)


def test_layer_validation():
    with pytest.raises(DatasetError):
        Layer(texture=np.ones((4, 4)), mask=np.ones((4, 5)), depth=1.0)
    with pytest.raises(DatasetError):
        Layer(texture=np.ones((4, 4)), mask=np.ones((4, 4)), depth=0.0)


def test_scene_requires_back_to_front_order():
    bg = _flat_layer(8, 8, 0.5, 10.0)
    near = _flat_layer(8, 8, 0.9, 2.0)
    LayeredScene(layers=(bg, near), focal_baseline=10.0)  # correct order
    with pytest.raises(DatasetError):
        LayeredScene(layers=(near, bg), focal_baseline=10.0)


def test_scene_requires_opaque_background():
    mask = np.ones((8, 8))
    mask[0, 0] = 0.0
    bg = Layer(texture=np.ones((8, 8)), mask=mask, depth=10.0)
    with pytest.raises(DatasetError):
        LayeredScene(layers=(bg,), focal_baseline=10.0)


def test_disparity_inverse_to_depth():
    bg = _flat_layer(8, 8, 0.5, 10.0)
    scene = LayeredScene(layers=(bg,), focal_baseline=30.0)
    assert scene.disparity_of(bg) == pytest.approx(3.0)


def test_render_reference_view_composition():
    h, w = 10, 20
    bg = _flat_layer(h, w, 0.2, 10.0)
    mask = np.zeros((h, w))
    mask[3:7, 8:14] = 1.0
    fg = Layer(texture=np.full((h, w), 0.9), mask=mask, depth=2.0)
    scene = LayeredScene(layers=(bg, fg), focal_baseline=10.0)
    image, disparity = scene.render(0.0)
    assert image[5, 10] == pytest.approx(0.9)
    assert image[0, 0] == pytest.approx(0.2)
    assert disparity[5, 10] == pytest.approx(5.0)
    assert disparity[0, 0] == pytest.approx(1.0)


def test_render_shifted_view_moves_foreground():
    h, w = 10, 30
    bg = _flat_layer(h, w, 0.2, 1e6)  # effectively zero disparity
    mask = np.zeros((h, w))
    mask[:, 14:18] = 1.0
    fg = Layer(texture=np.full((h, w), 0.9), mask=mask, depth=2.0)
    scene = LayeredScene(layers=(bg, fg), focal_baseline=8.0)
    right, _ = scene.render(1.0)
    # Foreground disparity = 4 px: the bar moves 4 px to the left.
    assert right[5, 12] == pytest.approx(0.9, abs=1e-6)
    assert right[5, 16] == pytest.approx(0.2, abs=1e-6)


def test_random_scene_structure():
    scene = random_scene(40, 60, n_objects=3, seed=0)
    assert len(scene.layers) == 4
    assert scene.shape == (40, 60)
    image, disparity = scene.render()
    assert image.shape == (40, 60)
    assert disparity.min() > 0.0


def test_random_scene_determinism():
    a = random_scene(30, 30, seed=5).render()
    b = random_scene(30, 30, seed=5).render()
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[1], b[1])


def test_random_scene_rejects_negative_objects():
    with pytest.raises(DatasetError):
        random_scene(20, 20, n_objects=-1)
