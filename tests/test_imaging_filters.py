"""Linear filters: kernels, conservation, and edge behaviour."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.filters import (
    box_filter,
    convolve_separable,
    gaussian_filter,
    gaussian_kernel1d,
    gradient_magnitude,
    sobel,
)


def test_gaussian_kernel_normalized_and_symmetric():
    k = gaussian_kernel1d(1.5)
    assert k.sum() == pytest.approx(1.0)
    assert np.allclose(k, k[::-1])
    assert len(k) == 2 * int(np.ceil(4.5)) + 1


def test_gaussian_kernel_rejects_bad_sigma():
    with pytest.raises(ImageError):
        gaussian_kernel1d(0.0)


def test_gaussian_kernel_radius_override():
    assert len(gaussian_kernel1d(1.0, radius=2)) == 5


def test_convolve_separable_identity():
    arr = np.random.default_rng(0).uniform(size=(6, 7))
    out = convolve_separable(arr, np.array([1.0]), np.array([1.0]))
    assert np.allclose(out, arr)


def test_convolve_separable_rejects_even_kernels():
    arr = np.ones((5, 5))
    with pytest.raises(ImageError):
        convolve_separable(arr, np.array([0.5, 0.5]), np.array([1.0]))


def test_gaussian_preserves_constant_image():
    arr = np.full((10, 10), 0.6)
    out = gaussian_filter(arr, 2.0)
    assert np.allclose(out, 0.6)


def test_gaussian_reduces_variance():
    rng = np.random.default_rng(1)
    arr = rng.uniform(size=(32, 32))
    out = gaussian_filter(arr, 1.5)
    assert out.std() < arr.std()


def test_box_filter_is_local_mean():
    arr = np.arange(25, dtype=float).reshape(5, 5)
    out = box_filter(arr, 1)
    assert out[2, 2] == pytest.approx(arr[1:4, 1:4].mean())


def test_box_filter_rejects_bad_radius():
    with pytest.raises(ImageError):
        box_filter(np.ones((4, 4)), 0)


def test_sobel_detects_vertical_edge():
    arr = np.zeros((8, 8))
    arr[:, 4:] = 1.0
    gy, gx = sobel(arr)
    assert np.abs(gx).max() > 0.4
    assert np.abs(gy).max() == pytest.approx(0.0, abs=1e-9)


def test_sobel_detects_horizontal_edge():
    arr = np.zeros((8, 8))
    arr[4:, :] = 1.0
    gy, gx = sobel(arr)
    assert np.abs(gy).max() > 0.4
    assert np.abs(gx).max() == pytest.approx(0.0, abs=1e-9)


def test_gradient_magnitude_nonnegative_and_zero_on_flat():
    flat = np.full((6, 6), 0.3)
    assert np.allclose(gradient_magnitude(flat), 0.0)
    edge = np.zeros((6, 6))
    edge[:, 3:] = 1.0
    assert gradient_magnitude(edge).max() > 0.0
