"""Bilateral-space stereo: matching, refinement, work accounting."""

import numpy as np
import pytest

from repro.bilateral.stereo import BssaStereo, depth_quality
from repro.errors import ConfigurationError, ImageError


def _engine(pair, **kwargs):
    maxd = int(np.ceil(pair.max_disparity)) + 2
    return BssaStereo(max_disparity=maxd, **kwargs)


def test_engine_validation():
    with pytest.raises(ConfigurationError):
        BssaStereo(max_disparity=0)
    with pytest.raises(ConfigurationError):
        BssaStereo(max_disparity=10, block_radius=0)
    with pytest.raises(ConfigurationError):
        BssaStereo(max_disparity=10, range_bins=1)


def test_range_bins_coupled_to_spatial_sigma():
    """'4 ... to 64 in each of three dimensions': coarser spatial grids
    get coarser range axes automatically."""
    fine = BssaStereo(max_disparity=10, sigma_spatial=4)
    coarse = BssaStereo(max_disparity=10, sigma_spatial=64)
    assert fine.sigma_range < coarse.sigma_range


def test_initial_disparity_recovers_layers(stereo_pair):
    engine = _engine(stereo_pair)
    disparity, confidence = engine.initial_disparity(
        stereo_pair.left, stereo_pair.right
    )
    assert disparity.shape == stereo_pair.shape
    valid = confidence > 0.2
    err = np.abs(disparity - stereo_pair.disparity)[valid]
    assert np.median(err) <= 1.0


def test_initial_disparity_validation(stereo_pair):
    engine = _engine(stereo_pair)
    with pytest.raises(ImageError):
        engine.initial_disparity(stereo_pair.left, stereo_pair.right[:10])
    with pytest.raises(ConfigurationError):
        BssaStereo(max_disparity=10_000).initial_disparity(
            stereo_pair.left, stereo_pair.right
        )


def test_confidence_in_unit_range(stereo_pair):
    engine = _engine(stereo_pair)
    _, confidence = engine.initial_disparity(stereo_pair.left, stereo_pair.right)
    assert confidence.min() >= 0.0 and confidence.max() <= 1.0


def test_compute_full_pipeline(stereo_pair):
    engine = _engine(stereo_pair, sigma_spatial=6)
    result = engine.compute(stereo_pair.left, stereo_pair.right)
    assert result.disparity_refined.shape == stereo_pair.shape
    assert result.disparity_refined.min() >= 0.0
    assert result.disparity_refined.max() <= engine.max_disparity
    assert result.grid.n_vertices > 0
    assert result.work.vertex_stream_length == (
        result.grid.n_vertices * result.solver.iterations
    )


def test_refinement_improves_noisy_input(noisy_stereo_pair):
    """The paper's premise for B3: grid refinement cleans up a noisy
    local matcher."""
    engine = _engine(noisy_stereo_pair, sigma_spatial=6)
    result = engine.compute(noisy_stereo_pair.left, noisy_stereo_pair.right)
    mae_init = np.abs(
        result.disparity_initial - noisy_stereo_pair.disparity
    ).mean()
    mae_refined = np.abs(
        result.disparity_refined - noisy_stereo_pair.disparity
    ).mean()
    assert mae_refined < mae_init


def test_quality_decreases_with_coarser_grid(noisy_stereo_pair):
    """Figure 7's monotone shape: score each grid against the finest."""
    from repro.imaging.metrics import ms_ssim

    results = {}
    for ss in (2, 8, 24):
        engine = _engine(noisy_stereo_pair, sigma_spatial=ss)
        results[ss] = engine.compute(
            noisy_stereo_pair.left, noisy_stereo_pair.right
        )
    ref = results[2].normalized_refined()
    q8 = ms_ssim(results[8].normalized_refined(), ref)
    q24 = ms_ssim(results[24].normalized_refined(), ref)
    assert q8 > q24
    assert results[2].grid.n_vertices > results[8].grid.n_vertices > results[24].grid.n_vertices


def test_depth_quality_metrics(stereo_pair):
    engine = _engine(stereo_pair, sigma_spatial=6)
    result = engine.compute(stereo_pair.left, stereo_pair.right)
    q = depth_quality(result, stereo_pair.disparity, "ms_ssim")
    assert 0.0 < q <= 1.0
    mae = depth_quality(result, stereo_pair.disparity, "mae")
    assert mae >= 0.0
    bad = depth_quality(result, stereo_pair.disparity, "bad2")
    assert 0.0 <= bad <= 1.0
    with pytest.raises(ConfigurationError):
        depth_quality(result, stereo_pair.disparity, "nope")
    with pytest.raises(ImageError):
        depth_quality(result, stereo_pair.disparity[:5], "mae")


def test_normalized_refined_unit_range(stereo_pair):
    engine = _engine(stereo_pair)
    result = engine.compute(stereo_pair.left, stereo_pair.right)
    norm = result.normalized_refined()
    assert norm.min() >= 0.0 and norm.max() <= 1.0
