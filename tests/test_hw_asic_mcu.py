"""ASIC operating point and MCU baseline models."""

import pytest

from repro.errors import HardwareModelError
from repro.hw.asic import AsicEnergyModel
from repro.hw.energy import EnergyReport
from repro.hw.mcu import MCU_CORTEX_M0_CLASS, MicrocontrollerModel


def test_asic_clock_validated():
    with pytest.raises(HardwareModelError):
        AsicEnergyModel(clock_hz=0)


def test_asic_seconds_and_leakage():
    em = AsicEnergyModel(clock_hz=30e6, kilo_gates=10.0)
    assert em.seconds(30_000_000) == pytest.approx(1.0)
    leak_1s = em.leakage_energy(30_000_000)
    assert leak_1s == pytest.approx(em.leakage_power())
    with pytest.raises(HardwareModelError):
        em.leakage_energy(-1)


def test_asic_report_with_leakage_adds_component():
    em = AsicEnergyModel(kilo_gates=5.0)
    report = EnergyReport({"mac": 1e-9})
    out = em.report_with_leakage(report, 1000)
    assert "leakage" in out.components
    assert "leakage" not in report.components  # original untouched


def test_asic_average_power():
    em = AsicEnergyModel(clock_hz=1e6)
    report = EnergyReport({"x": 1e-6})
    assert em.average_power(report, 1_000_000) == pytest.approx(1e-6)
    with pytest.raises(HardwareModelError):
        em.average_power(report, 0)


def test_mcu_validation():
    with pytest.raises(HardwareModelError):
        MicrocontrollerModel(clock_hz=0)


def test_mcu_cycles_and_energy_consistent():
    mcu = MCU_CORTEX_M0_CLASS
    cycles = mcu.cycles_for("mac8", 100)
    assert mcu.energy_for("mac8", 100) == pytest.approx(
        cycles * mcu.energy_per_cycle
    )
    assert mcu.seconds_for("mac8", 100) == pytest.approx(cycles / mcu.clock_hz)


def test_mcu_unknown_op_rejected():
    with pytest.raises(HardwareModelError):
        MCU_CORTEX_M0_CLASS.cycles_for("fft")
    with pytest.raises(HardwareModelError):
        MCU_CORTEX_M0_CLASS.cycles_for("mac8", -1)


def test_mcu_op_mix_report():
    report, seconds = MCU_CORTEX_M0_CLASS.run_op_mix(
        {"mac8": 1000, "sigmoid_sw": 10}
    )
    assert "mcu:mac8" in report.components
    assert seconds > 0
    assert report.total > 0


def test_mcu_sleep_energy():
    assert MCU_CORTEX_M0_CLASS.sleep_energy(10.0) == pytest.approx(
        10.0 * MCU_CORTEX_M0_CLASS.sleep_power
    )
    with pytest.raises(HardwareModelError):
        MCU_CORTEX_M0_CLASS.sleep_energy(-1.0)


def test_asic_beats_mcu_on_macs():
    """The structural claim behind the whole case study: a fixed-function
    MAC costs orders of magnitude less than a software MAC."""
    em = AsicEnergyModel()
    asic = em.mac_energy(8) + em.sram_read_energy(8, 4096)
    mcu = MCU_CORTEX_M0_CLASS.energy_for("mac8")
    assert mcu > 20 * asic
