"""Regression tests for the benchmark trajectory plumbing.

Two bugs are pinned here (both fixed by splitting the pure logic into
``benchmarks/_trajectory.py``):

* the vectorized-speedup bar used the *post-append* trajectory, so an
  ``explore_scaling`` entry appended earlier in the same pytest session
  inflated the bar and failed full-suite runs that passed in isolation
  — the bar must anchor on a session-start snapshot;
* every ``pytest`` run rewrote the tracked ``BENCH_explore.json`` and
  ``benchmarks/results/*``, dirtying ``git status`` — tracked writes
  are now opt-in via ``BENCH_PUBLISH=1``.

``benchmarks/`` is not a package, so the module is loaded by file path.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
MODULE_PATH = REPO_ROOT / "benchmarks" / "_trajectory.py"


def load_module():
    spec = importlib.util.spec_from_file_location("_trajectory", MODULE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


trajectory = load_module()


def scaling_entry(memoized_rate: float, commit: str = "aaaaaaa") -> dict:
    return {
        "kind": "explore_scaling",
        "modes": {"memoized": {"configs_per_sec": memoized_rate}},
        "commit": commit,
    }


def vectorized_entry(commit: str = "aaaaaaa") -> dict:
    return {
        "kind": "explore_vectorized",
        "speedup_batch_vs_scalar": 25.0,
        "commit": commit,
    }


# -- the order-dependence regression --------------------------------------


def test_vectorized_bar_ignores_same_session_scaling_entries():
    """The exact full-suite failure mode: ``explore_scaling`` runs first
    in the same session and records a fast memoized rate on this
    machine; the vectorized bar must still reflect only the
    session-start snapshot."""
    baseline = [scaling_entry(1_000.0, commit="old1"), vectorized_entry("old1")]
    bar_at_start = trajectory.vectorized_bar(baseline)
    assert bar_at_start == pytest.approx(10_000.0)

    # Same-session append of a much faster memoized measurement (what
    # test_bench_explore_scaling.py does minutes before the vectorized
    # benchmark in a full-suite run)...
    updated = trajectory.append_entry(
        baseline, scaling_entry(50_000.0), commit="new1"
    )
    assert trajectory.vectorized_bar(updated) == pytest.approx(500_000.0)

    # ...must not move the bar the vectorized benchmark asserts against.
    assert trajectory.vectorized_bar(baseline) == bar_at_start
    # A lazy rate that clears 10x prior-commit memoized but not 10x the
    # same-session rate passes against the snapshot bar.
    lazy = 30_000.0
    assert lazy >= bar_at_start
    assert lazy < trajectory.vectorized_bar(updated)


def test_vectorized_bar_none_without_prior_memoized_entries():
    assert trajectory.vectorized_bar([]) is None
    assert trajectory.vectorized_bar([vectorized_entry()]) is None
    no_modes = [{"kind": "explore_scaling", "commit": "x"}]
    assert trajectory.vectorized_bar(no_modes) is None


def test_best_prior_memoized_takes_the_max_across_entries():
    baseline = [
        scaling_entry(100.0, "c1"),
        scaling_entry(400.0, "c2"),
        scaling_entry(250.0, "c3"),
    ]
    assert trajectory.best_prior_memoized(baseline) == 400.0


# -- append_entry semantics ------------------------------------------------


def test_append_entry_is_pure_and_stamps_commit():
    baseline = [scaling_entry(1.0, "old")]
    entry = {"kind": "explore_scaling", "modes": {}}
    updated = trajectory.append_entry(baseline, entry, commit="new")
    assert baseline == [scaling_entry(1.0, "old")]  # input untouched
    assert "commit" not in entry  # entry dict untouched
    assert updated[-1]["commit"] == "new"
    assert len(updated) == 2


def test_append_entry_replaces_latest_same_kind_same_commit():
    baseline = [
        scaling_entry(1.0, "c1"),
        vectorized_entry("c1"),
        scaling_entry(2.0, "c2"),
    ]
    rerun = trajectory.append_entry(baseline, scaling_entry(3.0), commit="c2")
    assert len(rerun) == 3
    assert rerun[2]["modes"]["memoized"]["configs_per_sec"] == 3.0
    # A different kind at the same commit appends rather than replacing.
    other = trajectory.append_entry(baseline, vectorized_entry(), commit="c2")
    assert len(other) == 4
    # Only the LATEST same-kind entry is a replacement candidate: a new
    # commit appends even though c1 entries of the kind exist.
    cross = trajectory.append_entry(baseline, scaling_entry(9.0), commit="c3")
    assert len(cross) == 4


def test_append_entry_caps_oldest_first_and_handles_no_commit():
    baseline = [scaling_entry(float(i), f"c{i}") for i in range(5)]
    capped = trajectory.append_entry(
        baseline, scaling_entry(99.0), commit="c9", cap=3
    )
    assert len(capped) == 3
    assert capped[-1]["commit"] == "c9"
    assert capped[0]["commit"] == "c3"
    # commit=None (outside git) always appends.
    appended = trajectory.append_entry(baseline, scaling_entry(7.0), commit=None)
    assert len(appended) == 6
    assert appended[-1]["commit"] is None


# -- opt-in output routing -------------------------------------------------


def test_publish_disabled_routes_all_writes_under_tmp(tmp_path):
    tracked_trajectory = REPO_ROOT / "BENCH_explore.json"
    tracked_results = REPO_ROOT / "benchmarks" / "results"
    for environ in ({}, {"BENCH_PUBLISH": "0"}, {"BENCH_PUBLISH": "yes"}):
        assert not trajectory.publish_enabled(environ)
        out_trajectory, out_results = trajectory.resolve_output_paths(
            tmp_path,
            environ,
            trajectory_path=tracked_trajectory,
            results_dir=tracked_results,
        )
        assert out_trajectory == tmp_path / "BENCH_explore.json"
        assert out_results == tmp_path / "results"
        assert tmp_path in out_trajectory.parents
        assert tmp_path in out_results.parents


def test_publish_opt_in_routes_to_tracked_paths(tmp_path):
    environ = {"BENCH_PUBLISH": "1"}
    assert trajectory.publish_enabled(environ)
    out_trajectory, out_results = trajectory.resolve_output_paths(
        tmp_path,
        environ,
        trajectory_path=REPO_ROOT / "BENCH_explore.json",
        results_dir=REPO_ROOT / "benchmarks" / "results",
    )
    assert out_trajectory == REPO_ROOT / "BENCH_explore.json"
    assert out_results == REPO_ROOT / "benchmarks" / "results"


def test_bench_conftest_fixtures_write_nothing_outside_tmp(
    tmp_path, monkeypatch
):
    """Drive the actual ``benchmarks/conftest.py`` fixture bodies (via
    ``__wrapped__``) with the opt-in unset and assert every produced
    path lives under the fake tmp dir — the property that keeps a plain
    tier-1 run's ``git status`` clean."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", REPO_ROOT / "benchmarks" / "conftest.py"
    )
    monkeypatch.syspath_prepend(str(REPO_ROOT / "benchmarks"))
    conftest = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(conftest)

    monkeypatch.delenv("BENCH_PUBLISH", raising=False)
    monkeypatch.delenv("BENCH_RESULTS_DIR", raising=False)

    class FakeFactory:
        def mktemp(self, name):
            path = tmp_path / name
            path.mkdir()
            return path

    trajectory_path, results_dir = conftest.bench_output.__wrapped__(
        FakeFactory()
    )
    assert tmp_path in trajectory_path.parents
    assert tmp_path in results_dir.parents
    assert results_dir.is_dir()
    # The example-summary env var follows the tmp routing too.
    import os

    assert os.environ["BENCH_RESULTS_DIR"] == str(results_dir)

    bench_output = (trajectory_path, results_dir)
    append = conftest.append_trajectory.__wrapped__(bench_output, [])
    written = append({"kind": "explore_scaling", "modes": {}})
    assert trajectory_path.exists()
    assert len(written) == 1

    publish = conftest.publish.__wrapped__(results_dir)
    publish("probe", "table text")
    assert (results_dir / "probe.txt").read_text() == "table text\n"
    # The tracked results dir gained no probe artifact.
    assert not (REPO_ROOT / "benchmarks" / "results" / "probe.txt").exists()


def test_trajectory_baseline_reads_the_tracked_snapshot(monkeypatch, tmp_path):
    """``trajectory_baseline`` must read the TRACKED trajectory (the
    session-start snapshot), not the session's write path."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest2", REPO_ROOT / "benchmarks" / "conftest.py"
    )
    monkeypatch.syspath_prepend(str(REPO_ROOT / "benchmarks"))
    conftest = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(conftest)
    assert conftest.trajectory_baseline.__wrapped__() == trajectory.load_trajectory(
        conftest.TRAJECTORY_PATH
    )


def test_load_trajectory_missing_file_is_empty(tmp_path):
    assert trajectory.load_trajectory(tmp_path / "absent.json") == []
