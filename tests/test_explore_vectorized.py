"""The columnar batch evaluation core (`repro.explore.vectorized`).

Unit coverage for the pieces the invariant suite exercises end-to-end:
the batch-capability probes and their subclass-override matrix, the
``evaluation=`` knob and path report, :class:`BatchRows` laziness and
columnar metrics, the columnar sink folds (``add_batch`` ==  scalar
``add``, including NaN positions and ties), the partial prefix cache,
and the error surfaces of every entry point.
"""

from __future__ import annotations

import json

import pytest

from repro.core.block import Block, Implementation
from repro.core.cost import EnergyCostModel, ThroughputCostModel
from repro.core.pipeline import InCameraPipeline, PipelineConfig
from repro.errors import ConfigurationError, PipelineError
from repro.explore import (
    BatchPrefixEvaluator,
    CallbackSink,
    MemorySink,
    ParetoSink,
    PrefixEvaluator,
    PrefixStateCache,
    ResultSink,
    Scenario,
    SweepExecutor,
    TopK,
    TopKSink,
    evaluation_path,
    explore,
    supports_batch_evaluation,
    uses_stock_batch_semantics,
)
from repro.explore.engine import iter_evaluation_chunks
from repro.explore.result import ParetoFrontier, cost_row
from repro.explore.sink import uses_columnar_writes
from repro.explore.vectorized import (
    BatchChunkStates,
    BatchRows,
    batch_prefix_evaluator,
    np,
)
from repro.hw.network import LinkModel

pytestmark = pytest.mark.skipif(np is None, reason="numpy unavailable")


def build_pipeline(n_blocks: int = 3) -> InCameraPipeline:
    blocks = tuple(
        Block(
            name=f"B{i}",
            output_bytes=900.0 - 200.0 * i,
            pass_rate=0.8,
            implementations={
                platform: Implementation(
                    platform,
                    fps=90.0 - 7 * i + 3 * j,
                    energy_per_frame=1e-6 * (i + j + 1),
                    active_seconds=1e-3 * (j + 1),
                )
                for j, platform in enumerate(("asic", "cpu", "fpga"))
            },
        )
        for i in range(n_blocks)
    )
    return InCameraPipeline(
        name="vec-unit", sensor_bytes=1200.0, blocks=blocks,
        sensor_energy_per_frame=2e-7,
    )


LINK = LinkModel(name="vec-link", raw_bps=2e6, tx_energy_per_bit=1e-9)


def build_scenario(**overrides) -> Scenario:
    kwargs = {
        "name": "vec-unit",
        "pipeline": build_pipeline(),
        "link": LINK,
        "target_fps": 60.0,
    }
    kwargs.update(overrides)
    return Scenario(**kwargs)


# -- capability probes ---------------------------------------------------


class _ScalarOnlyOverride(ThroughputCostModel):
    """Customizes a scalar step without its batch counterpart: the stock
    batch kernel would silently bypass it."""

    def extend_state(self, state, block, impl):
        return super().extend_state(state, block, impl)


class _MatchedOverride(ThroughputCostModel):
    """Customizes a scalar step and its batch counterpart: batch-capable,
    but the state shapes are its own business."""

    def extend_state(self, state, block, impl):
        return super().extend_state(state, block, impl)

    def extend_state_batch(self, state, block, impls, choices):
        return super().extend_state_batch(state, block, impls, choices)


class _BatchOnlyOverride(ThroughputCostModel):
    """A faster batch kernel with stock scalar semantics: eligible."""

    def extend_state_batch(self, state, block, impls, choices):
        return super().extend_state_batch(state, block, impls, choices)


class _CustomEvaluate(ThroughputCostModel):
    def evaluate(self, config):
        return super().evaluate(config)


def test_probes_on_stock_models():
    for model in (ThroughputCostModel(LINK), EnergyCostModel(LINK)):
        assert supports_batch_evaluation(model)
        assert uses_stock_batch_semantics(model)


def test_probes_on_override_matrix():
    assert not supports_batch_evaluation(_ScalarOnlyOverride(LINK))
    assert supports_batch_evaluation(_MatchedOverride(LINK))
    assert supports_batch_evaluation(_BatchOnlyOverride(LINK))
    assert not supports_batch_evaluation(_CustomEvaluate(LINK))
    # Any override at all disqualifies the stock-shape shortcuts.
    for model in (
        _ScalarOnlyOverride(LINK),
        _MatchedOverride(LINK),
        _BatchOnlyOverride(LINK),
        _CustomEvaluate(LINK),
    ):
        assert not uses_stock_batch_semantics(model)
    assert not supports_batch_evaluation(object())
    assert not uses_stock_batch_semantics(object())


def test_batch_prefix_evaluator_dispatch():
    assert batch_prefix_evaluator(_ScalarOnlyOverride(LINK)) is None
    assert isinstance(
        batch_prefix_evaluator(ThroughputCostModel(LINK)), BatchPrefixEvaluator
    )
    with pytest.raises(ConfigurationError, match="not batch-capable"):
        BatchPrefixEvaluator(_ScalarOnlyOverride(LINK))
    with pytest.raises(ConfigurationError, match="pass_rates only apply"):
        BatchPrefixEvaluator(ThroughputCostModel(LINK), pass_rates={"B0": 0.5})


def test_matched_override_refuses_cohort_enumeration():
    evaluator = BatchPrefixEvaluator(_MatchedOverride(LINK))
    with pytest.raises(ConfigurationError, match="stock batch cost semantics"):
        next(evaluator.iter_scenario_batches(build_scenario()))


def test_matched_override_still_folds_chunks_bit_identically():
    scenario = build_scenario()
    model = _MatchedOverride(LINK)
    configs = list(scenario.iter_configs())
    batch = BatchPrefixEvaluator(model)
    scalar = PrefixEvaluator(model)
    got = [cost_row(scenario, c) for c in batch.evaluate_many(configs)]
    want = [cost_row(scenario, scalar.evaluate(c)) for c in configs]
    assert json.dumps(got) == json.dumps(want)


# -- the evaluation= knob and path report --------------------------------


def test_evaluation_path_values():
    scenario = build_scenario()
    assert evaluation_path(scenario) == "batch-cohort"
    # Parallel stock runs ship CohortShard descriptors, never pickled
    # config chunks.
    assert evaluation_path(scenario, SweepExecutor(workers=2)) == "batch-shard"
    assert evaluation_path(scenario, evaluation="scalar") == "scalar-memoized"
    # Per-config filtering (a custom prune hook) fuses into the cohort
    # walk as an emission-time filter — and shard mode resolves it
    # driver-side, so parallel filtered runs still shard.
    filtered = build_scenario(prune=lambda config: False)
    assert evaluation_path(filtered) == "batch-cohort-pruned"
    assert evaluation_path(filtered, SweepExecutor(workers=2)) == "batch-shard"
    # Auto-derived prefix pruners carry batch forms: pruned scenarios
    # report the fused cohort path, not a scalar fallback.
    pruned = build_scenario(auto_prune=True, auto_prune_configs=True)
    assert evaluation_path(pruned) == "batch-cohort-pruned"
    assert evaluation_path(pruned, SweepExecutor(workers=2)) == "batch-shard"
    # A batch-capable model off the stock shapes still chunks.
    matched = build_scenario(model=_MatchedOverride(LINK), link=None)
    assert evaluation_path(matched) == "batch-chunk"
    assert evaluation_path(matched, SweepExecutor(workers=2)) == "batch-chunk"


def test_evaluation_mode_validation():
    scenario = build_scenario()
    with pytest.raises(ConfigurationError, match="evaluation must be one of"):
        explore(scenario, evaluation="bogus")
    with pytest.raises(ConfigurationError, match="evaluation must be one of"):
        evaluation_path(scenario, evaluation="bogus")
    with pytest.raises(ConfigurationError, match="batch-capable cost model"):
        iter_evaluation_chunks(
            _ScalarOnlyOverride(LINK), iter(()), evaluation="batch"
        )


def test_explore_modes_agree_on_rows():
    scenario = build_scenario()
    auto = explore(scenario)
    forced = explore(scenario, evaluation="batch")
    scalar = explore(scenario, evaluation="scalar")
    assert json.dumps(auto.rows) == json.dumps(scalar.rows)
    assert json.dumps(forced.rows) == json.dumps(scalar.rows)


# -- BatchRows -----------------------------------------------------------


def scenario_batches(scenario, chunk_size=None):
    evaluator = BatchPrefixEvaluator(scenario.cost_model())
    return list(evaluator.iter_scenario_batches(scenario, chunk_size=chunk_size))


def test_batch_rows_materialize_lazily():
    scenario = build_scenario()
    batches = scenario_batches(scenario)
    assert sum(len(b) for b in batches) == scenario.count_configs()
    deepest = batches[-1]
    assert deepest.n_materialized == 0
    column = deepest.metric_column("total_fps")
    assert len(column) == len(deepest)
    assert deepest.n_materialized == 0  # columns never materialize
    cost = deepest.cost(0)
    assert deepest.n_materialized == 1
    assert cost.config == deepest.config(0)
    row = deepest.row(1)
    assert deepest.n_materialized == 2
    assert row == cost_row(scenario, deepest.cost(1))


def test_batch_rows_match_scalar_rows_and_columns():
    scenario = build_scenario()
    scalar = explore(scenario, evaluation="scalar")
    rows = [row for batch in scenario_batches(scenario) for row in batch.rows()]
    assert json.dumps(rows) == json.dumps(scalar.rows)
    position = 0
    for batch in scenario_batches(scenario):
        span = scalar.rows[position : position + len(batch)]
        for metric in ("n_in_camera", "offload_bytes", "compute_fps",
                       "communication_fps", "total_fps", "feasible"):
            got = batch.metric_column(metric).tolist()
            assert got == [row[metric] for row in span], metric
        position += len(batch)
    with pytest.raises(KeyError):
        scenario_batches(scenario)[0].metric_column("config")


def test_energy_batch_columns_match_scalar_rows():
    scenario = build_scenario(
        domain="energy", target_fps=None, energy_budget_j=2e-5,
        pass_rates={"B0": 0.4},
    )
    scalar = explore(scenario, evaluation="scalar")
    evaluator = BatchPrefixEvaluator(
        scenario.cost_model(), pass_rates=scenario.pass_rates
    )
    position = 0
    for batch in evaluator.iter_scenario_batches(scenario):
        span = scalar.rows[position : position + len(batch)]
        assert json.dumps(batch.rows()) == json.dumps(span)
        for metric in ("transmit_rate", "active_seconds", "transmit_energy_j",
                       "sensor_energy_j", "compute_energy_j", "total_energy_j",
                       "feasible"):
            got = batch.metric_column(metric).tolist()
            assert got == [row[metric] for row in span], metric
        position += len(batch)


def test_batch_rows_slice_is_a_view_of_the_same_rows():
    scenario = build_scenario()
    deepest = scenario_batches(scenario)[-1]
    lo, hi = 3, 11
    window = deepest.slice(lo, hi)
    assert len(window) == hi - lo
    assert json.dumps(window.rows()) == json.dumps(deepest.rows()[lo:hi])


def test_chunked_cohorts_respect_chunk_size():
    scenario = build_scenario()
    batches = scenario_batches(scenario, chunk_size=5)
    assert all(len(batch) <= 5 for batch in batches)
    rows = [row for batch in batches for row in batch.rows()]
    assert json.dumps(rows) == json.dumps(explore(scenario, evaluation="scalar").rows)


def test_cohorts_honor_depth_pruning_and_include_empty():
    pruned = build_scenario(auto_prune=True)
    rows = [row for batch in scenario_batches(pruned) for row in batch.rows()]
    assert json.dumps(rows) == json.dumps(explore(pruned, evaluation="scalar").rows)
    no_empty = build_scenario(include_empty=False)
    depths = [batch.depth for batch in scenario_batches(no_empty)]
    assert 0 not in depths
    assert sum(len(b) for b in scenario_batches(no_empty)) == no_empty.count_configs()


def test_invalid_trusted_platform_raises_like_the_scalar_walk():
    pipeline = build_pipeline()
    config = PipelineConfig.trusted(pipeline, ("bogus",))
    evaluator = BatchPrefixEvaluator(ThroughputCostModel(LINK))
    with pytest.raises(PipelineError):
        evaluator.evaluate_many([config])


def test_states_chunk_segments_cover_the_chunk():
    scenario = build_scenario()
    configs = list(scenario.iter_configs())
    states = BatchPrefixEvaluator(scenario.cost_model()).states_chunk(configs)
    assert isinstance(states, BatchChunkStates)
    assert len(states) == len(configs)
    assert [c for run, *_rest in states.segments for c in run] == configs
    # Each segment carries the lazy-member plumbing: an (n, depth)
    # choice matrix plus the per-level platform names that decode it.
    for run, depth, _state, choices, names in states.segments:
        assert choices.shape == (len(run), depth)
        assert len(names) == depth
        for config, row in zip(run, choices.tolist()):
            assert config.platforms == tuple(
                names[level][c] for level, c in enumerate(row)
            )


# -- columnar sink folds -------------------------------------------------


class _FakeBatch:
    """The minimal add_batch consumer contract over plain rows."""

    def __init__(self, rows, columnar=("m",)):
        self._rows = rows
        self._columnar = columnar
        self.n_materialized = 0

    def __len__(self):
        return len(self._rows)

    def metric_column(self, name):
        if name not in self._columnar:
            raise KeyError(name)
        return np.array([row[name] for row in self._rows], dtype=float)

    def row(self, i):
        self.n_materialized += 1
        return self._rows[i]

    def rows(self):
        self.n_materialized += len(self._rows)
        return list(self._rows)


def test_topk_add_batch_equals_scalar_add_with_ties():
    rows = [{"config": f"c{i}", "m": float(v)} for i, v in
            enumerate([5, 7, 7, 3, 7, 9, 1, 9, 2, 7])]
    for maximize in (True, False):
        for k in (0, 2, 4, 50):
            online = TopK("m", k=k, maximize=maximize)
            online.add_batch(_FakeBatch(rows[:6]))
            online.add_batch(_FakeBatch(rows[6:]))
            batch = TopK("m", k=k, maximize=maximize)
            batch.add(rows)
            assert online.rows == batch.rows, (maximize, k)
            assert online.n_seen == batch.n_seen == len(rows)


def test_topk_add_batch_materializes_candidates_only():
    rows = [{"m": float(v)} for v in [9, 8, 1, 1, 1, 1, 10, 1]]
    online = TopK("m", k=2, maximize=True)
    fake = _FakeBatch(rows)
    online.add_batch(fake)
    # Heap fill (2) + the single later row beating the batch-start root.
    assert fake.n_materialized == 3
    assert [row["m"] for row in online.rows] == [10.0, 9.0]


def test_topk_add_batch_nan_raises_at_the_exact_position():
    rows = [{"m": 4.0}, {"m": 5.0}, {"m": float("nan")}, {"m": 6.0}]
    online = TopK("m", k=2)
    with pytest.raises(ConfigurationError, match="row 2"):
        online.add_batch(_FakeBatch(rows))


def test_pareto_add_batch_equals_scalar_add():
    rows = [
        {"a": float(i % 5), "b": float((i * 7) % 4)} for i in range(40)
    ]
    online = ParetoFrontier(("a", "b"), maximize=True)
    online.add_batch(_FakeBatch(rows[:25], columnar=("a", "b")))
    online.add_batch(_FakeBatch(rows[25:], columnar=("a", "b")))
    batch = ParetoFrontier(("a", "b"), maximize=True)
    batch.add(rows)
    assert online.rows == batch.rows
    assert online.n_seen == batch.n_seen == len(rows)


def test_pareto_add_batch_nan_raises_at_the_exact_position():
    rows = [{"a": 1.0, "b": 1.0}, {"a": float("nan"), "b": 0.0}]
    online = ParetoFrontier(("a", "b"), maximize=True)
    with pytest.raises(ConfigurationError, match="row 1"):
        online.add_batch(_FakeBatch(rows, columnar=("a", "b")))


def test_add_batch_falls_back_on_non_columnar_metrics():
    rows = [{"m": float(v), "other": v} for v in (3, 1, 2)]
    online = TopK("other", k=2)
    fake = _FakeBatch(rows)  # only "m" is columnar
    online.add_batch(fake)
    assert fake.n_materialized == len(rows)
    batch = TopK("other", k=2)
    batch.add(rows)
    assert online.rows == batch.rows


def test_uses_columnar_writes_probe():
    assert uses_columnar_writes(ParetoSink())
    assert uses_columnar_writes(TopKSink("total_fps", k=3))
    assert not uses_columnar_writes(MemorySink())
    assert not uses_columnar_writes(CallbackSink(lambda rows: None))

    class _Columnar(ResultSink):
        def write_batch(self, batch):
            pass

    assert uses_columnar_writes(_Columnar())


def test_columnar_sinks_match_collected_results_end_to_end():
    scenario = build_scenario()
    collected = explore(scenario)
    sink = TopKSink("total_fps", k=4)
    explore(scenario, sink=sink, collect=False)
    assert json.dumps(sink.top_k()) == json.dumps(collected.top_k("total_fps", k=4))
    frontier = ParetoSink()
    explore(scenario, sink=frontier, collect=False)
    assert json.dumps(frontier.pareto()) == json.dumps(collected.pareto())


# -- the partial prefix cache --------------------------------------------


def test_prefix_state_cache_validates_max_rows():
    with pytest.raises(ConfigurationError, match="max_rows"):
        PrefixStateCache(max_rows=0)


def test_prefix_state_cache_hits_on_shared_prefixes():
    scenario = build_scenario()
    model = scenario.cost_model()
    configs = list(scenario.iter_configs())
    cache = PrefixStateCache()
    first = BatchPrefixEvaluator(model, prefix_cache=cache)
    baseline = [cost_row(scenario, c) for c in first.evaluate_many(configs)]
    assert cache.misses > 0
    misses = cache.misses
    second = BatchPrefixEvaluator(model, prefix_cache=cache)
    again = [cost_row(scenario, c) for c in second.evaluate_many(configs)]
    assert json.dumps(again) == json.dumps(baseline)
    assert cache.hits > 0
    assert cache.misses == misses  # every prefix level was already primed


def test_prefix_state_cache_width_cap_disables_itself_safely():
    scenario = build_scenario()
    configs = list(scenario.iter_configs())
    cache = PrefixStateCache(max_rows=1)  # narrower than any level cohort
    evaluator = BatchPrefixEvaluator(scenario.cost_model(), prefix_cache=cache)
    rows = [cost_row(scenario, c) for c in evaluator.evaluate_many(configs)]
    assert cache.hits == cache.misses == 0
    assert cache.width_capped > 0  # every lookup fell off the cap
    assert json.dumps(rows) == json.dumps(explore(scenario, evaluation="scalar").rows)


def test_prefix_state_cache_stats_snapshot():
    """``stats`` mirrors the live counters as one plain dict (the shape
    campaigns surface through ``CampaignResult.cache_stats``)."""
    scenario = build_scenario()
    configs = list(scenario.iter_configs())
    cache = PrefixStateCache()
    assert cache.stats == {"hits": 0, "misses": 0, "entries": 0, "width_capped": 0}
    BatchPrefixEvaluator(scenario.cost_model(), prefix_cache=cache).evaluate_many(
        configs
    )
    stats = cache.stats
    assert stats["misses"] == cache.misses > 0
    assert stats["entries"] > 0
    assert stats["width_capped"] == 0
    capped = PrefixStateCache(max_rows=1)
    BatchPrefixEvaluator(scenario.cost_model(), prefix_cache=capped).evaluate_many(
        configs
    )
    assert capped.stats["width_capped"] == capped.width_capped > 0


def test_prefix_cache_ignored_for_custom_batch_models():
    cache = PrefixStateCache()
    evaluator = BatchPrefixEvaluator(_MatchedOverride(LINK), prefix_cache=cache)
    assert evaluator.prefix_cache is None
